//! Deterministic metrics registry fed by the typed trace.
//!
//! [`Metrics`] holds monotonic per-kind counters and fixed-bucket
//! histograms over sim-time quantities (detection latency, per-phase
//! recovery durations, watchdog gaps, retry backoffs, queue depths).
//! Everything is plain integer state in fixed-size arrays: observation
//! never allocates, snapshots are `Clone`, independent runs merge with
//! [`Metrics::merge`], and [`Metrics::to_json`] renders a byte-stable
//! JSON document (integers only, fixed field order) so exported
//! snapshots can be compared across runs and thread counts.

use std::collections::BTreeMap;

use crate::time::{SimDuration, SimTime};
use crate::trace::{DropKind, RecoveryPhase, TraceKind, KIND_COUNT, KIND_NAMES};

/// Integer goodput in bytes per second over `window` (0 when the window
/// is empty). Shared by every bandwidth/goodput report so they all round
/// the same way.
pub fn bytes_per_sec(bytes: u64, window: SimDuration) -> u64 {
    let ns = window.as_nanos();
    if ns == 0 {
        return 0;
    }
    ((bytes as u128) * 1_000_000_000 / (ns as u128)) as u64
}

/// An exact-sample series of duration observations: the workspace's single
/// quantile implementation.
///
/// Fixed-bucket [`Histogram`]s answer "roughly where did samples land"
/// without allocation; `Samples` keeps every observation so workload and
/// app stats can report exact p50/p95/p99/p999. All of them share this
/// type so the quantile edge cases are defined exactly once:
///
/// * empty series → every statistic is `None`,
/// * `q <= 0.0` (and NaN) → the minimum sample,
/// * `q >= 1.0` → the maximum sample,
/// * otherwise nearest-rank: the smallest sample whose cumulative
///   frequency reaches `q`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Samples {
    values: Vec<u64>,
}

impl Samples {
    /// An empty series.
    pub fn new() -> Samples {
        Samples::default()
    }

    /// Records one duration sample.
    pub fn record(&mut self, d: SimDuration) {
        self.values.push(d.as_nanos());
    }

    /// Records one raw nanosecond sample.
    pub fn record_ns(&mut self, ns: u64) {
        self.values.push(ns);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Sum of all samples in nanoseconds (saturating).
    pub fn sum_ns(&self) -> u64 {
        self.values.iter().fold(0u64, |acc, &v| acc.saturating_add(v))
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<SimDuration> {
        self.values.iter().min().map(|&v| SimDuration::from_nanos(v))
    }

    /// Largest sample.
    pub fn max(&self) -> Option<SimDuration> {
        self.values.iter().max().map(|&v| SimDuration::from_nanos(v))
    }

    /// Mean sample (rounded down to whole nanoseconds).
    pub fn mean(&self) -> Option<SimDuration> {
        if self.values.is_empty() {
            return None;
        }
        Some(SimDuration::from_nanos(
            self.sum_ns() / self.values.len() as u64,
        ))
    }

    /// The nearest-rank `q`-quantile (see the type docs for edge cases).
    ///
    /// Convenience wrapper over [`Samples::quantile_permille`] for
    /// display code; anything feeding a byte-stable export must call
    /// the per-mille form directly so the path stays integer-only.
    pub fn quantile(&self, q: f64) -> Option<SimDuration> {
        // NaN fails the comparison and degrades to the minimum, exactly
        // as the f64 version always did.
        let p = if q > 0.0 {
            ((q * 1000.0).ceil() as u64).min(1000) as u32
        } else {
            0
        };
        self.quantile_permille(p)
    }

    /// The nearest-rank quantile at `p`/1000, in pure integer
    /// arithmetic: the smallest sample whose cumulative rank covers a
    /// `p` per-mille share. `p == 0` is the minimum; `p >= 1000` the
    /// maximum.
    pub fn quantile_permille(&self, p: u32) -> Option<SimDuration> {
        if self.values.is_empty() {
            return None;
        }
        let mut v = self.values.clone();
        v.sort_unstable();
        let n = v.len();
        // ceil(p * n / 1000), computed in u64 so a billion samples at
        // p=1000 cannot overflow.
        let rank = (u64::from(p) * n as u64).div_ceil(1000) as usize;
        let idx = rank.saturating_sub(1).min(n - 1);
        v.get(idx).copied().map(SimDuration::from_nanos)
    }

    /// Folds another series into this one (order-independent statistics).
    pub fn merge(&mut self, other: &Samples) {
        self.values.extend_from_slice(&other.values);
    }

    /// Read-only view of the raw samples in record order, in nanoseconds.
    pub fn raw_ns(&self) -> &[u64] {
        &self.values
    }
}

/// The registered histograms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HistId {
    /// Fault activation → FTD woken (Table 3 "detection" component).
    DetectionLatency,
    /// Duration of the card-reset phase.
    PhaseReset,
    /// Duration of the SRAM-clear phase.
    PhaseClearSram,
    /// Duration of the MCP-reload phase.
    PhaseReloadMcp,
    /// Duration of the engine-restart phase.
    PhaseRestartEngines,
    /// Duration of the page-table-restore phase.
    PhaseRestorePageTable,
    /// Duration of the route-restore phase.
    PhaseRestoreRoutes,
    /// Gap between consecutive `L_timer()` watchdog re-arms.
    WatchdogGap,
    /// Backoff delays scheduled between reload attempts.
    RetryBackoff,
    /// Send tokens in flight at each `gm_send` post.
    SendQueueDepth,
    /// Receive tokens in flight at each buffer provide.
    RecvQueueDepth,
    /// MPI mailbox depth after each buffered envelope delivery.
    MailboxDepth,
}

/// Number of [`HistId`] variants (sizes the histogram array).
pub const HIST_COUNT: usize = 12;

/// Bucket upper bounds for sim-duration histograms, in nanoseconds:
/// 1 µs, 10 µs, 100 µs, 1 ms, 10 ms, 100 ms, 1 s (+overflow bucket).
const DURATION_BOUNDS: [u64; 7] = [
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
];

/// Bucket upper bounds for queue-depth histograms (+overflow bucket).
const DEPTH_BOUNDS: [u64; 7] = [1, 2, 4, 8, 16, 32, 64];

impl HistId {
    /// All histograms in export order.
    pub const ALL: [HistId; HIST_COUNT] = [
        HistId::DetectionLatency,
        HistId::PhaseReset,
        HistId::PhaseClearSram,
        HistId::PhaseReloadMcp,
        HistId::PhaseRestartEngines,
        HistId::PhaseRestorePageTable,
        HistId::PhaseRestoreRoutes,
        HistId::WatchdogGap,
        HistId::RetryBackoff,
        HistId::SendQueueDepth,
        HistId::RecvQueueDepth,
        HistId::MailboxDepth,
    ];

    /// Dense index into the histogram array.
    pub fn index(self) -> usize {
        match self {
            HistId::DetectionLatency => 0,
            HistId::PhaseReset => 1,
            HistId::PhaseClearSram => 2,
            HistId::PhaseReloadMcp => 3,
            HistId::PhaseRestartEngines => 4,
            HistId::PhaseRestorePageTable => 5,
            HistId::PhaseRestoreRoutes => 6,
            HistId::WatchdogGap => 7,
            HistId::RetryBackoff => 8,
            HistId::SendQueueDepth => 9,
            HistId::RecvQueueDepth => 10,
            HistId::MailboxDepth => 11,
        }
    }

    /// Stable snake-case name for JSON exports.
    pub fn name(self) -> &'static str {
        match self {
            HistId::DetectionLatency => "detection_latency_ns",
            HistId::PhaseReset => "phase_reset_ns",
            HistId::PhaseClearSram => "phase_clear_sram_ns",
            HistId::PhaseReloadMcp => "phase_reload_mcp_ns",
            HistId::PhaseRestartEngines => "phase_restart_engines_ns",
            HistId::PhaseRestorePageTable => "phase_restore_page_table_ns",
            HistId::PhaseRestoreRoutes => "phase_restore_routes_ns",
            HistId::WatchdogGap => "watchdog_gap_ns",
            HistId::RetryBackoff => "retry_backoff_ns",
            HistId::SendQueueDepth => "send_queue_depth",
            HistId::RecvQueueDepth => "recv_queue_depth",
            HistId::MailboxDepth => "mailbox_depth",
        }
    }

    /// The histogram for one recovery phase.
    pub fn for_phase(phase: RecoveryPhase) -> HistId {
        match phase {
            RecoveryPhase::Reset => HistId::PhaseReset,
            RecoveryPhase::ClearSram => HistId::PhaseClearSram,
            RecoveryPhase::ReloadMcp => HistId::PhaseReloadMcp,
            RecoveryPhase::RestartEngines => HistId::PhaseRestartEngines,
            RecoveryPhase::RestorePageTable => HistId::PhaseRestorePageTable,
            RecoveryPhase::RestoreRoutes => HistId::PhaseRestoreRoutes,
        }
    }

    /// This histogram's bucket upper bounds (the last bucket is +inf).
    pub fn bounds(self) -> &'static [u64; 7] {
        match self {
            HistId::SendQueueDepth | HistId::RecvQueueDepth | HistId::MailboxDepth => {
                &DEPTH_BOUNDS
            }
            _ => &DURATION_BOUNDS,
        }
    }
}

/// A fixed-bucket histogram over `u64` samples.
///
/// Eight buckets: seven bounded by [`HistId::bounds`] (a sample lands in
/// the first bucket whose bound it does not exceed) plus an overflow
/// bucket. Also tracks count/sum/min/max exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Samples observed.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Bucket occupancy; `buckets[7]` is the overflow bucket.
    pub buckets: [u64; 8],
}

/// An empty histogram, usable in `const` array initialisers.
pub const EMPTY_HISTOGRAM: Histogram = Histogram {
    count: 0,
    sum: 0,
    min: 0,
    max: 0,
    buckets: [0; 8],
};

impl Default for Histogram {
    fn default() -> Self {
        EMPTY_HISTOGRAM
    }
}

impl Histogram {
    /// Records one sample against the given bucket bounds.
    pub fn observe(&mut self, value: u64, bounds: &[u64; 7]) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        let slot = bounds.iter().position(|&b| value <= b).unwrap_or(7);
        if let Some(bucket) = self.buckets.get_mut(slot) {
            *bucket += 1;
        }
    }

    /// Mean sample value, rounded down (0 when empty). Integer on
    /// purpose: histograms feed the byte-stable JSON exports.
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.sum / self.count
        }
    }

    /// Folds another histogram (same bounds) into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += *theirs;
        }
    }
}

/// The registry: per-kind event counters, protocol accumulators, and the
/// [`HistId`] histograms. Derived entirely from [`TraceKind`] observations
/// so it can never disagree with the event stream.
#[derive(Clone, Debug, PartialEq)]
pub struct Metrics {
    counters: [u64; KIND_COUNT],
    resent_chunks: u64,
    committed_messages: u64,
    /// Per-reason fabric drop counts, indexed by [`DropKind::index`].
    drops: [u64; DropKind::COUNT],
    hists: [Histogram; HIST_COUNT],
    /// Open fault marks: node → activation time, consumed by the next
    /// `FtdWoken` on that node to derive detection latency.
    pending_fault: BTreeMap<u16, SimTime>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            counters: [0; KIND_COUNT],
            resent_chunks: 0,
            committed_messages: 0,
            drops: [0; DropKind::COUNT],
            hists: [EMPTY_HISTOGRAM; HIST_COUNT],
            pending_fault: BTreeMap::new(),
        }
    }
}

impl Metrics {
    /// Feeds one event into the registry.
    pub fn observe(&mut self, at: SimTime, kind: &TraceKind) {
        if let Some(c) = self.counters.get_mut(kind.kind_index()) {
            *c += 1;
        }
        match *kind {
            TraceKind::FaultInjected { node, .. } | TraceKind::ForcedHang { node } => {
                self.pending_fault.insert(node, at);
            }
            TraceKind::FtdWoken { node } => {
                if let Some(t0) = self.pending_fault.remove(&node) {
                    self.observe_hist(HistId::DetectionLatency, at.saturating_since(t0).as_nanos());
                }
            }
            TraceKind::RecoveryPhaseDone { phase, dur, .. } => {
                self.observe_hist(HistId::for_phase(phase), dur.as_nanos());
            }
            TraceKind::WatchdogRearmed { gap, .. } => {
                self.observe_hist(HistId::WatchdogGap, gap.as_nanos());
            }
            TraceKind::RetryScheduled { backoff, .. } => {
                self.observe_hist(HistId::RetryBackoff, backoff.as_nanos());
            }
            TraceKind::SendPosted { depth, .. } => {
                self.observe_hist(HistId::SendQueueDepth, u64::from(depth));
            }
            TraceKind::RecvProvided { depth, .. } => {
                self.observe_hist(HistId::RecvQueueDepth, u64::from(depth));
            }
            TraceKind::MailboxQueued { depth, .. } => {
                self.observe_hist(HistId::MailboxDepth, u64::from(depth));
            }
            TraceKind::Resent { chunks, .. } => {
                self.resent_chunks = self.resent_chunks.saturating_add(chunks);
            }
            TraceKind::CommitAdvanced { messages, .. } => {
                self.committed_messages = self.committed_messages.saturating_add(messages);
            }
            TraceKind::FabricDrop { reason, .. } => {
                if let Some(d) = self.drops.get_mut(reason.index()) {
                    *d += 1;
                }
            }
            _ => {}
        }
    }

    fn observe_hist(&mut self, id: HistId, value: u64) {
        let bounds = id.bounds();
        if let Some(h) = self.hists.get_mut(id.index()) {
            h.observe(value, bounds);
        }
    }

    /// Events observed for the named kind (a [`crate::trace::KIND_NAMES`]
    /// entry); 0 for unknown names.
    pub fn counter(&self, kind_name: &str) -> u64 {
        KIND_NAMES
            .iter()
            .position(|&n| n == kind_name)
            .and_then(|i| self.counters.get(i).copied())
            .unwrap_or(0)
    }

    /// Total events observed across all kinds.
    pub fn total_events(&self) -> u64 {
        self.counters.iter().sum()
    }

    /// Total Go-Back-N chunks retransmitted.
    pub fn resent_chunks(&self) -> u64 {
        self.resent_chunks
    }

    /// Total messages passed the delayed-ACK commit point.
    pub fn committed_messages(&self) -> u64 {
        self.committed_messages
    }

    /// Fabric drops observed for one reason.
    pub fn fabric_drops(&self, kind: DropKind) -> u64 {
        self.drops.get(kind.index()).copied().unwrap_or(0)
    }

    /// Fabric drops observed across all reasons.
    pub fn fabric_drops_total(&self) -> u64 {
        self.drops.iter().sum()
    }

    /// One histogram's current state.
    pub fn hist(&self, id: HistId) -> &Histogram {
        self.hists.get(id.index()).unwrap_or(&EMPTY_HISTOGRAM)
    }

    /// Folds another registry into this one (campaign aggregation).
    /// Open fault marks are bookkeeping, not measurements, and are not
    /// merged.
    pub fn merge(&mut self, other: &Metrics) {
        for (mine, theirs) in self.counters.iter_mut().zip(other.counters.iter()) {
            *mine += *theirs;
        }
        self.resent_chunks += other.resent_chunks;
        self.committed_messages += other.committed_messages;
        for (mine, theirs) in self.drops.iter_mut().zip(other.drops.iter()) {
            *mine += *theirs;
        }
        for (mine, theirs) in self.hists.iter_mut().zip(other.hists.iter()) {
            mine.merge(theirs);
        }
    }

    /// Renders the registry as a byte-stable JSON object, indented so it
    /// can embed inside larger documents. `indent` is the number of
    /// leading spaces on the object's own lines.
    pub fn to_json_indented(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let inner = " ".repeat(indent + 2);
        let deep = " ".repeat(indent + 4);
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("{inner}\"events_total\": {},\n", self.total_events()));
        out.push_str(&format!("{inner}\"resent_chunks\": {},\n", self.resent_chunks));
        out.push_str(&format!(
            "{inner}\"committed_messages\": {},\n",
            self.committed_messages
        ));
        out.push_str(&format!("{inner}\"counters\": {{\n"));
        let nonzero: Vec<(usize, u64)> = self
            .counters
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, c)| c > 0)
            .collect();
        for (row, (i, c)) in nonzero.iter().enumerate() {
            let comma = if row + 1 < nonzero.len() { "," } else { "" };
            let name = KIND_NAMES.get(*i).copied().unwrap_or("Unknown");
            out.push_str(&format!("{deep}\"{name}\": {c}{comma}\n"));
        }
        out.push_str(&format!("{inner}}},\n"));
        out.push_str(&format!("{inner}\"fabric_drops\": {{\n"));
        out.push_str(&format!("{deep}\"total\": {},\n", self.fabric_drops_total()));
        for (row, kind) in DropKind::ALL.iter().enumerate() {
            let comma = if row + 1 < DropKind::ALL.len() { "," } else { "" };
            out.push_str(&format!(
                "{deep}\"{}\": {}{comma}\n",
                kind.name(),
                self.fabric_drops(*kind)
            ));
        }
        out.push_str(&format!("{inner}}},\n"));
        out.push_str(&format!("{inner}\"histograms\": {{\n"));
        for (row, id) in HistId::ALL.iter().enumerate() {
            let h = self.hist(*id);
            let comma = if row + 1 < HistId::ALL.len() { "," } else { "" };
            let bounds = id
                .bounds()
                .iter()
                .map(|b| b.to_string())
                .collect::<Vec<_>>()
                .join(",");
            let buckets = h
                .buckets
                .iter()
                .map(|b| b.to_string())
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&format!(
                "{deep}\"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"bounds\": [{bounds}], \"buckets\": [{buckets}]}}{comma}\n",
                id.name(),
                h.count,
                h.sum,
                h.min,
                h.max
            ));
        }
        out.push_str(&format!("{inner}}}\n"));
        out.push_str(&format!("{pad}}}"));
        out
    }

    /// Renders the registry as a standalone JSON document.
    pub fn to_json(&self) -> String {
        let mut s = self.to_json_indented(0);
        s.push('\n');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_us(us)
    }

    #[test]
    fn samples_empty_is_all_none() {
        let s = Samples::new();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.0), None);
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.quantile(1.0), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), None);
    }

    #[test]
    fn samples_quantile_edge_cases() {
        let mut s = Samples::new();
        // Record out of order: quantiles must sort internally.
        for ns in [40u64, 10, 30, 20] {
            s.record_ns(ns);
        }
        let d = SimDuration::from_nanos;
        assert_eq!(s.quantile(0.0), Some(d(10)), "q=0 is the minimum");
        assert_eq!(s.quantile(-3.0), Some(d(10)), "q<0 clamps to minimum");
        assert_eq!(s.quantile(1.0), Some(d(40)), "q=1 is the maximum");
        assert_eq!(s.quantile(7.0), Some(d(40)), "q>1 clamps to maximum");
        assert_eq!(s.quantile(f64::NAN), Some(d(10)), "NaN degrades to min");
        // Nearest-rank interior points on n=4: rank = ceil(q*4).
        assert_eq!(s.quantile(0.25), Some(d(10)));
        assert_eq!(s.quantile(0.5), Some(d(20)));
        assert_eq!(s.quantile(0.75), Some(d(30)));
        assert_eq!(s.quantile(0.99), Some(d(40)));
        assert_eq!(s.min(), Some(d(10)));
        assert_eq!(s.max(), Some(d(40)));
        assert_eq!(s.mean(), Some(d(25)));
        assert_eq!(s.sum_ns(), 100);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn samples_single_value_every_quantile() {
        let mut s = Samples::new();
        s.record(SimDuration::from_us(7));
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(s.quantile(q), Some(SimDuration::from_us(7)), "q={q}");
        }
    }

    #[test]
    fn samples_merge_matches_sequential() {
        let mut a = Samples::new();
        let mut b = Samples::new();
        let mut both = Samples::new();
        for ns in [5u64, 100, 7] {
            a.record_ns(ns);
            both.record_ns(ns);
        }
        for ns in [1u64, 900] {
            b.record_ns(ns);
            both.record_ns(ns);
        }
        a.merge(&b);
        assert_eq!(a.len(), both.len());
        assert_eq!(a.quantile(0.5), both.quantile(0.5));
        assert_eq!(a.min(), both.min());
        assert_eq!(a.max(), both.max());
    }

    #[test]
    fn bytes_per_sec_rounds_down_and_handles_empty_window() {
        assert_eq!(bytes_per_sec(1_000_000, SimDuration::from_secs(1)), 1_000_000);
        assert_eq!(bytes_per_sec(1_500, SimDuration::from_ms(1)), 1_500_000);
        assert_eq!(bytes_per_sec(0, SimDuration::from_secs(1)), 0);
        assert_eq!(bytes_per_sec(123, SimDuration::ZERO), 0);
        // Large products must not overflow: 1 TB over 1000 s.
        assert_eq!(
            bytes_per_sec(1_000_000_000_000, SimDuration::from_secs(1_000)),
            1_000_000_000
        );
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::default();
        h.observe(500, &DURATION_BOUNDS); // ≤ 1µs bucket 0
        h.observe(5_000, &DURATION_BOUNDS); // bucket 1
        h.observe(2_000_000_000, &DURATION_BOUNDS); // overflow bucket 7
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 500 + 5_000 + 2_000_000_000);
        assert_eq!(h.min, 500);
        assert_eq!(h.max, 2_000_000_000);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[7], 1);
        assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
    }

    #[test]
    fn histogram_merge_matches_sequential_observation() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut both = Histogram::default();
        for v in [10u64, 2_000, 50_000] {
            a.observe(v, &DURATION_BOUNDS);
            both.observe(v, &DURATION_BOUNDS);
        }
        for v in [7u64, 900_000_000] {
            b.observe(v, &DURATION_BOUNDS);
            both.observe(v, &DURATION_BOUNDS);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn detection_latency_derived_from_fault_and_wake() {
        let mut m = Metrics::default();
        m.observe(t(100), &TraceKind::ForcedHang { node: 3 });
        m.observe(t(912), &TraceKind::FtdWoken { node: 3 });
        let h = m.hist(HistId::DetectionLatency);
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 812_000);
        // A second wake without a new fault records nothing.
        m.observe(t(2_000), &TraceKind::FtdWoken { node: 3 });
        assert_eq!(m.hist(HistId::DetectionLatency).count, 1);
    }

    #[test]
    fn phase_durations_land_in_their_histograms() {
        let mut m = Metrics::default();
        m.observe(
            t(10),
            &TraceKind::RecoveryPhaseDone {
                node: 0,
                phase: RecoveryPhase::ReloadMcp,
                dur: SimDuration::from_ms(600),
            },
        );
        assert_eq!(m.hist(HistId::PhaseReloadMcp).count, 1);
        assert_eq!(m.hist(HistId::PhaseReloadMcp).sum, 600_000_000);
        assert_eq!(m.hist(HistId::PhaseReset).count, 0);
    }

    #[test]
    fn accumulators_and_depths() {
        let mut m = Metrics::default();
        m.observe(t(1), &TraceKind::Resent { node: 0, chunks: 4 });
        m.observe(t(2), &TraceKind::Resent { node: 1, chunks: 3 });
        m.observe(t(3), &TraceKind::CommitAdvanced { node: 0, messages: 9 });
        m.observe(
            t(4),
            &TraceKind::SendPosted { node: 0, port: 2, token: 1, len: 64, depth: 3 },
        );
        assert_eq!(m.resent_chunks(), 7);
        assert_eq!(m.committed_messages(), 9);
        assert_eq!(m.hist(HistId::SendQueueDepth).count, 1);
        assert_eq!(m.hist(HistId::SendQueueDepth).max, 3);
        assert_eq!(m.counter("Resent"), 2);
        assert_eq!(m.total_events(), 4);
    }

    #[test]
    fn merge_matches_single_stream() {
        let mut a = Metrics::default();
        let mut b = Metrics::default();
        let mut both = Metrics::default();
        let early: Vec<TraceKind> = vec![
            TraceKind::ForcedHang { node: 0 },
            TraceKind::FtdWoken { node: 0 },
        ];
        let late: Vec<TraceKind> = vec![
            TraceKind::Resent { node: 1, chunks: 2 },
            TraceKind::WatchdogFired { node: 1 },
        ];
        for (i, k) in early.iter().enumerate() {
            a.observe(t(i as u64 * 100), k);
            both.observe(t(i as u64 * 100), k);
        }
        for (i, k) in late.iter().enumerate() {
            b.observe(t(1_000 + i as u64 * 100), k);
            both.observe(t(1_000 + i as u64 * 100), k);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn fabric_drops_counted_per_reason_and_exported() {
        let mut m = Metrics::default();
        m.observe(t(1), &TraceKind::FabricDrop { node: 0, reason: DropKind::BadLink });
        m.observe(t(2), &TraceKind::FabricDrop { node: 1, reason: DropKind::BadLink });
        m.observe(t(3), &TraceKind::FabricDrop { node: 0, reason: DropKind::LinkDown });
        assert_eq!(m.fabric_drops(DropKind::BadLink), 2);
        assert_eq!(m.fabric_drops(DropKind::LinkDown), 1);
        assert_eq!(m.fabric_drops(DropKind::TooManyHops), 0);
        assert_eq!(m.fabric_drops_total(), 3);
        let j = m.to_json();
        assert!(j.contains("\"fabric_drops\""));
        assert!(j.contains("\"bad_link\": 2"));
        assert!(j.contains("\"link_down\": 1"));
        assert!(j.contains("\"total\": 3"));
        // Merge folds the per-reason array.
        let mut other = Metrics::default();
        other.observe(t(9), &TraceKind::FabricDrop { node: 2, reason: DropKind::BadLink });
        m.merge(&other);
        assert_eq!(m.fabric_drops(DropKind::BadLink), 3);
    }

    #[test]
    fn json_is_deterministic_and_well_formed() {
        let mut m = Metrics::default();
        m.observe(t(5), &TraceKind::ForcedHang { node: 2 });
        m.observe(t(905), &TraceKind::FtdWoken { node: 2 });
        let j1 = m.to_json();
        let j2 = m.clone().to_json();
        assert_eq!(j1, j2);
        assert!(j1.contains("\"events_total\": 2"));
        assert!(j1.contains("\"ForcedHang\": 1"));
        assert!(j1.contains("\"detection_latency_ns\""));
        assert_eq!(j1.matches('{').count(), j1.matches('}').count());
    }
}
