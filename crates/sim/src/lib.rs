#![warn(missing_docs)]

//! Deterministic discrete-event simulation engine for the FTGM Myrinet
//! reproduction.
//!
//! Every other crate in this workspace models *state*; this crate models
//! *time*. It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time,
//! * [`Scheduler`] — a deterministic event queue with stable FIFO
//!   tie-breaking and cancellation,
//! * [`rng::SimRng`] — a seedable, reproducible pseudo-random generator
//!   (xoshiro256**), so that a campaign run with the same seed replays
//!   bit-for-bit,
//! * [`trace::Trace`] — a typed event trace used to regenerate the
//!   paper's Figure 9 recovery timeline and drive the chaos oracles,
//! * [`metrics::Metrics`] — deterministic counters and fixed-bucket
//!   histograms fed by every trace emission,
//! * [`export`] — JSON-lines and Chrome `trace_event` exporters.
//!
//! # Example
//!
//! ```
//! use ftgm_sim::{Scheduler, SimDuration};
//!
//! let mut sched: Scheduler<&str> = Scheduler::new();
//! sched.schedule_in(SimDuration::from_us(5), "world");
//! sched.schedule_in(SimDuration::from_us(1), "hello");
//! let (t1, e1) = sched.pop().unwrap();
//! let (t2, e2) = sched.pop().unwrap();
//! assert_eq!((e1, e2), ("hello", "world"));
//! assert!(t1 < t2);
//! ```

pub mod export;
pub mod metrics;
pub mod rng;
pub mod sched;
pub mod time;
pub mod trace;

pub use metrics::{HistId, Histogram, Metrics, Samples};
pub use rng::SimRng;
pub use sched::{EventId, HeapScheduler, Scheduler};
pub use time::{SimDuration, SimTime};
pub use trace::{
    DmaDir, DropKind, RecoveryPhase, Trace, TraceEvent, TraceKind, TraceMode, ZoneTrigger,
};
