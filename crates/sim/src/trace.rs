//! Typed simulation tracing.
//!
//! Recovery experiments (Figure 9, Table 3) and the chaos campaigns need a
//! queryable timeline of what the simulated cluster did: token lifecycle,
//! DMA traffic, watchdog activity, and every step of the FTD recovery
//! pipeline. [`Trace`] records [`TraceEvent`]s — a sim-time stamp plus a
//! structured [`TraceKind`] carrying node/port/seq/attempt fields — and
//! feeds every emission into an embedded [`Metrics`] registry, so counters
//! and histograms are consistent with the event stream by construction.
//!
//! Three recording modes keep the layer allocation-light:
//!
//! * **Disabled** — `emit` is a branch and a return; nothing is stored and
//!   no metric moves (the Table 2 overhead contract).
//! * **Milestones** (what [`Trace::enabled`] gives you) — recovery-class
//!   events are stored; high-frequency kinds (per-message token traffic,
//!   DMA, watchdog re-arms) update metrics only.
//! * **Full** — every event is stored.
//!
//! Exporters for JSON-lines and Chrome `trace_event` live in
//! [`crate::export`].

use crate::metrics::Metrics;
use crate::time::{SimDuration, SimTime};

/// The FTD reset-and-restore phases, as the trace layer names them.
///
/// `ftgm-core` owns the execution logic; this mirror exists so crates
/// below it (and exporters) can name phases without a dependency cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RecoveryPhase {
    /// Disable interrupts, unmap I/O, reset the card.
    Reset,
    /// Clear all of SRAM.
    ClearSram,
    /// PIO-write the MCP image over the EBUS.
    ReloadMcp,
    /// Restart the DMA engine, re-enable interrupts.
    RestartEngines,
    /// Re-register the host page hash table.
    RestorePageTable,
    /// Restore mapping/route tables into SRAM.
    RestoreRoutes,
}

impl RecoveryPhase {
    /// All phases in FTD execution order.
    pub const ORDER: [RecoveryPhase; 6] = [
        RecoveryPhase::Reset,
        RecoveryPhase::ClearSram,
        RecoveryPhase::ReloadMcp,
        RecoveryPhase::RestartEngines,
        RecoveryPhase::RestorePageTable,
        RecoveryPhase::RestoreRoutes,
    ];

    /// Position within [`RecoveryPhase::ORDER`].
    pub fn index(self) -> usize {
        match self {
            RecoveryPhase::Reset => 0,
            RecoveryPhase::ClearSram => 1,
            RecoveryPhase::ReloadMcp => 2,
            RecoveryPhase::RestartEngines => 3,
            RecoveryPhase::RestorePageTable => 4,
            RecoveryPhase::RestoreRoutes => 5,
        }
    }

    /// Human-readable label (also the Chrome-trace span name).
    pub fn label(self) -> &'static str {
        match self {
            RecoveryPhase::Reset => "card reset",
            RecoveryPhase::ClearSram => "clear SRAM",
            RecoveryPhase::ReloadMcp => "reload MCP",
            RecoveryPhase::RestartEngines => "restart DMA engines + IRQs",
            RecoveryPhase::RestorePageTable => "restore page hash table",
            RecoveryPhase::RestoreRoutes => "restore mapping/route tables",
        }
    }

    /// Stable snake-case name for JSON exports.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryPhase::Reset => "reset",
            RecoveryPhase::ClearSram => "clear_sram",
            RecoveryPhase::ReloadMcp => "reload_mcp",
            RecoveryPhase::RestartEngines => "restart_engines",
            RecoveryPhase::RestorePageTable => "restore_page_table",
            RecoveryPhase::RestoreRoutes => "restore_routes",
        }
    }
}

/// Why the fabric dropped an injected packet, as the trace layer names it.
///
/// `ftgm-net` owns the drop logic (`DropReason`); this mirror exists so
/// the metrics registry and exporters can count per-reason drops without
/// a dependency cycle, exactly like [`RecoveryPhase`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DropKind {
    /// The source node has no cabled NIC link.
    SourceNotCabled,
    /// The route addressed a switch port that does not exist.
    DeadPort,
    /// The route ran out of bytes before reaching a NIC.
    RouteExhausted,
    /// The route had bytes left when it reached a NIC.
    RouteNotConsumed,
    /// The packet exceeded the hop budget (routing loop guard).
    TooManyHops,
    /// A traversed link was administratively down.
    LinkDown,
    /// The cabling graph had no endpoint on the far side of a link.
    BadLink,
    /// A fault-injection window forced the drop.
    FaultDrop,
}

impl DropKind {
    /// Number of drop kinds (sizes the per-reason metrics array).
    pub const COUNT: usize = 8;

    /// All kinds, in [`DropKind::index`] order.
    pub const ALL: [DropKind; DropKind::COUNT] = [
        DropKind::SourceNotCabled,
        DropKind::DeadPort,
        DropKind::RouteExhausted,
        DropKind::RouteNotConsumed,
        DropKind::TooManyHops,
        DropKind::LinkDown,
        DropKind::BadLink,
        DropKind::FaultDrop,
    ];

    /// Position within [`DropKind::ALL`].
    pub fn index(self) -> usize {
        match self {
            DropKind::SourceNotCabled => 0,
            DropKind::DeadPort => 1,
            DropKind::RouteExhausted => 2,
            DropKind::RouteNotConsumed => 3,
            DropKind::TooManyHops => 4,
            DropKind::LinkDown => 5,
            DropKind::BadLink => 6,
            DropKind::FaultDrop => 7,
        }
    }

    /// Stable snake-case name for JSON exports.
    pub fn name(self) -> &'static str {
        match self {
            DropKind::SourceNotCabled => "source_not_cabled",
            DropKind::DeadPort => "dead_port",
            DropKind::RouteExhausted => "route_exhausted",
            DropKind::RouteNotConsumed => "route_not_consumed",
            DropKind::TooManyHops => "too_many_hops",
            DropKind::LinkDown => "link_down",
            DropKind::BadLink => "bad_link",
            DropKind::FaultDrop => "fault_drop",
        }
    }
}

/// What made the zone coordinator escalate to a fabric-wide reroute.
///
/// `ftgm-core` owns the coordinator; this mirror exists for the same
/// layering reason as [`RecoveryPhase`] and [`DropKind`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ZoneTrigger {
    /// The set of down links changed since the last reroute.
    LinkChange,
    /// A peer's recovery ran longer than the stall bound.
    Stall,
    /// Concurrent recoveries crossed the cascade threshold.
    Cascade,
}

impl ZoneTrigger {
    /// Stable snake-case name for JSON exports.
    pub fn name(self) -> &'static str {
        match self {
            ZoneTrigger::LinkChange => "link_change",
            ZoneTrigger::Stall => "stall",
            ZoneTrigger::Cascade => "cascade",
        }
    }
}

/// Direction of a host DMA, as the trace layer names it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DmaDir {
    /// Host memory → NIC SRAM (send staging).
    HostToSram,
    /// NIC SRAM → host memory (delivery, completion records).
    SramToHost,
}

impl DmaDir {
    /// Stable name for JSON exports.
    pub fn name(self) -> &'static str {
        match self {
            DmaDir::HostToSram => "host_to_sram",
            DmaDir::SramToHost => "sram_to_host",
        }
    }
}

/// What happened. Every variant carries the identifying fields the paper's
/// measurements and the chaos oracles need; the sim-time stamp lives on
/// the enclosing [`TraceEvent`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceKind {
    // --- send/recv token lifecycle (high-frequency) ---------------------
    /// `gm_send` consumed a send token and posted a descriptor.
    SendPosted {
        /// Sending node.
        node: u16,
        /// Sending port.
        port: u8,
        /// The send token id.
        token: u64,
        /// Message length in bytes.
        len: u32,
        /// Send tokens in flight after this post (queue depth).
        depth: u32,
    },
    /// A send completed; its token returned to the process.
    SendCompleted {
        /// Sending node.
        node: u16,
        /// Sending port.
        port: u8,
        /// The send token id.
        token: u64,
    },
    /// A send failed permanently (GM `SendError` semantics).
    SendFailed {
        /// Sending node.
        node: u16,
        /// Sending port.
        port: u8,
        /// The send token id.
        token: u64,
    },
    /// `gm_provide_receive_buffer` handed a buffer to the LANai.
    RecvProvided {
        /// Receiving node.
        node: u16,
        /// Receiving port.
        port: u8,
        /// The receive token id.
        token: u64,
        /// Receive tokens in flight after this provide (queue depth).
        depth: u32,
    },
    /// A message landed in a provided buffer and reached `gm_receive`.
    MessageReceived {
        /// Receiving node.
        node: u16,
        /// Receiving port.
        port: u8,
        /// Sending node.
        src_node: u16,
        /// Sending port.
        src_port: u8,
        /// Message length in bytes.
        len: u32,
    },

    // --- DMA and firmware protocol (high-frequency) ---------------------
    /// The MCP queued a host DMA (send staging or delivery).
    DmaStaged {
        /// Node whose PCI bus carries the transfer.
        node: u16,
        /// Transfer length in bytes.
        len: u32,
    },
    /// A host DMA completed and its bytes moved.
    DmaDone {
        /// Node whose PCI bus carried the transfer.
        node: u16,
        /// Transfer direction.
        dir: DmaDir,
        /// Transfer length in bytes.
        len: u32,
    },
    /// The delayed-ACK commit point advanced (messages became final).
    CommitAdvanced {
        /// Receiving node.
        node: u16,
        /// Messages committed since the last advance.
        messages: u64,
    },
    /// Go-Back-N retransmitted chunks.
    Resent {
        /// Sending node.
        node: u16,
        /// Chunks resent since the last report.
        chunks: u64,
    },

    // --- watchdog -------------------------------------------------------
    /// IT1 was (re)armed by recovery code (boot/false-alarm paths).
    WatchdogArmed {
        /// Node whose IT1 was armed.
        node: u16,
        /// Interval in half-microsecond ticks.
        ticks: u32,
    },
    /// `L_timer()` ran and pushed IT1 forward (high-frequency).
    WatchdogRearmed {
        /// Node whose IT1 was re-armed.
        node: u16,
        /// Gap since the previous re-arm.
        gap: SimDuration,
    },
    /// IT1 expired: the FATAL interrupt reached the driver.
    WatchdogFired {
        /// Node whose watchdog expired.
        node: u16,
    },

    // --- fault activations ----------------------------------------------
    /// A campaign flipped one SRAM bit.
    FaultInjected {
        /// Faulted node.
        node: u16,
        /// Bit offset within the target region.
        bit: u64,
    },
    /// An experiment force-hung the network processor.
    ForcedHang {
        /// Faulted node.
        node: u16,
    },
    /// A fabric link went administratively down.
    LinkDown {
        /// Link index in the topology.
        link: usize,
    },
    /// A fabric link came back up.
    LinkUp {
        /// Link index in the topology.
        link: usize,
    },
    /// A fabric-wide loss/corruption window opened.
    NoiseOpened,
    /// The loss/corruption window closed.
    NoiseClosed,
    /// Every cabled link of one switch went down at once.
    SwitchKilled {
        /// The dead switch's index in the topology.
        switch: u16,
        /// Links taken down (those that were still up).
        links: u32,
    },

    // --- fabric drops (high-frequency) ----------------------------------
    /// The fabric dropped an injected packet.
    FabricDrop {
        /// The injecting (sending) node.
        node: u16,
        /// Why the packet was dropped.
        reason: DropKind,
    },

    // --- mapper-driven reroute ------------------------------------------
    /// A BFS re-discovery over the residual fabric started.
    RerouteStarted {
        /// Links currently down (avoided by the mapper).
        down_links: u32,
    },
    /// Fresh source-route tables were installed into the live fabric.
    RoutesInstalled {
        /// Nodes whose tables were (re)written.
        nodes: u32,
        /// Nodes whose tables actually changed.
        changed: u32,
    },

    // --- zone coordinator (DIR-net-style backup agent) ------------------
    /// A backup agent saw a peer's recovery exceed the stall bound.
    PeerStallDetected {
        /// The observing (healthy) node.
        observer: u16,
        /// The stalled peer.
        peer: u16,
    },
    /// The coordinator escalated to a fabric-wide zone reroute.
    ZoneRerouteTriggered {
        /// The observing (healthy) node.
        observer: u16,
        /// What tripped the escalation.
        trigger: ZoneTrigger,
    },
    /// A reroute left a live peer with no routes; it was escalated dead.
    PeerIsolated {
        /// The observing (healthy) node.
        observer: u16,
        /// The unreachable peer.
        peer: u16,
    },

    // --- FTD recovery pipeline ------------------------------------------
    /// A FATAL arrived on an escalated (dead) interface and was ignored.
    FtdFatalIgnoredDead {
        /// The dead interface's node.
        node: u16,
    },
    /// A FATAL arrived mid-recovery; a re-verification was queued.
    FtdReverifyQueued {
        /// Recovering node.
        node: u16,
    },
    /// The driver woke the FTD (detection complete).
    FtdWoken {
        /// Node whose FTD was woken.
        node: u16,
    },
    /// The FTD is running (post context-switch).
    FtdRunning {
        /// Node whose FTD runs.
        node: u16,
    },
    /// The magic-word probe was written (or the write failed).
    ProbeWritten {
        /// Probed node.
        node: u16,
        /// Whether the SRAM write succeeded.
        ok: bool,
    },
    /// The probe was cleared by a live MCP: false alarm.
    ProbeFalseAlarm {
        /// Probed node.
        node: u16,
    },
    /// The magic word survived: hang confirmed.
    ProbeConfirmedHang {
        /// Hung node.
        node: u16,
    },
    /// A queued FATAL re-entered the probe loop before sleeping.
    ProbeRequeued {
        /// Probed node.
        node: u16,
    },
    /// A reset/reload attempt started.
    RecoveryAttempt {
        /// Recovering node.
        node: u16,
        /// 1-based attempt number within the episode.
        attempt: u32,
        /// The policy's attempt budget.
        max_attempts: u32,
    },
    /// One timed recovery phase completed. The span covers
    /// `[at - dur, at]`.
    RecoveryPhaseDone {
        /// Recovering node.
        node: u16,
        /// Which phase.
        phase: RecoveryPhase,
        /// The phase's charged duration.
        dur: SimDuration,
    },
    /// Post-reload verification probe started.
    ReloadVerifying {
        /// Recovering node.
        node: u16,
    },
    /// The reloaded MCP cleared the probe: verified alive.
    ReloadVerified {
        /// Recovered node.
        node: u16,
    },
    /// Verification failed; the next attempt was scheduled after backoff.
    RetryScheduled {
        /// Recovering node.
        node: u16,
        /// The attempt that just failed (1-based).
        attempt: u32,
        /// Backoff before the next attempt.
        backoff: SimDuration,
    },
    /// `FAULT_DETECTED` was posted into a port's receive queue.
    FaultDetectedPosted {
        /// Recovered node.
        node: u16,
        /// The open port.
        port: u8,
    },
    /// The attempt budget ran out: interface escalated to dead.
    Escalated {
        /// The dead interface's node.
        node: u16,
        /// Reload attempts spent before giving up.
        attempts: u32,
    },
    /// Escalation failed outstanding sends back to applications.
    OutstandingSendsFailed {
        /// The dead interface's node.
        node: u16,
        /// Sends failed back.
        count: u64,
    },
    /// The FTD went back to sleep.
    FtdSleeping {
        /// Node whose FTD sleeps.
        node: u16,
    },

    // --- per-process recovery -------------------------------------------
    /// `FAULT_DETECTED` entered `gm_unknown()` on a port.
    GmUnknownEntered {
        /// Recovering node.
        node: u16,
        /// The port.
        port: u8,
    },
    /// A stale per-port handler stepped aside for a newer recovery.
    StaleHandlerSuperseded {
        /// Recovering node.
        node: u16,
        /// The port.
        port: u8,
    },
    /// A port finished its handler and reopened.
    PortReopened {
        /// Recovered node.
        node: u16,
        /// The reopened port.
        port: u8,
        /// Backed-up sends replayed.
        sends_replayed: u32,
        /// Backed-up receive buffers re-provided.
        recvs_replayed: u32,
        /// Per-destination sequence streams restored.
        streams_restored: u32,
    },

    // --- middleware (MPI tier) ------------------------------------------
    /// The MPI middleware buffered an unmatched envelope in a rank's
    /// mailbox; `depth` is the buffered count after the store.
    MailboxQueued {
        /// The rank's host interface.
        node: u16,
        /// The rank's GM port.
        port: u8,
        /// Mailbox depth after the delivery.
        depth: u32,
    },
}

/// Number of [`TraceKind`] variants (sizes the metrics counter array).
pub const KIND_COUNT: usize = 46;

/// Stable kind names, indexed by [`TraceKind::kind_index`].
pub const KIND_NAMES: [&str; KIND_COUNT] = [
    "SendPosted",
    "SendCompleted",
    "SendFailed",
    "RecvProvided",
    "MessageReceived",
    "DmaStaged",
    "DmaDone",
    "CommitAdvanced",
    "Resent",
    "WatchdogArmed",
    "WatchdogRearmed",
    "WatchdogFired",
    "FaultInjected",
    "ForcedHang",
    "LinkDown",
    "LinkUp",
    "NoiseOpened",
    "NoiseClosed",
    "FtdFatalIgnoredDead",
    "FtdReverifyQueued",
    "FtdWoken",
    "FtdRunning",
    "ProbeWritten",
    "ProbeFalseAlarm",
    "ProbeConfirmedHang",
    "ProbeRequeued",
    "RecoveryAttempt",
    "RecoveryPhaseDone",
    "ReloadVerifying",
    "ReloadVerified",
    "RetryScheduled",
    "FaultDetectedPosted",
    "Escalated",
    "OutstandingSendsFailed",
    "FtdSleeping",
    "GmUnknownEntered",
    "StaleHandlerSuperseded",
    "PortReopened",
    "SwitchKilled",
    "FabricDrop",
    "RerouteStarted",
    "RoutesInstalled",
    "PeerStallDetected",
    "ZoneRerouteTriggered",
    "PeerIsolated",
    "MailboxQueued",
];

impl TraceKind {
    /// Dense index into [`KIND_NAMES`] / the metrics counter array.
    pub fn kind_index(&self) -> usize {
        match self {
            TraceKind::SendPosted { .. } => 0,
            TraceKind::SendCompleted { .. } => 1,
            TraceKind::SendFailed { .. } => 2,
            TraceKind::RecvProvided { .. } => 3,
            TraceKind::MessageReceived { .. } => 4,
            TraceKind::DmaStaged { .. } => 5,
            TraceKind::DmaDone { .. } => 6,
            TraceKind::CommitAdvanced { .. } => 7,
            TraceKind::Resent { .. } => 8,
            TraceKind::WatchdogArmed { .. } => 9,
            TraceKind::WatchdogRearmed { .. } => 10,
            TraceKind::WatchdogFired { .. } => 11,
            TraceKind::FaultInjected { .. } => 12,
            TraceKind::ForcedHang { .. } => 13,
            TraceKind::LinkDown { .. } => 14,
            TraceKind::LinkUp { .. } => 15,
            TraceKind::NoiseOpened => 16,
            TraceKind::NoiseClosed => 17,
            TraceKind::FtdFatalIgnoredDead { .. } => 18,
            TraceKind::FtdReverifyQueued { .. } => 19,
            TraceKind::FtdWoken { .. } => 20,
            TraceKind::FtdRunning { .. } => 21,
            TraceKind::ProbeWritten { .. } => 22,
            TraceKind::ProbeFalseAlarm { .. } => 23,
            TraceKind::ProbeConfirmedHang { .. } => 24,
            TraceKind::ProbeRequeued { .. } => 25,
            TraceKind::RecoveryAttempt { .. } => 26,
            TraceKind::RecoveryPhaseDone { .. } => 27,
            TraceKind::ReloadVerifying { .. } => 28,
            TraceKind::ReloadVerified { .. } => 29,
            TraceKind::RetryScheduled { .. } => 30,
            TraceKind::FaultDetectedPosted { .. } => 31,
            TraceKind::Escalated { .. } => 32,
            TraceKind::OutstandingSendsFailed { .. } => 33,
            TraceKind::FtdSleeping { .. } => 34,
            TraceKind::GmUnknownEntered { .. } => 35,
            TraceKind::StaleHandlerSuperseded { .. } => 36,
            TraceKind::PortReopened { .. } => 37,
            TraceKind::SwitchKilled { .. } => 38,
            TraceKind::FabricDrop { .. } => 39,
            TraceKind::RerouteStarted { .. } => 40,
            TraceKind::RoutesInstalled { .. } => 41,
            TraceKind::PeerStallDetected { .. } => 42,
            TraceKind::ZoneRerouteTriggered { .. } => 43,
            TraceKind::PeerIsolated { .. } => 44,
            TraceKind::MailboxQueued { .. } => 45,
        }
    }

    /// Stable kind name for JSON exports.
    pub fn name(&self) -> &'static str {
        KIND_NAMES.get(self.kind_index()).copied().unwrap_or("Unknown")
    }

    /// Short category tag (`"wdog"`, `"ftd"`, `"fault"`, `"recov"`,
    /// `"gm"`, `"dma"`, `"mcp"`, `"net"`, `"coord"`, `"mpi"`), mirroring
    /// the render column.
    pub fn category(&self) -> &'static str {
        match self {
            TraceKind::MailboxQueued { .. } => "mpi",
            TraceKind::SendPosted { .. }
            | TraceKind::SendCompleted { .. }
            | TraceKind::SendFailed { .. }
            | TraceKind::RecvProvided { .. }
            | TraceKind::MessageReceived { .. } => "gm",
            TraceKind::DmaStaged { .. } | TraceKind::DmaDone { .. } => "dma",
            TraceKind::CommitAdvanced { .. } | TraceKind::Resent { .. } => "mcp",
            TraceKind::WatchdogArmed { .. }
            | TraceKind::WatchdogRearmed { .. }
            | TraceKind::WatchdogFired { .. } => "wdog",
            TraceKind::FaultInjected { .. }
            | TraceKind::ForcedHang { .. }
            | TraceKind::LinkDown { .. }
            | TraceKind::LinkUp { .. }
            | TraceKind::NoiseOpened
            | TraceKind::NoiseClosed
            | TraceKind::SwitchKilled { .. } => "fault",
            TraceKind::FabricDrop { .. }
            | TraceKind::RerouteStarted { .. }
            | TraceKind::RoutesInstalled { .. } => "net",
            TraceKind::PeerStallDetected { .. }
            | TraceKind::ZoneRerouteTriggered { .. }
            | TraceKind::PeerIsolated { .. } => "coord",
            TraceKind::GmUnknownEntered { .. }
            | TraceKind::StaleHandlerSuperseded { .. }
            | TraceKind::PortReopened { .. } => "recov",
            _ => "ftd",
        }
    }

    /// The node the event concerns, if any (Chrome-trace `pid`).
    pub fn node(&self) -> Option<u16> {
        match *self {
            TraceKind::SendPosted { node, .. }
            | TraceKind::SendCompleted { node, .. }
            | TraceKind::SendFailed { node, .. }
            | TraceKind::RecvProvided { node, .. }
            | TraceKind::MessageReceived { node, .. }
            | TraceKind::DmaStaged { node, .. }
            | TraceKind::DmaDone { node, .. }
            | TraceKind::CommitAdvanced { node, .. }
            | TraceKind::Resent { node, .. }
            | TraceKind::WatchdogArmed { node, .. }
            | TraceKind::WatchdogRearmed { node, .. }
            | TraceKind::WatchdogFired { node }
            | TraceKind::FaultInjected { node, .. }
            | TraceKind::ForcedHang { node }
            | TraceKind::FtdFatalIgnoredDead { node }
            | TraceKind::FtdReverifyQueued { node }
            | TraceKind::FtdWoken { node }
            | TraceKind::FtdRunning { node }
            | TraceKind::ProbeWritten { node, .. }
            | TraceKind::ProbeFalseAlarm { node }
            | TraceKind::ProbeConfirmedHang { node }
            | TraceKind::ProbeRequeued { node }
            | TraceKind::RecoveryAttempt { node, .. }
            | TraceKind::RecoveryPhaseDone { node, .. }
            | TraceKind::ReloadVerifying { node }
            | TraceKind::ReloadVerified { node }
            | TraceKind::RetryScheduled { node, .. }
            | TraceKind::FaultDetectedPosted { node, .. }
            | TraceKind::Escalated { node, .. }
            | TraceKind::OutstandingSendsFailed { node, .. }
            | TraceKind::FtdSleeping { node }
            | TraceKind::GmUnknownEntered { node, .. }
            | TraceKind::StaleHandlerSuperseded { node, .. }
            | TraceKind::PortReopened { node, .. }
            | TraceKind::MailboxQueued { node, .. } => Some(node),
            TraceKind::FabricDrop { node, .. } => Some(node),
            TraceKind::PeerStallDetected { observer, .. }
            | TraceKind::ZoneRerouteTriggered { observer, .. }
            | TraceKind::PeerIsolated { observer, .. } => Some(observer),
            TraceKind::LinkDown { .. }
            | TraceKind::LinkUp { .. }
            | TraceKind::NoiseOpened
            | TraceKind::NoiseClosed
            | TraceKind::SwitchKilled { .. }
            | TraceKind::RerouteStarted { .. }
            | TraceKind::RoutesInstalled { .. } => None,
        }
    }

    /// High-frequency kinds update metrics but are only *stored* in
    /// [`TraceMode::Full`] — per-message traffic would otherwise dominate
    /// both memory and the rendered timeline.
    pub fn is_high_frequency(&self) -> bool {
        matches!(
            self,
            TraceKind::SendPosted { .. }
                | TraceKind::SendCompleted { .. }
                | TraceKind::RecvProvided { .. }
                | TraceKind::MessageReceived { .. }
                | TraceKind::DmaStaged { .. }
                | TraceKind::DmaDone { .. }
                | TraceKind::CommitAdvanced { .. }
                | TraceKind::Resent { .. }
                | TraceKind::WatchdogRearmed { .. }
                | TraceKind::FabricDrop { .. }
                | TraceKind::MailboxQueued { .. }
        )
    }

    /// Human-readable description (the render line's message column).
    pub fn message(&self) -> String {
        match *self {
            TraceKind::SendPosted { node, port, token, len, depth } => format!(
                "node{node} port {port}: send posted (token {token}, {len}B, depth {depth})"
            ),
            TraceKind::SendCompleted { node, port, token } => {
                format!("node{node} port {port}: send completed (token {token})")
            }
            TraceKind::SendFailed { node, port, token } => {
                format!("node{node} port {port}: send FAILED (token {token})")
            }
            TraceKind::RecvProvided { node, port, token, depth } => format!(
                "node{node} port {port}: receive buffer provided (token {token}, depth {depth})"
            ),
            TraceKind::MessageReceived { node, port, src_node, src_port, len } => format!(
                "node{node} port {port}: received {len}B from node{src_node} port {src_port}"
            ),
            TraceKind::DmaStaged { node, len } => {
                format!("node{node}: host DMA staged ({len}B)")
            }
            TraceKind::DmaDone { node, dir, len } => {
                format!("node{node}: host DMA done ({}, {len}B)", dir.name())
            }
            TraceKind::CommitAdvanced { node, messages } => {
                format!("node{node}: delayed-ACK commit advanced (+{messages} messages)")
            }
            TraceKind::Resent { node, chunks } => {
                format!("node{node}: retransmitted {chunks} chunks")
            }
            TraceKind::WatchdogArmed { node, ticks } => {
                format!("node{node}: IT1 watchdog armed ({ticks} ticks)")
            }
            TraceKind::WatchdogRearmed { node, gap } => {
                format!("node{node}: IT1 re-armed by L_timer (gap {gap})")
            }
            TraceKind::WatchdogFired { node } => {
                format!("node{node}: IT1 expired — FATAL interrupt at driver")
            }
            TraceKind::FaultInjected { node, bit } => {
                format!("node{node}: fault injected (bit {bit})")
            }
            TraceKind::ForcedHang { node } => format!("node{node}: forced hang"),
            TraceKind::LinkDown { link } => format!("link {link} down"),
            TraceKind::LinkUp { link } => format!("link {link} back up"),
            TraceKind::NoiseOpened => "fabric noise window opens".to_string(),
            TraceKind::NoiseClosed => "fabric noise window closes".to_string(),
            TraceKind::FtdFatalIgnoredDead { node } => {
                format!("node{node}: FATAL on dead interface ignored")
            }
            TraceKind::FtdReverifyQueued { node } => {
                format!("node{node}: FATAL during recovery — re-verification queued")
            }
            TraceKind::FtdWoken { node } => format!("node{node}: driver wakes FTD"),
            TraceKind::FtdRunning { node } => format!("node{node}: FTD running"),
            TraceKind::ProbeWritten { node, ok: true } => {
                format!("node{node}: magic-word probe written")
            }
            TraceKind::ProbeWritten { node, ok: false } => {
                format!("node{node}: magic-word probe write FAILED (treating as hung)")
            }
            TraceKind::ProbeFalseAlarm { node } => {
                format!("node{node}: probe cleared — false alarm")
            }
            TraceKind::ProbeConfirmedHang { node } => {
                format!("node{node}: magic word intact — hang confirmed")
            }
            TraceKind::ProbeRequeued { node } => {
                format!("node{node}: queued FATAL — probing again")
            }
            TraceKind::RecoveryAttempt { node, attempt, max_attempts } => {
                format!("node{node}: reset/reload attempt {attempt}/{max_attempts}")
            }
            TraceKind::RecoveryPhaseDone { node, phase, .. } => {
                format!("node{node}: {} done", phase.label())
            }
            TraceKind::ReloadVerifying { node } => {
                format!("node{node}: verifying reloaded MCP")
            }
            TraceKind::ReloadVerified { node } => {
                format!("node{node}: reloaded MCP verified alive")
            }
            TraceKind::RetryScheduled { node, attempt, backoff } => format!(
                "node{node}: reload verification FAILED (attempt {attempt}) — retry in {backoff}"
            ),
            TraceKind::FaultDetectedPosted { node, port } => {
                format!("node{node}: FAULT_DETECTED posted port {port}")
            }
            TraceKind::Escalated { node, attempts } => {
                format!("node{node}: escalating — interface DEAD after {attempts} failed reloads")
            }
            TraceKind::OutstandingSendsFailed { node, count } => {
                format!("node{node}: {count} outstanding sends failed back to applications")
            }
            TraceKind::FtdSleeping { node } => format!("node{node}: FTD sleeping again"),
            TraceKind::GmUnknownEntered { node, port } => {
                format!("node{node} port {port}: FAULT_DETECTED entered gm_unknown()")
            }
            TraceKind::StaleHandlerSuperseded { node, port } => {
                format!("node{node} port {port}: stale handler superseded by newer recovery")
            }
            TraceKind::PortReopened { node, port, sends_replayed, recvs_replayed, streams_restored } => {
                format!(
                    "node{node} port {port}: port reopened ({sends_replayed} sends, \
                     {recvs_replayed} recvs, {streams_restored} streams restored)"
                )
            }
            TraceKind::SwitchKilled { switch, links } => {
                format!("switch {switch} dead — {links} links down")
            }
            TraceKind::FabricDrop { node, reason } => {
                format!("node{node}: fabric dropped packet ({})", reason.name())
            }
            TraceKind::RerouteStarted { down_links } => {
                format!("reroute: BFS re-discovery avoiding {down_links} down links")
            }
            TraceKind::RoutesInstalled { nodes, changed } => {
                format!("reroute: route tables installed on {nodes} nodes ({changed} changed)")
            }
            TraceKind::PeerStallDetected { observer, peer } => {
                format!("node{observer}: peer node{peer} recovery exceeds stall bound")
            }
            TraceKind::ZoneRerouteTriggered { observer, trigger } => {
                format!("node{observer}: zone reroute escalated ({})", trigger.name())
            }
            TraceKind::PeerIsolated { observer, peer } => {
                format!("node{observer}: peer node{peer} unreachable after reroute — escalating dead")
            }
            TraceKind::MailboxQueued { node, port, depth } => {
                format!("node{node}.{port}: mpi mailbox buffered an envelope (depth {depth})")
            }
        }
    }

    /// Appends this kind's payload as JSON key/value pairs (leading comma
    /// included per pair) — shared by the JSON-lines and Chrome exporters.
    pub fn write_json_fields(&self, out: &mut String) {
        use std::fmt::Write as _;
        // Writing to a String never fails; errors are impossible here and
        // the write! results are () on the String impl path.
        let w = out;
        match *self {
            TraceKind::SendPosted { node, port, token, len, depth } => {
                let _ = write!(w, ",\"node\":{node},\"port\":{port},\"token\":{token},\"len\":{len},\"depth\":{depth}");
            }
            TraceKind::SendCompleted { node, port, token }
            | TraceKind::SendFailed { node, port, token } => {
                let _ = write!(w, ",\"node\":{node},\"port\":{port},\"token\":{token}");
            }
            TraceKind::RecvProvided { node, port, token, depth } => {
                let _ = write!(w, ",\"node\":{node},\"port\":{port},\"token\":{token},\"depth\":{depth}");
            }
            TraceKind::MessageReceived { node, port, src_node, src_port, len } => {
                let _ = write!(w, ",\"node\":{node},\"port\":{port},\"src_node\":{src_node},\"src_port\":{src_port},\"len\":{len}");
            }
            TraceKind::DmaStaged { node, len } => {
                let _ = write!(w, ",\"node\":{node},\"len\":{len}");
            }
            TraceKind::DmaDone { node, dir, len } => {
                let _ = write!(w, ",\"node\":{node},\"dir\":\"{}\",\"len\":{len}", dir.name());
            }
            TraceKind::CommitAdvanced { node, messages } => {
                let _ = write!(w, ",\"node\":{node},\"messages\":{messages}");
            }
            TraceKind::Resent { node, chunks } => {
                let _ = write!(w, ",\"node\":{node},\"chunks\":{chunks}");
            }
            TraceKind::WatchdogArmed { node, ticks } => {
                let _ = write!(w, ",\"node\":{node},\"ticks\":{ticks}");
            }
            TraceKind::WatchdogRearmed { node, gap } => {
                let _ = write!(w, ",\"node\":{node},\"gap_ns\":{}", gap.as_nanos());
            }
            TraceKind::WatchdogFired { node }
            | TraceKind::ForcedHang { node }
            | TraceKind::FtdFatalIgnoredDead { node }
            | TraceKind::FtdReverifyQueued { node }
            | TraceKind::FtdWoken { node }
            | TraceKind::FtdRunning { node }
            | TraceKind::ProbeFalseAlarm { node }
            | TraceKind::ProbeConfirmedHang { node }
            | TraceKind::ProbeRequeued { node }
            | TraceKind::ReloadVerifying { node }
            | TraceKind::ReloadVerified { node }
            | TraceKind::FtdSleeping { node } => {
                let _ = write!(w, ",\"node\":{node}");
            }
            TraceKind::FaultInjected { node, bit } => {
                let _ = write!(w, ",\"node\":{node},\"bit\":{bit}");
            }
            TraceKind::LinkDown { link } | TraceKind::LinkUp { link } => {
                let _ = write!(w, ",\"link\":{link}");
            }
            TraceKind::NoiseOpened | TraceKind::NoiseClosed => {}
            TraceKind::ProbeWritten { node, ok } => {
                let _ = write!(w, ",\"node\":{node},\"ok\":{ok}");
            }
            TraceKind::RecoveryAttempt { node, attempt, max_attempts } => {
                let _ = write!(w, ",\"node\":{node},\"attempt\":{attempt},\"max_attempts\":{max_attempts}");
            }
            TraceKind::RecoveryPhaseDone { node, phase, dur } => {
                let _ = write!(w, ",\"node\":{node},\"phase\":\"{}\",\"dur_ns\":{}", phase.name(), dur.as_nanos());
            }
            TraceKind::RetryScheduled { node, attempt, backoff } => {
                let _ = write!(w, ",\"node\":{node},\"attempt\":{attempt},\"backoff_ns\":{}", backoff.as_nanos());
            }
            TraceKind::FaultDetectedPosted { node, port }
            | TraceKind::GmUnknownEntered { node, port }
            | TraceKind::StaleHandlerSuperseded { node, port } => {
                let _ = write!(w, ",\"node\":{node},\"port\":{port}");
            }
            TraceKind::Escalated { node, attempts } => {
                let _ = write!(w, ",\"node\":{node},\"attempts\":{attempts}");
            }
            TraceKind::OutstandingSendsFailed { node, count } => {
                let _ = write!(w, ",\"node\":{node},\"count\":{count}");
            }
            TraceKind::PortReopened { node, port, sends_replayed, recvs_replayed, streams_restored } => {
                let _ = write!(
                    w,
                    ",\"node\":{node},\"port\":{port},\"sends_replayed\":{sends_replayed},\"recvs_replayed\":{recvs_replayed},\"streams_restored\":{streams_restored}"
                );
            }
            TraceKind::SwitchKilled { switch, links } => {
                let _ = write!(w, ",\"switch\":{switch},\"links\":{links}");
            }
            TraceKind::FabricDrop { node, reason } => {
                let _ = write!(w, ",\"node\":{node},\"reason\":\"{}\"", reason.name());
            }
            TraceKind::RerouteStarted { down_links } => {
                let _ = write!(w, ",\"down_links\":{down_links}");
            }
            TraceKind::RoutesInstalled { nodes, changed } => {
                let _ = write!(w, ",\"nodes\":{nodes},\"changed\":{changed}");
            }
            TraceKind::PeerStallDetected { observer, peer }
            | TraceKind::PeerIsolated { observer, peer } => {
                let _ = write!(w, ",\"observer\":{observer},\"peer\":{peer}");
            }
            TraceKind::ZoneRerouteTriggered { observer, trigger } => {
                let _ = write!(w, ",\"observer\":{observer},\"trigger\":\"{}\"", trigger.name());
            }
            TraceKind::MailboxQueued { node, port, depth } => {
                let _ = write!(w, ",\"node\":{node},\"port\":{port},\"depth\":{depth}");
            }
        }
    }
}

/// One recorded event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEvent {
    /// When it happened.
    pub at: SimTime,
    /// What happened.
    pub kind: TraceKind,
}

/// What the trace stores (metrics always update unless `Disabled`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// Record nothing, count nothing.
    #[default]
    Disabled,
    /// Store milestone events; high-frequency kinds feed metrics only.
    Milestones,
    /// Store every event.
    Full,
}

/// An append-only typed event log with an embedded metrics registry.
///
/// Disabled traces drop events without allocating, so production-path
/// code can emit unconditionally.
///
/// # Example
///
/// ```
/// use ftgm_sim::{SimTime, Trace, TraceKind};
///
/// let mut trace = Trace::enabled();
/// trace.emit(SimTime::from_nanos(800_000), TraceKind::WatchdogFired { node: 0 });
/// assert_eq!(trace.events().len(), 1);
/// assert!(trace.render().contains("IT1 expired"));
/// assert_eq!(trace.metrics().counter("WatchdogFired"), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Trace {
    mode: TraceMode,
    events: Vec<TraceEvent>,
    metrics: Metrics,
}

impl Trace {
    /// Creates a disabled trace (records nothing).
    pub fn disabled() -> Self {
        Trace::default()
    }

    /// Creates a milestone-level trace (the usual experiment setting).
    pub fn enabled() -> Self {
        Trace {
            mode: TraceMode::Milestones,
            ..Trace::default()
        }
    }

    /// Creates a trace that stores every event, including high-frequency
    /// token/DMA traffic.
    pub fn full() -> Self {
        Trace {
            mode: TraceMode::Full,
            ..Trace::default()
        }
    }

    /// Whether events are being recorded at all.
    pub fn is_enabled(&self) -> bool {
        self.mode != TraceMode::Disabled
    }

    /// The current recording mode.
    pub fn mode(&self) -> TraceMode {
        self.mode
    }

    /// Turns recording on (milestone level) or off without clearing
    /// history. A `Full` trace stays `Full` when re-enabled.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.mode = match (enabled, self.mode) {
            (false, _) => TraceMode::Disabled,
            (true, TraceMode::Full) => TraceMode::Full,
            (true, _) => TraceMode::Milestones,
        };
    }

    /// Records one typed event (and updates metrics) if enabled.
    pub fn emit(&mut self, at: SimTime, kind: TraceKind) {
        match self.mode {
            TraceMode::Disabled => {}
            TraceMode::Milestones => {
                self.metrics.observe(at, &kind);
                if !kind.is_high_frequency() {
                    self.events.push(TraceEvent { at, kind });
                }
            }
            TraceMode::Full => {
                self.metrics.observe(at, &kind);
                self.events.push(TraceEvent { at, kind });
            }
        }
    }

    /// All stored events in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The metrics registry fed by every emission (including
    /// high-frequency kinds not stored at milestone level).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Stored events matching a category tag.
    pub fn by_category<'a>(&'a self, category: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events
            .iter()
            .filter(move |e| e.kind.category() == category)
    }

    /// First stored event whose kind matches the predicate.
    pub fn first_where(&self, pred: impl Fn(&TraceKind) -> bool) -> Option<&TraceEvent> {
        self.events.iter().find(|e| pred(&e.kind))
    }

    /// Last stored event whose kind matches the predicate.
    pub fn last_where(&self, pred: impl Fn(&TraceKind) -> bool) -> Option<&TraceEvent> {
        self.events.iter().rev().find(|e| pred(&e.kind))
    }

    /// Number of stored events whose kind matches the predicate.
    pub fn count_where(&self, pred: impl Fn(&TraceKind) -> bool) -> usize {
        self.events.iter().filter(|e| pred(&e.kind)).count()
    }

    /// Clears the recorded history and resets the metrics.
    pub fn clear(&mut self) {
        self.events.clear();
        self.metrics = Metrics::default();
    }

    /// Renders the milestone timeline as aligned text, one event per
    /// line, with absolute time and delta since the previous milestone.
    /// High-frequency events are omitted even from `Full` traces so the
    /// Figure 9 timeline stays readable.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut prev: Option<SimTime> = None;
        for ev in self.events.iter().filter(|e| !e.kind.is_high_frequency()) {
            let delta = prev.map(|p| ev.at.saturating_since(p));
            let delta_str = match delta {
                Some(d) => format!("+{:>12.3}us", d.as_micros_f64()),
                None => format!("{:>13}", ""),
            };
            out.push_str(&format!(
                "{:>14.3}us {} [{:<5}] {}\n",
                ev.at.as_micros_f64(),
                delta_str,
                ev.kind.category(),
                ev.kind.message()
            ));
            prev = Some(ev.at);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_us(us)
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut tr = Trace::disabled();
        tr.emit(SimTime::ZERO, TraceKind::ForcedHang { node: 0 });
        assert!(tr.events().is_empty());
        assert_eq!(tr.metrics().total_events(), 0);
    }

    #[test]
    fn enabled_trace_records_and_counts() {
        let mut tr = Trace::enabled();
        tr.emit(t(5), TraceKind::ForcedHang { node: 1 });
        tr.emit(t(9), TraceKind::FtdWoken { node: 1 });
        assert_eq!(tr.events().len(), 2);
        assert_eq!(tr.metrics().counter("ForcedHang"), 1);
        assert_eq!(tr.metrics().counter("FtdWoken"), 1);
        assert!(matches!(tr.events()[1].kind, TraceKind::FtdWoken { node: 1 }));
    }

    #[test]
    fn milestone_mode_counts_but_does_not_store_high_frequency() {
        let mut tr = Trace::enabled();
        tr.emit(
            t(1),
            TraceKind::SendPosted { node: 0, port: 0, token: 7, len: 256, depth: 1 },
        );
        tr.emit(t(2), TraceKind::WatchdogFired { node: 0 });
        assert_eq!(tr.events().len(), 1, "high-frequency kind not stored");
        assert_eq!(tr.metrics().counter("SendPosted"), 1, "but still counted");
    }

    #[test]
    fn full_mode_stores_everything() {
        let mut tr = Trace::full();
        tr.emit(
            t(1),
            TraceKind::SendPosted { node: 0, port: 0, token: 7, len: 256, depth: 1 },
        );
        assert_eq!(tr.events().len(), 1);
    }

    #[test]
    fn by_category_filters() {
        let mut tr = Trace::enabled();
        tr.emit(t(0), TraceKind::WatchdogFired { node: 0 });
        tr.emit(t(0), TraceKind::ForcedHang { node: 0 });
        tr.emit(t(0), TraceKind::WatchdogFired { node: 1 });
        assert_eq!(tr.by_category("wdog").count(), 2);
        assert_eq!(tr.by_category("fault").count(), 1);
    }

    #[test]
    fn typed_queries_locate_events() {
        let mut tr = Trace::enabled();
        tr.emit(t(1), TraceKind::ForcedHang { node: 0 });
        tr.emit(t(2), TraceKind::FtdWoken { node: 0 });
        tr.emit(t(3), TraceKind::ForcedHang { node: 0 });
        let first = tr
            .first_where(|k| matches!(k, TraceKind::ForcedHang { .. }))
            .expect("first");
        let last = tr
            .last_where(|k| matches!(k, TraceKind::ForcedHang { .. }))
            .expect("last");
        assert_eq!(first.at, t(1));
        assert_eq!(last.at, t(3));
        assert_eq!(tr.count_where(|k| matches!(k, TraceKind::ForcedHang { .. })), 2);
        assert!(tr.first_where(|k| matches!(k, TraceKind::Escalated { .. })).is_none());
    }

    #[test]
    fn render_contains_deltas_and_messages() {
        let mut tr = Trace::enabled();
        tr.emit(t(1), TraceKind::WatchdogFired { node: 1 });
        tr.emit(
            SimTime::from_nanos(3_500),
            TraceKind::FtdWoken { node: 1 },
        );
        let rendered = tr.render();
        assert!(rendered.contains("IT1 expired"));
        assert!(rendered.contains("driver wakes FTD"));
        assert!(rendered.contains("+"));
        assert!(rendered.contains("2.500us"), "rendered: {rendered}");
    }

    #[test]
    fn set_enabled_toggles_and_clear_resets_metrics() {
        let mut tr = Trace::disabled();
        tr.set_enabled(true);
        assert!(tr.is_enabled());
        tr.emit(SimTime::ZERO, TraceKind::ForcedHang { node: 0 });
        tr.set_enabled(false);
        tr.emit(SimTime::ZERO, TraceKind::ForcedHang { node: 0 });
        assert_eq!(tr.events().len(), 1);
        assert_eq!(tr.metrics().counter("ForcedHang"), 1);
        tr.clear();
        assert!(tr.events().is_empty());
        assert_eq!(tr.metrics().total_events(), 0);
    }

    #[test]
    fn kind_names_align_with_kind_index() {
        let samples: Vec<(TraceKind, &str)> = vec![
            (TraceKind::SendPosted { node: 0, port: 0, token: 0, len: 0, depth: 0 }, "SendPosted"),
            (TraceKind::Resent { node: 0, chunks: 1 }, "Resent"),
            (TraceKind::WatchdogFired { node: 0 }, "WatchdogFired"),
            (TraceKind::NoiseClosed, "NoiseClosed"),
            (TraceKind::RecoveryPhaseDone { node: 0, phase: RecoveryPhase::Reset, dur: SimDuration::ZERO }, "RecoveryPhaseDone"),
            (
                TraceKind::PortReopened { node: 0, port: 0, sends_replayed: 0, recvs_replayed: 0, streams_restored: 0 },
                "PortReopened",
            ),
            (TraceKind::SwitchKilled { switch: 0, links: 3 }, "SwitchKilled"),
            (TraceKind::FabricDrop { node: 0, reason: DropKind::BadLink }, "FabricDrop"),
            (TraceKind::RerouteStarted { down_links: 1 }, "RerouteStarted"),
            (TraceKind::RoutesInstalled { nodes: 8, changed: 2 }, "RoutesInstalled"),
            (TraceKind::PeerStallDetected { observer: 0, peer: 1 }, "PeerStallDetected"),
            (
                TraceKind::ZoneRerouteTriggered { observer: 0, trigger: ZoneTrigger::Stall },
                "ZoneRerouteTriggered",
            ),
            (TraceKind::PeerIsolated { observer: 0, peer: 1 }, "PeerIsolated"),
        ];
        for (kind, name) in samples {
            assert_eq!(kind.name(), name);
            assert_eq!(KIND_NAMES[kind.kind_index()], name);
        }
    }

    #[test]
    fn recovery_phase_order_is_dense() {
        for (i, p) in RecoveryPhase::ORDER.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn drop_kind_order_is_dense_and_names_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for (i, k) in DropKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert!(seen.insert(k.name()), "duplicate name {}", k.name());
        }
    }

    #[test]
    fn fabric_drops_are_high_frequency_but_counted() {
        let mut tr = Trace::enabled();
        tr.emit(t(1), TraceKind::FabricDrop { node: 3, reason: DropKind::LinkDown });
        assert!(tr.events().is_empty(), "drops are not stored at milestone level");
        assert_eq!(tr.metrics().counter("FabricDrop"), 1);
    }
}
