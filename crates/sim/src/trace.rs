//! Simulation tracing.
//!
//! Recovery experiments (Figure 9, Table 3) need a timeline of named
//! milestones: fault injected, watchdog fired, FTD woken, MCP reloaded,
//! per-port handler done. [`Trace`] records `(time, category, message)`
//! triples cheaply and renders them as an aligned timeline.

use std::fmt;

use crate::time::SimTime;

/// One recorded milestone.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the milestone occurred.
    pub at: SimTime,
    /// Short category tag, e.g. `"wdog"`, `"ftd"`, `"mcp"`.
    pub category: &'static str,
    /// Human-readable description.
    pub message: String,
}

/// An append-only milestone log.
///
/// Disabled traces drop events without allocating, so production-path code
/// can trace unconditionally.
///
/// # Example
///
/// ```
/// use ftgm_sim::{SimTime, Trace};
///
/// let mut trace = Trace::enabled();
/// trace.record(SimTime::from_nanos(800_000), "wdog", "IT1 expired");
/// assert_eq!(trace.events().len(), 1);
/// assert!(trace.render().contains("IT1 expired"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates a disabled trace (records nothing).
    pub fn disabled() -> Self {
        Trace {
            enabled: false,
            events: Vec::new(),
        }
    }

    /// Creates an enabled trace.
    pub fn enabled() -> Self {
        Trace {
            enabled: true,
            events: Vec::new(),
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turns recording on or off without clearing history.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Records a milestone if the trace is enabled.
    pub fn record(&mut self, at: SimTime, category: &'static str, message: impl Into<String>) {
        if self.enabled {
            self.events.push(TraceEvent {
                at,
                category,
                message: message.into(),
            });
        }
    }

    /// All recorded milestones in insertion order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Milestones matching a category tag.
    pub fn by_category<'a>(&'a self, category: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.category == category)
    }

    /// First milestone whose message contains `needle`.
    pub fn find(&self, needle: &str) -> Option<&TraceEvent> {
        self.events.iter().find(|e| e.message.contains(needle))
    }

    /// Clears the recorded history.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Renders the timeline as aligned text, one milestone per line, with
    /// absolute time and delta since the previous milestone.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut prev: Option<SimTime> = None;
        for ev in &self.events {
            let delta = prev.map(|p| ev.at.saturating_since(p));
            let delta_str = match delta {
                Some(d) => format!("+{:>12.3}us", d.as_micros_f64()),
                None => format!("{:>13}", ""),
            };
            fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    "{:>14.3}us {} [{:<5}] {}\n",
                    ev.at.as_micros_f64(),
                    delta_str,
                    ev.category,
                    ev.message
                ),
            )
            .expect("writing to String cannot fail");
            prev = Some(ev.at);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(SimTime::ZERO, "x", "hello");
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_trace_records() {
        let mut t = Trace::enabled();
        t.record(SimTime::from_nanos(5), "x", "hello");
        t.record(SimTime::from_nanos(9), "y", "world");
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[1].message, "world");
    }

    #[test]
    fn by_category_filters() {
        let mut t = Trace::enabled();
        t.record(SimTime::ZERO, "a", "1");
        t.record(SimTime::ZERO, "b", "2");
        t.record(SimTime::ZERO, "a", "3");
        assert_eq!(t.by_category("a").count(), 2);
    }

    #[test]
    fn find_locates_substring() {
        let mut t = Trace::enabled();
        t.record(SimTime::ZERO, "a", "watchdog fired");
        assert!(t.find("dog").is_some());
        assert!(t.find("cat").is_none());
    }

    #[test]
    fn render_contains_deltas() {
        let mut t = Trace::enabled();
        t.record(SimTime::from_nanos(1_000), "a", "first");
        t.record(SimTime::from_nanos(3_500), "b", "second");
        let rendered = t.render();
        assert!(rendered.contains("first"));
        assert!(rendered.contains("+"));
        assert!(rendered.contains("2.500us"), "rendered: {rendered}");
    }

    #[test]
    fn set_enabled_toggles() {
        let mut t = Trace::disabled();
        t.set_enabled(true);
        assert!(t.is_enabled());
        t.record(SimTime::ZERO, "a", "x");
        t.set_enabled(false);
        t.record(SimTime::ZERO, "a", "y");
        assert_eq!(t.events().len(), 1);
        t.clear();
        assert!(t.events().is_empty());
    }
}
