//! Virtual time: nanosecond-resolution instants and durations.
//!
//! All timing constants in the workspace (PCI setup cost, LANai cycle time,
//! watchdog intervals, …) are expressed as [`SimDuration`]s; the scheduler
//! hands out [`SimTime`] instants.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant in simulated time, in nanoseconds since simulation start.
///
/// `SimTime` is a transparent newtype over `u64` ([C-NEWTYPE]): it cannot be
/// confused with a duration, and arithmetic against [`SimDuration`] is
/// explicit.
///
/// # Example
///
/// ```
/// use ftgm_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_us(3);
/// assert_eq!(t.as_nanos(), 3_000);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_nanos(3_000));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The farthest representable instant; useful as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the time as (possibly fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the time as (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}ns", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow: rhs is later than self"),
        )
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime - SimDuration underflow"),
        )
    }
}

/// A span of simulated time, in nanoseconds.
///
/// # Example
///
/// ```
/// use ftgm_sim::SimDuration;
///
/// let d = SimDuration::from_us(2) + SimDuration::from_nanos(500);
/// assert_eq!(d.as_nanos(), 2_500);
/// assert_eq!(d * 4, SimDuration::from_us(10));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional microseconds, rounding to the
    /// nearest nanosecond. Negative values clamp to zero.
    pub fn from_us_f64(us: f64) -> Self {
        SimDuration((us * 1_000.0).round().max(0.0) as u64)
    }

    /// Duration taken to move `bytes` at `bytes_per_sec`, rounded up to a
    /// whole nanosecond. Zero-rate transfers are a programming error.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is zero.
    pub fn for_bytes(bytes: u64, bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "transfer rate must be positive");
        // ns = bytes * 1e9 / rate, computed in u128 to avoid overflow.
        let ns = (bytes as u128 * 1_000_000_000u128).div_ceil(bytes_per_sec as u128);
        SimDuration(ns.min(u64::MAX as u128) as u64)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration as (possibly fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the duration as (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_duration_roundtrip() {
        let t = SimTime::from_nanos(1_500);
        assert_eq!(t.as_nanos(), 1_500);
        assert_eq!(t.as_micros_f64(), 1.5);
    }

    #[test]
    fn add_duration_to_time() {
        let t = SimTime::ZERO + SimDuration::from_us(10) + SimDuration::from_nanos(1);
        assert_eq!(t.as_nanos(), 10_001);
    }

    #[test]
    fn subtract_times_gives_duration() {
        let a = SimTime::from_nanos(5_000);
        let b = SimTime::from_nanos(2_000);
        assert_eq!(a - b, SimDuration::from_nanos(3_000));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtract_later_time_panics() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        let _ = a - b;
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_nanos(1));
    }

    #[test]
    fn duration_constructors_scale() {
        assert_eq!(SimDuration::from_us(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_ms(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn for_bytes_rounds_up() {
        // 1 byte at 1 GB/s takes exactly 1ns.
        assert_eq!(
            SimDuration::for_bytes(1, 1_000_000_000).as_nanos(),
            1
        );
        // 1 byte at 3 GB/s takes ceil(1/3 ns) = 1ns.
        assert_eq!(
            SimDuration::for_bytes(1, 3_000_000_000).as_nanos(),
            1
        );
        // 4KB at 250 MB/s = 16384ns.
        assert_eq!(
            SimDuration::for_bytes(4096, 250_000_000).as_nanos(),
            16_384
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn for_bytes_zero_rate_panics() {
        let _ = SimDuration::for_bytes(1, 0);
    }

    #[test]
    fn from_us_f64_rounds() {
        assert_eq!(SimDuration::from_us_f64(0.3).as_nanos(), 300);
        assert_eq!(SimDuration::from_us_f64(-1.0).as_nanos(), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_nanos(1_500)), "1.500us");
        assert_eq!(format!("{}", SimDuration::from_nanos(250)), "0.250us");
        assert_eq!(format!("{:?}", SimDuration::from_nanos(250)), "250ns");
    }

    #[test]
    fn mul_div_duration() {
        let d = SimDuration::from_us(3);
        assert_eq!(d * 2, SimDuration::from_us(6));
        assert_eq!(d / 3, SimDuration::from_us(1));
    }
}
