//! Reproducible pseudo-random number generation.
//!
//! Fault-injection campaigns must replay bit-for-bit from a seed (the paper
//! reports distributions over 1000 runs; we report the same and every run is
//! addressable as `seed = campaign_seed + run_index`). We implement
//! xoshiro256** seeded through SplitMix64 — the reference construction — so
//! the generator has no dependency on platform or crate-version behaviour.

/// A deterministic xoshiro256** generator.
///
/// # Example
///
/// ```
/// use ftgm_sim::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The state is expanded with SplitMix64, which guarantees a non-zero
    /// state for every seed (an all-zero state would be a fixed point).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SimRng {
            s: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        // Destructuring keeps the scramble free of indexing (the RNG runs
        // inside fault injection, i.e. on the recovery path).
        let [s0, s1, s2, s3] = &mut self.s;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = *s1 << 17;
        *s2 ^= *s0;
        *s3 ^= *s1;
        *s1 ^= *s2;
        *s0 ^= *s3;
        *s2 ^= t;
        *s3 = s3.rotate_left(45);
        result
    }

    /// Returns the next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniformly distributed value in `[0, bound)` using Lemire's
    /// multiply-shift rejection method (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= (bound.wrapping_neg() % bound) {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range_between(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range_between requires lo < hi");
        lo + self.gen_range(hi - lo)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // Compare against a 53-bit uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }

    /// Returns a uniform f64 in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose requires a non-empty slice");
        &items[self.gen_range(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        // Overwhelmingly likely to differ on the first draw.
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = SimRng::new(0);
        let x = r.next_u64();
        let y = r.next_u64();
        assert_ne!(x, y);
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            assert!(r.gen_range(17) < 17);
        }
    }

    #[test]
    fn gen_range_covers_small_bounds() {
        let mut r = SimRng::new(11);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[r.gen_range(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gen_range_zero_panics() {
        SimRng::new(0).gen_range(0);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SimRng::new(5);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut r = SimRng::new(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(21);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_returns_member() {
        let mut r = SimRng::new(33);
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(r.choose(&items)));
        }
    }

    #[test]
    fn gen_range_between_bounds() {
        let mut r = SimRng::new(55);
        for _ in 0..1_000 {
            let x = r.gen_range_between(5, 8);
            assert!((5..8).contains(&x));
        }
    }
}
