//! Trace exporters: JSON-lines and Chrome `trace_event` format.
//!
//! Both exporters are pure functions of the recorded trace, format all
//! numbers with integer math (no floating-point printing), and emit
//! fields in a fixed order — the determinism regression test compares
//! their output byte-for-byte across runs and thread counts.
//!
//! The Chrome export loads directly in `chrome://tracing` or Perfetto:
//! recovery phases become duration (`"X"`) spans per node, everything
//! else an instant (`"i"`) event.

use std::fmt::Write as _;

use crate::trace::{Trace, TraceKind};

/// Formats nanoseconds as a decimal microsecond literal (`1234.567`)
/// using integer math only.
fn micros_literal(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Exports all stored events as JSON-lines: one object per event with
/// `at_ns`, `kind`, `cat`, then the kind's payload fields.
pub fn to_jsonl(trace: &Trace) -> String {
    let mut out = String::new();
    for ev in trace.events() {
        let _ = write!(
            out,
            "{{\"at_ns\":{},\"kind\":\"{}\",\"cat\":\"{}\"",
            ev.at.as_nanos(),
            ev.kind.name(),
            ev.kind.category()
        );
        ev.kind.write_json_fields(&mut out);
        out.push_str("}\n");
    }
    out
}

/// Exports all stored events in Chrome `trace_event` JSON format
/// (`{"traceEvents": [...]}`). Node ids map to `pid` so each simulated
/// node gets its own track.
pub fn to_chrome_trace(trace: &Trace) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    for ev in trace.events() {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let pid = ev.kind.node().map(u64::from).unwrap_or(0);
        match ev.kind {
            TraceKind::RecoveryPhaseDone { phase, dur, .. } => {
                let start_ns = ev.at.as_nanos().saturating_sub(dur.as_nanos());
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":0,\"args\":{{\"kind\":\"{}\"",
                    phase.label(),
                    ev.kind.category(),
                    micros_literal(start_ns),
                    micros_literal(dur.as_nanos()),
                    ev.kind.name()
                );
            }
            _ => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{pid},\"tid\":0,\"args\":{{\"kind\":\"{}\"",
                    ev.kind.name(),
                    ev.kind.category(),
                    micros_literal(ev.at.as_nanos()),
                    ev.kind.name()
                );
            }
        }
        ev.kind.write_json_fields(&mut out);
        out.push_str("}}");
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{SimDuration, SimTime};
    use crate::trace::RecoveryPhase;

    fn sample_trace() -> Trace {
        let mut tr = Trace::enabled();
        tr.emit(
            SimTime::from_nanos(800_123),
            TraceKind::WatchdogFired { node: 1 },
        );
        tr.emit(
            SimTime::from_nanos(650_000_000),
            TraceKind::RecoveryPhaseDone {
                node: 1,
                phase: RecoveryPhase::ReloadMcp,
                dur: SimDuration::from_ms(600),
            },
        );
        tr
    }

    #[test]
    fn jsonl_one_line_per_event_with_fields() {
        let j = to_jsonl(&sample_trace());
        let lines: Vec<&str> = j.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"at_ns\":800123,\"kind\":\"WatchdogFired\",\"cat\":\"wdog\",\"node\":1}"
        );
        assert!(lines[1].contains("\"phase\":\"reload_mcp\""));
        assert!(lines[1].contains("\"dur_ns\":600000000"));
    }

    #[test]
    fn chrome_trace_has_span_and_instant() {
        let j = to_chrome_trace(&sample_trace());
        assert!(j.starts_with("{\"traceEvents\":["));
        assert!(j.trim_end().ends_with("]}"));
        assert!(j.contains("\"ph\":\"i\""));
        assert!(j.contains("\"ph\":\"X\""));
        // The reload span starts at 650ms − 600ms = 50ms = 50000 µs.
        assert!(j.contains("\"ts\":50000.000,\"dur\":600000.000"), "{j}");
        assert!(j.contains("\"ts\":800.123"));
        assert!(j.contains("\"pid\":1"));
    }

    #[test]
    fn exports_are_deterministic() {
        let a = sample_trace();
        let b = sample_trace();
        assert_eq!(to_jsonl(&a), to_jsonl(&b));
        assert_eq!(to_chrome_trace(&a), to_chrome_trace(&b));
    }

    #[test]
    fn micros_literal_pads_fraction() {
        assert_eq!(micros_literal(0), "0.000");
        assert_eq!(micros_literal(1_234_567), "1234.567");
        assert_eq!(micros_literal(5), "0.005");
    }
}
