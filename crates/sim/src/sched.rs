//! The deterministic event scheduler.
//!
//! A binary min-heap ordered by `(time, sequence)`: two events scheduled for
//! the same instant pop in the order they were scheduled, which makes whole
//! simulations replayable. Cancellation is supported through [`EventId`]
//! tombstones, which timer re-arming (the watchdog path) relies on.

use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

use crate::time::{SimDuration, SimTime};

/// Identifies a scheduled event so it can be cancelled before it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so the BinaryHeap (a max-heap) pops the earliest entry.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// The scheduler owns the simulation clock: [`Scheduler::pop`] advances
/// `now()` to the popped event's timestamp. Scheduling in the past is a
/// programming error and panics, because it would make causality ambiguous.
///
/// # Example
///
/// ```
/// use ftgm_sim::{Scheduler, SimDuration};
///
/// let mut s: Scheduler<u32> = Scheduler::new();
/// let id = s.schedule_in(SimDuration::from_us(1), 1);
/// s.schedule_in(SimDuration::from_us(2), 2);
/// s.cancel(id);
/// assert_eq!(s.pop().map(|(_, e)| e), Some(2));
/// assert!(s.pop().is_none());
/// ```
pub struct Scheduler<E> {
    now: SimTime,
    next_event_seq: u64,
    heap: BinaryHeap<Entry<E>>,
    /// Sequence numbers of scheduled-but-not-yet-fired, not-cancelled
    /// events. A `BTreeSet` keeps the scheduler free of hash-iteration
    /// order even though `live` is only probed for membership.
    live: BTreeSet<u64>,
    popped: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            next_event_seq: 0,
            heap: BinaryHeap::new(),
            live: BTreeSet::new(),
            popped: 0,
        }
    }

    /// The current simulation time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events delivered so far.
    pub fn events_delivered(&self) -> u64 {
        self.popped
    }

    /// Schedules `event` to fire at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than `now()`.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.next_event_seq;
        self.next_event_seq += 1;
        self.live.insert(seq);
        self.heap.push(Entry { at, seq, event });
        EventId(seq)
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventId {
        self.schedule_at(self.now + delay, event)
    }

    /// Cancels a scheduled event. Returns `true` if the event had not yet
    /// fired or been cancelled. Cancelling an already-fired event is a no-op.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.live.remove(&id.0)
    }

    /// Removes and returns the next live event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if !self.live.remove(&entry.seq) {
                continue;
            }
            debug_assert!(entry.at >= self.now);
            self.now = entry.at;
            self.popped += 1;
            return Some((entry.at, entry.event));
        }
        None
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if !self.live.contains(&entry.seq) {
                self.heap.pop();
                continue;
            }
            return Some(entry.at);
        }
        None
    }

    /// `true` when no live events remain.
    ///
    /// Takes `&mut self` because checking collects cancelled-entry
    /// tombstones off the heap top.
    #[allow(clippy::len_without_is_empty, clippy::wrong_self_convention)]
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }

    /// Number of live (pending, not cancelled) events.
    #[allow(clippy::len_without_is_empty)] // is_empty exists, but needs &mut
    pub fn len(&self) -> usize {
        self.live.len()
    }
}

impl<E> std::fmt::Debug for Scheduler<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("live", &self.live.len())
            .field("delivered", &self.popped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.schedule_at(SimTime::from_nanos(30), "c");
        s.schedule_at(SimTime::from_nanos(10), "a");
        s.schedule_at(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut s: Scheduler<u32> = Scheduler::new();
        for i in 0..10 {
            s.schedule_at(SimTime::from_nanos(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.schedule_at(SimTime::from_nanos(42), ());
        assert_eq!(s.now(), SimTime::ZERO);
        s.pop();
        assert_eq!(s.now(), SimTime::from_nanos(42));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_in_the_past_panics() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.schedule_at(SimTime::from_nanos(10), ());
        s.pop();
        s.schedule_at(SimTime::from_nanos(5), ());
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut s: Scheduler<u32> = Scheduler::new();
        let id = s.schedule_at(SimTime::from_nanos(1), 1);
        s.schedule_at(SimTime::from_nanos(2), 2);
        assert!(s.cancel(id));
        assert!(!s.cancel(id), "double cancel reports false");
        assert_eq!(s.pop().map(|(_, e)| e), Some(2));
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut s: Scheduler<u32> = Scheduler::new();
        let id = s.schedule_at(SimTime::from_nanos(1), 1);
        assert_eq!(s.pop().map(|(_, e)| e), Some(1));
        assert!(!s.cancel(id));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut s: Scheduler<u32> = Scheduler::new();
        let id = s.schedule_at(SimTime::from_nanos(1), 1);
        s.schedule_at(SimTime::from_nanos(7), 2);
        s.cancel(id);
        assert_eq!(s.peek_time(), Some(SimTime::from_nanos(7)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule_at(SimTime::from_nanos(100), 1);
        s.pop();
        s.schedule_in(SimDuration::from_nanos(50), 2);
        assert_eq!(s.pop(), Some((SimTime::from_nanos(150), 2)));
    }

    #[test]
    fn empty_and_counters() {
        let mut s: Scheduler<u32> = Scheduler::new();
        assert!(s.is_empty());
        s.schedule_in(SimDuration::ZERO, 9);
        assert!(!s.is_empty());
        s.pop();
        assert!(s.is_empty());
        assert_eq!(s.events_delivered(), 1);
    }
}
