//! The deterministic event scheduler.
//!
//! [`Scheduler`] is a calendar queue (Brown, CACM 1988): events hash into
//! time-windowed buckets of width `2^shift` nanoseconds, each bucket kept
//! sorted so its earliest entry is at the back. Popping scans bucket
//! windows forward from the clock; the first entry whose timestamp falls
//! inside its bucket's current window is the global minimum. Bucket count
//! and width adapt to the live population, so `schedule`/`pop`/`cancel`
//! are amortized O(1) instead of the O(log n) heap plus O(log n)
//! tombstone-set bookkeeping the previous implementation paid per event.
//!
//! Ordering is by `(time, sequence)`: two events scheduled for the same
//! instant pop in the order they were scheduled, which makes whole
//! simulations replayable. Cancellation is O(1) through a slot map with
//! generation counters ([`EventId`] packs a slot index and a generation);
//! timer re-arming (the watchdog path) relies on it.
//!
//! [`HeapScheduler`] preserves the original binary-heap implementation
//! verbatim. It is kept as the *differential-test oracle*: the
//! `sched_equivalence` suite drives randomized push/pop/cancel workloads
//! through both implementations and asserts identical pop order, and the
//! `scale` bench uses it as the performance baseline.

use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

use crate::time::{SimDuration, SimTime};

/// Identifies a scheduled event so it can be cancelled before it fires.
///
/// For the calendar queue this packs `(slot, generation)`; for the heap
/// oracle it wraps the event sequence number. Either way the value is
/// opaque and only meaningful to the scheduler that issued it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EventId(u64);

impl EventId {
    fn pack(slot: u32, gen: u32) -> EventId {
        EventId((u64::from(gen) << 32) | u64::from(slot))
    }

    fn unpack(self) -> (u32, u32) {
        (self.0 as u32, (self.0 >> 32) as u32)
    }
}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    slot: u32,
    gen: u32,
    event: E,
}

/// Smallest bucket count the calendar shrinks down to.
const MIN_BUCKETS: usize = 4;
/// Largest bucket count the calendar grows up to (2^20 buckets).
const MAX_BUCKETS: usize = 1 << 20;
/// Largest bucket-width exponent (widths beyond 2^62 ns are pointless).
const MAX_SHIFT: u32 = 62;
/// Initial bucket-width exponent: 2^10 ns ≈ 1 µs, the ballpark of NIC
/// event spacing before the first adaptive resize.
const INITIAL_SHIFT: u32 = 10;

/// A deterministic discrete-event queue (calendar queue).
///
/// The scheduler owns the simulation clock: [`Scheduler::pop`] advances
/// `now()` to the popped event's timestamp. Scheduling in the past is a
/// programming error and panics, because it would make causality ambiguous.
///
/// # Example
///
/// ```
/// use ftgm_sim::{Scheduler, SimDuration};
///
/// let mut s: Scheduler<u32> = Scheduler::new();
/// let id = s.schedule_in(SimDuration::from_us(1), 1);
/// s.schedule_in(SimDuration::from_us(2), 2);
/// s.cancel(id);
/// assert_eq!(s.pop().map(|(_, e)| e), Some(2));
/// assert!(s.pop().is_none());
/// ```
pub struct Scheduler<E> {
    now: SimTime,
    next_event_seq: u64,
    /// Buckets sorted descending by `(at, seq)`: the bucket's earliest
    /// entry is at the back, so popping it is O(1).
    buckets: Vec<Vec<Entry<E>>>,
    /// `buckets.len() - 1`; the bucket count is always a power of two.
    mask: usize,
    /// Bucket width is `2^shift` nanoseconds.
    shift: u32,
    /// Generation counter per slot. An entry is live iff its stored
    /// generation matches its slot's current generation.
    slot_gens: Vec<u32>,
    free_slots: Vec<u32>,
    /// Live (scheduled, not fired, not cancelled) entries.
    live: usize,
    /// Cancelled entries still physically present in some bucket.
    dead: usize,
    popped: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            next_event_seq: 0,
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            mask: MIN_BUCKETS - 1,
            shift: INITIAL_SHIFT,
            slot_gens: Vec::new(),
            free_slots: Vec::new(),
            live: 0,
            dead: 0,
            popped: 0,
        }
    }

    /// The current simulation time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events delivered so far.
    pub fn events_delivered(&self) -> u64 {
        self.popped
    }

    fn bucket_of(&self, at: SimTime) -> usize {
        ((at.as_nanos() >> self.shift) as usize) & self.mask
    }

    /// Schedules `event` to fire at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than `now()`.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.next_event_seq;
        self.next_event_seq += 1;
        let slot = match self.free_slots.pop() {
            Some(s) => s,
            None => {
                self.slot_gens.push(0);
                (self.slot_gens.len() - 1) as u32
            }
        };
        let gen = self.slot_gens[slot as usize];
        let idx = self.bucket_of(at);
        let bucket = &mut self.buckets[idx];
        // Keep the bucket sorted descending by (at, seq): everything
        // strictly greater than the new entry stays in front of it.
        let pos = bucket.partition_point(|e| (e.at, e.seq) > (at, seq));
        bucket.insert(
            pos,
            Entry {
                at,
                seq,
                slot,
                gen,
                event,
            },
        );
        self.live += 1;
        if self.live > 2 * self.buckets.len() && self.buckets.len() < MAX_BUCKETS {
            self.resize();
        }
        EventId::pack(slot, gen)
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventId {
        self.schedule_at(self.now + delay, event)
    }

    /// Cancels a scheduled event. Returns `true` if the event had not yet
    /// fired or been cancelled. Cancelling an already-fired event is a no-op.
    ///
    /// O(1): the entry stays in its bucket as a tombstone (detected by
    /// generation mismatch) until it is swept during a pop or resize.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let (slot, gen) = id.unpack();
        match self.slot_gens.get_mut(slot as usize) {
            Some(cur) if *cur == gen => {
                *cur = cur.wrapping_add(1);
                self.live -= 1;
                self.dead += 1;
                true
            }
            _ => false,
        }
    }

    /// Pops dead (cancelled) entries off the back of bucket `idx`,
    /// recycling their slots, so the back entry — if any — is live.
    fn clean_back(&mut self, idx: usize) {
        while let Some(e) = self.buckets[idx].last() {
            if self.slot_gens[e.slot as usize] == e.gen {
                break;
            }
            let slot = e.slot;
            self.buckets[idx].pop();
            self.free_slots.push(slot);
            self.dead -= 1;
        }
    }

    /// Finds the bucket whose back entry is the global minimum.
    ///
    /// Scans bucket windows forward from `now`: within one calendar
    /// rotation each window maps to exactly one bucket, so the first back
    /// entry found inside its own window is the earliest live event. If a
    /// whole rotation turns up nothing (every event is beyond one rotation),
    /// falls back to a direct min-scan over all bucket minima.
    fn locate_min(&mut self) -> Option<usize> {
        if self.live == 0 {
            return None;
        }
        let nbuckets = self.buckets.len() as u64;
        let base = self.now.as_nanos() >> self.shift;
        for k in 0..nbuckets {
            let window = base.saturating_add(k);
            let idx = (window as usize) & self.mask;
            self.clean_back(idx);
            if let Some(e) = self.buckets[idx].last() {
                if e.at.as_nanos() >> self.shift == window {
                    return Some(idx);
                }
            }
        }
        let mut best: Option<(SimTime, u64, usize)> = None;
        for idx in 0..self.buckets.len() {
            self.clean_back(idx);
            if let Some(e) = self.buckets[idx].last() {
                if best.is_none_or(|(at, seq, _)| (e.at, e.seq) < (at, seq)) {
                    best = Some((e.at, e.seq, idx));
                }
            }
        }
        best.map(|(_, _, idx)| idx)
    }

    /// Removes and returns the next live event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let idx = self.locate_min()?;
        let e = self.buckets[idx].pop()?;
        // Retire the slot: bump the generation so a stale cancel of this
        // id reports false, then recycle it.
        let gen = &mut self.slot_gens[e.slot as usize];
        *gen = gen.wrapping_add(1);
        self.free_slots.push(e.slot);
        self.live -= 1;
        debug_assert!(e.at >= self.now);
        self.now = e.at;
        self.popped += 1;
        let nbuckets = self.buckets.len();
        if (self.live < nbuckets / 4 && nbuckets > MIN_BUCKETS)
            || self.dead > 2 * self.live + 64
        {
            self.resize();
        }
        Some((e.at, e.event))
    }

    /// Drains the entire run of events sharing the earliest timestamp
    /// into `out` (cleared first), advancing the clock once. Returns the
    /// number of events drained; 0 means the queue is exhausted.
    ///
    /// Equal-timestamp events hash to the same bucket and sit contiguous
    /// at its back in FIFO order, so the run comes out in exactly the
    /// order repeated [`Scheduler::pop`] calls would deliver it — one
    /// bucket locate and one resize check amortized over the whole run
    /// instead of per event. Events scheduled *during* the run's
    /// execution carry higher sequence numbers, so handling the drained
    /// prefix before re-polling preserves replay order.
    pub fn pop_run(&mut self, out: &mut Vec<(SimTime, E)>) -> usize {
        out.clear();
        let Some(idx) = self.locate_min() else {
            return 0;
        };
        let Some(first) = self.buckets[idx].pop() else {
            return 0;
        };
        let t = first.at;
        debug_assert!(t >= self.now);
        self.retire(first.slot);
        self.now = t;
        self.popped += 1;
        out.push((t, first.event));
        loop {
            self.clean_back(idx);
            match self.buckets[idx].last() {
                Some(e) if e.at == t => {}
                _ => break,
            }
            let Some(e) = self.buckets[idx].pop() else {
                break;
            };
            self.retire(e.slot);
            self.popped += 1;
            out.push((t, e.event));
        }
        let nbuckets = self.buckets.len();
        if (self.live < nbuckets / 4 && nbuckets > MIN_BUCKETS)
            || self.dead > 2 * self.live + 64
        {
            self.resize();
        }
        out.len()
    }

    /// Retires a fired entry's slot: bumps the generation so a stale
    /// cancel of its id reports false, then recycles it.
    fn retire(&mut self, slot: u32) {
        let gen = &mut self.slot_gens[slot as usize];
        *gen = gen.wrapping_add(1);
        self.free_slots.push(slot);
        self.live -= 1;
    }

    /// Timestamp of the next live event without popping it.
    ///
    /// Takes `&mut self` because locating the minimum sweeps cancelled
    /// entries off bucket backs.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        let idx = self.locate_min()?;
        self.buckets[idx].last().map(|e| e.at)
    }

    /// `true` when no live events remain.
    ///
    /// Takes `&mut self` for parity with [`Scheduler::peek_time`].
    #[allow(clippy::len_without_is_empty, clippy::wrong_self_convention)]
    pub fn is_empty(&mut self) -> bool {
        self.live == 0
    }

    /// Number of live (pending, not cancelled) events.
    #[allow(clippy::len_without_is_empty)] // is_empty exists, but needs &mut
    pub fn len(&self) -> usize {
        self.live
    }

    /// Rebuilds the calendar for the current live population: drops
    /// tombstones, recomputes the bucket count (≈ one live event per
    /// bucket) and the bucket width (≈ the mean gap between now and the
    /// farthest event, so one rotation covers the whole horizon).
    fn resize(&mut self) {
        let mut all: Vec<Entry<E>> = Vec::with_capacity(self.live);
        {
            let slot_gens = &self.slot_gens;
            let free_slots = &mut self.free_slots;
            for bucket in &mut self.buckets {
                for e in bucket.drain(..) {
                    if slot_gens[e.slot as usize] == e.gen {
                        all.push(e);
                    } else {
                        free_slots.push(e.slot);
                    }
                }
            }
        }
        self.dead = 0;
        debug_assert_eq!(all.len(), self.live);

        let nbuckets = all
            .len()
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);
        let span = all
            .iter()
            .map(|e| e.at.as_nanos())
            .max()
            .unwrap_or(0)
            .saturating_sub(self.now.as_nanos());
        let width = (span / all.len().max(1) as u64).max(1);
        // floor(log2(width)), so a rotation of nbuckets windows spans
        // roughly the whole live horizon.
        self.shift = (63 - width.leading_zeros()).min(MAX_SHIFT);
        self.mask = nbuckets - 1;
        self.buckets = (0..nbuckets).map(|_| Vec::new()).collect();
        // Descending insertion order keeps every bucket sorted descending.
        all.sort_by(|a, b| (b.at, b.seq).cmp(&(a.at, a.seq)));
        for e in all {
            let idx = ((e.at.as_nanos() >> self.shift) as usize) & self.mask;
            self.buckets[idx].push(e);
        }
    }
}

impl<E> std::fmt::Debug for Scheduler<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("now", &self.now)
            .field("buckets", &self.buckets.len())
            .field("width_ns", &(1u64 << self.shift))
            .field("live", &self.live)
            .field("dead", &self.dead)
            .field("delivered", &self.popped)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// The legacy binary-heap scheduler, kept verbatim as the test oracle.
// ---------------------------------------------------------------------------

struct HeapEntry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so the BinaryHeap (a max-heap) pops the earliest entry.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The original binary-heap scheduler, retained as the differential-test
/// oracle and the performance baseline for the calendar queue.
///
/// Semantics are identical to [`Scheduler`] — `(time, sequence)` ordering,
/// past-scheduling panics, tombstone cancellation — and the
/// `sched_equivalence` suite holds the two to identical pop order under
/// randomized workloads. Not used in production worlds.
pub struct HeapScheduler<E> {
    now: SimTime,
    next_event_seq: u64,
    heap: BinaryHeap<HeapEntry<E>>,
    /// Sequence numbers of scheduled-but-not-yet-fired, not-cancelled
    /// events. A `BTreeSet` keeps the scheduler free of hash-iteration
    /// order even though `live` is only probed for membership.
    live: BTreeSet<u64>,
    popped: u64,
}

impl<E> Default for HeapScheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapScheduler<E> {
    /// Creates an empty scheduler with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        HeapScheduler {
            now: SimTime::ZERO,
            next_event_seq: 0,
            heap: BinaryHeap::new(),
            live: BTreeSet::new(),
            popped: 0,
        }
    }

    /// The current simulation time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events delivered so far.
    pub fn events_delivered(&self) -> u64 {
        self.popped
    }

    /// Schedules `event` to fire at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than `now()`.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.next_event_seq;
        self.next_event_seq += 1;
        self.live.insert(seq);
        self.heap.push(HeapEntry { at, seq, event });
        EventId(seq)
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventId {
        self.schedule_at(self.now + delay, event)
    }

    /// Cancels a scheduled event. Returns `true` if the event had not yet
    /// fired or been cancelled. Cancelling an already-fired event is a no-op.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.live.remove(&id.0)
    }

    /// Removes and returns the next live event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if !self.live.remove(&entry.seq) {
                continue;
            }
            debug_assert!(entry.at >= self.now);
            self.now = entry.at;
            self.popped += 1;
            return Some((entry.at, entry.event));
        }
        None
    }

    /// Drains the entire run of events sharing the earliest timestamp
    /// into `out` (cleared first), advancing the clock once. Returns the
    /// number of events drained; 0 means the queue is exhausted.
    ///
    /// Behaviorally identical to the calendar's [`Scheduler::pop_run`]:
    /// the heap orders ties by sequence number, so the run comes out in
    /// the same FIFO order repeated `pop` calls would deliver it.
    pub fn pop_run(&mut self, out: &mut Vec<(SimTime, E)>) -> usize {
        out.clear();
        let Some((t, first)) = self.pop() else {
            return 0;
        };
        out.push((t, first));
        while self.peek_time() == Some(t) {
            let Some((at, e)) = self.pop() else {
                break;
            };
            out.push((at, e));
        }
        out.len()
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if !self.live.contains(&entry.seq) {
                self.heap.pop();
                continue;
            }
            return Some(entry.at);
        }
        None
    }

    /// `true` when no live events remain.
    ///
    /// Takes `&mut self` because checking collects cancelled-entry
    /// tombstones off the heap top.
    #[allow(clippy::len_without_is_empty, clippy::wrong_self_convention)]
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }

    /// Number of live (pending, not cancelled) events.
    #[allow(clippy::len_without_is_empty)] // is_empty exists, but needs &mut
    pub fn len(&self) -> usize {
        self.live.len()
    }
}

impl<E> std::fmt::Debug for HeapScheduler<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapScheduler")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("live", &self.live.len())
            .field("delivered", &self.popped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Instantiates the behavioral contract tests for both scheduler
    /// implementations, so the oracle can never drift from the calendar.
    macro_rules! scheduler_contract_tests {
        ($mod_name:ident, $sched:ident) => {
            mod $mod_name {
                use super::super::*;

                #[test]
                fn pops_in_time_order() {
                    let mut s: $sched<&str> = $sched::new();
                    s.schedule_at(SimTime::from_nanos(30), "c");
                    s.schedule_at(SimTime::from_nanos(10), "a");
                    s.schedule_at(SimTime::from_nanos(20), "b");
                    let order: Vec<_> =
                        std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
                    assert_eq!(order, vec!["a", "b", "c"]);
                }

                #[test]
                fn ties_break_fifo() {
                    let mut s: $sched<u32> = $sched::new();
                    for i in 0..10 {
                        s.schedule_at(SimTime::from_nanos(5), i);
                    }
                    let order: Vec<_> =
                        std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
                    assert_eq!(order, (0..10).collect::<Vec<_>>());
                }

                #[test]
                fn clock_advances_on_pop() {
                    let mut s: $sched<()> = $sched::new();
                    s.schedule_at(SimTime::from_nanos(42), ());
                    assert_eq!(s.now(), SimTime::ZERO);
                    s.pop();
                    assert_eq!(s.now(), SimTime::from_nanos(42));
                }

                #[test]
                #[should_panic(expected = "past")]
                fn scheduling_in_the_past_panics() {
                    let mut s: $sched<()> = $sched::new();
                    s.schedule_at(SimTime::from_nanos(10), ());
                    s.pop();
                    s.schedule_at(SimTime::from_nanos(5), ());
                }

                #[test]
                fn cancel_prevents_delivery() {
                    let mut s: $sched<u32> = $sched::new();
                    let id = s.schedule_at(SimTime::from_nanos(1), 1);
                    s.schedule_at(SimTime::from_nanos(2), 2);
                    assert!(s.cancel(id));
                    assert!(!s.cancel(id), "double cancel reports false");
                    assert_eq!(s.pop().map(|(_, e)| e), Some(2));
                }

                #[test]
                fn cancel_after_fire_is_noop() {
                    let mut s: $sched<u32> = $sched::new();
                    let id = s.schedule_at(SimTime::from_nanos(1), 1);
                    assert_eq!(s.pop().map(|(_, e)| e), Some(1));
                    assert!(!s.cancel(id));
                }

                #[test]
                fn peek_skips_cancelled() {
                    let mut s: $sched<u32> = $sched::new();
                    let id = s.schedule_at(SimTime::from_nanos(1), 1);
                    s.schedule_at(SimTime::from_nanos(7), 2);
                    s.cancel(id);
                    assert_eq!(s.peek_time(), Some(SimTime::from_nanos(7)));
                    assert_eq!(s.len(), 1);
                }

                #[test]
                fn schedule_in_is_relative_to_now() {
                    let mut s: $sched<u32> = $sched::new();
                    s.schedule_at(SimTime::from_nanos(100), 1);
                    s.pop();
                    s.schedule_in(SimDuration::from_nanos(50), 2);
                    assert_eq!(s.pop(), Some((SimTime::from_nanos(150), 2)));
                }

                #[test]
                fn empty_and_counters() {
                    let mut s: $sched<u32> = $sched::new();
                    assert!(s.is_empty());
                    s.schedule_in(SimDuration::ZERO, 9);
                    assert!(!s.is_empty());
                    s.pop();
                    assert!(s.is_empty());
                    assert_eq!(s.events_delivered(), 1);
                }

                #[test]
                fn pop_run_drains_exactly_the_tie_run_in_fifo_order() {
                    let mut s: $sched<u32> = $sched::new();
                    for i in 0..5 {
                        s.schedule_at(SimTime::from_nanos(10), i);
                    }
                    s.schedule_at(SimTime::from_nanos(11), 99);
                    let mut out = Vec::new();
                    assert_eq!(s.pop_run(&mut out), 5);
                    for (k, &(at, e)) in out.iter().enumerate() {
                        assert_eq!(at, SimTime::from_nanos(10));
                        assert_eq!(e, k as u32);
                    }
                    assert_eq!(s.now(), SimTime::from_nanos(10));
                    // The later timestamp is untouched by the first run.
                    assert_eq!(s.pop_run(&mut out), 1);
                    assert_eq!(out, vec![(SimTime::from_nanos(11), 99)]);
                    assert_eq!(s.now(), SimTime::from_nanos(11));
                    // Exhausted: returns 0 and leaves out empty.
                    assert_eq!(s.pop_run(&mut out), 0);
                    assert!(out.is_empty());
                    assert_eq!(s.events_delivered(), 6);
                }

                #[test]
                fn pop_run_skips_cancelled_entries_inside_the_run() {
                    let mut s: $sched<u32> = $sched::new();
                    let _a = s.schedule_at(SimTime::from_nanos(10), 0);
                    let b = s.schedule_at(SimTime::from_nanos(10), 1);
                    let _c = s.schedule_at(SimTime::from_nanos(10), 2);
                    s.cancel(b);
                    let mut out = Vec::new();
                    assert_eq!(s.pop_run(&mut out), 2);
                    let got: Vec<u32> = out.iter().map(|&(_, e)| e).collect();
                    assert_eq!(got, vec![0, 2]);
                    assert_eq!(s.events_delivered(), 2);
                }

                #[test]
                fn pop_run_matches_sequential_pops() {
                    // Same mixed workload through both drain styles must
                    // yield the identical (time, payload) stream.
                    let build = || {
                        let mut s: $sched<u32> = $sched::new();
                        let mut cancels = Vec::new();
                        for i in 0..200u32 {
                            let at = SimTime::from_nanos(u64::from(i * 13 % 29));
                            let id = s.schedule_at(at, i);
                            if i % 7 == 0 {
                                cancels.push(id);
                            }
                        }
                        for id in cancels {
                            s.cancel(id);
                        }
                        s
                    };
                    let mut a = build();
                    let singles: Vec<_> =
                        std::iter::from_fn(|| a.pop()).collect();
                    let mut b = build();
                    let mut runs = Vec::new();
                    let mut out = Vec::new();
                    while b.pop_run(&mut out) > 0 {
                        runs.extend(out.drain(..));
                    }
                    assert_eq!(singles, runs);
                    assert_eq!(a.events_delivered(), b.events_delivered());
                }
            }
        };
    }

    scheduler_contract_tests!(calendar, Scheduler);
    scheduler_contract_tests!(heap_oracle, HeapScheduler);

    #[test]
    fn survives_growth_and_shrink_resizes() {
        let mut s: Scheduler<usize> = Scheduler::new();
        // Push well past several doublings, then drain — exercises both
        // the grow and shrink paths while order must stay intact.
        for i in 0..1_000 {
            s.schedule_at(SimTime::from_nanos((i as u64 * 37) % 911), i);
        }
        let mut last = (SimTime::ZERO, 0u64);
        let mut n = 0;
        while let Some((at, _)) = s.pop() {
            assert!(at >= last.0);
            last = (at, last.1);
            n += 1;
        }
        assert_eq!(n, 1_000);
        assert_eq!(s.events_delivered(), 1_000);
    }

    #[test]
    fn far_future_events_use_the_fallback_scan() {
        let mut s: Scheduler<u32> = Scheduler::new();
        // Far beyond one rotation of the initial 4×1µs calendar.
        s.schedule_at(SimTime::from_nanos(50_000_000_000), 2);
        s.schedule_at(SimTime::from_nanos(1_000_000_000), 1);
        assert_eq!(s.peek_time(), Some(SimTime::from_nanos(1_000_000_000)));
        assert_eq!(s.pop().map(|(_, e)| e), Some(1));
        assert_eq!(s.pop().map(|(_, e)| e), Some(2));
    }

    #[test]
    fn max_deadline_is_representable() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule_at(SimTime::MAX, 9);
        s.schedule_at(SimTime::from_nanos(5), 1);
        assert_eq!(s.pop().map(|(_, e)| e), Some(1));
        assert_eq!(s.pop(), Some((SimTime::MAX, 9)));
    }

    #[test]
    fn slot_reuse_does_not_resurrect_stale_ids() {
        let mut s: Scheduler<u32> = Scheduler::new();
        let a = s.schedule_at(SimTime::from_nanos(1), 1);
        assert_eq!(s.pop().map(|(_, e)| e), Some(1));
        // The slot is recycled for b; the stale id must not cancel it.
        let _b = s.schedule_at(SimTime::from_nanos(2), 2);
        assert!(!s.cancel(a));
        assert_eq!(s.pop().map(|(_, e)| e), Some(2));
    }

    #[test]
    fn mass_cancellation_triggers_tombstone_purge() {
        let mut s: Scheduler<usize> = Scheduler::new();
        let ids: Vec<EventId> = (0..500)
            .map(|i| s.schedule_at(SimTime::from_nanos(1 + i as u64), i))
            .collect();
        for id in ids.iter().take(499) {
            assert!(s.cancel(*id));
        }
        assert_eq!(s.len(), 1);
        assert_eq!(s.pop().map(|(_, e)| e), Some(499));
        assert!(s.is_empty());
    }
}
