//! Grammar fuzzing: the round-trip law and total-function guarantees.
//!
//! Two properties pin the language down:
//!
//! 1. **Round trip** — for any valid spec (from the deterministic
//!    generator), `parse(print(spec)) == spec`, exactly. The printer is
//!    the canonical spelling; the parser must recover every field.
//! 2. **No panic, full coverage** — for arbitrary byte soup, the
//!    scanner tokenizes every byte into contiguous spans, and the
//!    parser either returns a spec or diagnostics whose positions are
//!    genuine `line:col` coordinates inside the input. Nothing panics.

use ftgm_scenario::scan::TokKind;
use ftgm_scenario::{gen_spec, parse, print, render_diags, scan};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// parse ∘ print is the identity on generator output.
    #[test]
    fn round_trip_parse_print(seed in any::<u64>()) {
        let spec = gen_spec(seed);
        let text = print(&spec);
        match parse(&text) {
            Ok(reparsed) => prop_assert_eq!(reparsed, spec),
            Err(diags) => panic!(
                "canonical text rejected (seed {seed}):\n{text}\n{}",
                render_diags(&diags)
            ),
        }
    }

    /// Printing is deterministic and idempotent through a parse.
    #[test]
    fn print_is_stable_through_reparse(seed in any::<u64>()) {
        let spec = gen_spec(seed);
        let text = print(&spec);
        if let Ok(reparsed) = parse(&text) {
            prop_assert_eq!(print(&reparsed), text);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The scanner is total: every byte of arbitrary input lands in
    /// exactly one token, tokens are contiguous, and spans slice the
    /// source without panicking.
    #[test]
    fn scanner_covers_arbitrary_bytes(input in proptest::collection::vec(any::<u8>(), 0..200)) {
        let text = String::from_utf8_lossy(&input).into_owned();
        let toks = scan(&text);
        let mut pos = 0usize;
        for t in &toks {
            prop_assert_eq!(t.start, pos);
            prop_assert!(t.end > t.start);
            let _ = t.text(&text); // must not panic, span must slice
            pos = t.end;
        }
        prop_assert_eq!(pos, text.len());
    }

    /// The parser never panics on byte soup, and every diagnostic
    /// carries a position that exists in the input.
    #[test]
    fn parser_never_panics_diags_have_real_spans(
        input in proptest::collection::vec(any::<u8>(), 0..200)
    ) {
        let text = String::from_utf8_lossy(&input).into_owned();
        if let Err(diags) = parse(&text) {
            prop_assert!(!diags.is_empty());
            let lines: Vec<&str> = text.split('\n').collect();
            for d in &diags {
                prop_assert!(d.line >= 1, "line must be 1-based: {}", d.render());
                prop_assert!(d.col >= 1, "col must be 1-based: {}", d.render());
                // Position must be inside the input (or the EOF slot one
                // past the end of the last line).
                let idx = (d.line - 1) as usize;
                prop_assert!(idx < lines.len() || (idx == lines.len() && d.col == 1),
                    "line {} outside a {}-line input", d.line, lines.len());
                if let Some(line) = lines.get(idx) {
                    prop_assert!((d.col as usize) <= line.len() + 1,
                        "col {} outside line {:?}", d.col, line);
                }
            }
        }
    }

    /// Near-miss inputs: mutate one byte of a valid canonical file.
    /// The parser must still return Ok or well-formed diagnostics.
    #[test]
    fn single_byte_mutations_never_panic(seed in any::<u64>(), pos in any::<u16>(), byte in any::<u8>()) {
        let text = print(&gen_spec(seed));
        let mut bytes = text.into_bytes();
        if bytes.is_empty() {
            return;
        }
        let i = usize::from(pos) % bytes.len();
        bytes[i] = byte;
        let mutated = String::from_utf8_lossy(&bytes).into_owned();
        match parse(&mutated) {
            Ok(_) => {}
            Err(diags) => prop_assert!(!diags.is_empty()),
        }
    }
}

/// The scanner kinds reported for the canonical corpus header are
/// stable (a cheap anchor so token kinds do not silently drift).
#[test]
fn header_token_kinds_are_stable() {
    let toks: Vec<TokKind> = scan("scenario \"x\" {}")
        .into_iter()
        .filter(|t| !t.kind.is_trivia())
        .map(|t| t.kind)
        .collect();
    assert_eq!(
        toks,
        vec![
            TokKind::Ident,
            TokKind::Str { closed: true },
            TokKind::LBrace,
            TokKind::RBrace,
        ]
    );
}
