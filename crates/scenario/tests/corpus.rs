//! Corpus gates.
//!
//! Debug tier: every `scenarios/*.ftsc` parses, compiles, and prints
//! round-trip — so a grammar change that orphans the corpus fails
//! `cargo test` immediately. Release tier (tier-1 via ci.sh) replays the
//! whole corpus: expect verdicts, oracle cleanliness, byte-stable
//! goldens, and 1-vs-3-thread invariance.

use std::fs;
use std::path::PathBuf;

use ftgm_scenario::{
    compile, parse, print, render_diags, run_compiled, run_corpus_parallel, run_text,
    CompiledScenario,
};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

fn corpus_sources() -> Vec<(PathBuf, String)> {
    let mut files: Vec<PathBuf> = fs::read_dir(corpus_dir())
        .expect("scenarios/ must exist")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "ftsc"))
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|p| {
            let src = fs::read_to_string(&p).expect("corpus file readable");
            (p, src)
        })
        .collect()
}

fn compiled_corpus() -> Vec<CompiledScenario> {
    corpus_sources()
        .iter()
        .map(|(path, src)| match parse(src) {
            Ok(spec) => compile(&spec),
            Err(diags) => panic!("{} rejected:\n{}", path.display(), render_diags(&diags)),
        })
        .collect()
}

#[test]
fn corpus_has_at_least_25_scenarios() {
    assert!(
        corpus_sources().len() >= 25,
        "corpus shrank below the 25-file floor ({})",
        corpus_sources().len()
    );
}

#[test]
fn every_corpus_file_parses_compiles_and_round_trips() {
    for (path, src) in corpus_sources() {
        let spec = match parse(&src) {
            Ok(s) => s,
            Err(diags) => panic!("{} rejected:\n{}", path.display(), render_diags(&diags)),
        };
        // The file stem is the scenario name — goldens key on it.
        let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
        assert_eq!(spec.name, stem, "{}: name must match file stem", path.display());
        // Canonical spelling must survive a reparse.
        let canon = print(&spec);
        let reparsed = parse(&canon)
            .unwrap_or_else(|d| panic!("{}: canonical form rejected:\n{}", path.display(), render_diags(&d)));
        assert_eq!(reparsed, spec, "{}: print/parse round trip drifted", path.display());
        let _ = compile(&spec);
    }
}

/// A scenario whose `expect` disagrees with the run's verdict must fail
/// with a typed mismatch naming both sides — never pass silently.
#[test]
fn expect_disagreement_is_a_typed_mismatch() {
    // A do-nothing noise fault: the run survives, the file claims
    // escalation. Small phases keep this cheap enough for debug.
    let src = "scenario \"wrong-expect\" {\n\
               \x20 topology two_node\n\
               \x20 flow 0 -> 1 validated size 256 pipeline 2\n\
               \x20 phases { warmup 5ms fault 50ms }\n\
               \x20 fault in fault at 0ms noise drop 0 corrupt 0 for 1ms\n\
               \x20 expect escalated\n\
               }\n";
    let outcome = run_text(src).expect("scenario must parse");
    let err = outcome.check().expect_err("verdicts disagree");
    assert_eq!(err.scenario, "wrong-expect");
    assert_eq!(err.expected.label(), "escalated");
    assert_eq!(err.actual.label(), "survived");
    let msg = err.to_string();
    assert!(msg.contains("escalated") && msg.contains("survived"), "{msg}");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "release-gated: full corpus replay is release-only")]
fn release_corpus_replays_green_and_matches_goldens() {
    let compiled = compiled_corpus();
    let golden_dir = corpus_dir().join("golden");
    let mut failures = Vec::new();
    for c in &compiled {
        let outcome = run_compiled(c);
        for v in outcome.violations() {
            failures.push(format!("{}: violation: {v}", outcome.name));
        }
        if let Err(m) = outcome.check() {
            failures.push(m.to_string());
        }
        let golden_path = golden_dir.join(format!("{}.json", outcome.name));
        match fs::read_to_string(&golden_path) {
            Ok(expected) if expected == outcome.to_json() => {}
            Ok(_) => failures.push(format!(
                "{}: golden drifted (scenariox --update after verifying)",
                golden_path.display()
            )),
            Err(_) => failures.push(format!("{}: golden missing", golden_path.display())),
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
#[cfg_attr(debug_assertions, ignore = "release-gated: full corpus replay is release-only")]
fn release_corpus_is_thread_count_invariant() {
    let compiled = compiled_corpus();
    let one = run_corpus_parallel(&compiled, 1);
    let three = run_corpus_parallel(&compiled, 3);
    assert_eq!(one.len(), three.len());
    for (a, b) in one.iter().zip(&three) {
        assert_eq!(a.name, b.name, "slot order must match input order");
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "{}: report differs between 1 and 3 threads",
            a.name
        );
    }
}
