//! The bad-fixture corpus: every `scenarios/bad/*.ftsc` must be
//! rejected, and the rendered diagnostics must match the checked-in
//! `.err` file byte for byte — including `line:col` positions, so a
//! parser refactor cannot silently degrade error placement.
//!
//! To regenerate after an intentional message change:
//! `FTSC_UPDATE_ERR=1 cargo test -p ftgm-scenario --test diagnostics`

use std::fs;
use std::path::PathBuf;

use ftgm_scenario::{parse, render_diags};

fn bad_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios/bad")
}

#[test]
fn every_bad_fixture_is_rejected_with_the_recorded_error() {
    let update = std::env::var_os("FTSC_UPDATE_ERR").is_some();
    let mut fixtures: Vec<PathBuf> = fs::read_dir(bad_dir())
        .expect("scenarios/bad must exist")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "ftsc"))
        .collect();
    fixtures.sort();
    assert!(
        fixtures.len() >= 10,
        "bad corpus shrank below 10 fixtures ({})",
        fixtures.len()
    );

    let mut failures = Vec::new();
    for path in &fixtures {
        let src = fs::read_to_string(path).expect("fixture readable");
        let rendered = match parse(&src) {
            Ok(_) => {
                failures.push(format!("{}: parsed cleanly, expected rejection", path.display()));
                continue;
            }
            Err(diags) => render_diags(&diags),
        };
        // Every diagnostic must carry a real position.
        assert!(
            rendered.contains("error at "),
            "{}: rendered diagnostics lack positions:\n{rendered}",
            path.display()
        );

        let err_path = path.with_extension("err");
        if update {
            fs::write(&err_path, &rendered).expect("write .err");
            continue;
        }
        let expected = fs::read_to_string(&err_path)
            .unwrap_or_else(|_| panic!("{} missing (run with FTSC_UPDATE_ERR=1)", err_path.display()));
        if expected != rendered {
            failures.push(format!(
                "{}: diagnostics drifted.\n--- expected ---\n{expected}--- actual ---\n{rendered}",
                path.display()
            ));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn diagnostics_name_the_offending_line_and_column() {
    // One fixture pinned inline so the position contract is visible in
    // the test itself, not just in golden files.
    let src = "scenario \"x\" {\n  topology two_node\n  flow 0 -> 1 validated\n  phases { warmup 10 }\n  expect survived\n}\n";
    let diags = parse(src).expect_err("bare integer where a duration is required");
    let rendered = render_diags(&diags);
    assert!(
        rendered.contains("error at 4:19"),
        "expected the bare '10' at line 4 col 19 to be named:\n{rendered}"
    );
    assert!(rendered.contains("type mismatch"), "{rendered}");
}
