//! Corpus-promotion helper: inspect the grammar generator's output.
//!
//! ```text
//! cargo run -p ftgm-scenario --example gen_dump            # seed survey
//! cargo run -p ftgm-scenario --example gen_dump -- 7 84    # full specs
//! ```
//!
//! With no arguments, prints a one-line summary for seeds 0..240 —
//! topology, flow/fault/trigger counts, coordinator, generated expect —
//! to scan for promotion candidates. With seed arguments, prints the
//! full canonical spec for each, ready to copy into `scenarios/*.ftsc`
//! (see docs/SCENARIOS.md, "Promoting generator specs").

use ftgm_scenario::{gen_spec, print};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() > 1 {
        for a in &args[1..] {
            let seed: u64 = a.parse().expect("seed");
            println!("{}", print(&gen_spec(seed)));
        }
        return;
    }
    for seed in 0..240u64 {
        let s = gen_spec(seed);
        println!(
            "{seed:3} {:?} flows={} faults={} triggers={} coord={} expect={:?}",
            s.topology,
            s.flows.len(),
            s.faults.len(),
            s.triggers.len(),
            s.coordinator,
            s.expect
        );
    }
}
