//! Canonical pretty-printer: [`Spec`] → scenario text.
//!
//! The printer emits the one canonical spelling of a spec — two-space
//! indent, one statement per line, every optional value written out
//! explicitly (defaults included) — so the fuzz suite can assert the
//! exact round trip `parse(print(spec)) == spec` with derived equality.

use std::fmt::Write as _;

use crate::ast::{
    Action, ArrivalDecl, Dur, FlowKind, MixDecl, SloDecl, Spec,
};

fn dur(d: Dur) -> String {
    format!("{}{}", d.value, d.unit.name())
}

fn mix(m: &MixDecl, out: &mut String) {
    match m {
        MixDecl::Fixed(bytes) => {
            let _ = write!(out, "sizes {bytes}");
        }
        MixDecl::Weighted(options) => {
            out.push_str("sizes mix { ");
            for (i, (bytes, weight)) in options.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{bytes}: {weight}");
            }
            out.push_str(" }");
        }
    }
}

fn action(a: &Action, out: &mut String) {
    match a {
        Action::BitFlip { node, target } => {
            let _ = write!(out, "bitflip node {node} target {}", target.name());
        }
        Action::Hang { node } => {
            let _ = write!(out, "hang node {node}");
        }
        Action::CorrelatedHang { nodes, skew } => {
            out.push_str("hang nodes");
            for n in nodes {
                let _ = write!(out, " {n}");
            }
            let _ = write!(out, " skew {}", dur(*skew));
        }
        Action::LinkDown { node, duration } => {
            let _ = write!(out, "link_down node {node} for {}", dur(*duration));
        }
        Action::Noise {
            drop_permille,
            corrupt_permille,
            duration,
        } => {
            let _ = write!(
                out,
                "noise drop {drop_permille} corrupt {corrupt_permille} for {}",
                dur(*duration)
            );
        }
        Action::SwitchDeath { switch } => {
            let _ = write!(out, "switch_death {switch}");
        }
        Action::LinkFlap {
            node,
            period,
            count,
        } => {
            let _ = write!(
                out,
                "link_flap node {node} period {} count {count}",
                dur(*period)
            );
        }
    }
}

/// Prints `spec` in canonical form. `parse(print(spec))` returns a spec
/// equal to the input whenever `spec` is semantically valid.
pub fn print(spec: &Spec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "scenario \"{}\" {{", spec.name);

    out.push_str("  topology ");
    match spec.topology {
        crate::ast::Topo::TwoNode => out.push_str("two_node"),
        crate::ast::Topo::Star(n) => {
            let _ = write!(out, "star {n}");
        }
        crate::ast::Topo::Ring(n) => {
            let _ = write!(out, "ring {n}");
        }
        crate::ast::Topo::FatTree {
            spines,
            leaves,
            hosts_per_leaf,
        } => {
            let _ = write!(out, "fat_tree {spines} {leaves} {hosts_per_leaf}");
        }
        crate::ast::Topo::Torus { cols, rows } => {
            let _ = write!(out, "torus {cols} {rows}");
        }
    }
    out.push('\n');

    if let Some(seed) = spec.seed {
        let _ = writeln!(out, "  seed {seed}");
    }
    let _ = writeln!(
        out,
        "  coordinator {}",
        if spec.coordinator { "on" } else { "off" }
    );

    for f in &spec.flows {
        let _ = write!(out, "  flow {} -> {} ", f.src, f.dst);
        match &f.kind {
            FlowKind::Validated { size, pipeline } => {
                let _ = write!(out, "validated size {size} pipeline {pipeline}");
            }
            FlowKind::Open { arrival, sizes } => {
                out.push_str("open ");
                match arrival {
                    ArrivalDecl::Every(gap) => {
                        let _ = write!(out, "every {}", dur(*gap));
                    }
                    ArrivalDecl::Jitter { min, max } => {
                        let _ = write!(out, "jitter {}..{}", dur(*min), dur(*max));
                    }
                    ArrivalDecl::Burst {
                        scale,
                        shape_permille,
                        cap,
                    } => {
                        let _ = write!(
                            out,
                            "burst scale {} shape {shape_permille} cap {}",
                            dur(*scale),
                            dur(*cap)
                        );
                    }
                }
                out.push(' ');
                mix(sizes, &mut out);
            }
            FlowKind::Closed { think, sizes } => {
                let _ = write!(out, "closed think {} ", dur(*think));
                mix(sizes, &mut out);
            }
        }
        out.push('\n');
    }

    out.push_str("  phases {");
    for p in &spec.phases {
        let _ = write!(out, " {} {}", p.kind.name(), dur(p.duration));
    }
    out.push_str(" }\n");

    for f in &spec.faults {
        let _ = write!(
            out,
            "  fault in {} at {} ",
            f.phase.name(),
            dur(f.at)
        );
        action(&f.action, &mut out);
        out.push('\n');
    }
    for t in &spec.triggers {
        let _ = write!(out, "  on node {} phase {} ", t.node, t.phase.name());
        action(&t.action, &mut out);
        let _ = writeln!(out, " limit {}", t.limit);
    }

    if spec.slo != SloDecl::default() {
        out.push_str("  slo {");
        if let Some(b) = spec.slo.flow_blackout {
            let _ = write!(out, " flow_blackout {}", dur(b));
        }
        if let Some(b) = spec.slo.fault_blackout {
            let _ = write!(out, " fault_blackout {}", dur(b));
        }
        if let Some(b) = spec.slo.steady_completed {
            let _ = write!(out, " steady_completed {b}");
        }
        if let Some(b) = spec.slo.p99_overhead {
            let _ = write!(out, " p99_overhead {}", dur(b));
        }
        out.push_str(" }\n");
    }

    let _ = writeln!(out, "  expect {}", spec.expect.name());
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Expect, PhaseDecl, PhaseName, Topo};
    use crate::parse::parse;

    #[test]
    fn minimal_spec_round_trips() {
        let spec = Spec {
            name: "mini".to_string(),
            topology: Topo::TwoNode,
            seed: Some(7),
            coordinator: false,
            flows: vec![crate::ast::FlowDecl {
                src: 0,
                dst: 1,
                kind: FlowKind::Validated {
                    size: 256,
                    pipeline: 2,
                },
            }],
            phases: vec![PhaseDecl {
                kind: PhaseName::Warmup,
                duration: Dur::ms(10),
            }],
            faults: Vec::new(),
            triggers: Vec::new(),
            slo: SloDecl::default(),
            expect: Expect::Survived,
        };
        let text = print(&spec);
        let reparsed = parse(&text).unwrap_or_else(|d| {
            let lines: Vec<String> = d.iter().map(|d| d.render()).collect();
            panic!("canonical text failed to parse:\n{text}\n{}", lines.join("\n"))
        });
        assert_eq!(reparsed, spec);
    }
}
