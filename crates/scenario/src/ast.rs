//! The typed scenario specification the parser produces.
//!
//! A [`Spec`] is deliberately span-free: it is the *meaning* of a
//! scenario file, with source positions carried separately in
//! [`crate::parse::Diag`]s. That keeps the pretty-printer round trip
//! exact — `parse(print(spec)) == spec` compares these types directly
//! with derived `PartialEq` — and keeps the compiler
//! ([`crate::compile`]) free of source-location bookkeeping.
//!
//! Every quantity is an integer: durations are a value plus an explicit
//! unit (never normalized, so the printer reproduces the author's
//! spelling), and probabilities are permille. No float ever appears in
//! a scenario file.

use ftgm_core::ftd::FtdPhase;
use ftgm_sim::SimDuration;

/// A duration literal: integer value plus the unit it was written in.
///
/// The unit is preserved (not normalized to nanoseconds) so printing a
/// parsed spec reproduces the original token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Dur {
    /// Value in `unit`s.
    pub value: u64,
    /// Unit the value was written in.
    pub unit: Unit,
}

/// Time units the DSL accepts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Unit {
    /// Nanoseconds (`ns`).
    Ns,
    /// Microseconds (`us`).
    Us,
    /// Milliseconds (`ms`).
    Ms,
    /// Seconds (`s`).
    S,
}

impl Unit {
    /// The unit's source spelling.
    pub fn name(self) -> &'static str {
        match self {
            Unit::Ns => "ns",
            Unit::Us => "us",
            Unit::Ms => "ms",
            Unit::S => "s",
        }
    }

    /// Parses a source spelling back to the unit.
    pub fn from_name(name: &str) -> Option<Unit> {
        match name {
            "ns" => Some(Unit::Ns),
            "us" => Some(Unit::Us),
            "ms" => Some(Unit::Ms),
            "s" => Some(Unit::S),
            _ => None,
        }
    }

    /// Nanoseconds per unit.
    pub fn nanos(self) -> u64 {
        match self {
            Unit::Ns => 1,
            Unit::Us => 1_000,
            Unit::Ms => 1_000_000,
            Unit::S => 1_000_000_000,
        }
    }
}

impl Dur {
    /// A duration of `value` nanoseconds.
    pub fn ns(value: u64) -> Dur {
        Dur {
            value,
            unit: Unit::Ns,
        }
    }

    /// A duration of `value` microseconds.
    pub fn us(value: u64) -> Dur {
        Dur {
            value,
            unit: Unit::Us,
        }
    }

    /// A duration of `value` milliseconds.
    pub fn ms(value: u64) -> Dur {
        Dur {
            value,
            unit: Unit::Ms,
        }
    }

    /// A duration of `value` seconds.
    pub fn secs(value: u64) -> Dur {
        Dur {
            value,
            unit: Unit::S,
        }
    }

    /// The duration in nanoseconds (saturating).
    pub fn as_nanos(self) -> u64 {
        self.value.saturating_mul(self.unit.nanos())
    }

    /// The simulator's duration type.
    pub fn to_sim(self) -> SimDuration {
        SimDuration::from_nanos(self.as_nanos())
    }
}

/// World shape. Mirrors `ftgm_faults::chaos::ChaosTopology` one-to-one;
/// the DSL keeps its own copy so the AST stays a pure syntax type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topo {
    /// Two directly cabled hosts.
    TwoNode,
    /// `n` hosts on one central switch.
    Star(u16),
    /// `n` hosts on a cycle of switches.
    Ring(u16),
    /// Two-level fat tree.
    FatTree {
        /// Spine switches.
        spines: u16,
        /// Leaf switches.
        leaves: u16,
        /// Hosts per leaf.
        hosts_per_leaf: u16,
    },
    /// 2-D torus of switches, one host each.
    Torus {
        /// Columns.
        cols: u16,
        /// Rows.
        rows: u16,
    },
}

impl Topo {
    /// Number of hosts, mirroring `ChaosTopology::node_count`.
    pub fn node_count(self) -> u16 {
        match self {
            Topo::TwoNode => 2,
            Topo::Star(n) | Topo::Ring(n) => n,
            Topo::FatTree {
                leaves,
                hosts_per_leaf,
                ..
            } => leaves.saturating_mul(hosts_per_leaf),
            Topo::Torus { cols, rows } => cols.saturating_mul(rows),
        }
    }

    /// Number of switches (`switch_death` targets range over these ids).
    pub fn switch_count(self) -> u16 {
        match self {
            Topo::TwoNode => 0,
            Topo::Star(_) => 1,
            Topo::Ring(n) => n,
            Topo::FatTree { spines, leaves, .. } => leaves.saturating_add(spines),
            Topo::Torus { cols, rows } => cols.saturating_mul(rows),
        }
    }
}

/// Phase names in timeline order (mirrors `ftgm_workload::PhaseKind`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum PhaseName {
    /// Ramp-up.
    Warmup,
    /// Steady state; SLO bounds apply.
    Steady,
    /// Declared fault window.
    Fault,
    /// Generators stop; in-flight traffic lands.
    Drain,
}

impl PhaseName {
    /// Source spelling.
    pub fn name(self) -> &'static str {
        match self {
            PhaseName::Warmup => "warmup",
            PhaseName::Steady => "steady",
            PhaseName::Fault => "fault",
            PhaseName::Drain => "drain",
        }
    }

    /// Parses a source spelling back to the phase name.
    pub fn from_name(name: &str) -> Option<PhaseName> {
        match name {
            "warmup" => Some(PhaseName::Warmup),
            "steady" => Some(PhaseName::Steady),
            "fault" => Some(PhaseName::Fault),
            "drain" => Some(PhaseName::Drain),
            _ => None,
        }
    }
}

/// One timeline phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseDecl {
    /// Which phase.
    pub kind: PhaseName,
    /// How long it lasts.
    pub duration: Dur,
}

/// Interarrival model for open-loop load flows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrivalDecl {
    /// Constant gap: `every 50us`.
    Every(Dur),
    /// Uniform jitter: `jitter 40us..80us`.
    Jitter {
        /// Lower edge.
        min: Dur,
        /// Upper edge.
        max: Dur,
    },
    /// Bounded-Pareto bursts: `burst scale 30us shape 1500 cap 2ms`.
    Burst {
        /// Pareto scale (minimum gap).
        scale: Dur,
        /// Tail index alpha in permille.
        shape_permille: u32,
        /// Truncation cap.
        cap: Dur,
    },
}

/// Message-size mix for load flows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MixDecl {
    /// Every message the same size: `sizes 256`.
    Fixed(u32),
    /// Weighted options: `sizes mix { 64: 3, 1024: 1 }`.
    Weighted(Vec<(u32, u32)>),
}

/// What a flow carries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlowKind {
    /// Sequence-validated pattern traffic (the chaos oracles' probes).
    Validated {
        /// Message size in bytes.
        size: u32,
        /// Go-Back-N pipeline depth.
        pipeline: u32,
    },
    /// Open-loop offered load.
    Open {
        /// Interarrival model.
        arrival: ArrivalDecl,
        /// Size mix.
        sizes: MixDecl,
    },
    /// Closed-loop request/response load.
    Closed {
        /// Think time between response and next request.
        think: Dur,
        /// Size mix.
        sizes: MixDecl,
    },
}

/// One declared traffic flow.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlowDecl {
    /// Sending node.
    pub src: u16,
    /// Receiving node.
    pub dst: u16,
    /// Payload discipline.
    pub kind: FlowKind,
}

/// Bit-flip injection targets (mirrors `ftgm_faults::InjectionTarget`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Target {
    /// The `send_chunk` code section.
    SendChunkCode,
    /// A packet buffer.
    PacketBuffer,
    /// A send record.
    SendRecord,
}

impl Target {
    /// Source spelling.
    pub fn name(self) -> &'static str {
        match self {
            Target::SendChunkCode => "send_chunk_code",
            Target::PacketBuffer => "packet_buffer",
            Target::SendRecord => "send_record",
        }
    }

    /// Parses a source spelling back to the target.
    pub fn from_name(name: &str) -> Option<Target> {
        match name {
            "send_chunk_code" => Some(Target::SendChunkCode),
            "packet_buffer" => Some(Target::PacketBuffer),
            "send_record" => Some(Target::SendRecord),
            _ => None,
        }
    }
}

/// A fault primitive (mirrors `ftgm_faults::chaos::ChaosAction`, with
/// probabilities in integer permille so scenario files stay float-free).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// `bitflip node 0 target send_chunk_code`
    BitFlip {
        /// Node whose SRAM is hit.
        node: u16,
        /// What to flip.
        target: Target,
    },
    /// `hang node 3`
    Hang {
        /// Node forced into a hang.
        node: u16,
    },
    /// `hang nodes 1 3 skew 500us`
    CorrelatedHang {
        /// Nodes hung in order.
        nodes: Vec<u16>,
        /// Gap between consecutive hangs.
        skew: Dur,
    },
    /// `link_down node 1 for 20ms`
    LinkDown {
        /// Node whose NIC link drops.
        node: u16,
        /// Outage length.
        duration: Dur,
    },
    /// `noise drop 50 corrupt 20 for 100ms` (both permille)
    Noise {
        /// Per-frame drop probability, permille.
        drop_permille: u32,
        /// Per-frame corruption probability, permille.
        corrupt_permille: u32,
        /// Window length.
        duration: Dur,
    },
    /// `switch_death 8`
    SwitchDeath {
        /// Switch id (topology-specific numbering).
        switch: u16,
    },
    /// `link_flap node 2 period 20ms count 3`
    LinkFlap {
        /// Node whose link flaps.
        node: u16,
        /// Down/up period.
        period: Dur,
        /// Number of flaps.
        count: u32,
    },
}

/// A scheduled fault: `fault in <phase> at <offset> <action>`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultDecl {
    /// Declared phase the fault fires in.
    pub phase: PhaseName,
    /// Offset after that phase starts.
    pub at: Dur,
    /// The fault primitive.
    pub action: Action,
}

/// A recovery-phase trigger:
/// `on node <n> phase <ftd-phase> <action> limit <k>`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TriggerDecl {
    /// Node whose FTD is watched.
    pub node: u16,
    /// FTD phase whose completion pulls the trigger.
    pub phase: FtdPhase,
    /// The fault primitive.
    pub action: Action,
    /// Fire budget before the trigger disarms.
    pub limit: u32,
}

/// Declared SLO bounds; every field optional.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SloDecl {
    /// Max end-to-end delivery gap on validated flows (the chaos
    /// blackout oracle; exempts loudly-escalated endpoints).
    pub flow_blackout: Option<Dur>,
    /// Max no-completion gap in the fault window of the load run.
    pub fault_blackout: Option<Dur>,
    /// Min steady-state completion ratio of the load run, permille.
    pub steady_completed: Option<u32>,
    /// Max FTGM-vs-GM steady p99 latency overhead (runs a fault-free
    /// plain-GM twin of the load spec as the baseline).
    pub p99_overhead: Option<Dur>,
}

/// The verdict a scenario pins: `expect survived|rerouted|escalated`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expect {
    /// All oracles hold, nothing written off, no reroute needed.
    Survived,
    /// All oracles hold because the coordinator rerouted.
    Rerouted,
    /// All oracles hold; one or more interfaces loudly declared dead.
    Escalated,
}

impl Expect {
    /// Source spelling.
    pub fn name(self) -> &'static str {
        match self {
            Expect::Survived => "survived",
            Expect::Rerouted => "rerouted",
            Expect::Escalated => "escalated",
        }
    }

    /// Parses a source spelling back to the expectation.
    pub fn from_name(name: &str) -> Option<Expect> {
        match name {
            "survived" => Some(Expect::Survived),
            "rerouted" => Some(Expect::Rerouted),
            "escalated" => Some(Expect::Escalated),
            _ => None,
        }
    }
}

/// A complete parsed scenario.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Spec {
    /// Scenario name (the quoted string after `scenario`).
    pub name: String,
    /// World shape.
    pub topology: Topo,
    /// Master seed (`seed N`); the runner defaults it when absent.
    pub seed: Option<u64>,
    /// Whether the zone coordinator is installed (`coordinator on|off`).
    pub coordinator: bool,
    /// Declared flows, in order.
    pub flows: Vec<FlowDecl>,
    /// Timeline phases, in order.
    pub phases: Vec<PhaseDecl>,
    /// Scheduled faults, in order.
    pub faults: Vec<FaultDecl>,
    /// Recovery-phase triggers, in order.
    pub triggers: Vec<TriggerDecl>,
    /// SLO bounds.
    pub slo: SloDecl,
    /// The pinned verdict.
    pub expect: Expect,
}

impl Spec {
    /// The duration of the first phase of kind `kind`, if declared.
    pub fn phase_duration(&self, kind: PhaseName) -> Option<Dur> {
        self.phases
            .iter()
            .find(|p| p.kind == kind)
            .map(|p| p.duration)
    }

    /// Whether the spec declares any load (open/closed-loop) flow.
    pub fn has_load(&self) -> bool {
        self.flows
            .iter()
            .any(|f| !matches!(f.kind, FlowKind::Validated { .. }))
    }

    /// Whether the spec declares any fault (scheduled or triggered).
    pub fn has_faults(&self) -> bool {
        !self.faults.is_empty() || !self.triggers.is_empty()
    }
}
