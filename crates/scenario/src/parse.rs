//! Scenario parser: spanned tokens → a validated [`Spec`].
//!
//! Recursive descent over the scanner's token stream. Every failure —
//! lexical, syntactic, or semantic — is a [`Diag`] carrying the 1-based
//! `line:col` of the offending token; parsing never panics, whatever
//! the input. Statement-level errors synchronize to the next statement
//! keyword so one bad line does not cascade, and semantic validation
//! (node ranges, phase ordering, reachable expectations) runs only on a
//! syntactically clean file so its spans always point at real tokens.

use std::collections::BTreeMap;

use ftgm_core::ftd::FtdPhase;

use crate::ast::{
    Action, ArrivalDecl, Dur, Expect, FaultDecl, FlowDecl, FlowKind, MixDecl, PhaseDecl, PhaseName,
    SloDecl, Spec, Target, Topo, TriggerDecl, Unit,
};
use crate::scan::{scan, Tok, TokKind};

/// One diagnostic: a message anchored at a 1-based source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diag {
    /// 1-based line.
    pub line: u32,
    /// 1-based column (bytes).
    pub col: u32,
    /// What went wrong.
    pub msg: String,
}

impl Diag {
    fn new(line: u32, col: u32, msg: impl Into<String>) -> Diag {
        Diag {
            line,
            col,
            msg: msg.into(),
        }
    }

    /// Renders as the canonical single line the bad-fixture corpus pins.
    pub fn render(&self) -> String {
        format!("error at {}:{}: {}", self.line, self.col, self.msg)
    }
}

/// Renders a diagnostic list the way the CLI prints it: one canonical
/// line per diagnostic, trailing newline.
pub fn render_diags(diags: &[Diag]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.render());
        out.push('\n');
    }
    out
}

/// A value plus the position of the token that introduced it.
#[derive(Clone, Debug)]
struct Sp<T> {
    v: T,
    line: u32,
    col: u32,
}

/// Statement keywords; error recovery synchronizes to these.
const STMT_KEYWORDS: [&str; 9] = [
    "topology",
    "seed",
    "coordinator",
    "flow",
    "phases",
    "fault",
    "on",
    "slo",
    "expect",
];

/// Hosts and switch-count ceiling (keeps worlds buildable in memory).
const MAX_NODES: u32 = 4096;

struct Parser<'a> {
    src: &'a str,
    toks: Vec<Tok>,
    i: usize,
    diags: Vec<Diag>,
    eof_line: u32,
    eof_col: u32,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Parser<'a> {
        let all = scan(src);
        let (mut eof_line, mut eof_col) = (1, 1);
        if let Some(last) = all.last() {
            eof_line = last.line;
            let tail = last.text(src);
            let newlines = tail.bytes().filter(|&b| b == b'\n').count() as u32;
            if newlines > 0 {
                eof_line += newlines;
                eof_col = (tail.bytes().rev().take_while(|&b| b != b'\n').count() + 1) as u32;
            } else {
                eof_col = last.col + (last.end - last.start) as u32;
            }
        }
        let toks = all.into_iter().filter(|t| !t.kind.is_trivia()).collect();
        Parser {
            src,
            toks,
            i: 0,
            diags: Vec::new(),
            eof_line,
            eof_col,
        }
    }

    fn peek(&self) -> Option<Tok> {
        self.toks.get(self.i).copied()
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.peek();
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn here(&self) -> (u32, u32) {
        self.peek()
            .map_or((self.eof_line, self.eof_col), |t| (t.line, t.col))
    }

    fn err_here(&mut self, msg: impl Into<String>) {
        let (line, col) = self.here();
        self.diags.push(Diag::new(line, col, msg));
    }

    /// The text of the next token, for error messages ("found X").
    fn found(&self) -> String {
        match self.peek() {
            None => "end of file".to_string(),
            Some(t) => match t.kind {
                TokKind::Str { .. } => "a string".to_string(),
                _ => format!("'{}'", t.text(self.src)),
            },
        }
    }

    /// Consumes the exact identifier `kw` or diagnoses.
    fn expect_kw(&mut self, kw: &str) -> Option<Tok> {
        match self.peek() {
            Some(t) if t.kind == TokKind::Ident && t.text(self.src) == kw => self.bump(),
            _ => {
                let found = self.found();
                self.err_here(format!("expected '{kw}', found {found}"));
                None
            }
        }
    }

    fn expect_punct(&mut self, kind: TokKind, what: &str) -> Option<Tok> {
        match self.peek() {
            Some(t) if t.kind == kind => self.bump(),
            _ => {
                let found = self.found();
                self.err_here(format!("expected {what}, found {found}"));
                None
            }
        }
    }

    /// Takes any identifier (for keyword dispatch).
    fn take_ident(&mut self, what: &str) -> Option<Tok> {
        match self.peek() {
            Some(t) if t.kind == TokKind::Ident => self.bump(),
            _ => {
                let found = self.found();
                self.err_here(format!("expected {what}, found {found}"));
                None
            }
        }
    }

    /// Takes a bare integer. A duration here is a type mismatch.
    fn take_u64(&mut self, what: &str) -> Option<Sp<u64>> {
        match self.peek() {
            Some(t) if t.kind == TokKind::Int => {
                self.bump();
                match t.text(self.src).parse::<u64>() {
                    Ok(v) => Some(Sp {
                        v,
                        line: t.line,
                        col: t.col,
                    }),
                    Err(_) => {
                        self.diags.push(Diag::new(
                            t.line,
                            t.col,
                            format!("integer '{}' is too large", t.text(self.src)),
                        ));
                        None
                    }
                }
            }
            Some(t) if t.kind == TokKind::IntSuffix => {
                let found = self.found();
                self.err_here(format!(
                    "type mismatch: expected a bare integer for the {what}, found duration {found}"
                ));
                None
            }
            _ => {
                let found = self.found();
                self.err_here(format!("expected an integer for the {what}, found {found}"));
                None
            }
        }
    }

    fn take_u32(&mut self, what: &str) -> Option<Sp<u32>> {
        let n = self.take_u64(what)?;
        match u32::try_from(n.v) {
            Ok(v) => Some(Sp {
                v,
                line: n.line,
                col: n.col,
            }),
            Err(_) => {
                self.diags.push(Diag::new(
                    n.line,
                    n.col,
                    format!("value {} is out of range for {what}", n.v),
                ));
                None
            }
        }
    }

    fn take_u16(&mut self, what: &str) -> Option<Sp<u16>> {
        let n = self.take_u64(what)?;
        match u16::try_from(n.v) {
            Ok(v) => Some(Sp {
                v,
                line: n.line,
                col: n.col,
            }),
            Err(_) => {
                self.diags.push(Diag::new(
                    n.line,
                    n.col,
                    format!("value {} is out of range for {what}", n.v),
                ));
                None
            }
        }
    }

    /// Takes a duration literal (`10ms`). A bare integer here is a type
    /// mismatch: every duration needs an explicit unit.
    fn take_dur(&mut self, what: &str) -> Option<Sp<Dur>> {
        match self.peek() {
            Some(t) if t.kind == TokKind::IntSuffix => {
                self.bump();
                let text = t.text(self.src);
                let split = text
                    .bytes()
                    .position(|b| !b.is_ascii_digit())
                    .unwrap_or(text.len());
                let (digits, suffix) = text.split_at(split);
                let Ok(value) = digits.parse::<u64>() else {
                    self.diags.push(Diag::new(
                        t.line,
                        t.col,
                        format!("integer '{digits}' is too large"),
                    ));
                    return None;
                };
                let Some(unit) = Unit::from_name(suffix) else {
                    self.diags.push(Diag::new(
                        t.line,
                        t.col,
                        format!("unknown duration unit '{suffix}' (expected ns, us, ms or s)"),
                    ));
                    return None;
                };
                Some(Sp {
                    v: Dur { value, unit },
                    line: t.line,
                    col: t.col,
                })
            }
            Some(t) if t.kind == TokKind::Int => {
                let text = t.text(self.src).to_string();
                self.err_here(format!(
                    "type mismatch: expected a duration for the {what}, found bare integer \
                     '{text}' (write '{text}ms', '{text}us', ...)"
                ));
                None
            }
            _ => {
                let found = self.found();
                self.err_here(format!("expected a duration for the {what}, found {found}"));
                None
            }
        }
    }

    /// A duration that must be strictly positive.
    fn take_pos_dur(&mut self, what: &str) -> Option<Sp<Dur>> {
        let d = self.take_dur(what)?;
        if d.v.value == 0 {
            self.diags.push(Diag::new(
                d.line,
                d.col,
                format!("the {what} must be positive"),
            ));
            return None;
        }
        Some(d)
    }

    /// Skips tokens until the next statement keyword or the scenario's
    /// closing brace, stepping over nested braced blocks wholesale.
    fn sync(&mut self) {
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            match t.kind {
                TokKind::LBrace => depth += 1,
                TokKind::RBrace => {
                    if depth == 0 {
                        return;
                    }
                    depth -= 1;
                }
                TokKind::Ident
                    if depth == 0 && STMT_KEYWORDS.contains(&t.text(self.src)) =>
                {
                    return;
                }
                _ => {}
            }
            self.bump();
        }
    }
}

/// Parsed-but-not-yet-validated pieces, spans attached.
#[derive(Default)]
struct Partial {
    name: Option<Sp<String>>,
    topology: Option<Sp<Topo>>,
    seed: Option<Sp<u64>>,
    coordinator: Option<Sp<bool>>,
    flows: Vec<Sp<FlowDecl>>,
    phases: Option<Sp<Vec<Sp<PhaseDecl>>>>,
    faults: Vec<Sp<FaultDecl>>,
    triggers: Vec<Sp<TriggerDecl>>,
    slo: Option<Sp<SloDecl>>,
    expect: Option<Sp<Expect>>,
}

/// Parses one scenario file into a validated [`Spec`].
///
/// Returns every diagnostic found — lexical, syntactic, then semantic —
/// or the spec when the file is clean.
pub fn parse(src: &str) -> Result<Spec, Vec<Diag>> {
    let mut p = Parser::new(src);
    let mut partial = Partial::default();

    parse_header(&mut p, &mut partial);
    if p.diags.is_empty() {
        parse_body(&mut p, &mut partial);
    }
    if !p.diags.is_empty() {
        return Err(p.diags);
    }
    validate(&p, partial)
}

fn parse_header(p: &mut Parser<'_>, partial: &mut Partial) {
    if p.expect_kw("scenario").is_none() {
        return;
    }
    match p.peek() {
        Some(t) if matches!(t.kind, TokKind::Str { closed: true }) => {
            p.bump();
            let name = t
                .text(p.src)
                .trim_start_matches('"')
                .trim_end_matches('"')
                .to_string();
            let ok = !name.is_empty()
                && name
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.'));
            if ok {
                partial.name = Some(Sp {
                    v: name,
                    line: t.line,
                    col: t.col,
                });
            } else {
                p.diags.push(Diag::new(
                    t.line,
                    t.col,
                    format!(
                        "scenario name \"{name}\" must be non-empty and use only \
                         letters, digits, '-', '_' and '.'"
                    ),
                ));
            }
        }
        Some(t) if matches!(t.kind, TokKind::Str { closed: false }) => {
            p.bump();
            p.diags
                .push(Diag::new(t.line, t.col, "unterminated scenario name string"));
        }
        _ => {
            let found = p.found();
            p.err_here(format!("expected a quoted scenario name, found {found}"));
        }
    }
}

fn parse_body(p: &mut Parser<'_>, partial: &mut Partial) {
    if p.expect_punct(TokKind::LBrace, "'{' to open the scenario block")
        .is_none()
    {
        return;
    }
    loop {
        match p.peek() {
            None => {
                p.err_here("missing '}' to close the scenario block");
                return;
            }
            Some(t) if t.kind == TokKind::RBrace => {
                p.bump();
                break;
            }
            Some(t) if t.kind == TokKind::Ident => {
                let kw = t.text(p.src).to_string();
                let before = p.diags.len();
                parse_statement(p, partial, &kw, t);
                if p.diags.len() > before {
                    p.sync();
                }
            }
            Some(t) => {
                let found = p.found();
                p.diags.push(Diag::new(
                    t.line,
                    t.col,
                    format!("expected a statement keyword, found {found}"),
                ));
                p.sync();
            }
        }
    }
    if p.peek().is_some() {
        p.err_here("trailing input after the scenario block");
    }
}

fn dup_check<T>(p: &mut Parser<'_>, slot: &Option<Sp<T>>, kw: &str, at: Tok) -> bool {
    if slot.is_some() {
        p.diags.push(Diag::new(
            at.line,
            at.col,
            format!("duplicate '{kw}' statement"),
        ));
        return true;
    }
    false
}

fn parse_statement(p: &mut Parser<'_>, partial: &mut Partial, kw: &str, at: Tok) {
    match kw {
        "topology" => {
            if dup_check(p, &partial.topology, kw, at) {
                p.bump();
                return;
            }
            p.bump();
            if let Some(topo) = parse_topology(p) {
                partial.topology = Some(Sp {
                    v: topo,
                    line: at.line,
                    col: at.col,
                });
            }
        }
        "seed" => {
            if dup_check(p, &partial.seed, kw, at) {
                p.bump();
                return;
            }
            p.bump();
            partial.seed = p.take_u64("seed");
        }
        "coordinator" => {
            if dup_check(p, &partial.coordinator, kw, at) {
                p.bump();
                return;
            }
            p.bump();
            if let Some(t) = p.take_ident("'on' or 'off'") {
                match t.text(p.src) {
                    "on" => {
                        partial.coordinator = Some(Sp {
                            v: true,
                            line: at.line,
                            col: at.col,
                        });
                    }
                    "off" => {
                        partial.coordinator = Some(Sp {
                            v: false,
                            line: at.line,
                            col: at.col,
                        });
                    }
                    other => {
                        p.diags.push(Diag::new(
                            t.line,
                            t.col,
                            format!("expected 'on' or 'off', found '{other}'"),
                        ));
                    }
                }
            }
        }
        "flow" => {
            p.bump();
            if let Some(flow) = parse_flow(p) {
                partial.flows.push(Sp {
                    v: flow,
                    line: at.line,
                    col: at.col,
                });
            }
        }
        "phases" => {
            if dup_check(p, &partial.phases, kw, at) {
                p.bump();
                return;
            }
            p.bump();
            if let Some(list) = parse_phases(p) {
                partial.phases = Some(Sp {
                    v: list,
                    line: at.line,
                    col: at.col,
                });
            }
        }
        "fault" => {
            p.bump();
            if let Some(fault) = parse_fault(p) {
                partial.faults.push(Sp {
                    v: fault,
                    line: at.line,
                    col: at.col,
                });
            }
        }
        "on" => {
            p.bump();
            if let Some(trigger) = parse_trigger(p) {
                partial.triggers.push(Sp {
                    v: trigger,
                    line: at.line,
                    col: at.col,
                });
            }
        }
        "slo" => {
            if dup_check(p, &partial.slo, kw, at) {
                p.bump();
                return;
            }
            p.bump();
            if let Some(slo) = parse_slo(p) {
                partial.slo = Some(Sp {
                    v: slo,
                    line: at.line,
                    col: at.col,
                });
            }
        }
        "expect" => {
            if dup_check(p, &partial.expect, kw, at) {
                p.bump();
                return;
            }
            p.bump();
            if let Some(t) = p.take_ident("'survived', 'rerouted' or 'escalated'") {
                match Expect::from_name(t.text(p.src)) {
                    Some(e) => {
                        partial.expect = Some(Sp {
                            v: e,
                            line: at.line,
                            col: at.col,
                        });
                    }
                    None => {
                        p.diags.push(Diag::new(
                            t.line,
                            t.col,
                            format!(
                                "unknown verdict '{}' (expected survived, rerouted or escalated)",
                                t.text(p.src)
                            ),
                        ));
                    }
                }
            }
        }
        other => {
            p.diags.push(Diag::new(
                at.line,
                at.col,
                format!("unknown keyword '{other}'"),
            ));
            p.bump();
        }
    }
}

fn parse_topology(p: &mut Parser<'_>) -> Option<Topo> {
    let t = p.take_ident("a topology (two_node, star, ring, fat_tree, torus)")?;
    let shape = t.text(p.src).to_string();
    match shape.as_str() {
        "two_node" => Some(Topo::TwoNode),
        "star" => {
            let n = p.take_u16("host count")?;
            if n.v < 2 {
                p.diags
                    .push(Diag::new(n.line, n.col, "a star needs at least 2 hosts"));
                return None;
            }
            Some(Topo::Star(n.v))
        }
        "ring" => {
            let n = p.take_u16("host count")?;
            if n.v < 3 {
                p.diags
                    .push(Diag::new(n.line, n.col, "a ring needs at least 3 hosts"));
                return None;
            }
            Some(Topo::Ring(n.v))
        }
        "fat_tree" => {
            let spines = p.take_u16("spine count")?;
            let leaves = p.take_u16("leaf count")?;
            let hosts = p.take_u16("hosts-per-leaf count")?;
            if spines.v == 0 || leaves.v == 0 || hosts.v == 0 {
                p.diags.push(Diag::new(
                    spines.line,
                    spines.col,
                    "fat_tree needs at least one spine, leaf and host per leaf",
                ));
                return None;
            }
            Some(Topo::FatTree {
                spines: spines.v,
                leaves: leaves.v,
                hosts_per_leaf: hosts.v,
            })
        }
        "torus" => {
            let cols = p.take_u16("column count")?;
            let rows = p.take_u16("row count")?;
            if cols.v < 2 || rows.v < 2 {
                p.diags.push(Diag::new(
                    cols.line,
                    cols.col,
                    "a torus needs at least 2 columns and 2 rows",
                ));
                return None;
            }
            Some(Topo::Torus {
                cols: cols.v,
                rows: rows.v,
            })
        }
        other => {
            p.diags.push(Diag::new(
                t.line,
                t.col,
                format!(
                    "unknown topology '{other}' (expected two_node, star, ring, fat_tree or torus)"
                ),
            ));
            None
        }
    }
}

fn parse_flow(p: &mut Parser<'_>) -> Option<FlowDecl> {
    let src = p.take_u16("source node")?;
    p.expect_punct(TokKind::Arrow, "'->'")?;
    let dst = p.take_u16("destination node")?;
    let kind_tok = p.take_ident("'validated', 'open' or 'closed'")?;
    let kind = match kind_tok.text(p.src) {
        "validated" => {
            let mut size = 256u32;
            let mut pipeline = 2u32;
            if p.peek().is_some_and(|t| t.text(p.src) == "size") {
                p.bump();
                let s = p.take_u32("message size")?;
                if !(16..=1_048_576).contains(&s.v) {
                    p.diags.push(Diag::new(
                        s.line,
                        s.col,
                        format!("message size {} must be within 16..=1048576 bytes", s.v),
                    ));
                    return None;
                }
                size = s.v;
            }
            if p.peek().is_some_and(|t| t.text(p.src) == "pipeline") {
                p.bump();
                let d = p.take_u32("pipeline depth")?;
                if !(1..=64).contains(&d.v) {
                    p.diags.push(Diag::new(
                        d.line,
                        d.col,
                        format!("pipeline depth {} must be within 1..=64", d.v),
                    ));
                    return None;
                }
                pipeline = d.v;
            }
            FlowKind::Validated { size, pipeline }
        }
        "open" => {
            let arrival = parse_arrival(p)?;
            p.expect_kw("sizes")?;
            let sizes = parse_mix(p)?;
            FlowKind::Open { arrival, sizes }
        }
        "closed" => {
            p.expect_kw("think")?;
            let think = p.take_dur("think time")?;
            p.expect_kw("sizes")?;
            let sizes = parse_mix(p)?;
            FlowKind::Closed {
                think: think.v,
                sizes,
            }
        }
        other => {
            p.diags.push(Diag::new(
                kind_tok.line,
                kind_tok.col,
                format!("unknown flow kind '{other}' (expected validated, open or closed)"),
            ));
            return None;
        }
    };
    Some(FlowDecl {
        src: src.v,
        dst: dst.v,
        kind,
    })
}

fn parse_arrival(p: &mut Parser<'_>) -> Option<ArrivalDecl> {
    let t = p.take_ident("an arrival model ('every', 'jitter' or 'burst')")?;
    match t.text(p.src) {
        "every" => Some(ArrivalDecl::Every(p.take_pos_dur("arrival gap")?.v)),
        "jitter" => {
            let min = p.take_pos_dur("jitter lower edge")?;
            p.expect_punct(TokKind::DotDot, "'..'")?;
            let max = p.take_pos_dur("jitter upper edge")?;
            if min.v.as_nanos() > max.v.as_nanos() {
                p.diags.push(Diag::new(
                    min.line,
                    min.col,
                    "jitter window is reversed (lower edge exceeds upper edge)",
                ));
                return None;
            }
            Some(ArrivalDecl::Jitter {
                min: min.v,
                max: max.v,
            })
        }
        "burst" => {
            p.expect_kw("scale")?;
            let scale = p.take_pos_dur("burst scale")?;
            p.expect_kw("shape")?;
            let shape = p.take_u32("burst shape (permille)")?;
            if !(1..=10_000).contains(&shape.v) {
                p.diags.push(Diag::new(
                    shape.line,
                    shape.col,
                    format!("burst shape {} must be within 1..=10000 permille", shape.v),
                ));
                return None;
            }
            p.expect_kw("cap")?;
            let cap = p.take_pos_dur("burst cap")?;
            if cap.v.as_nanos() < scale.v.as_nanos() {
                p.diags.push(Diag::new(
                    cap.line,
                    cap.col,
                    "burst cap is smaller than its scale",
                ));
                return None;
            }
            Some(ArrivalDecl::Burst {
                scale: scale.v,
                shape_permille: shape.v,
                cap: cap.v,
            })
        }
        other => {
            p.diags.push(Diag::new(
                t.line,
                t.col,
                format!("unknown arrival model '{other}' (expected every, jitter or burst)"),
            ));
            None
        }
    }
}

fn parse_mix(p: &mut Parser<'_>) -> Option<MixDecl> {
    match p.peek() {
        Some(t) if t.kind == TokKind::Int => {
            let s = p.take_u32("message size")?;
            Some(MixDecl::Fixed(s.v))
        }
        Some(t) if t.kind == TokKind::Ident && t.text(p.src) == "mix" => {
            p.bump();
            p.expect_punct(TokKind::LBrace, "'{' to open the size mix")?;
            let mut options = Vec::new();
            loop {
                let bytes = p.take_u32("mix entry size")?;
                p.expect_punct(TokKind::Colon, "':' between size and weight")?;
                let weight = p.take_u32("mix entry weight")?;
                if weight.v == 0 {
                    p.diags.push(Diag::new(
                        weight.line,
                        weight.col,
                        "mix entry weight must be positive",
                    ));
                    return None;
                }
                options.push((bytes.v, weight.v));
                match p.peek() {
                    Some(t) if t.kind == TokKind::Comma => {
                        p.bump();
                    }
                    Some(t) if t.kind == TokKind::RBrace => {
                        p.bump();
                        break;
                    }
                    _ => {
                        let found = p.found();
                        p.err_here(format!(
                            "expected ',' or '}}' in the size mix, found {found}"
                        ));
                        return None;
                    }
                }
            }
            Some(MixDecl::Weighted(options))
        }
        _ => {
            let found = p.found();
            p.err_here(format!(
                "expected a size in bytes or 'mix {{ ... }}', found {found}"
            ));
            None
        }
    }
}

fn parse_phases(p: &mut Parser<'_>) -> Option<Vec<Sp<PhaseDecl>>> {
    p.expect_punct(TokKind::LBrace, "'{' to open the phase list")?;
    let mut list = Vec::new();
    loop {
        match p.peek() {
            Some(t) if t.kind == TokKind::RBrace => {
                p.bump();
                break;
            }
            Some(t) if t.kind == TokKind::Ident => {
                let Some(kind) = PhaseName::from_name(t.text(p.src)) else {
                    p.diags.push(Diag::new(
                        t.line,
                        t.col,
                        format!(
                            "unknown phase '{}' (expected warmup, steady, fault or drain)",
                            t.text(p.src)
                        ),
                    ));
                    return None;
                };
                p.bump();
                let duration = p.take_pos_dur("phase length")?;
                list.push(Sp {
                    v: PhaseDecl {
                        kind,
                        duration: duration.v,
                    },
                    line: t.line,
                    col: t.col,
                });
            }
            _ => {
                let found = p.found();
                p.err_here(format!("expected a phase name or '}}', found {found}"));
                return None;
            }
        }
    }
    Some(list)
}

fn parse_action(p: &mut Parser<'_>) -> Option<Action> {
    let t = p.take_ident(
        "a fault action (bitflip, hang, link_down, noise, switch_death, link_flap)",
    )?;
    match t.text(p.src) {
        "bitflip" => {
            p.expect_kw("node")?;
            let node = p.take_u16("node id")?;
            p.expect_kw("target")?;
            let tt = p.take_ident("an injection target")?;
            let Some(target) = Target::from_name(tt.text(p.src)) else {
                p.diags.push(Diag::new(
                    tt.line,
                    tt.col,
                    format!(
                        "unknown injection target '{}' (expected send_chunk_code, \
                         packet_buffer or send_record)",
                        tt.text(p.src)
                    ),
                ));
                return None;
            };
            Some(Action::BitFlip {
                node: node.v,
                target,
            })
        }
        "hang" => {
            let which = p.take_ident("'node' or 'nodes'")?;
            match which.text(p.src) {
                "node" => Some(Action::Hang {
                    node: p.take_u16("node id")?.v,
                }),
                "nodes" => {
                    let mut nodes = Vec::new();
                    while p.peek().is_some_and(|t| t.kind == TokKind::Int) {
                        nodes.push(p.take_u16("node id")?.v);
                    }
                    if nodes.is_empty() {
                        p.err_here("expected at least one node id after 'nodes'");
                        return None;
                    }
                    p.expect_kw("skew")?;
                    let skew = p.take_dur("hang skew")?;
                    Some(Action::CorrelatedHang {
                        nodes,
                        skew: skew.v,
                    })
                }
                other => {
                    p.diags.push(Diag::new(
                        which.line,
                        which.col,
                        format!("expected 'node' or 'nodes', found '{other}'"),
                    ));
                    None
                }
            }
        }
        "link_down" => {
            p.expect_kw("node")?;
            let node = p.take_u16("node id")?;
            p.expect_kw("for")?;
            let duration = p.take_pos_dur("outage length")?;
            Some(Action::LinkDown {
                node: node.v,
                duration: duration.v,
            })
        }
        "noise" => {
            p.expect_kw("drop")?;
            let drop = p.take_u32("drop probability (permille)")?;
            p.expect_kw("corrupt")?;
            let corrupt = p.take_u32("corrupt probability (permille)")?;
            for v in [&drop, &corrupt] {
                if v.v > 1000 {
                    p.diags.push(Diag::new(
                        v.line,
                        v.col,
                        format!("probability {} exceeds 1000 permille", v.v),
                    ));
                    return None;
                }
            }
            p.expect_kw("for")?;
            let duration = p.take_pos_dur("noise window")?;
            Some(Action::Noise {
                drop_permille: drop.v,
                corrupt_permille: corrupt.v,
                duration: duration.v,
            })
        }
        "switch_death" => Some(Action::SwitchDeath {
            switch: p.take_u16("switch id")?.v,
        }),
        "link_flap" => {
            p.expect_kw("node")?;
            let node = p.take_u16("node id")?;
            p.expect_kw("period")?;
            let period = p.take_pos_dur("flap period")?;
            p.expect_kw("count")?;
            let count = p.take_u32("flap count")?;
            if count.v == 0 {
                p.diags.push(Diag::new(
                    count.line,
                    count.col,
                    "flap count must be positive",
                ));
                return None;
            }
            Some(Action::LinkFlap {
                node: node.v,
                period: period.v,
                count: count.v,
            })
        }
        other => {
            p.diags.push(Diag::new(
                t.line,
                t.col,
                format!(
                    "unknown fault action '{other}' (expected bitflip, hang, link_down, \
                     noise, switch_death or link_flap)"
                ),
            ));
            None
        }
    }
}

fn parse_fault(p: &mut Parser<'_>) -> Option<FaultDecl> {
    p.expect_kw("in")?;
    let pt = p.take_ident("a phase name")?;
    let Some(phase) = PhaseName::from_name(pt.text(p.src)) else {
        p.diags.push(Diag::new(
            pt.line,
            pt.col,
            format!(
                "unknown phase '{}' (expected warmup, steady, fault or drain)",
                pt.text(p.src)
            ),
        ));
        return None;
    };
    p.expect_kw("at")?;
    let at = p.take_dur("fault offset")?;
    let action = parse_action(p)?;
    Some(FaultDecl {
        phase,
        at: at.v,
        action,
    })
}

fn parse_trigger(p: &mut Parser<'_>) -> Option<TriggerDecl> {
    p.expect_kw("node")?;
    let node = p.take_u16("node id")?;
    p.expect_kw("phase")?;
    let pt = p.take_ident("an FTD phase name")?;
    let Some(phase) = FtdPhase::from_name(pt.text(p.src)) else {
        p.diags.push(Diag::new(
            pt.line,
            pt.col,
            format!(
                "unknown FTD phase '{}' (expected reset, clear_sram, reload_mcp, \
                 restart_engines, restore_page_table or restore_routes)",
                pt.text(p.src)
            ),
        ));
        return None;
    };
    let action = parse_action(p)?;
    let mut limit = 1u32;
    if p.peek().is_some_and(|t| t.text(p.src) == "limit") {
        p.bump();
        let l = p.take_u32("trigger limit")?;
        if l.v == 0 {
            p.diags
                .push(Diag::new(l.line, l.col, "trigger limit must be positive"));
            return None;
        }
        limit = l.v;
    }
    Some(TriggerDecl {
        node: node.v,
        phase,
        action,
        limit,
    })
}

fn parse_slo(p: &mut Parser<'_>) -> Option<SloDecl> {
    p.expect_punct(TokKind::LBrace, "'{' to open the slo block")?;
    let mut slo = SloDecl::default();
    loop {
        match p.peek() {
            Some(t) if t.kind == TokKind::RBrace => {
                p.bump();
                break;
            }
            Some(t) if t.kind == TokKind::Ident => {
                let key = t.text(p.src).to_string();
                p.bump();
                match key.as_str() {
                    "flow_blackout" => {
                        if slo.flow_blackout.is_some() {
                            p.diags
                                .push(Diag::new(t.line, t.col, "duplicate 'flow_blackout' bound"));
                            return None;
                        }
                        slo.flow_blackout = Some(p.take_pos_dur("flow blackout bound")?.v);
                    }
                    "fault_blackout" => {
                        if slo.fault_blackout.is_some() {
                            p.diags
                                .push(Diag::new(t.line, t.col, "duplicate 'fault_blackout' bound"));
                            return None;
                        }
                        slo.fault_blackout = Some(p.take_pos_dur("fault blackout bound")?.v);
                    }
                    "steady_completed" => {
                        if slo.steady_completed.is_some() {
                            p.diags.push(Diag::new(
                                t.line,
                                t.col,
                                "duplicate 'steady_completed' bound",
                            ));
                            return None;
                        }
                        let v = p.take_u32("completion bound (permille)")?;
                        if v.v > 1000 {
                            p.diags.push(Diag::new(
                                v.line,
                                v.col,
                                format!("completion bound {} exceeds 1000 permille", v.v),
                            ));
                            return None;
                        }
                        slo.steady_completed = Some(v.v);
                    }
                    "p99_overhead" => {
                        if slo.p99_overhead.is_some() {
                            p.diags
                                .push(Diag::new(t.line, t.col, "duplicate 'p99_overhead' bound"));
                            return None;
                        }
                        slo.p99_overhead = Some(p.take_pos_dur("p99 overhead bound")?.v);
                    }
                    other => {
                        p.diags.push(Diag::new(
                            t.line,
                            t.col,
                            format!(
                                "unknown slo bound '{other}' (expected flow_blackout, \
                                 fault_blackout, steady_completed or p99_overhead)"
                            ),
                        ));
                        return None;
                    }
                }
            }
            _ => {
                let found = p.found();
                p.err_here(format!("expected an slo bound or '}}', found {found}"));
                return None;
            }
        }
    }
    Some(slo)
}

/// All node ids an action touches.
fn action_nodes(a: &Action) -> Vec<u16> {
    match a {
        Action::BitFlip { node, .. }
        | Action::Hang { node }
        | Action::LinkDown { node, .. }
        | Action::LinkFlap { node, .. } => vec![*node],
        Action::CorrelatedHang { nodes, .. } => nodes.clone(),
        Action::Noise { .. } | Action::SwitchDeath { .. } => Vec::new(),
    }
}

/// Cross-declaration validation on a syntactically clean parse.
fn validate(p: &Parser<'_>, partial: Partial) -> Result<Spec, Vec<Diag>> {
    let mut diags = Vec::new();
    let head = partial
        .name
        .as_ref()
        .map_or((1, 1), |n| (n.line, n.col));

    let Partial {
        name,
        topology,
        seed,
        coordinator,
        flows,
        phases,
        faults,
        triggers,
        slo,
        expect,
    } = partial;

    let name = match name {
        Some(n) => n.v,
        None => {
            diags.push(Diag::new(head.0, head.1, "missing scenario name"));
            String::new()
        }
    };
    if topology.is_none() {
        diags.push(Diag::new(
            head.0,
            head.1,
            "missing 'topology' statement",
        ));
    }
    if phases.is_none() {
        diags.push(Diag::new(head.0, head.1, "missing 'phases' statement"));
    }
    if expect.is_none() {
        diags.push(Diag::new(head.0, head.1, "missing 'expect' statement"));
    }
    if flows.is_empty() {
        diags.push(Diag::new(
            head.0,
            head.1,
            "a scenario needs at least one 'flow'",
        ));
    }
    let (Some(topology), Some(phases), Some(expect)) = (topology, phases, expect) else {
        return Err(diags);
    };

    let topo = topology.v;
    let nodes = topo.node_count();
    let switches = topo.switch_count();
    if u32::from(nodes) > MAX_NODES {
        diags.push(Diag::new(
            topology.line,
            topology.col,
            format!("topology has {nodes} hosts; the ceiling is {MAX_NODES}"),
        ));
    }
    if nodes < 2 {
        diags.push(Diag::new(
            topology.line,
            topology.col,
            format!("topology has only {nodes} host(s); flows need two endpoints"),
        ));
    }

    // Phases: warmup first, each kind at most once, timeline order.
    let list = &phases.v;
    match list.first() {
        None => diags.push(Diag::new(
            phases.line,
            phases.col,
            "the phase list is empty",
        )),
        Some(first) if first.v.kind != PhaseName::Warmup => diags.push(Diag::new(
            first.line,
            first.col,
            "the first phase must be 'warmup'",
        )),
        Some(_) => {}
    }
    for pair in list.windows(2) {
        if let [a, b] = pair {
            if b.v.kind <= a.v.kind {
                let msg = if b.v.kind == a.v.kind {
                    format!("duplicate phase '{}'", b.v.kind.name())
                } else {
                    format!(
                        "phase '{}' cannot follow '{}' (timeline order is \
                         warmup, steady, fault, drain)",
                        b.v.kind.name(),
                        a.v.kind.name()
                    )
                };
                diags.push(Diag::new(b.line, b.col, msg));
            }
        }
    }

    // Flows: endpoints in range, and no two generators may share a GM
    // port on one node (validated and load flows each bind fixed ports).
    let mut validated_srcs: BTreeMap<u16, ()> = BTreeMap::new();
    let mut validated_dsts: BTreeMap<u16, ()> = BTreeMap::new();
    let mut load_srcs: BTreeMap<u16, ()> = BTreeMap::new();
    let mut load_dst_model: BTreeMap<u16, &'static str> = BTreeMap::new();
    for f in &flows {
        for (what, id) in [("source", f.v.src), ("destination", f.v.dst)] {
            if id >= nodes {
                diags.push(Diag::new(
                    f.line,
                    f.col,
                    format!(
                        "{what} node {id} is out of range (topology has hosts 0..{nodes})"
                    ),
                ));
            }
        }
        if f.v.src == f.v.dst {
            diags.push(Diag::new(
                f.line,
                f.col,
                format!("flow endpoints must differ (both are node {})", f.v.src),
            ));
        }
        match &f.v.kind {
            FlowKind::Validated { .. } => {
                if validated_srcs.insert(f.v.src, ()).is_some() {
                    diags.push(Diag::new(
                        f.line,
                        f.col,
                        format!("two validated flows share source node {}", f.v.src),
                    ));
                }
                if validated_dsts.insert(f.v.dst, ()).is_some() {
                    diags.push(Diag::new(
                        f.line,
                        f.col,
                        format!("two validated flows share destination node {}", f.v.dst),
                    ));
                }
            }
            kind => {
                if load_srcs.insert(f.v.src, ()).is_some() {
                    diags.push(Diag::new(
                        f.line,
                        f.col,
                        format!("two load flows share source node {}", f.v.src),
                    ));
                }
                let model = if matches!(kind, FlowKind::Closed { .. }) {
                    "closed"
                } else {
                    "open"
                };
                if let Some(prev) = load_dst_model.insert(f.v.dst, model) {
                    if prev != model {
                        diags.push(Diag::new(
                            f.line,
                            f.col,
                            format!(
                                "load flows to node {} mix open and closed models \
                                 (one responder per destination)",
                                f.v.dst
                            ),
                        ));
                    }
                }
            }
        }
    }

    // Faults: declared phase, not warmup, offset inside the phase,
    // action endpoints in range.
    for f in &faults {
        if f.v.phase == PhaseName::Warmup {
            diags.push(Diag::new(
                f.line,
                f.col,
                "faults cannot fire in the warmup phase (inject in steady, fault or drain)",
            ));
        }
        match list.iter().find(|ph| ph.v.kind == f.v.phase) {
            None => diags.push(Diag::new(
                f.line,
                f.col,
                format!("fault names phase '{}', which is not declared", f.v.phase.name()),
            )),
            Some(ph) => {
                if f.v.at.as_nanos() > ph.v.duration.as_nanos() {
                    diags.push(Diag::new(
                        f.line,
                        f.col,
                        format!(
                            "fault offset exceeds the '{}' phase ({} ns > {} ns)",
                            f.v.phase.name(),
                            f.v.at.as_nanos(),
                            ph.v.duration.as_nanos()
                        ),
                    ));
                }
            }
        }
        check_action(&mut diags, &f.v.action, nodes, switches, topo, f.line, f.col);
    }
    for t in &triggers {
        if t.v.node >= nodes {
            diags.push(Diag::new(
                t.line,
                t.col,
                format!(
                    "trigger node {} is out of range (topology has hosts 0..{nodes})",
                    t.v.node
                ),
            ));
        }
        check_action(&mut diags, &t.v.action, nodes, switches, topo, t.line, t.col);
    }

    // SLO bounds must be observable.
    let slo_sp = slo;
    let slo = slo_sp.as_ref().map(|s| s.v).unwrap_or_default();
    let has_validated = !validated_srcs.is_empty();
    let has_load = !load_srcs.is_empty();
    if let Some(s) = &slo_sp {
        let has_phase = |k: PhaseName| list.iter().any(|p| p.v.kind == k);
        if slo.flow_blackout.is_some() && !has_validated {
            diags.push(Diag::new(
                s.line,
                s.col,
                "'flow_blackout' needs at least one validated flow to observe",
            ));
        }
        for (key, set, phase) in [
            ("fault_blackout", slo.fault_blackout.is_some(), PhaseName::Fault),
            ("steady_completed", slo.steady_completed.is_some(), PhaseName::Steady),
            ("p99_overhead", slo.p99_overhead.is_some(), PhaseName::Steady),
        ] {
            if set && !has_load {
                diags.push(Diag::new(
                    s.line,
                    s.col,
                    format!("'{key}' needs at least one open or closed load flow"),
                ));
            }
            if set && !has_phase(phase) {
                diags.push(Diag::new(
                    s.line,
                    s.col,
                    format!("'{key}' needs a declared '{}' phase", phase.name()),
                ));
            }
        }
    }

    // The pinned verdict must be reachable.
    let coordinator = coordinator.map(|c| c.v).unwrap_or(false);
    let has_faults = !faults.is_empty() || !triggers.is_empty();
    match expect.v {
        Expect::Rerouted if !coordinator => diags.push(Diag::new(
            expect.line,
            expect.col,
            "'expect rerouted' is unreachable with the coordinator off \
             (add 'coordinator on')",
        )),
        Expect::Rerouted | Expect::Escalated if !has_faults => diags.push(Diag::new(
            expect.line,
            expect.col,
            format!(
                "'expect {}' is unreachable: the scenario declares no faults",
                expect.v.name()
            ),
        )),
        _ => {}
    }

    if !diags.is_empty() {
        return Err(diags);
    }
    let _ = p;
    Ok(Spec {
        name,
        topology: topo,
        seed: seed.map(|s| s.v),
        coordinator,
        flows: flows.into_iter().map(|f| f.v).collect(),
        phases: list.iter().map(|p| p.v).collect(),
        faults: faults.into_iter().map(|f| f.v).collect(),
        triggers: triggers.into_iter().map(|t| t.v).collect(),
        slo,
        expect: expect.v,
    })
}

#[allow(clippy::too_many_arguments)]
fn check_action(
    diags: &mut Vec<Diag>,
    action: &Action,
    nodes: u16,
    switches: u16,
    topo: Topo,
    line: u32,
    col: u32,
) {
    for n in action_nodes(action) {
        if n >= nodes {
            diags.push(Diag::new(
                line,
                col,
                format!("node {n} is out of range (topology has hosts 0..{nodes})"),
            ));
        }
    }
    if let Action::CorrelatedHang { nodes: hung, .. } = action {
        let mut seen: BTreeMap<u16, ()> = BTreeMap::new();
        for n in hung {
            if seen.insert(*n, ()).is_some() {
                diags.push(Diag::new(
                    line,
                    col,
                    format!("correlated hang lists node {n} twice"),
                ));
            }
        }
    }
    if let Action::SwitchDeath { switch } = action {
        if topo == Topo::TwoNode {
            diags.push(Diag::new(
                line,
                col,
                "two_node has no switches to kill",
            ));
        } else if *switch >= switches {
            diags.push(Diag::new(
                line,
                col,
                format!(
                    "switch {switch} is out of range (topology has switches 0..{switches})"
                ),
            ));
        }
    }
}
