//! `ftgm-scenario` — a declarative campaign language for the FTGM
//! simulator.
//!
//! A scenario file names, in one screen of text, everything a
//! fault-tolerance experiment needs: the world shape, the traffic
//! (validated probe flows and open/closed-loop load), a phase timeline,
//! the fault schedule (absolute and recovery-phase-triggered), the SLO
//! bounds to hold, and — crucially — the verdict the author *expects*
//! the run to produce:
//!
//! ```text
//! scenario "star8-two-nic-hang" {
//!   topology star 8
//!   coordinator on
//!   flow 0 -> 1 validated size 256 pipeline 2
//!   flow 2 -> 3 validated size 256 pipeline 2
//!   phases { warmup 10ms fault 2490ms }
//!   fault in fault at 5ms hang nodes 1 3 skew 500us
//!   slo { flow_blackout 2s }
//!   expect survived
//! }
//! ```
//!
//! The pipeline is [`scan`](scan::scan) → [`parse`](parse::parse) →
//! [`compile`](compile::compile) → [`run_compiled`](run::run_compiled):
//! text to spanned tokens, tokens to a validated [`Spec`](ast::Spec)
//! (every error a `line:col`-anchored [`Diag`](parse::Diag)), spec to
//! the existing chaos + workload engines, and execution to a
//! [`ScenarioOutcome`](run::ScenarioOutcome) whose verdict is checked
//! against the `expect` line. The language is fully round-trippable —
//! [`print`](print::print) emits the canonical spelling and
//! `parse(print(spec)) == spec` — and total: the scanner tokenizes any
//! byte soup without panicking, a property the fuzz suite pins.
//!
//! Scenario files live in `scenarios/` (goldens in `scenarios/golden/`,
//! rejection fixtures in `scenarios/bad/`); `docs/SCENARIOS.md` is the
//! grammar reference.

pub mod ast;
pub mod compile;
pub mod gen;
pub mod parse;
pub mod print;
pub mod run;
pub mod scan;

pub use ast::Spec;
pub use compile::{compile, CompiledScenario, DEFAULT_SEED};
pub use gen::gen_spec;
pub use parse::{parse, render_diags, Diag};
pub use print::print;
pub use run::{run_compiled, run_corpus_parallel, run_text, ExpectMismatch, ScenarioOutcome};
pub use scan::{scan, Tok, TokKind};
