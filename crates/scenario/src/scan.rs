//! Scenario-file scanner: raw text → spanned tokens.
//!
//! The scanner is total: every input byte lands in exactly one token
//! (trivia — whitespace and `#` comments — included), tokens are
//! contiguous, and nothing panics on arbitrary bytes. The fuzz suite
//! holds the scanner to that contract directly, so the parser above it
//! can trust spans without re-checking bounds.

/// What a token is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// `[A-Za-z_][A-Za-z0-9_]*` — keywords and names.
    Ident,
    /// `[0-9]+` with no letter suffix.
    Int,
    /// `[0-9]+` immediately followed by an identifier suffix (`10ms`).
    /// The parser validates the suffix against the known units.
    IntSuffix,
    /// A double-quoted string (no escapes). `closed` is false when the
    /// line or file ended before the closing quote.
    Str {
        /// Whether the closing quote was found.
        closed: bool,
    },
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `->`
    Arrow,
    /// `..`
    DotDot,
    /// Whitespace run (trivia).
    Space,
    /// `#` comment to end of line (trivia).
    Comment,
    /// Any byte sequence the scanner has no rule for (one char each).
    Unknown,
}

impl TokKind {
    /// Trivia tokens carry no meaning; the parser skips them.
    pub fn is_trivia(self) -> bool {
        matches!(self, TokKind::Space | TokKind::Comment)
    }
}

/// One token: kind plus byte span plus 1-based source position.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Start byte offset into the source.
    pub start: usize,
    /// End byte offset (exclusive).
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based column (in bytes) of the first byte on its line.
    pub col: u32,
}

impl Tok {
    /// The token's text.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

struct Scanner<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Scanner<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    /// Advances one char (handling UTF-8 width and line/col tracking).
    fn bump(&mut self) {
        let Some(&b) = self.bytes.get(self.pos) else {
            return;
        };
        let width = if b < 0x80 {
            1
        } else {
            self.src
                .get(self.pos..)
                .and_then(|s| s.chars().next())
                .map_or(1, char::len_utf8)
        };
        self.pos += width;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += width as u32;
        }
    }

    fn eat_while(&mut self, pred: impl Fn(u8) -> bool) {
        while let Some(b) = self.peek() {
            if !pred(b) {
                break;
            }
            self.bump();
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Scans `src` into a contiguous, byte-covering token stream.
pub fn scan(src: &str) -> Vec<Tok> {
    let mut s = Scanner {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut toks = Vec::new();
    while let Some(b) = s.peek() {
        let (start, line, col) = (s.pos, s.line, s.col);
        let kind = match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                s.eat_while(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'));
                TokKind::Space
            }
            b'#' => {
                s.eat_while(|b| b != b'\n');
                TokKind::Comment
            }
            b'"' => {
                s.bump();
                s.eat_while(|b| b != b'"' && b != b'\n');
                let closed = s.peek() == Some(b'"');
                if closed {
                    s.bump();
                }
                TokKind::Str { closed }
            }
            b'{' => {
                s.bump();
                TokKind::LBrace
            }
            b'}' => {
                s.bump();
                TokKind::RBrace
            }
            b':' => {
                s.bump();
                TokKind::Colon
            }
            b',' => {
                s.bump();
                TokKind::Comma
            }
            b'-' if s.peek2() == Some(b'>') => {
                s.bump();
                s.bump();
                TokKind::Arrow
            }
            b'.' if s.peek2() == Some(b'.') => {
                s.bump();
                s.bump();
                TokKind::DotDot
            }
            b'0'..=b'9' => {
                s.eat_while(|b| b.is_ascii_digit());
                if s.peek().is_some_and(is_ident_start) {
                    s.eat_while(is_ident_continue);
                    TokKind::IntSuffix
                } else {
                    TokKind::Int
                }
            }
            b if is_ident_start(b) => {
                s.eat_while(is_ident_continue);
                TokKind::Ident
            }
            _ => {
                s.bump();
                TokKind::Unknown
            }
        };
        toks.push(Tok {
            kind,
            start,
            end: s.pos,
            line,
            col,
        });
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_cover_every_byte_contiguously() {
        let src = "scenario \"x\" {\n  topology star 8 # hi\n  flow 0 -> 1\n}\n";
        let toks = scan(src);
        let mut pos = 0;
        for t in &toks {
            assert_eq!(t.start, pos, "{t:?}");
            assert!(t.end > t.start, "{t:?}");
            pos = t.end;
        }
        assert_eq!(pos, src.len());
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let toks = scan("ab\ncd");
        let cd = toks.last().copied().unwrap_or(toks[0]);
        assert_eq!((cd.line, cd.col), (2, 1));
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
    }

    #[test]
    fn int_suffix_and_arrow_and_ranges() {
        let src = "10ms 40us..80us 0 -> 1";
        let kinds: Vec<TokKind> = scan(src)
            .into_iter()
            .filter(|t| !t.kind.is_trivia())
            .map(|t| t.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                TokKind::IntSuffix,
                TokKind::IntSuffix,
                TokKind::DotDot,
                TokKind::IntSuffix,
                TokKind::Int,
                TokKind::Arrow,
                TokKind::Int,
            ]
        );
    }

    #[test]
    fn unterminated_string_flagged_not_panicked() {
        let toks = scan("\"abc\ndef");
        assert_eq!(toks[0].kind, TokKind::Str { closed: false });
        let toks = scan("\"abc");
        assert_eq!(toks[0].kind, TokKind::Str { closed: false });
    }

    #[test]
    fn non_ascii_bytes_become_unknown_tokens() {
        let src = "flow \u{2192} 1";
        let toks = scan(src);
        assert!(toks.iter().any(|t| t.kind == TokKind::Unknown));
        let total: usize = toks.iter().map(|t| t.end - t.start).sum();
        assert_eq!(total, src.len());
    }
}
