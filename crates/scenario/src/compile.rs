//! Spec → executable campaign: lowers a parsed [`Spec`] onto the
//! existing chaos and workload engines.
//!
//! One scenario file compiles into up to three runs sharing one seed:
//!
//! * a **chaos run** ([`ChaosScenario`]) carrying the validated flows,
//!   the fault schedule and the exactly-once/convergence/blackout
//!   oracles — always present, and the source of the verdict;
//! * a **load run** ([`WorkloadSpec`], FTGM variant) carrying the
//!   open/closed-loop flows and the same fault schedule, present when
//!   the scenario declares load flows;
//! * a **plain-GM twin** of the load run (faults stripped), present
//!   only when the scenario pins a `p99_overhead` bound, as the
//!   baseline that bound is measured against.
//!
//! The chaos timeline is phase-relative in the DSL but offset-after-
//! warmup in the engine; [`compile`] does that arithmetic once, here,
//! so the two runs see the same fault at the same absolute time.

use ftgm_core::CoordinatorConfig;
use ftgm_faults::chaos::{ChaosAction, ChaosEvent, ChaosScenario, ChaosTopology, Flow, PhaseTrigger};
use ftgm_faults::{InjectionTarget, ScenarioVerdict};
use ftgm_sim::SimDuration;
use ftgm_workload::{
    Arrival, ClientModel, FaultPoint, FlowSpec, PhaseKind, SizeMix, SloBounds, Variant,
    WorkloadSpec,
};

use crate::ast::{
    Action, ArrivalDecl, Expect, FlowKind, MixDecl, PhaseName, Spec, Target,
};

/// Default master seed (the paper's publication year) when a scenario
/// does not pin one.
pub const DEFAULT_SEED: u64 = 2003;

/// Which SLO checks the runner must apply to the load run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Checks {
    /// Apply [`SloBounds::check_recovery`] to the FTGM load report.
    pub recovery: bool,
    /// Run the plain-GM twin and apply [`SloBounds::check_steady_overhead`].
    pub overhead: bool,
    /// Check the steady completion ratio directly (no GM twin needed).
    pub completed: bool,
}

/// A scenario lowered onto the execution engines.
#[derive(Clone, Debug)]
pub struct CompiledScenario {
    /// Scenario name (golden files key on this).
    pub name: String,
    /// Master seed shared by every run.
    pub seed: u64,
    /// The chaos run: validated flows, faults, oracles.
    pub chaos: ChaosScenario,
    /// The FTGM load run, when the scenario declares load flows.
    pub workload: Option<WorkloadSpec>,
    /// Fault-free plain-GM twin of the load run (overhead baseline).
    pub gm_twin: Option<WorkloadSpec>,
    /// Bounds the enabled checks test against.
    pub bounds: SloBounds,
    /// Which SLO checks to apply.
    pub checks: Checks,
    /// The verdict the scenario pins.
    pub expect: ScenarioVerdict,
}

fn lower_topology(t: crate::ast::Topo) -> ChaosTopology {
    match t {
        crate::ast::Topo::TwoNode => ChaosTopology::TwoNode,
        crate::ast::Topo::Star(n) => ChaosTopology::Star(usize::from(n)),
        crate::ast::Topo::Ring(n) => ChaosTopology::Ring(usize::from(n)),
        crate::ast::Topo::FatTree {
            spines,
            leaves,
            hosts_per_leaf,
        } => ChaosTopology::FatTree {
            spines: usize::from(spines),
            leaves: usize::from(leaves),
            hosts_per_leaf: usize::from(hosts_per_leaf),
        },
        crate::ast::Topo::Torus { cols, rows } => ChaosTopology::Torus {
            cols: usize::from(cols),
            rows: usize::from(rows),
        },
    }
}

fn lower_target(t: Target) -> InjectionTarget {
    match t {
        Target::SendChunkCode => InjectionTarget::SendChunkCode,
        Target::PacketBuffer => InjectionTarget::PacketBuffer,
        Target::SendRecord => InjectionTarget::SendRecord,
    }
}

fn lower_action(a: &Action) -> ChaosAction {
    match a {
        Action::BitFlip { node, target } => ChaosAction::BitFlip {
            node: *node,
            target: lower_target(*target),
        },
        Action::Hang { node } => ChaosAction::ForceHang { node: *node },
        Action::CorrelatedHang { nodes, skew } => ChaosAction::CorrelatedHang {
            nodes: nodes.clone(),
            skew: skew.to_sim(),
        },
        Action::LinkDown { node, duration } => ChaosAction::NicLinkDown {
            node: *node,
            duration: duration.to_sim(),
        },
        Action::Noise {
            drop_permille,
            corrupt_permille,
            duration,
        } => ChaosAction::LinkNoise {
            drop_prob: f64::from(*drop_permille) / 1000.0,
            corrupt_prob: f64::from(*corrupt_permille) / 1000.0,
            duration: duration.to_sim(),
        },
        Action::SwitchDeath { switch } => ChaosAction::SwitchDeath { switch: *switch },
        Action::LinkFlap {
            node,
            period,
            count,
        } => ChaosAction::LinkFlap {
            node: *node,
            period: period.to_sim(),
            count: *count,
        },
    }
}

fn lower_phase(kind: PhaseName) -> PhaseKind {
    match kind {
        PhaseName::Warmup => PhaseKind::Warmup,
        PhaseName::Steady => PhaseKind::Steady,
        PhaseName::Fault => PhaseKind::Fault,
        PhaseName::Drain => PhaseKind::Drain,
    }
}

fn lower_mix(m: &MixDecl) -> SizeMix {
    match m {
        MixDecl::Fixed(bytes) => SizeMix::Fixed { bytes: *bytes },
        MixDecl::Weighted(options) => SizeMix::Weighted {
            options: options.clone(),
        },
    }
}

fn lower_arrival(a: &ArrivalDecl) -> Arrival {
    match a {
        ArrivalDecl::Every(gap) => Arrival::Fixed { gap: gap.to_sim() },
        ArrivalDecl::Jitter { min, max } => Arrival::UniformJitter {
            min: min.to_sim(),
            max: max.to_sim(),
        },
        ArrivalDecl::Burst {
            scale,
            shape_permille,
            cap,
        } => Arrival::ParetoBurst {
            scale: scale.to_sim(),
            shape_permille: *shape_permille,
            cap: cap.to_sim(),
        },
    }
}

fn lower_expect(e: Expect) -> ScenarioVerdict {
    match e {
        Expect::Survived => ScenarioVerdict::Survived,
        Expect::Rerouted => ScenarioVerdict::Rerouted,
        Expect::Escalated => ScenarioVerdict::Escalated,
    }
}

/// Nanosecond offset of the start of the first phase of kind `kind`.
fn phase_start_ns(spec: &Spec, kind: PhaseName) -> u64 {
    let mut ns = 0u64;
    for p in &spec.phases {
        if p.kind == kind {
            return ns;
        }
        ns = ns.saturating_add(p.duration.as_nanos());
    }
    ns
}

/// Lowers a validated [`Spec`] onto the chaos and workload engines.
///
/// Callers get a spec only from [`crate::parse::parse`] (or the
/// generator), so every id and phase reference is already checked; the
/// compiler is pure arithmetic and cannot fail.
pub fn compile(spec: &Spec) -> CompiledScenario {
    let seed = spec.seed.unwrap_or(DEFAULT_SEED);
    let topology = lower_topology(spec.topology);
    let warmup_ns = spec
        .phase_duration(PhaseName::Warmup)
        .map_or(0, |d| d.as_nanos());
    let total_ns: u64 = spec
        .phases
        .iter()
        .fold(0u64, |acc, p| acc.saturating_add(p.duration.as_nanos()));

    // Chaos run: validated flows, faults offset after warmup.
    let flows: Vec<Flow> = spec
        .flows
        .iter()
        .filter_map(|f| match f.kind {
            FlowKind::Validated { size, pipeline } => Some(Flow {
                src: f.src,
                src_port: 0,
                dst: f.dst,
                dst_port: 2,
                msg_size: size,
                pipeline,
            }),
            _ => None,
        })
        .collect();
    let events: Vec<ChaosEvent> = spec
        .faults
        .iter()
        .map(|f| {
            let abs = phase_start_ns(spec, f.phase).saturating_add(f.at.as_nanos());
            ChaosEvent {
                at: SimDuration::from_nanos(abs.saturating_sub(warmup_ns)),
                action: lower_action(&f.action),
            }
        })
        .collect();
    let phase_triggers: Vec<PhaseTrigger> = spec
        .triggers
        .iter()
        .map(|t| PhaseTrigger::times(t.node, t.phase, lower_action(&t.action), t.limit))
        .collect();
    let chaos = ChaosScenario {
        name: spec.name.clone(),
        topology,
        flows,
        events,
        phase_triggers,
        warmup: SimDuration::from_nanos(warmup_ns),
        horizon: SimDuration::from_nanos(total_ns.saturating_sub(warmup_ns)),
        policy: Default::default(),
        coordinator: spec.coordinator.then(CoordinatorConfig::default),
        blackout_bound: spec.slo.flow_blackout.map(|d| d.to_sim()),
        cpu_backend: Default::default(),
    };

    // Load run: open/closed flows over the same shape and schedule.
    let workload = spec.has_load().then(|| {
        let mut w = WorkloadSpec::new(spec.name.clone(), topology, Variant::Ftgm, seed);
        for p in &spec.phases {
            w = w.phase(lower_phase(p.kind), p.duration.to_sim());
        }
        for f in &spec.flows {
            let model = match &f.kind {
                FlowKind::Validated { .. } => continue,
                FlowKind::Open { arrival, .. } => ClientModel::OpenLoop {
                    arrival: lower_arrival(arrival),
                },
                FlowKind::Closed { think, .. } => ClientModel::ClosedLoop {
                    think: think.to_sim(),
                },
            };
            let sizes = match &f.kind {
                FlowKind::Open { sizes, .. } | FlowKind::Closed { sizes, .. } => lower_mix(sizes),
                FlowKind::Validated { .. } => continue,
            };
            w = w.flow(FlowSpec {
                src: f.src,
                src_port: 0,
                dst: f.dst,
                dst_port: 2,
                model,
                sizes,
            });
        }
        for f in &spec.faults {
            let phase = spec
                .phases
                .iter()
                .position(|p| p.kind == f.phase)
                .unwrap_or(0);
            w.faults.push(FaultPoint {
                phase,
                at: f.at.to_sim(),
                action: lower_action(&f.action),
            });
        }
        w
    });

    let gm_twin = match (&workload, spec.slo.p99_overhead) {
        (Some(w), Some(_)) => {
            let mut twin = w.clone();
            twin.variant = Variant::Gm;
            twin.faults.clear();
            Some(twin)
        }
        _ => None,
    };

    let defaults = SloBounds::default();
    let bounds = SloBounds {
        max_steady_p99_overhead: spec
            .slo
            .p99_overhead
            .map_or(defaults.max_steady_p99_overhead, |d| d.to_sim()),
        max_fault_blackout: spec
            .slo
            .fault_blackout
            .map_or(defaults.max_fault_blackout, |d| d.to_sim()),
        min_steady_completed_permille: spec
            .slo
            .steady_completed
            .map_or(defaults.min_steady_completed_permille, u64::from),
    };
    let checks = Checks {
        recovery: spec.slo.fault_blackout.is_some(),
        overhead: spec.slo.p99_overhead.is_some(),
        completed: spec.slo.steady_completed.is_some(),
    };

    CompiledScenario {
        name: spec.name.clone(),
        seed,
        chaos,
        workload,
        gm_twin,
        bounds,
        checks,
        expect: lower_expect(spec.expect),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Dur, FaultDecl, FlowDecl, PhaseDecl, SloDecl, Topo};

    fn base_spec() -> Spec {
        Spec {
            name: "t".to_string(),
            topology: Topo::Star(4),
            seed: None,
            coordinator: true,
            flows: vec![
                FlowDecl {
                    src: 0,
                    dst: 1,
                    kind: FlowKind::Validated {
                        size: 256,
                        pipeline: 2,
                    },
                },
                FlowDecl {
                    src: 2,
                    dst: 3,
                    kind: FlowKind::Closed {
                        think: Dur::us(20),
                        sizes: MixDecl::Fixed(128),
                    },
                },
            ],
            phases: vec![
                PhaseDecl {
                    kind: PhaseName::Warmup,
                    duration: Dur::ms(10),
                },
                PhaseDecl {
                    kind: PhaseName::Fault,
                    duration: Dur::ms(100),
                },
            ],
            faults: vec![FaultDecl {
                phase: PhaseName::Fault,
                at: Dur::ms(5),
                action: Action::Hang { node: 1 },
            }],
            triggers: Vec::new(),
            slo: SloDecl {
                fault_blackout: Some(Dur::secs(2)),
                ..SloDecl::default()
            },
            expect: Expect::Escalated,
        }
    }

    #[test]
    fn fault_offsets_are_phase_relative_in_both_runs() {
        let c = compile(&base_spec());
        // Chaos events are offsets after warmup: the fault phase starts
        // right at warmup end, so "at 5ms" lands 5 ms after warmup.
        assert_eq!(c.chaos.events.len(), 1);
        assert_eq!(c.chaos.events[0].at, SimDuration::from_ms(5));
        assert_eq!(c.chaos.warmup, SimDuration::from_ms(10));
        assert_eq!(c.chaos.horizon, SimDuration::from_ms(100));
        // The workload fault is tied to the same phase by index.
        let w = c.workload.as_ref().map(|w| w.faults.clone()).unwrap_or_default();
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].phase, 1);
        assert_eq!(w[0].at, SimDuration::from_ms(5));
    }

    #[test]
    fn flows_split_between_chaos_and_load_runs() {
        let c = compile(&base_spec());
        assert_eq!(c.chaos.flows.len(), 1);
        assert_eq!((c.chaos.flows[0].src, c.chaos.flows[0].dst), (0, 1));
        let w = c.workload.as_ref();
        assert_eq!(w.map_or(0, |w| w.flows.len()), 1);
        assert!(c.gm_twin.is_none());
        assert!(c.checks.recovery && !c.checks.overhead);
        assert_eq!(c.seed, DEFAULT_SEED);
        assert!(c.chaos.coordinator.is_some());
        assert_eq!(c.expect, ScenarioVerdict::Escalated);
    }

    #[test]
    fn overhead_bound_spawns_a_faultless_gm_twin() {
        let mut spec = base_spec();
        spec.phases.insert(
            1,
            PhaseDecl {
                kind: PhaseName::Steady,
                duration: Dur::ms(50),
            },
        );
        spec.slo.p99_overhead = Some(Dur::us(4));
        let c = compile(&spec);
        let twin = c.gm_twin.as_ref();
        assert!(twin.is_some_and(|t| t.variant == Variant::Gm && t.faults.is_empty()));
        // The chaos event still fires 5 ms into the fault phase, which
        // now starts 50 ms later.
        assert_eq!(c.chaos.events[0].at, SimDuration::from_ms(55));
    }
}
