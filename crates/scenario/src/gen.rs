//! Deterministic generator of semantically valid [`Spec`]s.
//!
//! [`gen_spec`] maps a seed to a spec that passes every parser-side
//! validation rule by construction. The fuzz suite feeds these through
//! `parse(print(spec))` to pin the exact round trip; determinism (a
//! seed always yields the same spec) keeps failures replayable.

use ftgm_core::ftd::FtdPhase;

use crate::ast::{
    Action, ArrivalDecl, Dur, Expect, FaultDecl, FlowDecl, FlowKind, MixDecl, PhaseDecl,
    PhaseName, SloDecl, Spec, Target, Topo, TriggerDecl, Unit,
};

/// SplitMix64 — tiny, deterministic, and plenty for fuzzing.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish value in `0..n` (`n > 0`).
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    /// Value in `lo..=hi`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi.saturating_sub(lo) + 1)
    }

    fn chance(&mut self, permille: u64) -> bool {
        self.below(1000) < permille
    }
}

fn gen_unit(r: &mut Rng) -> Unit {
    match r.below(4) {
        0 => Unit::Ns,
        1 => Unit::Us,
        2 => Unit::Ms,
        _ => Unit::S,
    }
}

fn gen_dur(r: &mut Rng) -> Dur {
    Dur {
        value: r.range(1, 500),
        unit: gen_unit(r),
    }
}

fn gen_mix(r: &mut Rng) -> MixDecl {
    if r.chance(500) {
        MixDecl::Fixed(r.range(16, 4096) as u32)
    } else {
        let n = r.range(1, 4);
        let options = (0..n)
            .map(|_| (r.range(16, 4096) as u32, r.range(1, 9) as u32))
            .collect();
        MixDecl::Weighted(options)
    }
}

fn gen_arrival(r: &mut Rng) -> ArrivalDecl {
    match r.below(3) {
        0 => ArrivalDecl::Every(gen_dur(r)),
        1 => {
            let unit = gen_unit(r);
            let lo = r.range(1, 400);
            ArrivalDecl::Jitter {
                min: Dur { value: lo, unit },
                max: Dur {
                    value: lo + r.below(200),
                    unit,
                },
            }
        }
        _ => {
            let unit = gen_unit(r);
            let scale = r.range(1, 100);
            ArrivalDecl::Burst {
                scale: Dur { value: scale, unit },
                shape_permille: r.range(1, 10_000) as u32,
                cap: Dur {
                    value: scale + r.range(1, 400),
                    unit,
                },
            }
        }
    }
}

/// Picks `count` distinct node ids below `nodes`.
fn pick_distinct(r: &mut Rng, nodes: u16, count: usize) -> Vec<u16> {
    let mut pool: Vec<u16> = (0..nodes).collect();
    let mut out = Vec::new();
    for _ in 0..count.min(pool.len()) {
        let i = r.below(pool.len() as u64) as usize;
        out.push(pool.swap_remove(i));
    }
    out
}

fn gen_action(r: &mut Rng, nodes: u16, switches: u16) -> Action {
    loop {
        match r.below(7) {
            0 => {
                return Action::BitFlip {
                    node: r.below(u64::from(nodes)) as u16,
                    target: match r.below(3) {
                        0 => Target::SendChunkCode,
                        1 => Target::PacketBuffer,
                        _ => Target::SendRecord,
                    },
                }
            }
            1 => {
                return Action::Hang {
                    node: r.below(u64::from(nodes)) as u16,
                }
            }
            2 if nodes >= 2 => {
                let count = r.range(2, u64::from(nodes).min(4)) as usize;
                return Action::CorrelatedHang {
                    nodes: pick_distinct(r, nodes, count),
                    skew: gen_dur(r),
                };
            }
            3 => {
                return Action::LinkDown {
                    node: r.below(u64::from(nodes)) as u16,
                    duration: gen_dur(r),
                }
            }
            4 => {
                return Action::Noise {
                    drop_permille: r.below(1001) as u32,
                    corrupt_permille: r.below(1001) as u32,
                    duration: gen_dur(r),
                }
            }
            5 if switches > 0 => {
                return Action::SwitchDeath {
                    switch: r.below(u64::from(switches)) as u16,
                }
            }
            6 => {
                return Action::LinkFlap {
                    node: r.below(u64::from(nodes)) as u16,
                    period: gen_dur(r),
                    count: r.range(1, 5) as u32,
                }
            }
            _ => {}
        }
    }
}

/// Generates a semantically valid spec from `seed`, deterministically.
pub fn gen_spec(seed: u64) -> Spec {
    let mut r = Rng::new(seed);

    let topology = match r.below(5) {
        0 => Topo::TwoNode,
        1 => Topo::Star(r.range(2, 12) as u16),
        2 => Topo::Ring(r.range(3, 12) as u16),
        3 => Topo::FatTree {
            spines: r.range(1, 3) as u16,
            leaves: r.range(1, 4) as u16,
            // >= 2 hosts per leaf so the world always has two endpoints.
            hosts_per_leaf: r.range(2, 4) as u16,
        },
        _ => Topo::Torus {
            cols: r.range(2, 4) as u16,
            rows: r.range(2, 4) as u16,
        },
    };
    let nodes = topology.node_count();
    let switches = topology.switch_count();
    let coordinator = r.chance(400);

    // Phases: warmup always, then a random in-order suffix.
    let mut phases = vec![PhaseDecl {
        kind: PhaseName::Warmup,
        duration: gen_dur(&mut r),
    }];
    for kind in [PhaseName::Steady, PhaseName::Fault, PhaseName::Drain] {
        if r.chance(600) {
            phases.push(PhaseDecl {
                kind,
                duration: gen_dur(&mut r),
            });
        }
    }

    // Flows: at least one, respecting the port-uniqueness rules.
    let mut flows: Vec<FlowDecl> = Vec::new();
    let mut validated_srcs: Vec<u16> = Vec::new();
    let mut validated_dsts: Vec<u16> = Vec::new();
    let mut load_srcs: Vec<u16> = Vec::new();
    let mut load_dst_model: Vec<(u16, bool)> = Vec::new(); // (dst, closed)
    let want = r.range(1, 4);
    for attempt in 0..want * 3 {
        if flows.len() as u64 >= want {
            break;
        }
        let src = r.below(u64::from(nodes)) as u16;
        let dst = r.below(u64::from(nodes)) as u16;
        if src == dst || nodes < 2 {
            continue;
        }
        let validated = attempt == 0 || r.chance(400);
        if validated {
            if validated_srcs.contains(&src) || validated_dsts.contains(&dst) {
                continue;
            }
            validated_srcs.push(src);
            validated_dsts.push(dst);
            flows.push(FlowDecl {
                src,
                dst,
                kind: FlowKind::Validated {
                    size: r.range(16, 4096) as u32,
                    pipeline: r.range(1, 8) as u32,
                },
            });
        } else {
            let closed = r.chance(500);
            if load_srcs.contains(&src) {
                continue;
            }
            if load_dst_model
                .iter()
                .any(|&(d, c)| d == dst && c != closed)
            {
                continue;
            }
            load_srcs.push(src);
            load_dst_model.push((dst, closed));
            let sizes = gen_mix(&mut r);
            let kind = if closed {
                FlowKind::Closed {
                    think: gen_dur(&mut r),
                    sizes,
                }
            } else {
                FlowKind::Open {
                    arrival: gen_arrival(&mut r),
                    sizes,
                }
            };
            flows.push(FlowDecl { src, dst, kind });
        }
    }
    if flows.is_empty() {
        flows.push(FlowDecl {
            src: 0,
            dst: 1,
            kind: FlowKind::Validated {
                size: 256,
                pipeline: 2,
            },
        });
        validated_srcs.push(0);
        validated_dsts.push(1);
    }

    // Faults only in declared non-warmup phases, offsets inside them.
    let injectable: Vec<PhaseDecl> = phases
        .iter()
        .filter(|p| p.kind != PhaseName::Warmup)
        .copied()
        .collect();
    let mut faults = Vec::new();
    if !injectable.is_empty() {
        for _ in 0..r.below(4) {
            let ph = injectable[r.below(injectable.len() as u64) as usize];
            faults.push(FaultDecl {
                phase: ph.kind,
                at: Dur {
                    value: r.below(ph.duration.value + 1),
                    unit: ph.duration.unit,
                },
                action: gen_action(&mut r, nodes, switches),
            });
        }
    }
    let mut triggers = Vec::new();
    for _ in 0..r.below(3) {
        triggers.push(TriggerDecl {
            node: r.below(u64::from(nodes)) as u16,
            phase: FtdPhase::ORDER[r.below(6) as usize],
            action: gen_action(&mut r, nodes, switches),
            limit: r.range(1, 3) as u32,
        });
    }

    // SLO bounds only where observable.
    let has_load = !load_srcs.is_empty();
    let has_steady = phases.iter().any(|p| p.kind == PhaseName::Steady);
    let has_fault_phase = phases.iter().any(|p| p.kind == PhaseName::Fault);
    let mut slo = SloDecl::default();
    if !validated_srcs.is_empty() && r.chance(500) {
        slo.flow_blackout = Some(gen_dur(&mut r));
    }
    if has_load && has_fault_phase && r.chance(400) {
        slo.fault_blackout = Some(gen_dur(&mut r));
    }
    if has_load && has_steady && r.chance(400) {
        slo.steady_completed = Some(r.below(1001) as u32);
    }
    if has_load && has_steady && r.chance(300) {
        slo.p99_overhead = Some(gen_dur(&mut r));
    }

    // Only reachable expectations.
    let has_faults = !faults.is_empty() || !triggers.is_empty();
    let mut reachable = vec![Expect::Survived];
    if has_faults {
        reachable.push(Expect::Escalated);
        if coordinator {
            reachable.push(Expect::Rerouted);
        }
    }
    let expect = reachable[r.below(reachable.len() as u64) as usize];

    Spec {
        name: format!("gen-{seed:x}"),
        topology,
        seed: if r.chance(700) {
            Some(r.below(100_000))
        } else {
            None
        },
        coordinator,
        flows,
        phases,
        faults,
        triggers,
        slo,
        expect,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        assert_eq!(gen_spec(42), gen_spec(42));
        assert_eq!(gen_spec(7), gen_spec(7));
    }

    #[test]
    fn generated_specs_differ_across_seeds() {
        // Not a hard guarantee for any pair, but these must not all match.
        let a = gen_spec(1);
        let b = gen_spec(2);
        let c = gen_spec(3);
        assert!(a != b || b != c);
    }
}
