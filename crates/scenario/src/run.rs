//! Scenario execution: compiled campaigns → verdicts and golden JSON.
//!
//! [`run_compiled`] executes the chaos run (always) and the load run
//! plus its plain-GM twin (when compiled in), folds every oracle and
//! SLO violation into one [`ScenarioOutcome`], and classifies the
//! verdict with the same [`classify_scenario`] rule the chaos bench
//! uses. [`ScenarioOutcome::check`] then compares that verdict against
//! the file's `expect` line — a disagreement is a typed
//! [`ExpectMismatch`] naming both sides, never a silent pass.
//!
//! Outcomes serialize to byte-stable, integer-valued JSON
//! ([`ScenarioOutcome::to_json`], schema `ftgm-scenario-v1`): the
//! golden corpus under `scenarios/golden/` pins these bytes.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use ftgm_faults::chaos::{run_scenario, ChaosReport};
use ftgm_faults::{classify_scenario, ScenarioVerdict};
use ftgm_workload::{run_spec, SloReport};

use crate::compile::CompiledScenario;

/// The scenario's pinned verdict disagreed with the run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExpectMismatch {
    /// Scenario name.
    pub scenario: String,
    /// What the file's `expect` line pinned.
    pub expected: ScenarioVerdict,
    /// What the run actually produced.
    pub actual: ScenarioVerdict,
}

impl fmt::Display for ExpectMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: expected verdict '{}' but the run produced '{}'",
            self.scenario,
            self.expected.label(),
            self.actual.label()
        )
    }
}

/// Everything one scenario run produced.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub name: String,
    /// Seed every run replayed from.
    pub seed: u64,
    /// The verdict the file pinned.
    pub expected: ScenarioVerdict,
    /// The verdict the run produced.
    pub verdict: ScenarioVerdict,
    /// The chaos run's oracle report.
    pub chaos: ChaosReport,
    /// Total `InterfaceDead` escalations across nodes.
    pub escalations: u64,
    /// Coordinator-driven zone reroutes observed.
    pub zone_reroutes: u64,
    /// The FTGM load run, when the scenario declared load flows.
    pub load: Option<SloReport>,
    /// The plain-GM twin, when a `p99_overhead` bound demanded one.
    pub gm: Option<SloReport>,
    /// SLO-bound violations from the load run (empty = all bounds held).
    pub slo_violations: Vec<String>,
}

impl ScenarioOutcome {
    /// Compares the produced verdict against the pinned one.
    pub fn check(&self) -> Result<(), ExpectMismatch> {
        if self.verdict == self.expected {
            Ok(())
        } else {
            Err(ExpectMismatch {
                scenario: self.name.clone(),
                expected: self.expected,
                actual: self.verdict,
            })
        }
    }

    /// Every violation, chaos oracles first, then SLO bounds.
    pub fn violations(&self) -> Vec<String> {
        let mut v = self.chaos.violations.clone();
        v.extend(self.slo_violations.iter().cloned());
        v
    }

    /// Serializes the outcome as byte-stable, integer-valued JSON (the
    /// golden format, schema `ftgm-scenario-v1`).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": \"ftgm-scenario-v1\",");
        let _ = writeln!(out, "  \"name\": \"{}\",", self.name);
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"expected\": \"{}\",", self.expected.label());
        let _ = writeln!(out, "  \"verdict\": \"{}\",", self.verdict.label());
        let _ = writeln!(out, "  \"chaos_ok\": {},", self.chaos.ok());
        let _ = writeln!(out, "  \"escalations\": {},", self.escalations);
        let _ = writeln!(out, "  \"zone_reroutes\": {},", self.zone_reroutes);
        out.push_str("  \"nodes\": [");
        for (i, n) in self.chaos.nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"node\": {}, \"resolution\": \"{}\", \"recoveries\": {}, \
                 \"escalations\": {}, \"false_alarms\": {}}}",
                n.node, n.resolution, n.recoveries, n.escalations, n.false_alarms
            );
        }
        out.push_str("\n  ],\n  \"flows\": [");
        for (i, f) in self.chaos.flows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"src\": {}, \"dst\": {}, \"delivered\": {}, \"progress\": {}, \
                 \"corrupt\": {}, \"misordered\": {}, \"iface_dead\": {}, \"blackout_ns\": {}}}",
                f.src, f.dst, f.delivered, f.progress, f.corrupt, f.misordered, f.iface_dead,
                f.blackout_ns
            );
        }
        out.push_str("\n  ],\n  \"violations\": [");
        let violations = self.violations();
        for (i, v) in violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\"", v.replace('"', "'"));
        }
        out.push_str(if violations.is_empty() { "],\n" } else { "\n  ],\n" });
        embed_report(&mut out, "load", self.load.as_ref(), true);
        embed_report(&mut out, "gm", self.gm.as_ref(), false);
        out.push_str("}\n");
        out
    }
}

/// Embeds an optional [`SloReport`] as a nested object (or `null`),
/// re-indenting its serialized form two spaces.
fn embed_report(out: &mut String, key: &str, report: Option<&SloReport>, comma: bool) {
    use std::fmt::Write as _;
    let _ = write!(out, "  \"{key}\": ");
    match report {
        None => out.push_str("null"),
        Some(r) => out.push_str(&r.to_json().replace('\n', "\n  ")),
    }
    out.push_str(if comma { ",\n" } else { "\n" });
}

/// Runs one compiled scenario end to end and classifies the verdict.
pub fn run_compiled(c: &CompiledScenario) -> ScenarioOutcome {
    let chaos = run_scenario(&c.chaos, c.seed);
    let load = c.workload.as_ref().map(run_spec);
    let gm = c.gm_twin.as_ref().map(run_spec);

    let mut slo_violations = Vec::new();
    if let Some(ftgm) = &load {
        if c.checks.recovery {
            slo_violations.extend(c.bounds.check_recovery(ftgm));
        }
        match (&gm, c.checks.overhead) {
            (Some(gm), true) => {
                slo_violations.extend(c.bounds.check_steady_overhead(gm, ftgm));
            }
            _ => {
                // No GM twin: check the completion bound directly.
                if c.checks.completed {
                    match ftgm.steady() {
                        Some(s) if s.completed_permille < c.bounds.min_steady_completed_permille => {
                            slo_violations.push(format!(
                                "{}: steady completion ratio {}‰ below {}‰",
                                ftgm.name,
                                s.completed_permille,
                                c.bounds.min_steady_completed_permille
                            ));
                        }
                        Some(_) => {}
                        None => slo_violations
                            .push(format!("{}: missing steady phase in report", ftgm.name)),
                    }
                }
            }
        }
    }

    let escalations: u64 = chaos.nodes.iter().map(|n| n.escalations).sum();
    let zone_reroutes = chaos.metrics.counter("ZoneRerouteTriggered");
    let ok = chaos.ok() && slo_violations.is_empty();
    let verdict = classify_scenario(ok, escalations, zone_reroutes);

    ScenarioOutcome {
        name: c.name.clone(),
        seed: c.seed,
        expected: c.expect,
        verdict,
        chaos,
        escalations,
        zone_reroutes,
        load,
        gm,
        slo_violations,
    }
}

/// Runs a corpus with a slot-disciplined worker pool: an atomic cursor
/// hands out indices, results land in their input slot, so the output
/// order — and every byte of every outcome — is independent of the
/// thread count.
pub fn run_corpus_parallel(corpus: &[CompiledScenario], threads: usize) -> Vec<ScenarioOutcome> {
    let n = corpus.len();
    let slots: Mutex<Vec<Option<ScenarioOutcome>>> = Mutex::new(vec![None; n]);
    let cursor = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.max(1).min(n.max(1)) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed) as usize;
                let Some(c) = corpus.get(i) else { break };
                let outcome = run_compiled(c);
                let mut guard = match slots.lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                if let Some(slot) = guard.get_mut(i) {
                    *slot = Some(outcome);
                }
            });
        }
    });
    let inner = match slots.into_inner() {
        Ok(v) => v,
        Err(poisoned) => poisoned.into_inner(),
    };
    inner.into_iter().flatten().collect()
}

/// Parses, compiles, and runs one scenario text.
pub fn run_text(src: &str) -> Result<ScenarioOutcome, Vec<crate::parse::Diag>> {
    let spec = crate::parse::parse(src)?;
    Ok(run_compiled(&crate::compile::compile(&spec)))
}
