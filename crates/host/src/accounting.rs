//! Host-CPU time accounting.
//!
//! Table 2 of the paper reports *host utilization*: the CPU time the host
//! burns to send (0.30 µs GM / 0.55 µs FTGM) and receive (0.75 µs /
//! 1.15 µs) one message. The GM library model charges each API call's cost
//! here, broken down by category, so the benchmark can report both totals
//! and the FTGM delta (the token-backup housekeeping the paper highlights).

use std::collections::BTreeMap;

use ftgm_sim::SimDuration;

/// What a slice of host CPU time was spent on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CpuCost {
    /// `gm_send_with_callback` baseline work.
    SendCall,
    /// Receive-path event handling baseline work.
    RecvEvent,
    /// FTGM: copying the send token into the backup queue.
    SendTokenBackup,
    /// FTGM: receive-side backup bookkeeping (token + ACK hash tables).
    RecvTokenBackup,
    /// `gm_provide_receive_buffer` work.
    ProvideBuffer,
    /// Application callback dispatch.
    Callback,
    /// Per-port recovery handler work (FAULT_DETECTED path).
    Recovery,
}

impl CpuCost {
    /// All categories, for reporting.
    pub const ALL: [CpuCost; 7] = [
        CpuCost::SendCall,
        CpuCost::RecvEvent,
        CpuCost::SendTokenBackup,
        CpuCost::RecvTokenBackup,
        CpuCost::ProvideBuffer,
        CpuCost::Callback,
        CpuCost::Recovery,
    ];
}

/// Accumulates host-CPU time by category.
///
/// # Example
///
/// ```
/// use ftgm_host::{CpuAccounting, CpuCost};
/// use ftgm_sim::SimDuration;
///
/// let mut acc = CpuAccounting::new();
/// acc.charge(CpuCost::SendCall, SimDuration::from_nanos(300));
/// acc.charge(CpuCost::SendCall, SimDuration::from_nanos(300));
/// assert_eq!(acc.total_for(CpuCost::SendCall), SimDuration::from_nanos(600));
/// assert_eq!(acc.count_for(CpuCost::SendCall), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct CpuAccounting {
    totals: BTreeMap<CpuCost, (SimDuration, u64)>,
}

impl CpuAccounting {
    /// Creates an empty accumulator.
    pub fn new() -> CpuAccounting {
        CpuAccounting::default()
    }

    /// Charges `dur` of CPU time to `category`.
    pub fn charge(&mut self, category: CpuCost, dur: SimDuration) {
        let e = self.totals.entry(category).or_insert((SimDuration::ZERO, 0));
        e.0 += dur;
        e.1 += 1;
    }

    /// Total time charged to a category.
    pub fn total_for(&self, category: CpuCost) -> SimDuration {
        self.totals
            .get(&category)
            .map(|e| e.0)
            .unwrap_or(SimDuration::ZERO)
    }

    /// Number of charges to a category.
    pub fn count_for(&self, category: CpuCost) -> u64 {
        self.totals.get(&category).map(|e| e.1).unwrap_or(0)
    }

    /// Mean cost per charge in a category, if any were recorded.
    pub fn mean_for(&self, category: CpuCost) -> Option<SimDuration> {
        let (total, n) = self.totals.get(&category)?;
        if *n == 0 {
            return None;
        }
        Some(*total / *n)
    }

    /// Grand total across all categories.
    pub fn grand_total(&self) -> SimDuration {
        self.totals
            .values()
            .fold(SimDuration::ZERO, |acc, (d, _)| acc + *d)
    }

    /// Clears all counters.
    pub fn reset(&mut self) {
        self.totals.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates_time_and_count() {
        let mut a = CpuAccounting::new();
        a.charge(CpuCost::RecvEvent, SimDuration::from_nanos(750));
        a.charge(CpuCost::RecvEvent, SimDuration::from_nanos(750));
        a.charge(CpuCost::SendCall, SimDuration::from_nanos(300));
        assert_eq!(a.total_for(CpuCost::RecvEvent), SimDuration::from_nanos(1_500));
        assert_eq!(a.count_for(CpuCost::RecvEvent), 2);
        assert_eq!(a.count_for(CpuCost::Callback), 0);
    }

    #[test]
    fn mean_divides() {
        let mut a = CpuAccounting::new();
        a.charge(CpuCost::SendCall, SimDuration::from_nanos(100));
        a.charge(CpuCost::SendCall, SimDuration::from_nanos(200));
        assert_eq!(a.mean_for(CpuCost::SendCall), Some(SimDuration::from_nanos(150)));
        assert_eq!(a.mean_for(CpuCost::Recovery), None);
    }

    #[test]
    fn grand_total_sums_categories() {
        let mut a = CpuAccounting::new();
        a.charge(CpuCost::SendCall, SimDuration::from_nanos(1));
        a.charge(CpuCost::RecvEvent, SimDuration::from_nanos(2));
        assert_eq!(a.grand_total(), SimDuration::from_nanos(3));
    }

    #[test]
    fn reset_clears() {
        let mut a = CpuAccounting::new();
        a.charge(CpuCost::SendCall, SimDuration::from_nanos(1));
        a.reset();
        assert_eq!(a.grand_total(), SimDuration::ZERO);
    }
}
