//! A minimal process table.
//!
//! The experiments involve two kinds of host processes: GM applications
//! (which spin polling their receive queues) and the **fault-tolerance
//! daemon** (FTD), which sleeps until the driver wakes it on a FATAL
//! interrupt. The paper is explicit about why the FTD exists at all:
//! recovery needs `sleep()`/`malloc()`-class work that an interrupt handler
//! cannot do, so the handler merely wakes a daemon.

use std::fmt;

/// A process identifier, unique per host.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Pid(pub u32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// Scheduling state of a process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcessState {
    /// Runnable (applications busy-polling their receive queue).
    Running,
    /// Blocked in the kernel waiting for a wake-up (the FTD's idle state).
    Sleeping,
    /// Exited.
    Dead,
}

#[derive(Clone, Debug)]
struct ProcEntry {
    pid: Pid,
    state: ProcessState,
    name: String,
}

/// The per-host process table.
///
/// # Example
///
/// ```
/// use ftgm_host::{ProcessState, ProcessTable};
///
/// let mut t = ProcessTable::new();
/// let ftd = t.spawn("ftd");
/// t.sleep(ftd);
/// assert_eq!(t.state(ftd), Some(ProcessState::Sleeping));
/// assert!(t.wake(ftd));
/// assert_eq!(t.state(ftd), Some(ProcessState::Running));
/// ```
#[derive(Clone, Debug, Default)]
pub struct ProcessTable {
    procs: Vec<ProcEntry>,
    next_pid: u32,
}

impl ProcessTable {
    /// Creates an empty table.
    pub fn new() -> ProcessTable {
        ProcessTable::default()
    }

    /// Spawns a process in the running state.
    pub fn spawn(&mut self, name: impl Into<String>) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.procs.push(ProcEntry {
            pid,
            state: ProcessState::Running,
            name: name.into(),
        });
        pid
    }

    /// The state of `pid`, if it exists.
    pub fn state(&self, pid: Pid) -> Option<ProcessState> {
        self.entry(pid).map(|e| e.state)
    }

    /// The name of `pid`, if it exists.
    pub fn name(&self, pid: Pid) -> Option<&str> {
        self.entry(pid).map(|e| e.name.as_str())
    }

    /// Puts a running process to sleep. No-op for dead/missing processes.
    pub fn sleep(&mut self, pid: Pid) {
        if let Some(e) = self.entry_mut(pid) {
            if e.state == ProcessState::Running {
                e.state = ProcessState::Sleeping;
            }
        }
    }

    /// Wakes a sleeping process. Returns `true` if it was asleep.
    pub fn wake(&mut self, pid: Pid) -> bool {
        match self.entry_mut(pid) {
            Some(e) if e.state == ProcessState::Sleeping => {
                e.state = ProcessState::Running;
                true
            }
            _ => false,
        }
    }

    /// Marks a process dead.
    pub fn kill(&mut self, pid: Pid) {
        if let Some(e) = self.entry_mut(pid) {
            e.state = ProcessState::Dead;
        }
    }

    /// Pids currently in a given state.
    pub fn in_state(&self, state: ProcessState) -> Vec<Pid> {
        self.procs
            .iter()
            .filter(|e| e.state == state)
            .map(|e| e.pid)
            .collect()
    }

    fn entry(&self, pid: Pid) -> Option<&ProcEntry> {
        self.procs.iter().find(|e| e.pid == pid)
    }

    fn entry_mut(&mut self, pid: Pid) -> Option<&mut ProcEntry> {
        self.procs.iter_mut().find(|e| e.pid == pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_assigns_unique_pids() {
        let mut t = ProcessTable::new();
        let a = t.spawn("a");
        let b = t.spawn("b");
        assert_ne!(a, b);
        assert_eq!(t.name(a), Some("a"));
        assert_eq!(t.state(b), Some(ProcessState::Running));
    }

    #[test]
    fn sleep_wake_cycle() {
        let mut t = ProcessTable::new();
        let p = t.spawn("ftd");
        t.sleep(p);
        assert_eq!(t.state(p), Some(ProcessState::Sleeping));
        assert!(t.wake(p));
        assert!(!t.wake(p), "waking a running process is a no-op");
    }

    #[test]
    fn kill_is_terminal() {
        let mut t = ProcessTable::new();
        let p = t.spawn("app");
        t.kill(p);
        t.sleep(p);
        assert_eq!(t.state(p), Some(ProcessState::Dead));
        assert!(!t.wake(p));
    }

    #[test]
    fn in_state_filters() {
        let mut t = ProcessTable::new();
        let a = t.spawn("a");
        let b = t.spawn("b");
        t.sleep(b);
        assert_eq!(t.in_state(ProcessState::Running), vec![a]);
        assert_eq!(t.in_state(ProcessState::Sleeping), vec![b]);
    }

    #[test]
    fn missing_pid_is_none() {
        let t = ProcessTable::new();
        assert_eq!(t.state(Pid(99)), None);
    }
}
