//! Host RAM with pinned DMA regions.
//!
//! GM's zero-copy path DMAs directly between the NIC and user buffers, which
//! therefore must be pinned (unswappable). We model host memory as a flat
//! physical byte arena with an explicit registry of pinned ranges. A device
//! DMA that touches an unregistered range is a wild DMA — the model marks
//! the host **crashed**, reproducing the fault-propagation path the paper's
//! Table 1 observed (0.4–0.6 % of injections).

use std::fmt;

/// Why the host went down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashReason {
    /// The NIC DMAed to/from an address outside every pinned region.
    WildDma {
        /// The offending physical address.
        addr: u64,
        /// Transfer length.
        len: u32,
    },
}

impl fmt::Display for CrashReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrashReason::WildDma { addr, len } => {
                write!(f, "wild DMA at {addr:#x} (+{len})")
            }
        }
    }
}

/// A pinned, DMA-able region of host memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DmaRegion {
    /// Physical base address.
    pub pa: u64,
    /// Length in bytes.
    pub len: u32,
}

impl DmaRegion {
    /// `true` if `[addr, addr+len)` lies entirely inside this region.
    pub fn contains(&self, addr: u64, len: u32) -> bool {
        addr >= self.pa && addr + len as u64 <= self.pa + self.len as u64
    }
}

/// Flat physical memory plus the pinned-region registry and crash latch.
#[derive(Clone)]
pub struct HostMemory {
    bytes: Vec<u8>,
    next_alloc: u64,
    pinned: Vec<DmaRegion>,
    crashed: Option<CrashReason>,
}

impl fmt::Debug for HostMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HostMemory")
            .field("len", &self.bytes.len())
            .field("pinned_regions", &self.pinned.len())
            .field("crashed", &self.crashed)
            .finish()
    }
}

impl HostMemory {
    /// Creates `len` bytes of zeroed RAM.
    pub fn new(len: usize) -> HostMemory {
        HostMemory {
            bytes: vec![0; len],
            // Page 0 stays unmapped (the null page): device writes there
            // are wild DMA, as on a real OS.
            next_alloc: 4096,
            pinned: Vec::new(),
            crashed: None,
        }
    }

    /// Total bytes of RAM.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// `true` for an empty arena.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The crash latch, if the host has gone down.
    pub fn crash_reason(&self) -> Option<CrashReason> {
        self.crashed
    }

    /// Allocates and pins a DMA-able buffer (the model of
    /// `gm_dma_malloc`): bump allocation, 8-byte aligned.
    ///
    /// # Panics
    ///
    /// Panics if RAM is exhausted — a simulation sizing bug, not a runtime
    /// condition.
    pub fn alloc_dma(&mut self, len: u32) -> DmaRegion {
        let pa = (self.next_alloc + 7) & !7;
        assert!(
            pa + len as u64 <= self.bytes.len() as u64,
            "host RAM exhausted: want {len} bytes at {pa:#x} of {}",
            self.bytes.len()
        );
        self.next_alloc = pa + len as u64;
        let region = DmaRegion { pa, len };
        self.pinned.push(region);
        region
    }

    /// Unpins a region (model of `gm_dma_free`). The bytes stay readable —
    /// freeing returns the *pinning*, not the storage.
    pub fn free_dma(&mut self, region: DmaRegion) {
        self.pinned.retain(|r| *r != region);
    }

    /// `true` if the whole range is inside one pinned region.
    pub fn is_pinned(&self, addr: u64, len: u32) -> bool {
        self.pinned.iter().any(|r| r.contains(addr, len))
    }

    /// Performs a device-initiated write (NIC → host). An unpinned target
    /// crashes the host and the write is discarded.
    pub fn dma_write(&mut self, addr: u64, data: &[u8]) {
        if !self.is_pinned(addr, data.len() as u32) {
            self.crashed.get_or_insert(CrashReason::WildDma {
                addr,
                len: data.len() as u32,
            });
            return;
        }
        let a = addr as usize;
        self.bytes[a..a + data.len()].copy_from_slice(data);
    }

    /// Performs a device-initiated read (host → NIC). An unpinned source
    /// crashes the host and zeros are returned.
    pub fn dma_read(&mut self, addr: u64, len: u32) -> Vec<u8> {
        if !self.is_pinned(addr, len) {
            self.crashed.get_or_insert(CrashReason::WildDma { addr, len });
            return vec![0; len as usize];
        }
        let a = addr as usize;
        self.bytes[a..a + len as usize].to_vec()
    }

    /// CPU-side write (the application filling its buffer). No pinning
    /// check: the CPU can touch all of RAM.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        let a = addr as usize;
        self.bytes[a..a + data.len()].copy_from_slice(data);
    }

    /// CPU-side read.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn read(&self, addr: u64, len: u32) -> &[u8] {
        let a = addr as usize;
        &self.bytes[a..a + len as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_pinned() {
        let mut m = HostMemory::new(64 * 1024);
        let a = m.alloc_dma(100);
        let b = m.alloc_dma(8);
        assert_eq!(a.pa % 8, 0);
        assert_eq!(b.pa % 8, 0);
        assert!(b.pa >= a.pa + 100);
        assert!(m.is_pinned(a.pa, 100));
        assert!(m.is_pinned(a.pa + 10, 90));
        assert!(!m.is_pinned(a.pa + 10, 100));
    }

    #[test]
    fn dma_roundtrip_in_pinned_region() {
        let mut m = HostMemory::new(64 * 1024);
        let r = m.alloc_dma(64);
        m.dma_write(r.pa, &[1, 2, 3]);
        assert_eq!(m.dma_read(r.pa, 3), vec![1, 2, 3]);
        assert!(m.crash_reason().is_none());
    }

    #[test]
    fn wild_dma_write_crashes() {
        let mut m = HostMemory::new(64 * 1024);
        m.alloc_dma(64);
        m.dma_write(3000, &[9; 8]);
        assert!(matches!(
            m.crash_reason(),
            Some(CrashReason::WildDma { addr: 3000, len: 8 })
        ));
        // Write was discarded.
        assert_eq!(m.read(3000, 8), &[0; 8]);
    }

    #[test]
    fn wild_dma_read_crashes_and_zeros() {
        let mut m = HostMemory::new(64 * 1024);
        let got = m.dma_read(100, 4);
        assert_eq!(got, vec![0; 4]);
        assert!(m.crash_reason().is_some());
    }

    #[test]
    fn first_crash_reason_sticks() {
        let mut m = HostMemory::new(64 * 1024);
        m.dma_write(1, &[0]);
        m.dma_write(2, &[0]);
        assert!(matches!(
            m.crash_reason(),
            Some(CrashReason::WildDma { addr: 1, .. })
        ));
    }

    #[test]
    fn free_unpins() {
        let mut m = HostMemory::new(64 * 1024);
        let r = m.alloc_dma(32);
        m.free_dma(r);
        assert!(!m.is_pinned(r.pa, 32));
    }

    #[test]
    fn cpu_access_ignores_pinning() {
        let mut m = HostMemory::new(64);
        m.write(10, &[42]);
        assert_eq!(m.read(10, 1), &[42]);
        assert!(m.crash_reason().is_none());
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn oversubscription_panics() {
        let mut m = HostMemory::new(8192);
        m.alloc_dma(8000);
    }

    #[test]
    fn null_page_never_allocated() {
        let mut m = HostMemory::new(16384);
        let r = m.alloc_dma(64);
        assert!(r.pa >= 4096);
        assert!(!m.is_pinned(0, 8));
    }
}
