//! The page hash table.
//!
//! GM keeps a hash table mapping `(port, virtual page)` → DMA address in
//! *host* memory (it is too big for SRAM); the MCP caches entries on the
//! card. Because the authoritative copy lives on the host, the FTD can
//! simply re-register it with a freshly reloaded MCP — the paper calls this
//! out as the first restore step of recovery.

use std::collections::HashMap;

/// Page size used for the virtual↔DMA mapping.
pub const PAGE_SIZE: u64 = 4096;

/// The host-resident `(port, vpage)` → DMA address table.
///
/// # Example
///
/// ```
/// use ftgm_host::PageHashTable;
///
/// let mut t = PageHashTable::new();
/// t.map(0, 0x1000, 0x9000);
/// assert_eq!(t.lookup(0, 0x1234), Some(0x9234));
/// assert_eq!(t.lookup(1, 0x1234), None);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PageHashTable {
    entries: HashMap<(u8, u64), u64>,
}

impl PageHashTable {
    /// Creates an empty table.
    pub fn new() -> PageHashTable {
        PageHashTable::default()
    }

    /// Maps the page containing virtual address `va` for `port` to the DMA
    /// page at `pa`. Addresses are truncated to page boundaries.
    pub fn map(&mut self, port: u8, va: u64, pa: u64) {
        self.entries
            .insert((port, va / PAGE_SIZE), pa & !(PAGE_SIZE - 1));
    }

    /// Maps a whole region page by page.
    pub fn map_region(&mut self, port: u8, va: u64, pa: u64, len: u64) {
        let first = va / PAGE_SIZE;
        let last = (va + len.max(1) - 1) / PAGE_SIZE;
        for (i, page) in (first..=last).enumerate() {
            self.entries
                .insert((port, page), (pa & !(PAGE_SIZE - 1)) + i as u64 * PAGE_SIZE);
        }
    }

    /// Translates a virtual address for `port`, or `None` if unmapped.
    pub fn lookup(&self, port: u8, va: u64) -> Option<u64> {
        self.entries
            .get(&(port, va / PAGE_SIZE))
            .map(|pa| pa + va % PAGE_SIZE)
    }

    /// Drops every mapping for a port (port close).
    pub fn unmap_port(&mut self, port: u8) {
        self.entries.retain(|(p, _), _| *p != port);
    }

    /// Number of mapped pages across all ports.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_lookup_offsets() {
        let mut t = PageHashTable::new();
        t.map(2, 0x5000, 0xA000);
        assert_eq!(t.lookup(2, 0x5000), Some(0xA000));
        assert_eq!(t.lookup(2, 0x5FFF), Some(0xAFFF));
        assert_eq!(t.lookup(2, 0x6000), None);
    }

    #[test]
    fn ports_are_isolated() {
        let mut t = PageHashTable::new();
        t.map(0, 0x1000, 0x8000);
        assert_eq!(t.lookup(3, 0x1000), None);
    }

    #[test]
    fn map_region_spans_pages() {
        let mut t = PageHashTable::new();
        t.map_region(1, 0x1000, 0x20000, 3 * PAGE_SIZE);
        assert_eq!(t.lookup(1, 0x1000), Some(0x20000));
        assert_eq!(t.lookup(1, 0x2000), Some(0x21000));
        assert_eq!(t.lookup(1, 0x3ABC), Some(0x22ABC));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn map_region_partial_last_page() {
        let mut t = PageHashTable::new();
        t.map_region(1, 0, 0x9000, PAGE_SIZE + 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn unmap_port_clears_only_that_port() {
        let mut t = PageHashTable::new();
        t.map(0, 0, 0x1000);
        t.map(1, 0, 0x2000);
        t.unmap_port(0);
        assert!(t.lookup(0, 0).is_none());
        assert!(t.lookup(1, 0).is_some());
    }
}
