//! The GM device driver's mechanical duties and their costs.
//!
//! The driver owns the slow, privileged operations of the recovery path —
//! the ones Table 3 ascribes to the FTD: resetting the interface, clearing
//! SRAM, reloading the MCP over the EBUS (≈500 ms, the single largest
//! recovery component), and re-registering host-resident tables. The
//! *policy* of recovery lives in `ftgm-core`; this module provides the
//! durations and the host-side copies of the state being restored.
//!
//! A note on the MCP image: the real GM 1.5.1 control program is a
//! megabyte-class image PIO-written over the EBUS, which is why reloading
//! dominates recovery. Our interpreted firmware is a few hundred bytes, so
//! the driver charges the *nominal* image size for timing while loading the
//! actual bytes — same code path, faithful cost.

use ftgm_sim::SimDuration;

/// Driver cost parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DriverParams {
    /// Nominal MCP image size (the real GM MCP, not our small routine).
    pub mcp_image_nominal: u32,
    /// EBUS programmed-I/O write rate, bytes/second.
    pub ebus_pio_rate: u64,
    /// Card reset pulse + PLL/DMA re-init settle time.
    pub reset_settle: SimDuration,
    /// Clearing all of SRAM before reload.
    pub sram_clear: SimDuration,
    /// Re-registering the page hash table with the MCP.
    pub page_table_restore: SimDuration,
    /// Restoring mapping/route tables into SRAM.
    pub route_table_restore: SimDuration,
    /// Posting one FAULT_DETECTED event into an open port's receive queue.
    pub post_fault_event: SimDuration,
    /// Interrupt delivery latency (IRQ line → handler running).
    pub irq_latency: SimDuration,
    /// Magic-word liveness probe: write + wait for the MCP to clear it.
    pub magic_probe_wait: SimDuration,
}

impl Default for DriverParams {
    fn default() -> Self {
        DriverParams {
            // 1 MB nominal image over a 2 MB/s EBUS PIO path ≈ 500 ms,
            // matching the paper's "~500,000us spent reloading the MCP".
            mcp_image_nominal: 1 << 20,
            ebus_pio_rate: 2_097_152,
            reset_settle: SimDuration::from_ms(25),
            sram_clear: SimDuration::from_ms(40),
            page_table_restore: SimDuration::from_ms(90),
            route_table_restore: SimDuration::from_ms(100),
            post_fault_event: SimDuration::from_us(40),
            irq_latency: SimDuration::from_us(13),
            magic_probe_wait: SimDuration::from_ms(5),
        }
    }
}

/// The device driver: cost model plus host-side state copies.
#[derive(Clone, Debug)]
pub struct Driver {
    params: DriverParams,
    /// The host's copy of the firmware image (reloaded on recovery).
    mcp_image: Vec<u8>,
    /// Entry offset of `send_chunk` within the image.
    send_chunk_entry: u32,
    interrupts_enabled: bool,
}

impl Driver {
    /// Creates a driver with no image loaded yet.
    pub fn new(params: DriverParams) -> Driver {
        Driver {
            params,
            mcp_image: Vec::new(),
            send_chunk_entry: 0,
            interrupts_enabled: true,
        }
    }

    /// The cost parameters.
    pub fn params(&self) -> &DriverParams {
        &self.params
    }

    /// Stores the pristine firmware image (done at `gm_init` time) so a
    /// recovery can reload it.
    pub fn stash_mcp_image(&mut self, image: Vec<u8>, send_chunk_entry: u32) {
        self.mcp_image = image;
        self.send_chunk_entry = send_chunk_entry;
    }

    /// The pristine firmware image bytes.
    pub fn mcp_image(&self) -> &[u8] {
        &self.mcp_image
    }

    /// Entry offset of `send_chunk` within the stashed image.
    pub fn send_chunk_entry(&self) -> u32 {
        self.send_chunk_entry
    }

    /// Time to PIO-write the (nominal) MCP image over the EBUS.
    pub fn mcp_load_time(&self) -> SimDuration {
        SimDuration::for_bytes(
            self.params.mcp_image_nominal as u64,
            self.params.ebus_pio_rate,
        )
    }

    /// Whether the driver currently forwards card interrupts.
    pub fn interrupts_enabled(&self) -> bool {
        self.interrupts_enabled
    }

    /// Masks or unmasks card interrupts at the driver level (the FTD masks
    /// them around the reset window).
    pub fn set_interrupts_enabled(&mut self, enabled: bool) {
        self.interrupts_enabled = enabled;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mcp_load_is_half_a_second() {
        let d = Driver::new(DriverParams::default());
        let t = d.mcp_load_time();
        let secs = t.as_secs_f64();
        assert!((0.45..0.55).contains(&secs), "load time {secs}s");
    }

    #[test]
    fn stash_keeps_image_and_entry() {
        let mut d = Driver::new(DriverParams::default());
        d.stash_mcp_image(vec![1, 2, 3, 4], 8);
        assert_eq!(d.mcp_image(), &[1, 2, 3, 4]);
        assert_eq!(d.send_chunk_entry(), 8);
    }

    #[test]
    fn interrupt_gate_toggles() {
        let mut d = Driver::new(DriverParams::default());
        assert!(d.interrupts_enabled());
        d.set_interrupts_enabled(false);
        assert!(!d.interrupts_enabled());
    }

    #[test]
    fn irq_latency_is_small_vs_watchdog() {
        // The paper ignores interrupt latency (~13us) against the 800us
        // watchdog period; keep the model consistent with that.
        let p = DriverParams::default();
        assert!(p.irq_latency.as_micros_f64() < 50.0);
    }
}
