#![warn(missing_docs)]

//! The host system model: everything on the PC side of the PCI slot.
//!
//! The paper's testbed was a pair of Pentium-III machines with 33 MHz PCI
//! and RedHat 7.2. This crate models the pieces of that machine the
//! experiments exercise:
//!
//! * [`memory`] — host RAM with *pinned, DMA-able* regions. GM's zero-copy
//!   path requires user buffers to be pinned; a NIC DMA that hits an
//!   unpinned address is exactly how an interface fault propagates into a
//!   **host crash** (Table 1's rarest-but-worst category).
//! * [`pages`] — the page hash table mapping `(port, virtual page)` to DMA
//!   addresses. It lives in host memory, the MCP caches entries, and the
//!   FTD re-registers it with the card during recovery.
//! * [`pci`] — the shared 33 MHz/64-bit PCI bus: one resource per host that
//!   all DMA (send staging, receive delivery, event posting) contends for.
//!   The paper's ~92 MB/s bandwidth asymptote is a PCI artifact, so this is
//!   the component that reproduces Figure 7's ceiling.
//! * [`process`] — the minimal process table: user processes and the FTD
//!   daemon sleep and get woken by the driver.
//! * [`driver`] — the GM device driver's mechanical duties with their
//!   costs: loading the MCP over the EBUS (the dominant ~500 ms of the
//!   FTD's recovery budget), card reset, interrupt bookkeeping.
//! * [`accounting`] — host-CPU time accounting, the source of Table 2's
//!   "host utilization" rows.
//!
//! The aggregate per-node façade is [`HostSystem`].

pub mod accounting;
pub mod driver;
pub mod memory;
pub mod pages;
pub mod pci;
pub mod process;

pub use accounting::{CpuAccounting, CpuCost};
pub use driver::{Driver, DriverParams};
pub use memory::{CrashReason, DmaRegion, HostMemory};
pub use pages::PageHashTable;
pub use pci::{PciBus, PciParams};
pub use process::{Pid, ProcessState, ProcessTable};

/// One complete host: memory, bus, processes, driver and accounting.
///
/// The simulation world owns one `HostSystem` per node and wires its pieces
/// to the NIC model.
#[derive(Debug)]
pub struct HostSystem {
    /// Host RAM and pinned-region registry.
    pub mem: HostMemory,
    /// The page hash table (host copy; the MCP caches entries).
    pub pages: PageHashTable,
    /// The shared PCI bus.
    pub pci: PciBus,
    /// Processes (applications and the FTD).
    pub procs: ProcessTable,
    /// The GM device driver.
    pub driver: Driver,
    /// Host-CPU accounting for Table 2.
    pub cpu: CpuAccounting,
}

impl HostSystem {
    /// Creates a host with `mem_len` bytes of RAM and default parameters.
    pub fn new(mem_len: usize) -> HostSystem {
        HostSystem {
            mem: HostMemory::new(mem_len),
            pages: PageHashTable::new(),
            pci: PciBus::new(PciParams::default()),
            procs: ProcessTable::new(),
            driver: Driver::new(DriverParams::default()),
            cpu: CpuAccounting::new(),
        }
    }

    /// `true` once a fault has crashed this host.
    pub fn crashed(&self) -> bool {
        self.mem.crash_reason().is_some()
    }
}
