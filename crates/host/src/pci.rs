//! The PCI bus timing model.
//!
//! Each host has one 33 MHz × 64-bit PCI bus that every NIC DMA crosses:
//! send staging (host→SRAM), receive delivery (SRAM→host) and event-queue
//! posts all contend for it. The bus is modelled as a single serially-
//! reusable resource: a transfer costs a fixed setup (arbitration + address
//! phase + DMA engine start) plus a per-byte cost at the sustained burst
//! rate. Under the paper's bidirectional `allsize` workload this shared
//! resource — not the 2 Gb/s link — is what caps the data rate near
//! 92 MB/s, giving Figure 7 its asymptote.

use ftgm_sim::{SimDuration, SimTime};

/// PCI bus parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PciParams {
    /// Fixed per-transfer setup cost.
    pub setup: SimDuration,
    /// Sustained burst rate in bytes/second.
    pub bytes_per_sec: u64,
}

impl Default for PciParams {
    fn default() -> Self {
        // 33 MHz x 64 bit peaks at 264 MB/s; sustained burst efficiency on
        // the paper's platform is ~85%, and each DMA pays ~2 us of
        // arbitration + engine start (66 PCI cycles).
        PciParams {
            setup: SimDuration::from_nanos(2_000),
            bytes_per_sec: 216_000_000,
        }
    }
}

/// A scheduled bus transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PciTransfer {
    /// When the transfer actually started (after queueing).
    pub start: SimTime,
    /// When the last byte crossed the bus.
    pub end: SimTime,
}

/// The serially-reusable PCI bus.
///
/// # Example
///
/// ```
/// use ftgm_host::{PciBus, PciParams};
/// use ftgm_sim::SimTime;
///
/// let mut bus = PciBus::new(PciParams::default());
/// let t1 = bus.transfer(SimTime::ZERO, 4096);
/// let t2 = bus.transfer(SimTime::ZERO, 4096);
/// assert_eq!(t2.start, t1.end); // second DMA queues behind the first
/// ```
#[derive(Clone, Copy, Debug)]
pub struct PciBus {
    params: PciParams,
    free_at: SimTime,
    busy_accum: SimDuration,
    transfers: u64,
    bytes: u64,
}

impl PciBus {
    /// Creates an idle bus.
    pub fn new(params: PciParams) -> PciBus {
        PciBus {
            params,
            free_at: SimTime::ZERO,
            busy_accum: SimDuration::ZERO,
            transfers: 0,
            bytes: 0,
        }
    }

    /// The bus parameters.
    pub fn params(&self) -> &PciParams {
        &self.params
    }

    /// Books a `len`-byte transfer requested at `now`; FCFS queueing.
    pub fn transfer(&mut self, now: SimTime, len: u32) -> PciTransfer {
        let start = now.max(self.free_at);
        let dur = self.params.setup + SimDuration::for_bytes(len as u64, self.params.bytes_per_sec);
        let end = start + dur;
        self.free_at = end;
        self.busy_accum += dur;
        self.transfers += 1;
        self.bytes += len as u64;
        PciTransfer { start, end }
    }

    /// When the bus next goes idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total bus-busy time booked so far.
    pub fn busy_time(&self) -> SimDuration {
        self.busy_accum
    }

    /// Total transfers and bytes booked.
    pub fn totals(&self) -> (u64, u64) {
        (self.transfers, self.bytes)
    }

    /// Resets queueing state (used between experiment phases), keeping
    /// parameters.
    pub fn reset(&mut self) {
        self.free_at = SimTime::ZERO;
        self.busy_accum = SimDuration::ZERO;
        self.transfers = 0;
        self.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> PciParams {
        PciParams {
            setup: SimDuration::from_nanos(1_000),
            bytes_per_sec: 200_000_000,
        }
    }

    #[test]
    fn transfer_cost_is_setup_plus_bytes() {
        let mut bus = PciBus::new(params());
        let t = bus.transfer(SimTime::ZERO, 2_000);
        // 2000 B at 200 MB/s = 10us; +1us setup.
        assert_eq!(t.start, SimTime::ZERO);
        assert_eq!(t.end, SimTime::from_nanos(11_000));
    }

    #[test]
    fn transfers_queue_fcfs() {
        let mut bus = PciBus::new(params());
        let a = bus.transfer(SimTime::ZERO, 1_000);
        let b = bus.transfer(SimTime::from_nanos(100), 1_000);
        assert_eq!(b.start, a.end);
        assert!(b.end > a.end);
    }

    #[test]
    fn idle_gap_is_not_charged() {
        let mut bus = PciBus::new(params());
        bus.transfer(SimTime::ZERO, 100);
        let late = SimTime::from_nanos(1_000_000);
        let t = bus.transfer(late, 100);
        assert_eq!(t.start, late);
    }

    #[test]
    fn accounting_accumulates() {
        let mut bus = PciBus::new(params());
        bus.transfer(SimTime::ZERO, 1_000);
        bus.transfer(SimTime::ZERO, 1_000);
        let (n, b) = bus.totals();
        assert_eq!((n, b), (2, 2_000));
        assert_eq!(bus.busy_time(), SimDuration::from_nanos(2 * 6_000));
    }

    #[test]
    fn reset_clears_queue() {
        let mut bus = PciBus::new(params());
        bus.transfer(SimTime::ZERO, 100_000);
        bus.reset();
        assert_eq!(bus.free_at(), SimTime::ZERO);
        assert_eq!(bus.totals(), (0, 0));
    }
}
