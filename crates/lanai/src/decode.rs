//! Decoded-op LN32 backend: predecoded SRAM pages with direct dispatch.
//!
//! [`Cpu::run`](crate::cpu::Cpu::run) re-decodes every instruction word on
//! every fetch. `send_chunk` runs on every chunk of every send, so that
//! decode cost is a first-order term in single-world throughput. This
//! module predecodes 4 KB SRAM pages into compact [`DOp`] arrays held in a
//! [`DecodeCache`] and dispatches on them directly.
//!
//! # Invalidation contract
//!
//! Correctness under fault injection hinges on one rule: **a decoded page
//! is valid only while its [`Sram::page_version`] is unchanged**. Every
//! SRAM mutation path (checked stores, bulk writes, `clear`, and the
//! chaos engine's `flip_bit`) bumps the touched page's version, and
//! [`run_decoded`] compares the version at every point where the page
//! can have changed: when execution enters a page, and immediately after
//! every store instruction. Those are the only such points — between
//! runs any mutation (an injected bit flip, a firmware reload) is caught
//! by the entry check, and *during* a run the interpreter's own stores
//! are the sole mutation path ([`CsrBus`] hands CSR handlers the SRAM
//! read-only). A store into the currently executing code page —
//! self-modifying firmware or an injected bit flip — is therefore
//! observed at exactly the fetch where the word-by-word reference
//! interpreter would first read the new bytes, which is what keeps
//! `BitFlip` campaigns bit-exact across backends.
//!
//! The reference interpreter is kept verbatim in [`crate::cpu`]; the
//! differential suites (`tests/cpu_equivalence.rs`) lock-step the two.

use crate::cpu::{mem, CsrBus, Cpu, RunOutcome, TrapKind, RETURN_ADDR};
use crate::isa::Opcode;
use crate::sram::{Sram, PAGE_SHIFT, PAGE_SIZE};

/// A predecoded instruction: opcode-specific fields extracted, immediates
/// sign-extended, branch displacements and the `lui` constant folded.
///
/// Unassigned encodings decode to [`DOp::Illegal`], which traps lazily at
/// execution — a page full of garbage costs nothing unless jumped into,
/// exactly like the reference interpreter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DOp {
    /// `add rd, rs1, rs2`
    Add { rd: u8, rs1: u8, rs2: u8 },
    /// `sub rd, rs1, rs2`
    Sub { rd: u8, rs1: u8, rs2: u8 },
    /// `and rd, rs1, rs2`
    And { rd: u8, rs1: u8, rs2: u8 },
    /// `or rd, rs1, rs2`
    Or { rd: u8, rs1: u8, rs2: u8 },
    /// `xor rd, rs1, rs2`
    Xor { rd: u8, rs1: u8, rs2: u8 },
    /// `sll rd, rs1, rs2`
    Sll { rd: u8, rs1: u8, rs2: u8 },
    /// `srl rd, rs1, rs2`
    Srl { rd: u8, rs1: u8, rs2: u8 },
    /// `addi rd, rs1, imm` (imm pre-converted to wrapping u32)
    Addi { rd: u8, rs1: u8, imm: u32 },
    /// `andi rd, rs1, imm`
    Andi { rd: u8, rs1: u8, imm: u32 },
    /// `ori rd, rs1, imm`
    Ori { rd: u8, rs1: u8, imm: u32 },
    /// `xori rd, rs1, imm`
    Xori { rd: u8, rs1: u8, imm: u32 },
    /// `lui rd, imm` with the shifted constant folded at decode time.
    Lui { rd: u8, val: u32 },
    /// `lb rd, imm(rs1)`
    Lb { rd: u8, rs1: u8, imm: u32 },
    /// `lh rd, imm(rs1)`
    Lh { rd: u8, rs1: u8, imm: u32 },
    /// `lw rd, imm(rs1)`
    Lw { rd: u8, rs1: u8, imm: u32 },
    /// `sb rs2, imm(rs1)`
    Sb { rs1: u8, rs2: u8, imm: u32 },
    /// `sh rs2, imm(rs1)`
    Sh { rs1: u8, rs2: u8, imm: u32 },
    /// `sw rs2, imm(rs1)`
    Sw { rs1: u8, rs2: u8, imm: u32 },
    /// `beq rs1, rs2, imm`; `off` is the folded `1 + imm` *word* delta,
    /// applied to the in-page word index (exact in pc-space too: the
    /// u32-wrapped index, times four, wraps to the same 32-bit PC).
    Beq { rs1: u8, rs2: u8, off: u32 },
    /// `bne rs1, rs2, imm`
    Bne { rs1: u8, rs2: u8, off: u32 },
    /// `bltu rs1, rs2, imm`
    Bltu { rs1: u8, rs2: u8, off: u32 },
    /// `bgeu rs1, rs2, imm`
    Bgeu { rs1: u8, rs2: u8, off: u32 },
    /// `jal rd, imm`
    Jal { rd: u8, off: u32 },
    /// `jr rs1`
    Jr { rs1: u8 },
    /// `csrr rd, csr`
    Csrr { rd: u8, csr: u32 },
    /// `csrw csr, rs2`
    Csrw { rs2: u8, csr: u32 },
    /// `nop`
    Nop,
    /// Unassigned encoding: traps with `IllegalInstruction` if fetched.
    Illegal,
}

/// Decodes one instruction word into a [`DOp`].
///
/// Field extraction mirrors [`crate::isa::Instr::decode`] bit-for-bit
/// (same opcode table via [`Opcode::from_bits`], same 14-bit sign
/// extension) but avoids the panicking `Reg` constructor so the decode
/// path stays panic-free under the transitive-panic lint.
fn decode_word(word: u32) -> DOp {
    let Some(op) = Opcode::from_bits(((word >> 26) & 0x3F) as u8) else {
        return DOp::Illegal;
    };
    let rd = ((word >> 22) & 0xF) as u8;
    let rs1 = ((word >> 18) & 0xF) as u8;
    let rs2 = ((word >> 14) & 0xF) as u8;
    // Sign-extend the 14-bit immediate (as Instr::decode does), then fold
    // it into the form each opcode actually consumes.
    let simm = (((word & 0x3FFF) as i32) << 18) >> 18;
    let imm = simm as u32;
    // Branch/jal displacement in *words*: the reference's pc-space
    // `4 + (imm << 2)` byte delta, divided by four.
    let off = 1u32.wrapping_add(imm);
    let csr = imm & 0x3FFF;
    let d = match op {
        Opcode::Add => DOp::Add { rd, rs1, rs2 },
        Opcode::Sub => DOp::Sub { rd, rs1, rs2 },
        Opcode::And => DOp::And { rd, rs1, rs2 },
        Opcode::Or => DOp::Or { rd, rs1, rs2 },
        Opcode::Xor => DOp::Xor { rd, rs1, rs2 },
        Opcode::Sll => DOp::Sll { rd, rs1, rs2 },
        Opcode::Srl => DOp::Srl { rd, rs1, rs2 },
        Opcode::Addi => DOp::Addi { rd, rs1, imm },
        Opcode::Andi => DOp::Andi { rd, rs1, imm },
        Opcode::Ori => DOp::Ori { rd, rs1, imm },
        Opcode::Xori => DOp::Xori { rd, rs1, imm },
        Opcode::Lui => DOp::Lui { rd, val: (imm & 0x3FFF) << 13 },
        Opcode::Lb => DOp::Lb { rd, rs1, imm },
        Opcode::Lh => DOp::Lh { rd, rs1, imm },
        Opcode::Lw => DOp::Lw { rd, rs1, imm },
        Opcode::Sb => DOp::Sb { rs1, rs2, imm },
        Opcode::Sh => DOp::Sh { rs1, rs2, imm },
        Opcode::Sw => DOp::Sw { rs1, rs2, imm },
        Opcode::Beq => DOp::Beq { rs1, rs2, off },
        Opcode::Bne => DOp::Bne { rs1, rs2, off },
        Opcode::Bltu => DOp::Bltu { rs1, rs2, off },
        Opcode::Bgeu => DOp::Bgeu { rs1, rs2, off },
        Opcode::Jal => DOp::Jal { rd, off },
        Opcode::Jr => DOp::Jr { rs1 },
        Opcode::Csrr => DOp::Csrr { rd, csr },
        Opcode::Csrw => DOp::Csrw { rs2, csr },
        Opcode::Nop => DOp::Nop,
    };
    // A register-only op targeting `r0` retires exactly like `nop` (one
    // cycle, no architectural effect — the reference discards the
    // write), so decode it as one: every ALU/`lui` arm in the hot loop
    // can then write its destination unguarded. Loads, `jal` and `csrr`
    // keep their guarded writes — their side effects (memory access,
    // jump, CSR read) must still happen with `rd = 0`.
    match d {
        DOp::Add { rd: 0, .. }
        | DOp::Sub { rd: 0, .. }
        | DOp::And { rd: 0, .. }
        | DOp::Or { rd: 0, .. }
        | DOp::Xor { rd: 0, .. }
        | DOp::Sll { rd: 0, .. }
        | DOp::Srl { rd: 0, .. }
        | DOp::Addi { rd: 0, .. }
        | DOp::Andi { rd: 0, .. }
        | DOp::Ori { rd: 0, .. }
        | DOp::Xori { rd: 0, .. }
        | DOp::Lui { rd: 0, .. } => DOp::Nop,
        other => other,
    }
}

/// One predecoded 4 KB page: the SRAM page version it was decoded at
/// (`None` until first decode), one [`DOp`] per instruction slot, and
/// per-slot *plain-run lengths* — `runs[i]` counts the consecutive ops
/// from `i` that neither store, branch, jump, nor touch a CSR, so the
/// execution loop can burst through them with no per-instruction
/// budget/self-modification checks.
#[derive(Clone, Debug, Default)]
struct DecodedPage {
    stamp: Option<u64>,
    ops: Vec<DOp>,
    runs: Vec<u16>,
    fused: Vec<FOp>,
}

/// Whether an op can be executed inside a burst: it never redirects the
/// PC, never writes SRAM (so the page cannot invalidate mid-burst), and
/// never touches a CSR. Loads may trap, but a trap aborts the whole run
/// with exact state, so they stay burstable.
fn plain(op: DOp) -> bool {
    matches!(
        op,
        DOp::Add { .. }
            | DOp::Sub { .. }
            | DOp::And { .. }
            | DOp::Or { .. }
            | DOp::Xor { .. }
            | DOp::Sll { .. }
            | DOp::Srl { .. }
            | DOp::Addi { .. }
            | DOp::Andi { .. }
            | DOp::Ori { .. }
            | DOp::Xori { .. }
            | DOp::Lui { .. }
            | DOp::Lb { .. }
            | DOp::Lh { .. }
            | DOp::Lw { .. }
            | DOp::Nop
    )
}

/// Per-SRAM cache of predecoded pages.
///
/// Owned by the chip model next to its [`Sram`] (not inside it, so the
/// chip's split-borrow routine invocation can hand the CPU the memory and
/// the cache independently). Stale pages are detected by comparing the
/// recorded [`Sram::page_version`] stamp on every fetch and re-decoded in
/// place; `Vec` capacity is retained so steady-state re-decodes allocate
/// nothing.
#[derive(Clone, Debug, Default)]
pub struct DecodeCache {
    pages: Vec<DecodedPage>,
}

impl DecodeCache {
    /// Creates an empty cache; pages are sized to the SRAM on first run.
    pub fn new() -> DecodeCache {
        DecodeCache::default()
    }

    /// Number of pages currently decoded and valid for `sram`.
    ///
    /// Diagnostic / test hook: lets the invalidation tests observe that a
    /// store to a code page actually dropped the decoded copy.
    pub fn valid_pages(&self, sram: &Sram) -> usize {
        self.pages
            .iter()
            .enumerate()
            .filter(|(i, p)| p.stamp == Some(sram.page_version(*i)))
            .count()
    }

    /// Grows the page table to cover `sram` (idempotent).
    fn resize_for(&mut self, sram: &Sram) {
        if self.pages.len() != sram.num_pages() {
            self.pages.resize_with(sram.num_pages(), DecodedPage::default);
        }
    }

    /// Re-decodes `page` from `sram` if its stamp is stale.
    #[inline]
    fn ensure(&mut self, sram: &Sram, page: usize, version: u64) {
        let Some(slot) = self.pages.get_mut(page) else {
            return;
        };
        if slot.stamp == Some(version) {
            return;
        }
        slot.ops.clear();
        let base = page * PAGE_SIZE;
        let end = (base + PAGE_SIZE).min(sram.len());
        let mut a = base;
        while a + 4 <= end {
            let op = match sram.read_u32(a as u32) {
                Ok(word) => decode_word(word),
                Err(_) => DOp::Illegal,
            };
            slot.ops.push(op);
            a += 4;
        }
        // Plain-run lengths, filled backward in one pass (a page holds
        // at most 1024 ops, so u16 cannot overflow).
        slot.runs.clear();
        slot.runs.resize(slot.ops.len(), 0);
        let mut run: u16 = 0;
        for i in (0..slot.ops.len()).rev() {
            run = if slot.ops.get(i).copied().is_some_and(plain) {
                run.saturating_add(1)
            } else {
                0
            };
            if let Some(r) = slot.runs.get_mut(i) {
                *r = run;
            }
        }
        // Fused reg-reg ALU pairs on even word boundaries: `fused[p]`
        // covers words `2p` and `2p + 1`, so a burst entered at any
        // word index finds its pairs by parity alone.
        slot.fused.clear();
        for pair in slot.ops.chunks_exact(2) {
            if let [a, b] = *pair {
                slot.fused.push(fuse(a, b));
            }
        }
        slot.stamp = Some(version);
    }

    /// Moves `page`'s decoded ops and run lengths out of the cache
    /// (leaving empty vectors behind) so the execution loop can index
    /// them while handing the SRAM mutably to `exec`. Returns the ops,
    /// the run lengths, and the version stamp they were decoded at.
    /// Pair with [`DecodeCache::unlease`].
    #[inline]
    fn lease(&mut self, page: usize) -> (Vec<DOp>, Vec<u16>, Vec<FOp>, u64) {
        match self.pages.get_mut(page) {
            Some(slot) => (
                std::mem::take(&mut slot.ops),
                std::mem::take(&mut slot.runs),
                std::mem::take(&mut slot.fused),
                slot.stamp.unwrap_or(0),
            ),
            None => (Vec::new(), Vec::new(), Vec::new(), 0),
        }
    }

    /// Returns leased vectors to their page slot, preserving their
    /// capacity for the next re-decode.
    #[inline]
    fn unlease(&mut self, page: usize, ops: Vec<DOp>, runs: Vec<u16>, fused: Vec<FOp>) {
        if let Some(slot) = self.pages.get_mut(page) {
            slot.ops = ops;
            slot.runs = runs;
            slot.fused = fused;
        }
    }
}

/// Which interpreter executes firmware routines.
///
/// Both backends are bit-exact by contract (enforced by the differential
/// suites); `Decoded` is the default because it is ~2–3x faster on
/// interpreter-bound work. `Reference` remains selectable so harnesses
/// can lock-step the two and so any future divergence is debuggable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CpuBackend {
    /// The word-by-word interpreter, kept verbatim ([`Cpu::run`]).
    Reference,
    /// The decoded-op cache with direct dispatch ([`run_decoded`]).
    #[default]
    Decoded,
}

impl CpuBackend {
    /// Stable lower-case label (for bench cells and reports).
    pub fn label(self) -> &'static str {
        match self {
            CpuBackend::Reference => "reference",
            CpuBackend::Decoded => "decoded",
        }
    }
}

/// Runs a firmware routine on the decoded backend.
///
/// Drop-in replacement for [`Cpu::run`]: same entry contract (caller
/// seeds `r15` with [`RETURN_ADDR`]), same outcome taxonomy, same cycle
/// charges, same trap points — the loop replicates the reference
/// interpreter's check order exactly (budget, return sentinel, PC
/// alignment/bounds, decode, execute).
pub fn run_decoded(
    cpu: &mut Cpu,
    sram: &mut Sram,
    bus: &mut dyn CsrBus,
    entry: u32,
    max_steps: u64,
    cache: &mut DecodeCache,
) -> RunOutcome {
    cache.resize_for(sram);
    let mut pc = entry;
    let mut steps: u64 = 0;
    // Every op charges at least one cycle, so only the *extra* cycles
    // (the second cycle of memory/CSR/jump ops, the taken-branch
    // penalty) are accumulated here; the reference's cycle count is
    // reconstructed as `steps + extra` wherever an outcome is built.
    // This keeps the hot loop free of a per-instruction counter bump.
    let mut extra: u64 = 0;

    // The page execution currently resides in. Its decoded ops are leased
    // out of the cache so the hot loop can index them while `exec` holds
    // the SRAM mutably; `NO_PAGE` means nothing is leased and the next
    // fetch must (re)validate. Stale-page checks happen on page entry and
    // after every store — the only points where the page can have
    // changed, because CSR handlers see the SRAM read-only.
    const NO_PAGE: usize = usize::MAX;
    let mut cur_page: usize = NO_PAGE;
    let mut cur_stamp: u64 = 0;
    let mut cur_ops: Vec<DOp> = Vec::new();
    let mut cur_runs: Vec<u16> = Vec::new();
    let mut cur_fused: Vec<FOp> = Vec::new();

    // The register file, leased out of the CPU into a 256-slot array so
    // a `u8` operand field indexes it mask- and bounds-check-free (see
    // [`rr`]). Slots 16.. are dead padding; the live 16 are copied back
    // before returning, on every path.
    let mut regs = [0u32; 256];
    regs.iter_mut()
        .zip(cpu.regs_raw_mut().iter())
        .for_each(|(d, s)| *d = *s);

    // Two-level loop: the outer (cold) level validates the PC, swaps the
    // resident page, and re-decodes after self-modification; the inner
    // (hot) level executes straight through the resident page with the
    // ops slice, PC, and counters all register-resident. Every inner
    // break lands back at the outer validation, whose checks replicate
    // the reference interpreter's order (budget, return sentinel, PC
    // alignment/bounds) exactly.
    let outcome = 'run: loop {
        if steps >= max_steps {
            break RunOutcome::OutOfGas {
                pc,
                cycles: steps + extra,
            };
        }
        if pc == RETURN_ADDR {
            break RunOutcome::Completed {
                cycles: steps + extra,
                steps,
            };
        }
        if !pc.is_multiple_of(4) || pc as usize + 4 > sram.len() {
            break RunOutcome::Trap {
                kind: TrapKind::PcOutOfRange,
                pc,
                cycles: steps + extra,
            };
        }
        let page = (pc >> PAGE_SHIFT) as usize;
        if page != cur_page {
            if cur_page != NO_PAGE {
                cache.unlease(
                    cur_page,
                    std::mem::take(&mut cur_ops),
                    std::mem::take(&mut cur_runs),
                    std::mem::take(&mut cur_fused),
                );
            }
            cache.ensure(sram, page, sram.page_version(page));
            let (ops, runs, fused, stamp) = cache.lease(page);
            cur_ops = ops;
            cur_runs = runs;
            cur_fused = fused;
            cur_stamp = stamp;
            cur_page = page;
        }
        let mut invalidate = false;
        {
            let ops: &[DOp] = &cur_ops;
            let runs: &[u16] = &cur_runs;
            let fused: &[FOp] = &cur_fused;
            // The page's valid PC window: `ops.len() * 4` bytes starting
            // at `base` (shorter than a full page only for a trailing
            // partial page), truncated so it never contains
            // `RETURN_ADDR` (only possible on an SRAM reaching past the
            // sentinel's 128 MiB address). While `pc - base < safe_len`
            // every fetch is aligned, in bounds, inside this page, and
            // not the return sentinel, so none of the outer checks need
            // repeating per instruction. Only `jr` can produce a
            // misaligned PC (branch and `jal` displacements are
            // multiples of four), so alignment is re-checked after
            // jumps alone, steered by the flags `exec` returns.
            let base = (cur_page << PAGE_SHIFT) as u32;
            let mut safe_len = (ops.len() * 4) as u32;
            if RETURN_ADDR.wrapping_sub(base) < safe_len {
                safe_len = RETURN_ADDR - base;
            }
            // The truncation must only ever drop the *tail* of a page:
            // a valid PC past the window would re-enter the outer loop
            // without making progress. `RETURN_ADDR` sits in the last
            // word slot of its page, so nothing lies beyond it.
            const _: () = assert!(RETURN_ADDR as usize % PAGE_SIZE == PAGE_SIZE - 4);
            // The fetch below indexes this subslice, so leaving the
            // window and fetching are the same bounds check: a `get`
            // miss (wrapped PC delta, window overrun) is the loop exit,
            // not an error.
            let win: &[DOp] = ops.get(..(safe_len as usize >> 2)).unwrap_or(ops);
            // The register file is borrowed once so the array pointer
            // can stay register-resident across op handlers.
            let regs = &mut regs;
            // The loop runs in word-index space: `widx` is the PC's
            // offset into the window in words, branch arms apply their
            // pre-folded word deltas to it, and the byte PC exists only
            // outside the loop. The u32-wrapped index times four wraps
            // to exactly the reference's 32-bit PC, so reconstruction
            // on exit is lossless; only a misaligned `jr` target has
            // low bits an index cannot carry, and those arrive through
            // the `EXEC_*` flags byte.
            let mut widx: u32 = pc.wrapping_sub(base) >> 2;
            let mut misalign: u8 = 0;
            // Budget ticks remaining (≥ 1 here: the outer loop already
            // rejected an exhausted budget). `steps` is reconstructed
            // from it once the loop exits; trap exits compute the
            // retired count directly.
            let mut fuel = max_steps - steps;
            loop {
                let Some(&op) = win.get(widx as usize) else {
                    break;
                };
                // Burst path: `runs[widx]` consecutive ops are plain
                // (no store, branch, jump, or CSR), so as many of them
                // as the window and budget allow execute back to back
                // with no per-instruction flag or fuel checks. A load
                // trap inside the burst still aborts with exact state:
                // `j` ops retired before it, none charged for it.
                let run = u64::from(runs.get(widx as usize).copied().unwrap_or(0));
                if run > 1 {
                    let start = widx as usize;
                    let k = run.min((win.len() - start) as u64).min(fuel) as usize;
                    if let Err((j, kind)) = run_burst(regs, win, fused, start, k, sram, &mut extra)
                    {
                        break 'run RunOutcome::Trap {
                            kind,
                            pc: base.wrapping_add(widx.wrapping_add(j as u32).wrapping_shl(2)),
                            cycles: (max_steps - fuel) + j as u64 + extra,
                        };
                    }
                    widx = widx.wrapping_add(k as u32);
                    fuel -= k as u64;
                    if fuel == 0 {
                        break;
                    }
                    continue;
                }
                let mut next_widx = widx.wrapping_add(1);
                let flags = match exec(regs, op, sram, bus, base, widx, &mut next_widx, &mut extra)
                {
                    Ok(flags) => flags,
                    Err(kind) => {
                        // The trapping op charges nothing and is not
                        // retired; `fuel` still excludes it, so the
                        // completed-step count is `max_steps - fuel`.
                        break 'run RunOutcome::Trap {
                            kind,
                            pc: base.wrapping_add(widx.wrapping_shl(2)),
                            cycles: (max_steps - fuel) + extra,
                        };
                    }
                };
                widx = next_widx;
                fuel -= 1;
                if flags != 0 {
                    // A store may have rewritten the executing page
                    // (self-modifying firmware): drop the lease and
                    // re-decode before the very next fetch. A `jr` may
                    // have produced a misaligned PC whose low bits the
                    // rounding fetch above must never swallow.
                    if flags & EXEC_STORE != 0 && sram.page_version(cur_page) != cur_stamp {
                        invalidate = true;
                        break;
                    }
                    let low = flags >> 2;
                    if low != 0 {
                        misalign = low;
                        break;
                    }
                }
                if fuel == 0 {
                    break;
                }
            }
            steps = max_steps - fuel;
            pc = base.wrapping_add(widx.wrapping_shl(2)) | u32::from(misalign);
        }
        if invalidate {
            cache.unlease(
                cur_page,
                std::mem::take(&mut cur_ops),
                std::mem::take(&mut cur_runs),
                std::mem::take(&mut cur_fused),
            );
            cur_page = NO_PAGE;
        }
    };
    if cur_page != NO_PAGE {
        cache.unlease(cur_page, cur_ops, cur_runs, cur_fused);
    }
    cpu.regs_raw_mut()
        .iter_mut()
        .zip(regs.iter())
        .for_each(|(d, s)| *d = *s);
    outcome
}

/// Exec-result flag: the op was a store, so the executing page may need
/// a re-decode before the next fetch.
const EXEC_STORE: u8 = 1;
/// Exec-result flag: the op was an indirect jump, the only way the PC
/// can become misaligned. A `jr` to a misaligned target additionally
/// carries the target's low two PC bits in flag bits 2–3 (a word index
/// cannot represent them).
const EXEC_JUMP: u8 = 2;

/// Raw register read. The file is padded to 256 slots (see
/// `run_decoded`) so the `u8` operand field indexes it with no mask:
/// the compiler proves `u8 < 256` and elides both mask and bounds
/// check. Operand fields are 4-bit by construction of [`decode_word`],
/// so slots 16.. are never actually reached.
#[inline(always)]
fn rr(regs: &[u32; 256], i: u8) -> u32 {
    regs.get(usize::from(i)).copied().unwrap_or(0)
}

/// Raw register write with the architectural `r0`-discard guard, for
/// ops whose side effects must happen even when `rd = 0` (loads,
/// `jal`, `csrr`).
#[inline(always)]
fn wr(regs: &mut [u32; 256], i: u8, v: u32) {
    if i != 0 {
        wr_nz(regs, i, v);
    }
}

/// Unguarded register write, for ALU/`lui` arms only: [`decode_word`]
/// rewrites every `r0`-targeted register-only op to [`DOp::Nop`], so
/// `i != 0` holds by construction and the discard test disappears from
/// the hot path.
#[inline(always)]
fn wr_nz(regs: &mut [u32; 256], i: u8, v: u32) {
    if let Some(r) = regs.get_mut(usize::from(i)) {
        *r = v;
    }
}

/// Computes one reg-reg ALU result, selected by kind ident — the shared
/// body generator for [`fop_table`]'s fused arms, matching the
/// corresponding [`exec`] arms exactly.
macro_rules! alu_val {
    (Add, $regs:expr, $x:expr, $y:expr) => {
        rr($regs, $x).wrapping_add(rr($regs, $y))
    };
    (Sub, $regs:expr, $x:expr, $y:expr) => {
        rr($regs, $x).wrapping_sub(rr($regs, $y))
    };
    (And, $regs:expr, $x:expr, $y:expr) => {
        rr($regs, $x) & rr($regs, $y)
    };
    (Or, $regs:expr, $x:expr, $y:expr) => {
        rr($regs, $x) | rr($regs, $y)
    };
    (Xor, $regs:expr, $x:expr, $y:expr) => {
        rr($regs, $x) ^ rr($regs, $y)
    };
    (Sll, $regs:expr, $x:expr, $y:expr) => {
        rr($regs, $x).wrapping_shl(rr($regs, $y) & 31)
    };
    (Srl, $regs:expr, $x:expr, $y:expr) => {
        rr($regs, $x).wrapping_shr(rr($regs, $y) & 31)
    };
}

/// Generates the fused-pair machinery from a list of
/// `(Variant, KindA, KindB)` triples: the [`FOp`] enum, the decode-time
/// [`fuse`] classifier, and the [`exec_pair`] executor whose every arm
/// is the two ALU bodies back to back under a *single* dispatch.
macro_rules! fop_table {
    ($( ($v:ident, $fa:ident, $fb:ident) ),+ $(,)?) => {
        /// A fused pair of reg-reg ALU ops occupying one even-aligned
        /// word pair (`2p`, `2p + 1`), built at decode time so the
        /// burst executor retires two instructions per dispatch.
        /// Reg-reg ALU ops are the only fusable kind: they cannot trap,
        /// store, jump, or touch a CSR, so a pair has no intermediate
        /// exit the word-indexed PC would need to name.
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
        enum FOp {
            /// This word pair is not two fusable ops.
            #[default]
            None,
            $( $v { ar: u8, ax: u8, ay: u8, br: u8, bx: u8, by: u8 }, )+
        }

        /// Fuses two adjacent decoded ops, or returns [`FOp::None`].
        fn fuse(a: DOp, b: DOp) -> FOp {
            match (a, b) {
                $( (
                    DOp::$fa { rd: ar, rs1: ax, rs2: ay },
                    DOp::$fb { rd: br, rs1: bx, rs2: by },
                ) => FOp::$v { ar, ax, ay, br, bx, by }, )+
                _ => FOp::None,
            }
        }

        /// Executes one fused pair sequentially (the second op observes
        /// the first's write, exactly as two [`exec`] steps would).
        /// Returns `false` on [`FOp::None`] so the caller falls back to
        /// two single-op steps.
        #[inline(always)]
        fn exec_pair(regs: &mut [u32; 256], f: FOp) -> bool {
            match f {
                FOp::None => false,
                $( FOp::$v { ar, ax, ay, br, bx, by } => {
                    let va = alu_val!($fa, regs, ax, ay);
                    wr_nz(regs, ar, va);
                    let vb = alu_val!($fb, regs, bx, by);
                    wr_nz(regs, br, vb);
                    true
                } )+
            }
        }
    }
}

fop_table!(
    (AddAdd, Add, Add), (AddSub, Add, Sub), (AddAnd, Add, And),
    (AddOr, Add, Or), (AddXor, Add, Xor), (AddSll, Add, Sll),
    (AddSrl, Add, Srl), (SubAdd, Sub, Add), (SubSub, Sub, Sub),
    (SubAnd, Sub, And), (SubOr, Sub, Or), (SubXor, Sub, Xor),
    (SubSll, Sub, Sll), (SubSrl, Sub, Srl), (AndAdd, And, Add),
    (AndSub, And, Sub), (AndAnd, And, And), (AndOr, And, Or),
    (AndXor, And, Xor), (AndSll, And, Sll), (AndSrl, And, Srl),
    (OrAdd, Or, Add), (OrSub, Or, Sub), (OrAnd, Or, And),
    (OrOr, Or, Or), (OrXor, Or, Xor), (OrSll, Or, Sll),
    (OrSrl, Or, Srl), (XorAdd, Xor, Add), (XorSub, Xor, Sub),
    (XorAnd, Xor, And), (XorOr, Xor, Or), (XorXor, Xor, Xor),
    (XorSll, Xor, Sll), (XorSrl, Xor, Srl), (SllAdd, Sll, Add),
    (SllSub, Sll, Sub), (SllAnd, Sll, And), (SllOr, Sll, Or),
    (SllXor, Sll, Xor), (SllSll, Sll, Sll), (SllSrl, Sll, Srl),
    (SrlAdd, Srl, Add), (SrlSub, Srl, Sub), (SrlAnd, Srl, And),
    (SrlOr, Srl, Or), (SrlXor, Srl, Xor), (SrlSll, Srl, Sll),
    (SrlSrl, Srl, Srl),
);

/// Executes one burst of *plain* ops (see [`plain`]): the slim second
/// dispatch loop, covering only the arms that can appear inside a run
/// so its jump table stays small and free of the flag/PC plumbing the
/// full [`exec`] needs. Deliberately *not* inlined: giving the burst
/// loop its own register allocation keeps both it and the main fetch
/// loop spill-free, and the call is amortized over the whole run. Ops
/// outside the plain set are unreachable here by construction (`runs`
/// is built from the same ops vector by the same [`plain`] predicate);
/// the fallback arm traps rather than guessing, so even a broken
/// invariant could only fail loudly.
///
/// Executes `k` plain ops starting at word index `start` of `win`,
/// retiring fused even-aligned pairs from `fused` where available
/// (most of an ALU-dense run: two instructions per dispatch, no trap
/// or flag plumbing) and stepping singles at the run's ragged edges —
/// an odd entry word, unfusable pairs, an odd tail.
///
/// On a load trap, returns the burst-relative index of the trapping op
/// (which has charged nothing) alongside the trap kind.
#[inline(never)]
fn run_burst(
    regs: &mut [u32; 256],
    win: &[DOp],
    fused: &[FOp],
    start: usize,
    k: usize,
    sram: &Sram,
    extra: &mut u64,
) -> Result<(), (usize, TrapKind)> {
    let mut j = 0usize;
    // Entering mid-pair: one single step re-aligns to the pair grid.
    if start & 1 == 1 && j < k {
        let Some(&a) = win.get(start) else {
            return Ok(());
        };
        exec_plain(regs, a, sram, extra).map_err(|kind| (j, kind))?;
        j = 1;
    }
    while j.wrapping_add(2) <= k {
        let w = start.wrapping_add(j);
        let f = fused.get(w >> 1).copied().unwrap_or(FOp::None);
        if !exec_pair(regs, f) {
            let (Some(&a), Some(&b)) = (win.get(w), win.get(w.wrapping_add(1))) else {
                return Ok(());
            };
            exec_plain(regs, a, sram, extra).map_err(|kind| (j, kind))?;
            exec_plain(regs, b, sram, extra).map_err(|kind| (j.wrapping_add(1), kind))?;
        }
        j = j.wrapping_add(2);
    }
    if j < k {
        let Some(&a) = win.get(start.wrapping_add(j)) else {
            return Ok(());
        };
        exec_plain(regs, a, sram, extra).map_err(|kind| (j, kind))?;
    }
    Ok(())
}

/// Executes one plain op; the burst loop's dispatch body.
#[inline(always)]
fn exec_plain(
    regs: &mut [u32; 256],
    op: DOp,
    sram: &Sram,
    extra: &mut u64,
) -> Result<(), TrapKind> {
    match op {
        DOp::Add { rd, rs1, rs2 } => {
            wr_nz(regs, rd, rr(regs, rs1).wrapping_add(rr(regs, rs2)));
        }
        DOp::Sub { rd, rs1, rs2 } => {
            wr_nz(regs, rd, rr(regs, rs1).wrapping_sub(rr(regs, rs2)));
        }
        DOp::And { rd, rs1, rs2 } => {
            wr_nz(regs, rd, rr(regs, rs1) & rr(regs, rs2));
        }
        DOp::Or { rd, rs1, rs2 } => {
            wr_nz(regs, rd, rr(regs, rs1) | rr(regs, rs2));
        }
        DOp::Xor { rd, rs1, rs2 } => {
            wr_nz(regs, rd, rr(regs, rs1) ^ rr(regs, rs2));
        }
        DOp::Sll { rd, rs1, rs2 } => {
            wr_nz(regs, rd, rr(regs, rs1).wrapping_shl(rr(regs, rs2) & 31));
        }
        DOp::Srl { rd, rs1, rs2 } => {
            wr_nz(regs, rd, rr(regs, rs1).wrapping_shr(rr(regs, rs2) & 31));
        }
        DOp::Addi { rd, rs1, imm } => {
            wr_nz(regs, rd, rr(regs, rs1).wrapping_add(imm));
        }
        DOp::Andi { rd, rs1, imm } => {
            wr_nz(regs, rd, rr(regs, rs1) & imm);
        }
        DOp::Ori { rd, rs1, imm } => {
            wr_nz(regs, rd, rr(regs, rs1) | imm);
        }
        DOp::Xori { rd, rs1, imm } => {
            wr_nz(regs, rd, rr(regs, rs1) ^ imm);
        }
        DOp::Lui { rd, val } => {
            wr_nz(regs, rd, val);
        }
        DOp::Lb { rd, rs1, imm } => {
            let v = mem(sram.read_u8(rr(regs, rs1).wrapping_add(imm)))?;
            wr(regs, rd, v as u32);
            *extra += 1;
        }
        DOp::Lh { rd, rs1, imm } => {
            let v = mem(sram.read_u16(rr(regs, rs1).wrapping_add(imm)))?;
            wr(regs, rd, v as u32);
            *extra += 1;
        }
        DOp::Lw { rd, rs1, imm } => {
            let v = mem(sram.read_u32(rr(regs, rs1).wrapping_add(imm)))?;
            wr(regs, rd, v);
            *extra += 1;
        }
        DOp::Nop => {}
        _ => return Err(TrapKind::IllegalInstruction),
    }
    Ok(())
}

/// Executes one decoded op; the dispatch twin of the reference `step`.
/// Force-inlined into the fetch loop so dispatch is a single computed
/// jump with no call/spill overhead per retired instruction. Returns
/// the `EXEC_*` flags of the op (constants per arm, so the hot loop's
/// rare-path test costs one register compare).
///
/// Cycle charges mirror the reference exactly, minus the one cycle
/// every op owes (accounted as a retired step by the caller): `extra`
/// is bumped only for two-cycle ops and taken branches.
#[inline(always)]
fn exec(
    regs: &mut [u32; 256],
    op: DOp,
    sram: &mut Sram,
    bus: &mut dyn CsrBus,
    base: u32,
    widx: u32,
    next_widx: &mut u32,
    extra: &mut u64,
) -> Result<u8, TrapKind> {
    match op {
        DOp::Add { rd, rs1, rs2 } => {
            wr_nz(regs, rd, rr(regs, rs1).wrapping_add(rr(regs, rs2)));
        }
        DOp::Sub { rd, rs1, rs2 } => {
            wr_nz(regs, rd, rr(regs, rs1).wrapping_sub(rr(regs, rs2)));
        }
        DOp::And { rd, rs1, rs2 } => {
            wr_nz(regs, rd, rr(regs, rs1) & rr(regs, rs2));
        }
        DOp::Or { rd, rs1, rs2 } => {
            wr_nz(regs, rd, rr(regs, rs1) | rr(regs, rs2));
        }
        DOp::Xor { rd, rs1, rs2 } => {
            wr_nz(regs, rd, rr(regs, rs1) ^ rr(regs, rs2));
        }
        DOp::Sll { rd, rs1, rs2 } => {
            wr_nz(regs, rd, rr(regs, rs1).wrapping_shl(rr(regs, rs2) & 31));
        }
        DOp::Srl { rd, rs1, rs2 } => {
            wr_nz(regs, rd, rr(regs, rs1).wrapping_shr(rr(regs, rs2) & 31));
        }
        DOp::Addi { rd, rs1, imm } => {
            wr_nz(regs, rd, rr(regs, rs1).wrapping_add(imm));
        }
        DOp::Andi { rd, rs1, imm } => {
            wr_nz(regs, rd, rr(regs, rs1) & imm);
        }
        DOp::Ori { rd, rs1, imm } => {
            wr_nz(regs, rd, rr(regs, rs1) | imm);
        }
        DOp::Xori { rd, rs1, imm } => {
            wr_nz(regs, rd, rr(regs, rs1) ^ imm);
        }
        DOp::Lui { rd, val } => {
            wr_nz(regs, rd, val);
        }
        DOp::Lb { rd, rs1, imm } => {
            let v = mem(sram.read_u8(rr(regs, rs1).wrapping_add(imm)))?;
            wr(regs, rd, v as u32);
            *extra += 1;
        }
        DOp::Lh { rd, rs1, imm } => {
            let v = mem(sram.read_u16(rr(regs, rs1).wrapping_add(imm)))?;
            wr(regs, rd, v as u32);
            *extra += 1;
        }
        DOp::Lw { rd, rs1, imm } => {
            let v = mem(sram.read_u32(rr(regs, rs1).wrapping_add(imm)))?;
            wr(regs, rd, v);
            *extra += 1;
        }
        DOp::Sb { rs1, rs2, imm } => {
            let v = rr(regs, rs2) as u8;
            mem(sram.write_u8(rr(regs, rs1).wrapping_add(imm), v))?;
            *extra += 1;
            return Ok(EXEC_STORE);
        }
        DOp::Sh { rs1, rs2, imm } => {
            let v = rr(regs, rs2) as u16;
            mem(sram.write_u16(rr(regs, rs1).wrapping_add(imm), v))?;
            *extra += 1;
            return Ok(EXEC_STORE);
        }
        DOp::Sw { rs1, rs2, imm } => {
            let v = rr(regs, rs2);
            mem(sram.write_u32(rr(regs, rs1).wrapping_add(imm), v))?;
            *extra += 1;
            return Ok(EXEC_STORE);
        }
        DOp::Beq { rs1, rs2, off } => {
            if rr(regs, rs1) == rr(regs, rs2) {
                *next_widx = widx.wrapping_add(off);
                *extra += 1;
            }
        }
        DOp::Bne { rs1, rs2, off } => {
            if rr(regs, rs1) != rr(regs, rs2) {
                *next_widx = widx.wrapping_add(off);
                *extra += 1;
            }
        }
        DOp::Bltu { rs1, rs2, off } => {
            if rr(regs, rs1) < rr(regs, rs2) {
                *next_widx = widx.wrapping_add(off);
                *extra += 1;
            }
        }
        DOp::Bgeu { rs1, rs2, off } => {
            if rr(regs, rs1) >= rr(regs, rs2) {
                *next_widx = widx.wrapping_add(off);
                *extra += 1;
            }
        }
        DOp::Jal { rd, off } => {
            wr(regs, rd, base.wrapping_add(widx.wrapping_shl(2)).wrapping_add(4));
            *next_widx = widx.wrapping_add(off);
            *extra += 1;
        }
        DOp::Jr { rs1 } => {
            let target = rr(regs, rs1);
            *next_widx = target.wrapping_sub(base) >> 2;
            *extra += 1;
            return Ok(EXEC_JUMP | (((target & 3) as u8) << 2));
        }
        DOp::Csrr { rd, csr } => {
            let v = bus.csr_read(sram, csr);
            wr(regs, rd, v);
            *extra += 1;
        }
        DOp::Csrw { rs2, csr } => {
            bus.csr_write(sram, csr, rr(regs, rs2));
            *extra += 1;
        }
        DOp::Nop => {}
        DOp::Illegal => return Err(TrapKind::IllegalInstruction),
    }
    Ok(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::cpu::NullBus;
    use crate::isa::{Instr, Reg};

    fn run_both(src: &str) -> (Cpu, Sram, RunOutcome, Cpu, Sram, RunOutcome) {
        let image = assemble(src).expect("assembles");
        let mut sram_ref = Sram::new(4 * PAGE_SIZE);
        sram_ref.write_bytes(0, &image.bytes);
        let sram_dec = sram_ref.clone();

        let mut cpu_ref = Cpu::new();
        cpu_ref.set_reg(Reg::LINK, RETURN_ADDR);
        let cpu_dec = cpu_ref.clone();

        let mut sram_ref = sram_ref;
        let out_ref = cpu_ref.run(&mut sram_ref, &mut NullBus, 0, 100_000);

        let mut cpu_dec = cpu_dec;
        let mut sram_dec = sram_dec;
        let mut cache = DecodeCache::new();
        let out_dec = run_decoded(&mut cpu_dec, &mut sram_dec, &mut NullBus, 0, 100_000, &mut cache);
        (cpu_ref, sram_ref, out_ref, cpu_dec, sram_dec, out_dec)
    }

    fn assert_states_equal(
        (cpu_ref, sram_ref, out_ref): (&Cpu, &Sram, RunOutcome),
        (cpu_dec, sram_dec, out_dec): (&Cpu, &Sram, RunOutcome),
    ) {
        assert_eq!(out_ref, out_dec, "outcome diverged");
        for r in 0..16 {
            assert_eq!(
                cpu_ref.reg(Reg::new(r)),
                cpu_dec.reg(Reg::new(r)),
                "r{r} diverged"
            );
        }
        assert_eq!(sram_ref, sram_dec, "memory diverged");
    }

    #[test]
    fn decoded_matches_reference_on_a_small_program() {
        let src = "addi r1, r0, 40\naddi r2, r1, 2\nadd r3, r1, r2\n\
                   li r4, 0x200\nsw r3, (r4)\nlw r5, (r4)\njr r15\n";
        let (cr, sr, or_, cd, sd, od) = run_both(src);
        assert_states_equal((&cr, &sr, or_), (&cd, &sd, od));
        assert!(od.is_completed());
    }

    #[test]
    fn decoded_matches_reference_on_loops_and_branches() {
        let src = "addi r1, r0, 100\naddi r2, r0, 0\n\
                   loop: addi r2, r2, 7\naddi r1, r1, -1\nbne r1, r0, loop\njr r15\n";
        let (cr, sr, or_, cd, sd, od) = run_both(src);
        assert_states_equal((&cr, &sr, or_), (&cd, &sd, od));
    }

    #[test]
    fn decoded_traps_identically_on_illegal_words() {
        let mut sram = Sram::new(PAGE_SIZE);
        sram.write_u32(0, 0).unwrap(); // unassigned opcode
        let mut cpu_ref = Cpu::new();
        let out_ref = cpu_ref.run(&mut sram.clone(), &mut NullBus, 0, 100);
        let mut cpu_dec = Cpu::new();
        let mut cache = DecodeCache::new();
        let out_dec = run_decoded(&mut cpu_dec, &mut sram, &mut NullBus, 0, 100, &mut cache);
        assert_eq!(out_ref, out_dec);
        assert!(matches!(
            out_dec,
            RunOutcome::Trap {
                kind: TrapKind::IllegalInstruction,
                pc: 0,
                ..
            }
        ));
    }

    #[test]
    fn store_to_code_page_invalidates_the_decoded_copy() {
        // Self-modifying firmware: the routine overwrites the instruction
        // at `patch:` (an addi r1, r0, 1) with `addi r1, r0, 2` *before*
        // reaching it. A stale decode cache would execute the old word.
        let z = Reg::ZERO;
        let patched = Instr::new(Opcode::Addi, Reg::new(1), z, z, 2).encode();
        // The replacement word is staged at 0x200 (encoded instructions
        // exceed `li`'s 27-bit constant range); the routine copies it over
        // `patch:` before falling through to it.
        let src = "li r6, 0x200\nlw r5, (r6)\nli r4, 0x18\nsw r5, (r4)\n\
                   patch: addi r1, r0, 1\njr r15\n";
        // `li` expands to lui+ori, so `patch:` sits at word 6 = 0x18 —
        // verify the address assumption before relying on it.
        let image = assemble(src).expect("assembles");
        let mut sram = Sram::new(PAGE_SIZE);
        sram.write_bytes(0, &image.bytes);
        sram.write_u32(0x200, patched).unwrap();
        assert_eq!(
            Instr::decode(sram.read_u32(0x18).unwrap()).expect("valid").imm,
            1,
            "patch site must hold the original addi"
        );

        // Warm the cache with a first run, then re-run on the same cache:
        // both runs must agree with the reference interpreter.
        let mut cache = DecodeCache::new();
        for _ in 0..2 {
            let mut sram_ref = sram.clone();
            let mut cpu_ref = Cpu::new();
            cpu_ref.set_reg(Reg::LINK, RETURN_ADDR);
            let out_ref = cpu_ref.run(&mut sram_ref, &mut NullBus, 0, 1000);

            let mut sram_dec = sram.clone();
            let mut cpu_dec = Cpu::new();
            cpu_dec.set_reg(Reg::LINK, RETURN_ADDR);
            let out_dec =
                run_decoded(&mut cpu_dec, &mut sram_dec, &mut NullBus, 0, 1000, &mut cache);

            assert_states_equal((&cpu_ref, &sram_ref, out_ref), (&cpu_dec, &sram_dec, out_dec));
            assert_eq!(cpu_dec.reg(Reg::new(1)), 2, "patched instruction executed");
        }
    }

    #[test]
    fn bit_flip_invalidates_a_warmed_code_page() {
        // Warm the cache on a clean routine, flip one bit inside the
        // already-decoded code page (turning `addi r1, r0, 40` into a
        // different instruction or an illegal word), and re-run on the
        // same cache: the decoded backend must behave exactly like a
        // fresh reference run over the corrupted memory.
        let src = "addi r1, r0, 40\naddi r2, r1, 2\njr r15\n";
        let image = assemble(src).expect("assembles");
        let mut sram = Sram::new(PAGE_SIZE);
        sram.write_bytes(0, &image.bytes);

        let mut cache = DecodeCache::new();
        let mut cpu = Cpu::new();
        cpu.set_reg(Reg::LINK, RETURN_ADDR);
        let out = run_decoded(&mut cpu, &mut sram, &mut NullBus, 0, 1000, &mut cache);
        assert!(out.is_completed());
        assert_eq!(cache.valid_pages(&sram), 1, "code page decoded and warm");

        for bit in [0u64, 5, 17, 26 + 32, 31] {
            sram.flip_bit(bit);
            assert_eq!(cache.valid_pages(&sram), 0, "flip must stale the page");

            let mut sram_ref = sram.clone();
            let mut cpu_ref = Cpu::new();
            cpu_ref.set_reg(Reg::LINK, RETURN_ADDR);
            let out_ref = cpu_ref.run(&mut sram_ref, &mut NullBus, 0, 1000);

            let mut sram_dec = sram.clone();
            let mut cpu_dec = Cpu::new();
            cpu_dec.set_reg(Reg::LINK, RETURN_ADDR);
            let out_dec =
                run_decoded(&mut cpu_dec, &mut sram_dec, &mut NullBus, 0, 1000, &mut cache);
            assert_states_equal((&cpu_ref, &sram_ref, out_ref), (&cpu_dec, &sram_dec, out_dec));

            sram.flip_bit(bit); // restore for the next round
        }
    }

    #[test]
    fn decode_word_agrees_with_instr_decode_on_every_opcode() {
        for op in Opcode::ALL {
            let i = Instr::new(op, Reg::new(3), Reg::new(5), Reg::new(7), -9);
            let d = decode_word(i.encode());
            assert_ne!(d, DOp::Illegal, "{op:?} must decode");
        }
        // Every single-bit corruption of a valid opcode field that lands
        // on an unassigned encoding maps to Illegal, like Instr::decode.
        for word in [0u32, u32::MAX, 1 << 26, 0x3F << 26] {
            assert_eq!(
                Instr::decode(word).is_none(),
                decode_word(word) == DOp::Illegal,
                "acceptance diverged on {word:#010x}"
            );
        }
    }

    #[test]
    fn wild_jump_and_out_of_gas_match_reference() {
        for src in ["li r1, 0x400000\njr r1\n", "loop: beq r0, r0, loop\n"] {
            let (cr, sr, or_, cd, sd, od) = run_both(src);
            assert_states_equal((&cr, &sr, or_), (&cd, &sd, od));
        }
    }
}
