//! Disassembly and bit-position forensics for LN32 images.
//!
//! The fault campaign reports a flipped *bit offset*; this module answers
//! "what did that bit mean?": which instruction it sat in, which encoding
//! field, and what the instruction disassembles to. The `forensics`
//! analysis in `ftgm-faults` builds its outcome-by-field matrices on top.

use crate::isa::Instr;

/// Which encoding field a bit belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FieldKind {
    /// Bits 31..26 — the opcode.
    Opcode,
    /// Bits 25..22 — destination register.
    Rd,
    /// Bits 21..18 — first source register.
    Rs1,
    /// Bits 17..14 — second source register.
    Rs2,
    /// Bits 13..0 — the immediate.
    Imm,
}

impl FieldKind {
    /// All fields, MSB-first.
    pub const ALL: [FieldKind; 5] = [
        FieldKind::Opcode,
        FieldKind::Rd,
        FieldKind::Rs1,
        FieldKind::Rs2,
        FieldKind::Imm,
    ];

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            FieldKind::Opcode => "opcode",
            FieldKind::Rd => "rd",
            FieldKind::Rs1 => "rs1",
            FieldKind::Rs2 => "rs2",
            FieldKind::Imm => "imm",
        }
    }
}

/// Classifies a bit position *within a 32-bit instruction word* (0 = LSB).
pub fn field_of_word_bit(bit: u32) -> FieldKind {
    match bit {
        0..=13 => FieldKind::Imm,
        14..=17 => FieldKind::Rs2,
        18..=21 => FieldKind::Rs1,
        22..=25 => FieldKind::Rd,
        _ => FieldKind::Opcode,
    }
}

/// Where a flipped bit of an image landed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitLocus {
    /// Word index within the image.
    pub word_index: usize,
    /// Bit position within that word (0 = LSB).
    pub word_bit: u32,
    /// The encoding field hit.
    pub field: FieldKind,
    /// Disassembly of the original (uncorrupted) word.
    pub instr: String,
}

/// Maps a bit offset (as used by `Sram::flip_bit`, relative to the image
/// start: byte-order bits, little-endian within bytes) to its locus in the
/// pristine image.
///
/// Returns `None` if the offset is outside the image.
pub fn locate_bit(image: &[u8], bit_offset: u64) -> Option<BitLocus> {
    let byte = (bit_offset / 8) as usize;
    if byte >= image.len() {
        return None;
    }
    let word_index = byte / 4;
    // Little-endian: byte k of the word carries word bits 8k..8k+8.
    let word_bit = ((byte % 4) as u32) * 8 + (bit_offset % 8) as u32;
    let field = field_of_word_bit(word_bit);
    let start = word_index * 4;
    let instr = if start + 4 <= image.len() {
        let w = u32::from_le_bytes([
            image[start],
            image[start + 1],
            image[start + 2],
            image[start + 3],
        ]);
        match Instr::decode(w) {
            Some(i) => i.to_string(),
            None => format!(".word {w:#010x}"),
        }
    } else {
        ".word <partial>".to_string()
    };
    Some(BitLocus {
        word_index,
        word_bit,
        field,
        instr,
    })
}

/// Disassembles an image into `(byte offset, text)` lines.
pub fn disassemble(image: &[u8], base: u32) -> Vec<(u32, String)> {
    image
        .chunks(4)
        .enumerate()
        .map(|(i, c)| {
            let text = if c.len() == 4 {
                let w = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
                match Instr::decode(w) {
                    Some(instr) => instr.to_string(),
                    None => format!(".word {w:#010x}"),
                }
            } else {
                ".byte …".to_string()
            };
            (base + i as u32 * 4, text)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn fields_partition_the_word() {
        let mut counts = std::collections::BTreeMap::new();
        for bit in 0..32 {
            *counts.entry(field_of_word_bit(bit)).or_insert(0) += 1;
        }
        assert_eq!(counts[&FieldKind::Imm], 14);
        assert_eq!(counts[&FieldKind::Rs2], 4);
        assert_eq!(counts[&FieldKind::Rs1], 4);
        assert_eq!(counts[&FieldKind::Rd], 4);
        assert_eq!(counts[&FieldKind::Opcode], 6);
    }

    #[test]
    fn locate_bit_identifies_instruction_and_field() {
        let image = assemble("addi r1, r0, 5\nsw r1, 8(r2)\n").unwrap();
        // Bit 0 of the image: LSB of the first word → imm of the addi.
        let l = locate_bit(&image.bytes, 0).unwrap();
        assert_eq!(l.word_index, 0);
        assert_eq!(l.field, FieldKind::Imm);
        assert!(l.instr.contains("addi"), "{l:?}");
        // Bit 63: MSB of the second word → opcode of the sw.
        let l = locate_bit(&image.bytes, 63).unwrap();
        assert_eq!(l.word_index, 1);
        assert_eq!(l.field, FieldKind::Opcode);
        assert!(l.instr.contains("sw"), "{l:?}");
        // Out of range.
        assert!(locate_bit(&image.bytes, 64).is_none());
    }

    #[test]
    fn disassemble_round_trips_mnemonics() {
        let src = "add r1, r2, r3\nlw r4, 12(r5)\njr r15\n";
        let image = assemble(src).unwrap();
        let listing = disassemble(&image.bytes, 0x1000);
        assert_eq!(listing.len(), 3);
        assert_eq!(listing[0].0, 0x1000);
        assert!(listing[0].1.contains("add"));
        assert!(listing[1].1.contains("lw"));
        assert!(listing[2].1.contains("jr"));
    }

    #[test]
    fn invalid_words_render_as_data() {
        let listing = disassemble(&[0, 0, 0, 0], 0);
        assert_eq!(listing[0].1, ".word 0x00000000");
    }
}
