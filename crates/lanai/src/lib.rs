#![warn(missing_docs)]

//! A model of the Myrinet **LANai** network processor.
//!
//! The LANai is the heart of the Myrinet host interface card: a 32-bit RISC
//! core with fast local SRAM, three interval timers, DMA logic toward the
//! host (EBUS) and toward the network (packet interface), and interrupt
//! status/mask registers. The Myrinet Control Program (MCP) runs on it.
//!
//! The DSN 2003 FTGM paper injects transient faults by flipping bits in the
//! MCP's `send_chunk` code while it handles traffic. To reproduce those
//! experiments without hardware this crate implements:
//!
//! * [`isa`] — **LN32**, a small 32-bit RISC instruction set in the spirit
//!   of the LANai core (fixed 32-bit encodings, 16 registers),
//! * [`asm`] — a two-pass assembler so firmware routines are written as
//!   assembly text and assembled into SRAM bytes (the bytes that fault
//!   injection flips),
//! * [`cpu`] — a cycle-counting interpreter with a trap model (illegal
//!   instruction, misaligned or out-of-range access) and an instruction
//!   budget that turns runaway loops into detectable hangs,
//! * [`decode`] — a decoded-op cache over SRAM code pages with a second,
//!   faster execution backend ([`decode::run_decoded`]) kept bit-exact
//!   with the reference interpreter by per-page version invalidation,
//! * [`sram`] — the byte-addressable local memory (with per-4KB-page
//!   store version counters feeding the decode cache),
//! * [`timers`] — the three interval timers (IT0..IT2) that the paper's
//!   software watchdog builds on,
//! * [`chip`] — the assembled [`chip::LanaiChip`]: CSR bus, ISR/IMR
//!   interrupt logic, host-DMA engine, packet-interface TX/RX and the
//!   checksum unit, all surfaced to the simulation through
//!   [`chip::ChipEffect`]s.
//!
//! Nothing in this crate knows about GM, the MCP's protocol logic, or the
//! fabric: it is strictly the "silicon".

pub mod asm;
pub mod chip;
pub mod cpu;
pub mod decode;
pub mod disasm;
pub mod isa;
pub mod sram;
pub mod timers;

pub use asm::{assemble, AsmError};
pub use decode::{run_decoded, CpuBackend, DecodeCache};
pub use disasm::{disassemble, locate_bit, BitLocus, FieldKind};
pub use chip::{ChipEffect, HostDmaDir, HostDmaReq, LanaiChip, WireFrame};
pub use cpu::{Cpu, RunOutcome, TrapKind};
pub use isa::{Instr, Opcode, Reg};
pub use sram::Sram;
pub use timers::{IntervalTimer, TimerId};
