//! The **LN32** instruction set.
//!
//! LN32 is a small fixed-width 32-bit RISC encoding in the spirit of the
//! LANai core. The exact LANai ISA is irrelevant to the paper's experiments;
//! what matters is that firmware is *real code in real bytes* so that
//! flipping a random bit produces the same taxonomy of misbehaviour the
//! paper observed: illegal instructions, wild branches, silently wrong data,
//! stray control-register writes.
//!
//! # Encoding
//!
//! ```text
//!  31       26 25   22 21   18 17   14 13            0
//! +-----------+-------+-------+-------+---------------+
//! |  opcode   |  rd   |  rs1  |  rs2  |     imm14     |
//! +-----------+-------+-------+-------+---------------+
//! ```
//!
//! `imm14` is sign-extended. Branch offsets are in *words* relative to the
//! instruction after the branch. Opcodes occupy only the even-parity half
//! of the 6-bit space (a common hardened-decoder layout): every single-bit
//! corruption of an opcode field decodes to an undefined instruction and
//! traps, which is the dominant way random code-segment corruption hangs a
//! network processor.

use std::fmt;

/// One of the sixteen general-purpose registers.
///
/// `r0` always reads as zero (writes are discarded); `r15` is the link
/// register by convention (`jal`/`jr`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Reg(u8);

impl Reg {
    /// The hard-wired zero register.
    pub const ZERO: Reg = Reg(0);
    /// The conventional link register.
    pub const LINK: Reg = Reg(15);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index > 15`.
    pub fn new(index: u8) -> Reg {
        assert!(index < 16, "register index out of range: {index}");
        Reg(index)
    }

    /// The register's index, 0..=15.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// LN32 opcodes with their 6-bit encodings.
///
/// Values are chosen so that common instructions sit in a sparsely-populated
/// space; the unassigned encodings decode to an illegal-instruction trap.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum Opcode {
    /// `add rd, rs1, rs2`
    Add = 0x03,
    /// `sub rd, rs1, rs2`
    Sub = 0x05,
    /// `and rd, rs1, rs2`
    And = 0x06,
    /// `or rd, rs1, rs2`
    Or = 0x09,
    /// `xor rd, rs1, rs2`
    Xor = 0x0A,
    /// `sll rd, rs1, rs2` — shift left by `rs2 & 31`
    Sll = 0x0C,
    /// `srl rd, rs1, rs2` — logical shift right by `rs2 & 31`
    Srl = 0x0F,
    /// `addi rd, rs1, imm`
    Addi = 0x11,
    /// `andi rd, rs1, imm`
    Andi = 0x12,
    /// `ori rd, rs1, imm`
    Ori = 0x14,
    /// `xori rd, rs1, imm`
    Xori = 0x17,
    /// `lui rd, imm` — `rd = (imm & 0x3FFF) << 13` (zero-extended)
    Lui = 0x18,
    /// `lb rd, imm(rs1)` — load byte, zero-extended
    Lb = 0x1B,
    /// `lh rd, imm(rs1)` — load halfword, zero-extended
    Lh = 0x1D,
    /// `lw rd, imm(rs1)` — load word
    Lw = 0x1E,
    /// `sb rs2, imm(rs1)` — store low byte
    Sb = 0x21,
    /// `sh rs2, imm(rs1)` — store low halfword
    Sh = 0x22,
    /// `sw rs2, imm(rs1)` — store word
    Sw = 0x24,
    /// `beq rs1, rs2, off`
    Beq = 0x27,
    /// `bne rs1, rs2, off`
    Bne = 0x28,
    /// `bltu rs1, rs2, off`
    Bltu = 0x2B,
    /// `bgeu rs1, rs2, off`
    Bgeu = 0x2D,
    /// `jal rd, off` — jump and link, pc-relative
    Jal = 0x2E,
    /// `jr rs1` — indirect jump
    Jr = 0x30,
    /// `csrr rd, csr` — read a control/status register
    Csrr = 0x33,
    /// `csrw csr, rs2` — write a control/status register
    Csrw = 0x35,
    /// `nop`
    Nop = 0x36,
}

impl Opcode {
    /// Decodes a 6-bit opcode field; `None` for unassigned encodings.
    pub fn from_bits(bits: u8) -> Option<Opcode> {
        use Opcode::*;
        Some(match bits {
            0x03 => Add,
            0x05 => Sub,
            0x06 => And,
            0x09 => Or,
            0x0A => Xor,
            0x0C => Sll,
            0x0F => Srl,
            0x11 => Addi,
            0x12 => Andi,
            0x14 => Ori,
            0x17 => Xori,
            0x18 => Lui,
            0x1B => Lb,
            0x1D => Lh,
            0x1E => Lw,
            0x21 => Sb,
            0x22 => Sh,
            0x24 => Sw,
            0x27 => Beq,
            0x28 => Bne,
            0x2B => Bltu,
            0x2D => Bgeu,
            0x2E => Jal,
            0x30 => Jr,
            0x33 => Csrr,
            0x35 => Csrw,
            0x36 => Nop,
            _ => return None,
        })
    }

    /// The opcode's 6-bit encoding.
    pub const fn bits(self) -> u8 {
        self as u8
    }

    /// All assigned opcodes, in encoding order.
    pub const ALL: [Opcode; 27] = {
        use Opcode::*;
        [
            Add, Sub, And, Or, Xor, Sll, Srl, Addi, Andi, Ori, Xori, Lui, Lb, Lh, Lw, Sb, Sh,
            Sw, Beq, Bne, Bltu, Bgeu, Jal, Jr, Csrr, Csrw, Nop,
        ]
    };
}

/// A decoded LN32 instruction: opcode plus raw fields.
///
/// The meaning of `rd`/`rs1`/`rs2`/`imm` depends on the opcode (see
/// [`Opcode`] docs). Unused fields are ignored by the CPU and should be
/// encoded as zero by the assembler.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Instr {
    /// The operation.
    pub op: Opcode,
    /// Destination register field.
    pub rd: Reg,
    /// First source register field.
    pub rs1: Reg,
    /// Second source register field.
    pub rs2: Reg,
    /// 14-bit immediate, already sign-extended to i32.
    pub imm: i32,
}

/// Range of the signed 14-bit immediate.
pub const IMM_MIN: i32 = -(1 << 13);
/// Range of the signed 14-bit immediate.
pub const IMM_MAX: i32 = (1 << 13) - 1;

impl Instr {
    /// Builds an instruction, validating the immediate range.
    ///
    /// # Panics
    ///
    /// Panics if `imm` does not fit in a signed 14-bit field.
    pub fn new(op: Opcode, rd: Reg, rs1: Reg, rs2: Reg, imm: i32) -> Instr {
        assert!(
            (IMM_MIN..=IMM_MAX).contains(&imm),
            "immediate {imm} out of 14-bit range"
        );
        Instr { op, rd, rs1, rs2, imm }
    }

    /// Encodes the instruction to its 32-bit word.
    pub fn encode(self) -> u32 {
        let imm14 = (self.imm as u32) & 0x3FFF;
        ((self.op.bits() as u32) << 26)
            | ((self.rd.index() as u32) << 22)
            | ((self.rs1.index() as u32) << 18)
            | ((self.rs2.index() as u32) << 14)
            | imm14
    }

    /// Decodes a 32-bit word; `None` if the opcode field is unassigned.
    pub fn decode(word: u32) -> Option<Instr> {
        let op = Opcode::from_bits(((word >> 26) & 0x3F) as u8)?;
        let rd = Reg::new(((word >> 22) & 0xF) as u8);
        let rs1 = Reg::new(((word >> 18) & 0xF) as u8);
        let rs2 = Reg::new(((word >> 14) & 0xF) as u8);
        // Sign-extend the 14-bit immediate.
        let raw = (word & 0x3FFF) as i32;
        let imm = (raw << 18) >> 18;
        Some(Instr { op, rd, rs1, rs2, imm })
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Opcode::*;
        match self.op {
            Add | Sub | And | Or | Xor | Sll | Srl => {
                write!(
                    f,
                    "{} {}, {}, {}",
                    mnemonic(self.op),
                    self.rd,
                    self.rs1,
                    self.rs2
                )
            }
            Addi | Andi | Ori | Xori => write!(
                f,
                "{} {}, {}, {}",
                mnemonic(self.op),
                self.rd,
                self.rs1,
                self.imm
            ),
            Lui => write!(f, "lui {}, {}", self.rd, self.imm),
            Lb | Lh | Lw => write!(
                f,
                "{} {}, {}({})",
                mnemonic(self.op),
                self.rd,
                self.imm,
                self.rs1
            ),
            Sb | Sh | Sw => write!(
                f,
                "{} {}, {}({})",
                mnemonic(self.op),
                self.rs2,
                self.imm,
                self.rs1
            ),
            Beq | Bne | Bltu | Bgeu => write!(
                f,
                "{} {}, {}, {}",
                mnemonic(self.op),
                self.rs1,
                self.rs2,
                self.imm
            ),
            Jal => write!(f, "jal {}, {}", self.rd, self.imm),
            Jr => write!(f, "jr {}", self.rs1),
            Csrr => write!(f, "csrr {}, {:#x}", self.rd, self.imm),
            Csrw => write!(f, "csrw {:#x}, {}", self.imm, self.rs2),
            Nop => write!(f, "nop"),
        }
    }
}

/// Lower-case mnemonic for an opcode.
pub fn mnemonic(op: Opcode) -> &'static str {
    use Opcode::*;
    match op {
        Add => "add",
        Sub => "sub",
        And => "and",
        Or => "or",
        Xor => "xor",
        Sll => "sll",
        Srl => "srl",
        Addi => "addi",
        Andi => "andi",
        Ori => "ori",
        Xori => "xori",
        Lui => "lui",
        Lb => "lb",
        Lh => "lh",
        Lw => "lw",
        Sb => "sb",
        Sh => "sh",
        Sw => "sw",
        Beq => "beq",
        Bne => "bne",
        Bltu => "bltu",
        Bgeu => "bgeu",
        Jal => "jal",
        Jr => "jr",
        Csrr => "csrr",
        Csrw => "csrw",
        Nop => "nop",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip_simple() {
        let i = Instr::new(Opcode::Addi, Reg::new(3), Reg::new(4), Reg::ZERO, -7);
        let d = Instr::decode(i.encode()).unwrap();
        assert_eq!(d, i);
    }

    #[test]
    fn all_opcodes_roundtrip_bits() {
        for op in Opcode::ALL {
            assert_eq!(Opcode::from_bits(op.bits()), Some(op), "{op:?}");
        }
    }

    #[test]
    fn unassigned_opcodes_decode_none() {
        assert_eq!(Opcode::from_bits(0x00), None);
        assert_eq!(Opcode::from_bits(0x01), None);
        assert_eq!(Opcode::from_bits(0x3F), None);
        // All-zero word (cleared SRAM) must not decode.
        assert!(Instr::decode(0).is_none());
    }

    #[test]
    fn single_bit_opcode_flips_always_trap() {
        for op in Opcode::ALL {
            for bit in 0..6 {
                let flipped = op.bits() ^ (1 << bit);
                assert_eq!(
                    Opcode::from_bits(flipped),
                    None,
                    "{op:?} flips to a valid opcode"
                );
            }
        }
    }

    #[test]
    fn opcode_density_is_under_half() {
        // The fault campaign depends on a realistic illegal-opcode density.
        let assigned = (0u8..64).filter(|b| Opcode::from_bits(*b).is_some()).count();
        assert_eq!(assigned, 27);
        assert!(assigned < 32, "{assigned}");
    }

    #[test]
    fn immediate_sign_extension() {
        let i = Instr::new(Opcode::Addi, Reg::ZERO, Reg::ZERO, Reg::ZERO, IMM_MIN);
        let d = Instr::decode(i.encode()).unwrap();
        assert_eq!(d.imm, IMM_MIN);
        let i = Instr::new(Opcode::Addi, Reg::ZERO, Reg::ZERO, Reg::ZERO, IMM_MAX);
        assert_eq!(Instr::decode(i.encode()).unwrap().imm, IMM_MAX);
    }

    #[test]
    #[should_panic(expected = "out of 14-bit range")]
    fn oversize_immediate_panics() {
        Instr::new(Opcode::Addi, Reg::ZERO, Reg::ZERO, Reg::ZERO, IMM_MAX + 1);
    }

    #[test]
    #[should_panic(expected = "register index")]
    fn bad_register_panics() {
        Reg::new(16);
    }

    #[test]
    fn fields_occupy_disjoint_bits() {
        let i = Instr::new(
            Opcode::Add,
            Reg::new(0xF),
            Reg::new(0xF),
            Reg::new(0xF),
            0,
        );
        let w = i.encode();
        assert_eq!(w >> 26, Opcode::Add.bits() as u32);
        assert_eq!((w >> 22) & 0xF, 0xF);
        assert_eq!((w >> 18) & 0xF, 0xF);
        assert_eq!((w >> 14) & 0xF, 0xF);
        assert_eq!(w & 0x3FFF, 0);
    }

    #[test]
    fn display_forms() {
        let i = Instr::new(Opcode::Sw, Reg::ZERO, Reg::new(2), Reg::new(5), 8);
        assert_eq!(i.to_string(), "sw r5, 8(r2)");
        let b = Instr::new(Opcode::Bne, Reg::ZERO, Reg::new(1), Reg::new(2), -3);
        assert_eq!(b.to_string(), "bne r1, r2, -3");
        assert_eq!(
            Instr::new(Opcode::Nop, Reg::ZERO, Reg::ZERO, Reg::ZERO, 0).to_string(),
            "nop"
        );
    }
}
