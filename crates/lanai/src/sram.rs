//! The LANai's local synchronous memory.
//!
//! LANai9 cards carried 512 KB – 8 MB of SRAM holding the MCP image, packet
//! staging buffers and protocol state. We model it as a flat little-endian
//! byte array with checked word/halfword accessors and a bit-flip primitive
//! for the fault campaign.

use std::fmt;

/// log2 of the invalidation-page size used by [`Sram::page_version`].
///
/// 4 KB pages keep the `send_chunk` code region (at `0x1000`) on
/// different pages from the SENDREC block (`0x8000`) and packet staging
/// buffers (`0xA000`), so steady-state data stores never invalidate a
/// decoded code page.
pub const PAGE_SHIFT: u32 = 12;

/// The invalidation-page size in bytes (see [`PAGE_SHIFT`]).
pub const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Byte-addressable little-endian SRAM.
///
/// Accessors return [`MemResult`] so the CPU can turn bad firmware accesses
/// into traps rather than panics; infrastructure code (the MCP model, the
/// driver's load path) uses the panicking `*_checked`-free convenience
/// wrappers where an out-of-range access would be a simulator bug.
///
/// Every mutation path — checked stores, bulk writes, `clear`, and the
/// fault-injection `flip_bit` — bumps a per-4KB-page version counter.
/// The decoded-op cache ([`crate::decode::DecodeCache`]) compares these
/// counters on every fetch, so self-modifying code and injected bit
/// flips are picked up exactly where the word-by-word interpreter would
/// see them. The counters are bookkeeping, not memory contents: they do
/// not participate in equality.
#[derive(Clone, Eq)]
pub struct Sram {
    bytes: Vec<u8>,
    page_versions: Vec<u64>,
}

impl PartialEq for Sram {
    fn eq(&self, other: &Sram) -> bool {
        // Two memories with identical contents are equal regardless of
        // how many writes produced them.
        self.bytes == other.bytes
    }
}

/// Result of a checked memory access.
pub type MemResult<T> = Result<T, MemFault>;

/// An out-of-range or misaligned access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemFault {
    /// The faulting byte address.
    pub addr: u32,
    /// `true` when the address was in range but misaligned.
    pub misaligned: bool,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.misaligned {
            write!(f, "misaligned access at {:#x}", self.addr)
        } else {
            write!(f, "out-of-range access at {:#x}", self.addr)
        }
    }
}

impl std::error::Error for MemFault {}

impl Sram {
    /// Allocates `len` bytes of zeroed SRAM.
    pub fn new(len: usize) -> Sram {
        Sram {
            bytes: vec![0; len],
            page_versions: vec![0; len.div_ceil(PAGE_SIZE)],
        }
    }

    /// Number of invalidation pages (see [`PAGE_SHIFT`]).
    pub fn num_pages(&self) -> usize {
        self.page_versions.len()
    }

    /// Version counter for 4 KB page `page`; bumped by every store that
    /// touches the page. Out-of-range pages read as version 0 (they can
    /// never be written, so 0 is their forever-version).
    pub fn page_version(&self, page: usize) -> u64 {
        self.page_versions.get(page).copied().unwrap_or(0)
    }

    /// Bumps the version of every page overlapping `[addr, addr+len)`.
    fn touch(&mut self, addr: usize, len: usize) {
        if len == 0 {
            return;
        }
        let first = addr >> PAGE_SHIFT;
        let last = (addr + len - 1) >> PAGE_SHIFT;
        for v in self
            .page_versions
            .iter_mut()
            .skip(first)
            .take(last - first + 1)
        {
            *v = v.wrapping_add(1);
        }
    }

    /// Total size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// `true` for a zero-sized memory (never the case in practice).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Zeroes the entire memory (the FTD's "clear the LANai SRAM" step).
    pub fn clear(&mut self) {
        self.bytes.fill(0);
        for v in &mut self.page_versions {
            *v = v.wrapping_add(1);
        }
    }

    fn check(&self, addr: u32, size: u32) -> MemResult<usize> {
        let a = addr as usize;
        if a.checked_add(size as usize).is_none_or(|end| end > self.bytes.len()) {
            return Err(MemFault {
                addr,
                misaligned: false,
            });
        }
        if !addr.is_multiple_of(size) {
            return Err(MemFault {
                addr,
                misaligned: true,
            });
        }
        Ok(a)
    }

    /// Reads a byte.
    pub fn read_u8(&self, addr: u32) -> MemResult<u8> {
        let a = self.check(addr, 1)?;
        Ok(self.bytes[a])
    }

    /// Reads a little-endian halfword; must be 2-byte aligned.
    pub fn read_u16(&self, addr: u32) -> MemResult<u16> {
        let a = self.check(addr, 2)?;
        Ok(u16::from_le_bytes([self.bytes[a], self.bytes[a + 1]]))
    }

    /// Reads a little-endian word; must be 4-byte aligned.
    pub fn read_u32(&self, addr: u32) -> MemResult<u32> {
        let a = self.check(addr, 4)?;
        Ok(u32::from_le_bytes([
            self.bytes[a],
            self.bytes[a + 1],
            self.bytes[a + 2],
            self.bytes[a + 3],
        ]))
    }

    /// Writes a byte.
    pub fn write_u8(&mut self, addr: u32, v: u8) -> MemResult<()> {
        let a = self.check(addr, 1)?;
        self.bytes[a] = v;
        self.touch(a, 1);
        Ok(())
    }

    /// Writes a little-endian halfword; must be 2-byte aligned.
    pub fn write_u16(&mut self, addr: u32, v: u16) -> MemResult<()> {
        let a = self.check(addr, 2)?;
        self.bytes[a..a + 2].copy_from_slice(&v.to_le_bytes());
        self.touch(a, 2);
        Ok(())
    }

    /// Writes a little-endian word; must be 4-byte aligned.
    pub fn write_u32(&mut self, addr: u32, v: u32) -> MemResult<()> {
        let a = self.check(addr, 4)?;
        self.bytes[a..a + 4].copy_from_slice(&v.to_le_bytes());
        self.touch(a, 4);
        Ok(())
    }

    /// Copies a byte slice into memory.
    ///
    /// # Panics
    ///
    /// Panics if the destination range is out of bounds — callers are
    /// simulator infrastructure (firmware load, DMA engines) whose ranges
    /// are validated upstream.
    pub fn write_bytes(&mut self, addr: u32, data: &[u8]) {
        let a = addr as usize;
        self.bytes[a..a + data.len()].copy_from_slice(data);
        self.touch(a, data.len());
    }

    /// Reads a byte range out of memory.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds (see [`Sram::write_bytes`]).
    pub fn read_bytes(&self, addr: u32, len: usize) -> &[u8] {
        let a = addr as usize;
        &self.bytes[a..a + len]
    }

    /// Flips a single bit: `bit` indexes bits across the whole memory,
    /// little-endian within each byte. This is the fault-injection
    /// primitive.
    ///
    /// # Panics
    ///
    /// Panics if `bit / 8` is out of range.
    pub fn flip_bit(&mut self, bit: u64) {
        let byte = (bit / 8) as usize;
        let mask = 1u8 << (bit % 8);
        self.bytes[byte] ^= mask;
        self.touch(byte, 1);
    }

    /// Simple additive 32-bit checksum of a region (the checksum unit's
    /// algorithm): sum of little-endian words with the trailing bytes
    /// zero-padded, wrapping.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn checksum(&self, addr: u32, len: u32) -> u32 {
        let mut sum: u32 = 0;
        let mut i = 0;
        while i + 4 <= len {
            sum = sum.wrapping_add(
                self.read_u32_unaligned(addr + i),
            );
            i += 4;
        }
        if i < len {
            let mut tail = [0u8; 4];
            for (k, t) in tail.iter_mut().enumerate().take((len - i) as usize) {
                *t = self.bytes[(addr + i) as usize + k];
            }
            sum = sum.wrapping_add(u32::from_le_bytes(tail));
        }
        sum
    }

    fn read_u32_unaligned(&self, addr: u32) -> u32 {
        let a = addr as usize;
        u32::from_le_bytes([
            self.bytes[a],
            self.bytes[a + 1],
            self.bytes[a + 2],
            self.bytes[a + 3],
        ])
    }
}

impl fmt::Debug for Sram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sram({} bytes)", self.bytes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_roundtrip() {
        let mut m = Sram::new(64);
        m.write_u32(8, 0xCAFEBABE).unwrap();
        assert_eq!(m.read_u32(8).unwrap(), 0xCAFEBABE);
        // Little-endian layout.
        assert_eq!(m.read_u8(8).unwrap(), 0xBE);
        assert_eq!(m.read_u8(11).unwrap(), 0xCA);
    }

    #[test]
    fn halfword_roundtrip() {
        let mut m = Sram::new(16);
        m.write_u16(2, 0xBEEF).unwrap();
        assert_eq!(m.read_u16(2).unwrap(), 0xBEEF);
    }

    #[test]
    fn misaligned_word_faults() {
        let m = Sram::new(16);
        let e = m.read_u32(2).unwrap_err();
        assert!(e.misaligned);
    }

    #[test]
    fn out_of_range_faults() {
        let mut m = Sram::new(16);
        assert!(!m.read_u32(16).unwrap_err().misaligned);
        assert!(m.write_u8(16, 0).is_err());
        // Near-overflow address must not wrap.
        assert!(m.read_u32(u32::MAX - 2).is_err());
    }

    #[test]
    fn clear_zeroes() {
        let mut m = Sram::new(8);
        m.write_u32(0, 0xFFFFFFFF).unwrap();
        m.clear();
        assert_eq!(m.read_u32(0).unwrap(), 0);
    }

    #[test]
    fn flip_bit_toggles() {
        let mut m = Sram::new(4);
        m.flip_bit(9); // bit 1 of byte 1
        assert_eq!(m.read_u8(1).unwrap(), 0b10);
        m.flip_bit(9);
        assert_eq!(m.read_u8(1).unwrap(), 0);
    }

    #[test]
    fn bulk_bytes_roundtrip() {
        let mut m = Sram::new(32);
        m.write_bytes(4, &[1, 2, 3, 4, 5]);
        assert_eq!(m.read_bytes(4, 5), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn checksum_is_word_sum() {
        let mut m = Sram::new(16);
        m.write_u32(0, 1).unwrap();
        m.write_u32(4, 2).unwrap();
        assert_eq!(m.checksum(0, 8), 3);
        // Tail bytes are zero-padded.
        m.write_u8(8, 0xFF).unwrap();
        assert_eq!(m.checksum(0, 9), 3 + 0xFF);
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut m = Sram::new(64);
        m.write_bytes(0, &[7u8; 64]);
        let before = m.checksum(0, 64);
        m.flip_bit(100);
        assert_ne!(m.checksum(0, 64), before);
    }

    #[test]
    fn every_mutator_bumps_the_touched_page_version() {
        let mut m = Sram::new(3 * PAGE_SIZE);
        assert_eq!(m.num_pages(), 3);
        let snap = |m: &Sram| [m.page_version(0), m.page_version(1), m.page_version(2)];
        assert_eq!(snap(&m), [0, 0, 0]);

        m.write_u8(PAGE_SIZE as u32, 1).unwrap();
        assert_eq!(snap(&m), [0, 1, 0]);
        m.write_u16(PAGE_SIZE as u32 + 2, 2).unwrap();
        m.write_u32(PAGE_SIZE as u32 + 4, 3).unwrap();
        assert_eq!(snap(&m), [0, 3, 0]);

        // A bulk write spanning a page boundary bumps both pages.
        m.write_bytes(PAGE_SIZE as u32 - 2, &[9; 4]);
        assert_eq!(snap(&m), [1, 4, 0]);

        // The fault-injection primitive is a store like any other.
        m.flip_bit(2 * PAGE_SIZE as u64 * 8 + 5);
        assert_eq!(snap(&m), [1, 4, 1]);

        // The FTD's SRAM clear invalidates everything.
        m.clear();
        assert_eq!(snap(&m), [2, 5, 2]);
    }

    #[test]
    fn reads_and_failed_writes_do_not_bump_versions() {
        let mut m = Sram::new(PAGE_SIZE);
        m.write_u32(0, 7).unwrap();
        let v = m.page_version(0);
        let _ = m.read_u32(0).unwrap();
        let _ = m.read_bytes(0, 8);
        let _ = m.checksum(0, 16);
        assert!(m.write_u32(PAGE_SIZE as u32, 1).is_err());
        assert!(m.write_u16(1, 1).is_err());
        assert_eq!(m.page_version(0), v);
    }

    #[test]
    fn equality_ignores_write_history() {
        let mut a = Sram::new(64);
        let mut b = Sram::new(64);
        a.write_u32(0, 5).unwrap();
        b.write_u32(0, 9).unwrap();
        b.write_u32(0, 5).unwrap();
        assert_ne!(a.page_version(0), b.page_version(0));
        assert_eq!(a, b);
    }

    #[test]
    fn out_of_range_page_reads_as_version_zero() {
        let m = Sram::new(PAGE_SIZE);
        assert_eq!(m.page_version(1000), 0);
    }
}
