//! The LANai's three interval timers.
//!
//! Real hardware exposes IT0..IT2 as 32-bit counters decremented every
//! 0.5 µs; reaching zero sets the timer's bit in the interface status
//! register (ISR). GM's MCP uses IT0 to drive its `L_timer()` housekeeping
//! routine; the paper's watchdog commandeers a spare timer (IT1) whose
//! expiry — if `L_timer()` ever stops re-arming it — raises a host
//! interrupt.
//!
//! In the simulation a timer is a deadline in [`SimTime`]; the chip reports
//! the earliest deadline so the world can schedule a check event. Timers
//! run independently of the CPU: a hung MCP does *not* stop them, which is
//! precisely the property the watchdog needs.

use ftgm_sim::{SimDuration, SimTime};

/// Identifies one of the three interval timers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TimerId {
    /// IT0 — used by GM's `L_timer()` housekeeping.
    It0,
    /// IT1 — the paper's software watchdog.
    It1,
    /// IT2 — spare.
    It2,
}

impl TimerId {
    /// All timers in index order.
    pub const ALL: [TimerId; 3] = [TimerId::It0, TimerId::It1, TimerId::It2];

    /// Index 0..=2.
    pub const fn index(self) -> usize {
        match self {
            TimerId::It0 => 0,
            TimerId::It1 => 1,
            TimerId::It2 => 2,
        }
    }

    /// The timer's ISR bit mask.
    pub const fn isr_bit(self) -> u32 {
        1 << self.index()
    }
}

/// Hardware tick granularity: counters decrement every 0.5 µs.
pub const TICK: SimDuration = SimDuration::from_nanos(500);

/// One interval timer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IntervalTimer {
    /// Absolute expiry instant, if armed.
    deadline: Option<SimTime>,
}

impl IntervalTimer {
    /// Creates a disarmed timer.
    pub fn new() -> IntervalTimer {
        IntervalTimer { deadline: None }
    }

    /// Arms (or re-arms) the timer to expire after `ticks` hardware ticks.
    pub fn arm_ticks(&mut self, now: SimTime, ticks: u32) {
        self.deadline = Some(now + TICK * ticks as u64);
    }

    /// Arms (or re-arms) the timer to expire after a duration, rounded up
    /// to whole hardware ticks.
    pub fn arm(&mut self, now: SimTime, after: SimDuration) {
        let ticks = after.as_nanos().div_ceil(TICK.as_nanos());
        self.deadline = Some(now + TICK * ticks);
    }

    /// Disarms the timer.
    pub fn disarm(&mut self) {
        self.deadline = None;
    }

    /// The pending expiry instant, if armed.
    pub fn deadline(&self) -> Option<SimTime> {
        self.deadline
    }

    /// `true` if the timer is armed and its deadline has passed.
    pub fn expired(&self, now: SimTime) -> bool {
        self.deadline.is_some_and(|d| d <= now)
    }

    /// Consumes an expiry: returns `true` exactly once per arm+expire.
    pub fn take_expiry(&mut self, now: SimTime) -> bool {
        if self.expired(now) {
            self.deadline = None;
            true
        } else {
            false
        }
    }

    /// Remaining ticks until expiry (0 if expired or disarmed), as the
    /// countdown register would read.
    pub fn count(&self, now: SimTime) -> u32 {
        match self.deadline {
            Some(d) if d > now => {
                let ns = (d - now).as_nanos();
                (ns / TICK.as_nanos()).min(u32::MAX as u64) as u32
            }
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: SimTime = SimTime::ZERO;

    #[test]
    fn disarmed_never_expires() {
        let t = IntervalTimer::new();
        assert!(!t.expired(SimTime::from_nanos(u64::MAX / 2)));
        assert_eq!(t.deadline(), None);
    }

    #[test]
    fn arm_ticks_sets_deadline() {
        let mut t = IntervalTimer::new();
        t.arm_ticks(T0, 3);
        assert_eq!(t.deadline(), Some(SimTime::from_nanos(1_500)));
        assert!(!t.expired(SimTime::from_nanos(1_499)));
        assert!(t.expired(SimTime::from_nanos(1_500)));
    }

    #[test]
    fn arm_duration_rounds_up_to_ticks() {
        let mut t = IntervalTimer::new();
        t.arm(T0, SimDuration::from_nanos(750));
        assert_eq!(t.deadline(), Some(SimTime::from_nanos(1_000)));
    }

    #[test]
    fn take_expiry_fires_once() {
        let mut t = IntervalTimer::new();
        t.arm_ticks(T0, 1);
        let later = SimTime::from_nanos(600);
        assert!(t.take_expiry(later));
        assert!(!t.take_expiry(later));
    }

    #[test]
    fn rearm_moves_deadline() {
        let mut t = IntervalTimer::new();
        t.arm_ticks(T0, 2);
        t.arm_ticks(SimTime::from_nanos(500), 4);
        assert_eq!(t.deadline(), Some(SimTime::from_nanos(2_500)));
    }

    #[test]
    fn count_reads_remaining_ticks() {
        let mut t = IntervalTimer::new();
        t.arm_ticks(T0, 10);
        assert_eq!(t.count(SimTime::from_nanos(2_400)), 5);
        assert_eq!(t.count(SimTime::from_nanos(5_000)), 0);
    }

    #[test]
    fn disarm_clears() {
        let mut t = IntervalTimer::new();
        t.arm_ticks(T0, 1);
        t.disarm();
        assert!(!t.expired(SimTime::from_nanos(10_000)));
    }

    #[test]
    fn isr_bits_are_distinct() {
        let bits: Vec<u32> = TimerId::ALL.iter().map(|t| t.isr_bit()).collect();
        assert_eq!(bits, vec![1, 2, 4]);
    }
}
