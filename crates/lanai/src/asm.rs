//! A two-pass assembler for LN32.
//!
//! Firmware routines (the MCP's `send_chunk` above all) are written as
//! assembly text and assembled into the byte image that is loaded into SRAM
//! — and that the fault campaign flips bits in.
//!
//! # Syntax
//!
//! ```text
//! ; comment                      # comment
//! label:
//!     addi  r1, r0, 42           ; rd, rs1, imm
//!     lw    r2, 8(r1)            ; loads/stores use imm(reg)
//!     sw    r2, 12(r1)
//!     beq   r1, r2, label        ; branch targets are labels
//!     jal   r15, subroutine
//!     jr    r15
//!     csrr  r3, 0x10             ; CSR ids are immediates
//!     csrw  0x12, r3
//!     li    r4, 0x12345678       ; pseudo: expands to lui+ori+ori as needed
//!     .word 0xDEADBEEF           ; raw data
//! ```
//!
//! Numbers may be decimal or `0x` hex. Registers are `r0`..`r15`. `li`
//! always expands to a fixed 2-instruction sequence so that label addresses
//! are stable in pass one.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::isa::{Instr, Opcode, Reg, IMM_MAX, IMM_MIN};

/// An assembly error with its source line number (1-based).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "asm error at line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

/// The output of a successful assembly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assembled {
    /// Little-endian machine code bytes.
    pub bytes: Vec<u8>,
    /// Byte offset of every label, relative to the image start.
    pub labels: BTreeMap<String, u32>,
}

impl Assembled {
    /// Byte offset of `label`.
    ///
    /// # Panics
    ///
    /// Panics if the label was not defined — routine entry points are part
    /// of the firmware contract, so a missing one is a build bug.
    pub fn label(&self, label: &str) -> u32 {
        *self
            .labels
            .get(label)
            .unwrap_or_else(|| panic!("undefined label: {label}"))
    }

    /// Number of bytes in the image.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// `true` when the image is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

enum Line {
    Instr { instr: ParsedInstr, line: usize },
    Word(u32),
}

/// Instruction with possibly-unresolved branch target.
enum ParsedInstr {
    Ready(Instr),
    Branch {
        op: Opcode,
        rs1: Reg,
        rs2: Reg,
        target: String,
    },
    Jal {
        rd: Reg,
        target: String,
    },
}

/// Assembles LN32 source text into a position-independent image.
///
/// All control flow is pc-relative, so the image may be loaded at any SRAM
/// offset. Label offsets in the result are relative to the image start.
///
/// # Errors
///
/// Returns the first syntax error, unknown mnemonic, out-of-range immediate,
/// or undefined/duplicate label encountered.
pub fn assemble(source: &str) -> Result<Assembled, AsmError> {
    let mut labels: BTreeMap<String, u32> = BTreeMap::new();
    let mut lines: Vec<Line> = Vec::new();
    let mut offset: u32 = 0;

    // Pass 1: parse, expand pseudos, collect label offsets.
    for (idx, raw) in source.lines().enumerate() {
        let lineno = idx + 1;
        let mut text = raw;
        if let Some(p) = text.find([';', '#']) {
            text = &text[..p];
        }
        let mut text = text.trim();
        // Labels (possibly several) at line start.
        while let Some(colon) = text.find(':') {
            let (name, rest) = text.split_at(colon);
            let name = name.trim();
            if name.is_empty() || !is_ident(name) {
                return Err(err(lineno, format!("bad label name: {name:?}")));
            }
            if labels.insert(name.to_string(), offset).is_some() {
                return Err(err(lineno, format!("duplicate label: {name}")));
            }
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        let (mnem, rest) = split_mnemonic(text);
        match mnem {
            ".word" => {
                let v = parse_num(rest.trim(), lineno)?;
                lines.push(Line::Word(v as u32));
                offset += 4;
            }
            "li" => {
                // li rd, imm — fixed 2-word expansion: lui + ori.
                let ops = parse_operands(rest);
                if ops.len() != 2 {
                    return Err(err(lineno, "li needs: rd, imm".into()));
                }
                let rd = parse_reg(&ops[0], lineno)?;
                let v = parse_num(&ops[1], lineno)? as u32;
                for instr in expand_li(rd, v) {
                    lines.push(Line::Instr {
                        instr: ParsedInstr::Ready(instr),
                        line: lineno,
                    });
                }
                offset += 8;
            }
            _ => {
                let instr = parse_instr(mnem, rest, lineno)?;
                lines.push(Line::Instr { instr, line: lineno });
                offset += 4;
            }
        }
    }

    // Pass 2: resolve branch targets and encode.
    let mut bytes = Vec::with_capacity(lines.len() * 4);
    let mut pc: u32 = 0;
    for line in &lines {
        let word = match line {
            Line::Word(w) => *w,
            Line::Instr { instr, line } => match instr {
                ParsedInstr::Ready(i) => i.encode(),
                ParsedInstr::Branch { op, rs1, rs2, target } => {
                    let off = branch_offset(&labels, target, pc, *line)?;
                    Instr::new(*op, Reg::ZERO, *rs1, *rs2, off).encode()
                }
                ParsedInstr::Jal { rd, target } => {
                    let off = branch_offset(&labels, target, pc, *line)?;
                    Instr::new(Opcode::Jal, *rd, Reg::ZERO, Reg::ZERO, off).encode()
                }
            },
        };
        bytes.extend_from_slice(&word.to_le_bytes());
        pc += 4;
    }

    Ok(Assembled { bytes, labels })
}

/// Fixed two-word `li` expansion: `lui rd, v[26:13]; ori rd, rd, v[12:0]`.
///
/// `lui` deposits its 14-bit immediate at bit 13 (zero-extended), and `ori`
/// fills the low 13 bits (bit 13 of `ori`'s immediate would sign-smear, so
/// it stays clear). Constants up to 2^27-1 are expressible, which covers
/// every firmware constant (SRAM is 1 MB; CSR ids and magic words are
/// chosen below the limit). Larger constants are rejected loudly.
fn expand_li(rd: Reg, v: u32) -> [Instr; 2] {
    assert!(v < (1 << 27), "li constant {v:#x} exceeds 27 bits");
    let hi = (v >> 13) & 0x3FFF;
    // Fold the raw 14-bit field into the signed immediate whose low 14
    // bits encode it (lui only looks at the raw bits).
    let hi_signed = ((hi as i32) << 18) >> 18;
    let lo = v & 0x1FFF;
    [
        Instr::new(Opcode::Lui, rd, Reg::ZERO, Reg::ZERO, hi_signed),
        Instr::new(Opcode::Ori, rd, rd, Reg::ZERO, lo as i32),
    ]
}

fn branch_offset(
    labels: &BTreeMap<String, u32>,
    target: &str,
    pc: u32,
    line: usize,
) -> Result<i32, AsmError> {
    let Some(&dest) = labels.get(target) else {
        return Err(err(line, format!("undefined label: {target}")));
    };
    // Offset in words relative to the *next* instruction.
    let off = (dest as i64 - (pc as i64 + 4)) / 4;
    let off = i32::try_from(off).expect("branch offset fits i32");
    if !(IMM_MIN..=IMM_MAX).contains(&off) {
        return Err(err(line, format!("branch to {target} out of range")));
    }
    Ok(off)
}

fn err(line: usize, message: String) -> AsmError {
    AsmError { line, message }
}

fn is_ident(s: &str) -> bool {
    s.chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        && s.chars().next().is_some_and(|c| !c.is_ascii_digit())
}

fn split_mnemonic(text: &str) -> (&str, &str) {
    match text.find(char::is_whitespace) {
        Some(p) => (&text[..p], &text[p..]),
        None => (text, ""),
    }
}

fn parse_operands(rest: &str) -> Vec<String> {
    rest.split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

fn parse_reg(s: &str, line: usize) -> Result<Reg, AsmError> {
    let Some(num) = s.strip_prefix('r').and_then(|n| n.parse::<u8>().ok()) else {
        return Err(err(line, format!("expected register, got {s:?}")));
    };
    if num > 15 {
        return Err(err(line, format!("register out of range: {s}")));
    }
    Ok(Reg::new(num))
}

fn parse_num(s: &str, line: usize) -> Result<i64, AsmError> {
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    };
    match v {
        Ok(v) => Ok(if neg { -v } else { v }),
        Err(_) => Err(err(line, format!("bad number: {s:?}"))),
    }
}

fn parse_imm14(s: &str, line: usize) -> Result<i32, AsmError> {
    let v = parse_num(s, line)?;
    if v < IMM_MIN as i64 || v > IMM_MAX as i64 {
        return Err(err(line, format!("immediate out of 14-bit range: {s}")));
    }
    Ok(v as i32)
}

/// Parses `imm(reg)` memory-operand syntax.
fn parse_mem(s: &str, line: usize) -> Result<(i32, Reg), AsmError> {
    let Some(open) = s.find('(') else {
        return Err(err(line, format!("expected imm(reg), got {s:?}")));
    };
    if !s.ends_with(')') {
        return Err(err(line, format!("expected imm(reg), got {s:?}")));
    }
    let imm_part = s[..open].trim();
    let imm = if imm_part.is_empty() {
        0
    } else {
        parse_imm14(imm_part, line)?
    };
    let reg = parse_reg(s[open + 1..s.len() - 1].trim(), line)?;
    Ok((imm, reg))
}

fn parse_instr(mnem: &str, rest: &str, line: usize) -> Result<ParsedInstr, AsmError> {
    use Opcode::*;
    let ops = parse_operands(rest);
    let z = Reg::ZERO;
    let need = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(
                line,
                format!("{mnem} expects {n} operands, got {}", ops.len()),
            ))
        }
    };
    let ready = |i: Instr| Ok(ParsedInstr::Ready(i));
    match mnem {
        "add" | "sub" | "and" | "or" | "xor" | "sll" | "srl" => {
            need(3)?;
            let op = match mnem {
                "add" => Add,
                "sub" => Sub,
                "and" => And,
                "or" => Or,
                "xor" => Xor,
                "sll" => Sll,
                _ => Srl,
            };
            ready(Instr::new(
                op,
                parse_reg(&ops[0], line)?,
                parse_reg(&ops[1], line)?,
                parse_reg(&ops[2], line)?,
                0,
            ))
        }
        "addi" | "andi" | "ori" | "xori" => {
            need(3)?;
            let op = match mnem {
                "addi" => Addi,
                "andi" => Andi,
                "ori" => Ori,
                _ => Xori,
            };
            ready(Instr::new(
                op,
                parse_reg(&ops[0], line)?,
                parse_reg(&ops[1], line)?,
                z,
                parse_imm14(&ops[2], line)?,
            ))
        }
        "lui" => {
            need(2)?;
            // lui's immediate is raw 14 bits; accept 0..16383 and fold.
            let v = parse_num(&ops[1], line)?;
            if !(IMM_MIN as i64..16384).contains(&v) {
                return Err(err(line, format!("lui immediate out of range: {v}")));
            }
            let folded = (((v as u32 & 0x3FFF) as i32) << 18) >> 18;
            ready(Instr::new(Lui, parse_reg(&ops[0], line)?, z, z, folded))
        }
        "lb" | "lh" | "lw" => {
            need(2)?;
            let op = match mnem {
                "lb" => Lb,
                "lh" => Lh,
                _ => Lw,
            };
            let (imm, base) = parse_mem(&ops[1], line)?;
            ready(Instr::new(op, parse_reg(&ops[0], line)?, base, z, imm))
        }
        "sb" | "sh" | "sw" => {
            need(2)?;
            let op = match mnem {
                "sb" => Sb,
                "sh" => Sh,
                _ => Sw,
            };
            let (imm, base) = parse_mem(&ops[1], line)?;
            ready(Instr::new(op, z, base, parse_reg(&ops[0], line)?, imm))
        }
        "beq" | "bne" | "bltu" | "bgeu" => {
            need(3)?;
            let op = match mnem {
                "beq" => Beq,
                "bne" => Bne,
                "bltu" => Bltu,
                _ => Bgeu,
            };
            Ok(ParsedInstr::Branch {
                op,
                rs1: parse_reg(&ops[0], line)?,
                rs2: parse_reg(&ops[1], line)?,
                target: ops[2].clone(),
            })
        }
        "jal" => {
            need(2)?;
            Ok(ParsedInstr::Jal {
                rd: parse_reg(&ops[0], line)?,
                target: ops[1].clone(),
            })
        }
        "jr" => {
            need(1)?;
            ready(Instr::new(Jr, z, parse_reg(&ops[0], line)?, z, 0))
        }
        "csrr" => {
            need(2)?;
            ready(Instr::new(
                Csrr,
                parse_reg(&ops[0], line)?,
                z,
                z,
                parse_imm14(&ops[1], line)?,
            ))
        }
        "csrw" => {
            need(2)?;
            ready(Instr::new(
                Csrw,
                z,
                z,
                parse_reg(&ops[1], line)?,
                parse_imm14(&ops[0], line)?,
            ))
        }
        "nop" => {
            need(0)?;
            ready(Instr::new(Nop, z, z, z, 0))
        }
        _ => Err(err(line, format!("unknown mnemonic: {mnem}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Instr;

    fn decode_all(a: &Assembled) -> Vec<Instr> {
        a.bytes
            .chunks(4)
            .map(|c| {
                Instr::decode(u32::from_le_bytes([c[0], c[1], c[2], c[3]])).expect("valid instr")
            })
            .collect()
    }

    #[test]
    fn assembles_arithmetic() {
        let a = assemble("add r1, r2, r3\naddi r4, r1, -5\n").unwrap();
        let is = decode_all(&a);
        assert_eq!(is[0].op, Opcode::Add);
        assert_eq!(is[1].imm, -5);
        assert_eq!(a.len(), 8);
    }

    #[test]
    fn memory_operand_syntax() {
        let a = assemble("lw r1, 8(r2)\nsw r1, (r3)\n").unwrap();
        let is = decode_all(&a);
        assert_eq!(is[0].op, Opcode::Lw);
        assert_eq!(is[0].imm, 8);
        assert_eq!(is[0].rs1, Reg::new(2));
        assert_eq!(is[1].op, Opcode::Sw);
        assert_eq!(is[1].imm, 0);
        assert_eq!(is[1].rs2, Reg::new(1));
    }

    #[test]
    fn labels_and_branches() {
        let src = "start: addi r1, r0, 3\nloop: addi r1, r1, -1\n bne r1, r0, loop\n jr r15\n";
        let a = assemble(src).unwrap();
        assert_eq!(a.label("start"), 0);
        assert_eq!(a.label("loop"), 4);
        let is = decode_all(&a);
        // bne at pc=8, target 4 → offset (4 - 12)/4 = -2 words.
        assert_eq!(is[2].imm, -2);
    }

    #[test]
    fn forward_branch() {
        let src = "beq r0, r0, done\nnop\nnop\ndone: jr r15\n";
        let a = assemble(src).unwrap();
        let is = decode_all(&a);
        // beq at 0, target 12 → (12-4)/4 = 2.
        assert_eq!(is[0].imm, 2);
    }

    #[test]
    fn comments_and_blank_lines() {
        let a = assemble("; full comment\n  # another\n\nnop ; trailing\n").unwrap();
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn word_directive() {
        let a = assemble(".word 0xDEADBEEF\n").unwrap();
        assert_eq!(a.bytes, 0xDEADBEEFu32.to_le_bytes().to_vec());
    }

    #[test]
    fn li_expansion_is_two_words() {
        let a = assemble("li r1, 0x100000\njr r15\n").unwrap();
        assert_eq!(a.len(), 12);
    }

    #[test]
    fn li_produces_value_shape() {
        // 0x100000 = bit 20 set: hi14 = 0x100000 >> 13 = 0x80, lo13 = 0.
        let a = assemble("li r1, 0x100000\n").unwrap();
        let is = decode_all(&a);
        assert_eq!(is[0].op, Opcode::Lui);
        assert_eq!(is[0].imm, 0x80);
        assert_eq!(is[1].op, Opcode::Ori);
    }

    #[test]
    fn li_rejects_oversize_constant() {
        let r = std::panic::catch_unwind(|| assemble("li r1, 0x8000000\n"));
        assert!(r.is_err());
    }

    #[test]
    fn csr_instructions() {
        let a = assemble("csrr r2, 0x10\ncsrw 0x12, r2\n").unwrap();
        let is = decode_all(&a);
        assert_eq!(is[0].op, Opcode::Csrr);
        assert_eq!(is[0].imm, 0x10);
        assert_eq!(is[1].op, Opcode::Csrw);
        assert_eq!(is[1].rs2, Reg::new(2));
        assert_eq!(is[1].imm, 0x12);
    }

    #[test]
    fn undefined_label_is_error() {
        let e = assemble("beq r0, r0, nowhere\n").unwrap_err();
        assert!(e.message.contains("undefined label"));
        assert_eq!(e.line, 1);
    }

    #[test]
    fn duplicate_label_is_error() {
        let e = assemble("a: nop\na: nop\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn unknown_mnemonic_is_error() {
        let e = assemble("frobnicate r1, r2\n").unwrap_err();
        assert!(e.message.contains("unknown mnemonic"));
    }

    #[test]
    fn immediate_range_checked() {
        assert!(assemble("addi r1, r0, 8191\n").is_ok());
        assert!(assemble("addi r1, r0, 8192\n").is_err());
        assert!(assemble("addi r1, r0, -8192\n").is_ok());
        assert!(assemble("addi r1, r0, -8193\n").is_err());
    }

    #[test]
    fn operand_count_checked() {
        assert!(assemble("add r1, r2\n").is_err());
        assert!(assemble("jr\n").is_err());
    }

    #[test]
    fn multiple_labels_one_line() {
        let a = assemble("a: b: nop\n").unwrap();
        assert_eq!(a.label("a"), 0);
        assert_eq!(a.label("b"), 0);
    }
}
