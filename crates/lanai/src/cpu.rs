//! The LN32 interpreter.
//!
//! [`Cpu::run`] executes a firmware routine to completion, to a trap, or to
//! exhaustion of an instruction budget. The budget matters: a bit flip that
//! corrupts a loop bound turns into [`RunOutcome::OutOfGas`], which the chip
//! treats exactly like a hung network processor — the dispatch loop stops
//! and only the interval timers keep ticking, which is what the paper's
//! watchdog detects.
//!
//! Control/status registers are accessed through the [`CsrBus`] trait so the
//! CPU core stays independent of the chip model (and trivially testable).

use crate::isa::{Instr, Opcode, Reg};
use crate::sram::Sram;

/// Jumping to this address signals clean routine completion.
///
/// The MCP model seeds `r15` with this sentinel before invoking a routine;
/// `jr r15` then "returns to the dispatch loop". The value is expressible by
/// the `li` pseudo-instruction and far outside any real SRAM.
pub const RETURN_ADDR: u32 = 0x07FF_FFFC;

/// Access to the chip's control/status registers from firmware.
///
/// Implemented by [`crate::chip::LanaiChip`]; tests use lightweight mocks.
pub trait CsrBus {
    /// Reads CSR `id`. Unknown ids read as zero on real hardware; models
    /// should do the same. `sram` is the memory the routine is executing
    /// against — units like the checksum engine read through it.
    fn csr_read(&mut self, sram: &Sram, id: u32) -> u32;
    /// Writes CSR `id`. Writes to trigger registers have side effects.
    fn csr_write(&mut self, sram: &Sram, id: u32, value: u32);
}

/// Why execution stopped abnormally.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrapKind {
    /// The opcode field decoded to an unassigned encoding.
    IllegalInstruction,
    /// A data access was out of range or misaligned.
    MemFault {
        /// The faulting data address.
        addr: u32,
        /// Whether the fault was an alignment fault.
        misaligned: bool,
    },
    /// The program counter left SRAM (wild jump) or became misaligned.
    PcOutOfRange,
}

/// The result of running a routine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The routine returned through [`RETURN_ADDR`].
    Completed {
        /// Consumed clock cycles (instructions are 1–2 cycles each).
        cycles: u64,
        /// Retired instruction count.
        steps: u64,
    },
    /// The processor trapped; on the real chip this stops the MCP.
    Trap {
        /// The trap cause.
        kind: TrapKind,
        /// Address of the faulting instruction.
        pc: u32,
        /// Cycles consumed up to the trap.
        cycles: u64,
    },
    /// The instruction budget ran out — the processor is looping.
    OutOfGas {
        /// Where execution was when the budget expired.
        pc: u32,
        /// Cycles consumed (the full budget's worth).
        cycles: u64,
    },
}

impl RunOutcome {
    /// `true` when the routine completed normally.
    pub fn is_completed(&self) -> bool {
        matches!(self, RunOutcome::Completed { .. })
    }

    /// Cycles consumed regardless of outcome.
    pub fn cycles(&self) -> u64 {
        match *self {
            RunOutcome::Completed { cycles, .. }
            | RunOutcome::Trap { cycles, .. }
            | RunOutcome::OutOfGas { cycles, .. } => cycles,
        }
    }
}

/// The LN32 register file and execution engine.
///
/// # Example
///
/// ```
/// use ftgm_lanai::asm::assemble;
/// use ftgm_lanai::cpu::{Cpu, NullBus, RETURN_ADDR};
/// use ftgm_lanai::sram::Sram;
///
/// let image = assemble("addi r1, r0, 40\naddi r1, r1, 2\njr r15\n").unwrap();
/// let mut sram = Sram::new(1024);
/// sram.write_bytes(0, &image.bytes);
/// let mut cpu = Cpu::new();
/// cpu.set_reg(ftgm_lanai::isa::Reg::LINK, RETURN_ADDR);
/// let out = cpu.run(&mut sram, &mut NullBus, 0, 1_000);
/// assert!(out.is_completed());
/// assert_eq!(cpu.reg(ftgm_lanai::isa::Reg::new(1)), 42);
/// ```
#[derive(Clone, Debug)]
pub struct Cpu {
    regs: [u32; 16],
}

impl Default for Cpu {
    fn default() -> Self {
        Self::new()
    }
}

impl Cpu {
    /// Creates a CPU with all registers zero.
    pub fn new() -> Cpu {
        Cpu { regs: [0; 16] }
    }

    /// Reads a register (`r0` is always zero).
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes a register; writes to `r0` are discarded.
    pub fn set_reg(&mut self, r: Reg, v: u32) {
        if r != Reg::ZERO {
            self.regs[r.index()] = v;
        }
    }

    /// The raw register file, for the decoded backend's hot loop (which
    /// passes it to its op handlers directly so the array pointer can
    /// stay register-resident).
    #[inline(always)]
    pub(crate) fn regs_raw_mut(&mut self) -> &mut [u32; 16] {
        &mut self.regs
    }

    /// Runs from `entry` until return, trap, or `max_steps` instructions.
    ///
    /// The register file persists across calls so the invoker can pass
    /// arguments in registers and read results back out.
    pub fn run(
        &mut self,
        sram: &mut Sram,
        bus: &mut dyn CsrBus,
        entry: u32,
        max_steps: u64,
    ) -> RunOutcome {
        let mut pc = entry;
        let mut cycles: u64 = 0;
        let mut steps: u64 = 0;

        loop {
            if steps >= max_steps {
                return RunOutcome::OutOfGas { pc, cycles };
            }
            if pc == RETURN_ADDR {
                return RunOutcome::Completed { cycles, steps };
            }
            if !pc.is_multiple_of(4) || pc as usize + 4 > sram.len() {
                return RunOutcome::Trap {
                    kind: TrapKind::PcOutOfRange,
                    pc,
                    cycles,
                };
            }
            let word = sram
                .read_u32(pc)
                .expect("pc bounds checked above");
            let Some(i) = Instr::decode(word) else {
                return RunOutcome::Trap {
                    kind: TrapKind::IllegalInstruction,
                    pc,
                    cycles,
                };
            };
            steps += 1;
            let mut next_pc = pc.wrapping_add(4);
            match self.step(&i, sram, bus, pc, &mut next_pc, &mut cycles) {
                Ok(()) => {}
                Err(kind) => {
                    return RunOutcome::Trap { kind, pc, cycles };
                }
            }
            pc = next_pc;
        }
    }

    fn step(
        &mut self,
        i: &Instr,
        sram: &mut Sram,
        bus: &mut dyn CsrBus,
        pc: u32,
        next_pc: &mut u32,
        cycles: &mut u64,
    ) -> Result<(), TrapKind> {
        use Opcode::*;
        let rs1 = self.reg(i.rs1);
        let rs2 = self.reg(i.rs2);
        let imm = i.imm;
        let branch_target = |pc: u32| pc.wrapping_add(4).wrapping_add((imm as u32) << 2);
        match i.op {
            Add => {
                self.set_reg(i.rd, rs1.wrapping_add(rs2));
                *cycles += 1;
            }
            Sub => {
                self.set_reg(i.rd, rs1.wrapping_sub(rs2));
                *cycles += 1;
            }
            And => {
                self.set_reg(i.rd, rs1 & rs2);
                *cycles += 1;
            }
            Or => {
                self.set_reg(i.rd, rs1 | rs2);
                *cycles += 1;
            }
            Xor => {
                self.set_reg(i.rd, rs1 ^ rs2);
                *cycles += 1;
            }
            Sll => {
                self.set_reg(i.rd, rs1.wrapping_shl(rs2 & 31));
                *cycles += 1;
            }
            Srl => {
                self.set_reg(i.rd, rs1.wrapping_shr(rs2 & 31));
                *cycles += 1;
            }
            Addi => {
                self.set_reg(i.rd, rs1.wrapping_add(imm as u32));
                *cycles += 1;
            }
            Andi => {
                self.set_reg(i.rd, rs1 & imm as u32);
                *cycles += 1;
            }
            Ori => {
                self.set_reg(i.rd, rs1 | imm as u32);
                *cycles += 1;
            }
            Xori => {
                self.set_reg(i.rd, rs1 ^ imm as u32);
                *cycles += 1;
            }
            Lui => {
                self.set_reg(i.rd, ((imm as u32) & 0x3FFF) << 13);
                *cycles += 1;
            }
            Lb => {
                let v = mem(sram.read_u8(rs1.wrapping_add(imm as u32)))?;
                self.set_reg(i.rd, v as u32);
                *cycles += 2;
            }
            Lh => {
                let v = mem(sram.read_u16(rs1.wrapping_add(imm as u32)))?;
                self.set_reg(i.rd, v as u32);
                *cycles += 2;
            }
            Lw => {
                let v = mem(sram.read_u32(rs1.wrapping_add(imm as u32)))?;
                self.set_reg(i.rd, v);
                *cycles += 2;
            }
            Sb => {
                mem(sram.write_u8(rs1.wrapping_add(imm as u32), rs2 as u8))?;
                *cycles += 2;
            }
            Sh => {
                mem(sram.write_u16(rs1.wrapping_add(imm as u32), rs2 as u16))?;
                *cycles += 2;
            }
            Sw => {
                mem(sram.write_u32(rs1.wrapping_add(imm as u32), rs2))?;
                *cycles += 2;
            }
            Beq => {
                *cycles += 1;
                if rs1 == rs2 {
                    *next_pc = branch_target(pc);
                    *cycles += 1;
                }
            }
            Bne => {
                *cycles += 1;
                if rs1 != rs2 {
                    *next_pc = branch_target(pc);
                    *cycles += 1;
                }
            }
            Bltu => {
                *cycles += 1;
                if rs1 < rs2 {
                    *next_pc = branch_target(pc);
                    *cycles += 1;
                }
            }
            Bgeu => {
                *cycles += 1;
                if rs1 >= rs2 {
                    *next_pc = branch_target(pc);
                    *cycles += 1;
                }
            }
            Jal => {
                self.set_reg(i.rd, pc.wrapping_add(4));
                *next_pc = branch_target(pc);
                *cycles += 2;
            }
            Jr => {
                *next_pc = rs1;
                *cycles += 2;
            }
            Csrr => {
                let v = bus.csr_read(sram, imm as u32 & 0x3FFF);
                self.set_reg(i.rd, v);
                *cycles += 2;
            }
            Csrw => {
                bus.csr_write(sram, imm as u32 & 0x3FFF, rs2);
                *cycles += 2;
            }
            Nop => {
                *cycles += 1;
            }
        }
        Ok(())
    }
}

pub(crate) fn mem<T>(r: crate::sram::MemResult<T>) -> Result<T, TrapKind> {
    r.map_err(|f| TrapKind::MemFault {
        addr: f.addr,
        misaligned: f.misaligned,
    })
}

/// A [`CsrBus`] that ignores writes and reads zero; for tests and examples.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullBus;

impl CsrBus for NullBus {
    fn csr_read(&mut self, _sram: &Sram, _id: u32) -> u32 {
        0
    }
    fn csr_write(&mut self, _sram: &Sram, _id: u32, _value: u32) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run_src(src: &str, setup: impl FnOnce(&mut Cpu, &mut Sram)) -> (Cpu, Sram, RunOutcome) {
        let image = assemble(src).expect("assembles");
        let mut sram = Sram::new(4096);
        sram.write_bytes(0, &image.bytes);
        let mut cpu = Cpu::new();
        cpu.set_reg(Reg::LINK, RETURN_ADDR);
        setup(&mut cpu, &mut sram);
        let out = cpu.run(&mut sram, &mut NullBus, 0, 100_000);
        (cpu, sram, out)
    }

    #[test]
    fn arithmetic_and_return() {
        let (cpu, _, out) = run_src("addi r1, r0, 40\naddi r2, r1, 2\nadd r3, r1, r2\njr r15\n", |_, _| {});
        assert!(out.is_completed());
        assert_eq!(cpu.reg(Reg::new(3)), 82);
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let (cpu, _, out) = run_src("addi r0, r0, 7\nadd r1, r0, r0\njr r15\n", |_, _| {});
        assert!(out.is_completed());
        assert_eq!(cpu.reg(Reg::ZERO), 0);
        assert_eq!(cpu.reg(Reg::new(1)), 0);
    }

    #[test]
    fn logic_ops() {
        let src = "addi r1, r0, 0xF0\naddi r2, r0, 0xFF\nand r3, r1, r2\nor r4, r1, r2\nxor r5, r1, r2\njr r15\n";
        let (cpu, _, out) = run_src(src, |_, _| {});
        assert!(out.is_completed());
        assert_eq!(cpu.reg(Reg::new(3)), 0xF0);
        assert_eq!(cpu.reg(Reg::new(4)), 0xFF);
        assert_eq!(cpu.reg(Reg::new(5)), 0x0F);
    }

    #[test]
    fn shifts() {
        let src = "addi r1, r0, 1\naddi r2, r0, 4\nsll r3, r1, r2\nsrl r4, r3, r2\njr r15\n";
        let (cpu, _, out) = run_src(src, |_, _| {});
        assert!(out.is_completed());
        assert_eq!(cpu.reg(Reg::new(3)), 16);
        assert_eq!(cpu.reg(Reg::new(4)), 1);
    }

    #[test]
    fn lui_shift_13() {
        let (cpu, _, out) = run_src("lui r1, 1\njr r15\n", |_, _| {});
        assert!(out.is_completed());
        assert_eq!(cpu.reg(Reg::new(1)), 1 << 13);
    }

    #[test]
    fn li_pseudo_loads_constant() {
        let (cpu, _, out) = run_src("li r1, 0x123456\njr r15\n", |_, _| {});
        assert!(out.is_completed());
        assert_eq!(cpu.reg(Reg::new(1)), 0x123456);
    }

    #[test]
    fn loads_and_stores() {
        let src = "li r1, 0x200\nli r2, 0x1234\nsw r2, (r1)\nlw r3, (r1)\nlh r4, (r1)\nlb r5, 1(r1)\nsb r5, 8(r1)\nlb r6, 8(r1)\njr r15\n";
        let (cpu, _, out) = run_src(src, |_, _| {});
        assert!(out.is_completed());
        assert_eq!(cpu.reg(Reg::new(3)), 0x1234);
        assert_eq!(cpu.reg(Reg::new(4)), 0x1234);
        assert_eq!(cpu.reg(Reg::new(5)), 0x12);
        assert_eq!(cpu.reg(Reg::new(6)), 0x12);
    }

    #[test]
    fn loop_counts_down() {
        let src = "addi r1, r0, 10\naddi r2, r0, 0\nloop: addi r2, r2, 3\naddi r1, r1, -1\nbne r1, r0, loop\njr r15\n";
        let (cpu, _, out) = run_src(src, |_, _| {});
        assert!(out.is_completed());
        assert_eq!(cpu.reg(Reg::new(2)), 30);
    }

    #[test]
    fn unsigned_branches() {
        // 0xFFFFFFFF as unsigned is large: bltu 1, -1 taken.
        let src = "addi r1, r0, 1\naddi r2, r0, -1\nbltu r1, r2, yes\naddi r3, r0, 0\njr r15\nyes: addi r3, r0, 1\njr r15\n";
        let (cpu, _, out) = run_src(src, |_, _| {});
        assert!(out.is_completed());
        assert_eq!(cpu.reg(Reg::new(3)), 1);
    }

    #[test]
    fn jal_links_and_jr_returns() {
        let src = "jal r14, sub\naddi r2, r0, 5\njr r15\nsub: addi r1, r0, 9\njr r14\n";
        let (cpu, _, out) = run_src(src, |_, _| {});
        assert!(out.is_completed());
        assert_eq!(cpu.reg(Reg::new(1)), 9);
        assert_eq!(cpu.reg(Reg::new(2)), 5);
    }

    #[test]
    fn illegal_instruction_traps() {
        let mut sram = Sram::new(64);
        sram.write_u32(0, 0).unwrap(); // all-zero word: unassigned opcode
        let mut cpu = Cpu::new();
        let out = cpu.run(&mut sram, &mut NullBus, 0, 100);
        assert!(matches!(
            out,
            RunOutcome::Trap {
                kind: TrapKind::IllegalInstruction,
                pc: 0,
                ..
            }
        ));
    }

    #[test]
    fn wild_jump_traps() {
        let (_, _, out) = run_src("li r1, 0x400000\njr r1\n", |_, _| {});
        assert!(matches!(
            out,
            RunOutcome::Trap {
                kind: TrapKind::PcOutOfRange,
                ..
            }
        ));
    }

    #[test]
    fn misaligned_load_traps() {
        let (_, _, out) = run_src("addi r1, r0, 2\nlw r2, (r1)\njr r15\n", |_, _| {});
        assert!(matches!(
            out,
            RunOutcome::Trap {
                kind: TrapKind::MemFault {
                    misaligned: true,
                    ..
                },
                ..
            }
        ));
    }

    #[test]
    fn out_of_range_store_traps() {
        let (_, _, out) = run_src("li r1, 0x100000\nsw r0, (r1)\njr r15\n", |_, _| {});
        assert!(matches!(
            out,
            RunOutcome::Trap {
                kind: TrapKind::MemFault {
                    misaligned: false,
                    ..
                },
                ..
            }
        ));
    }

    #[test]
    fn infinite_loop_runs_out_of_gas() {
        let (_, _, out) = run_src("loop: beq r0, r0, loop\n", |_, _| {});
        assert!(matches!(out, RunOutcome::OutOfGas { .. }));
    }

    #[test]
    fn cycle_accounting_charges_memory_ops_more() {
        let (_, _, out1) = run_src("nop\njr r15\n", |_, _| {});
        let (_, _, out2) = run_src("lw r1, 0(r0)\njr r15\n", |_, _| {});
        assert_eq!(out1.cycles(), 1 + 2);
        assert_eq!(out2.cycles(), 2 + 2);
    }

    #[test]
    fn csr_bus_interaction() {
        struct Recorder {
            writes: Vec<(u32, u32)>,
        }
        impl CsrBus for Recorder {
            fn csr_read(&mut self, _sram: &Sram, id: u32) -> u32 {
                id + 100
            }
            fn csr_write(&mut self, _sram: &Sram, id: u32, value: u32) {
                self.writes.push((id, value));
            }
        }
        let image = assemble("csrr r1, 0x10\ncsrw 0x12, r1\njr r15\n").unwrap();
        let mut sram = Sram::new(256);
        sram.write_bytes(0, &image.bytes);
        let mut cpu = Cpu::new();
        cpu.set_reg(Reg::LINK, RETURN_ADDR);
        let mut bus = Recorder { writes: vec![] };
        let out = cpu.run(&mut sram, &mut bus, 0, 100);
        assert!(out.is_completed());
        assert_eq!(bus.writes, vec![(0x12, 0x10 + 100)]);
    }

    #[test]
    fn registers_persist_across_runs() {
        let image = assemble("addi r1, r1, 1\njr r15\n").unwrap();
        let mut sram = Sram::new(256);
        sram.write_bytes(0, &image.bytes);
        let mut cpu = Cpu::new();
        cpu.set_reg(Reg::LINK, RETURN_ADDR);
        for _ in 0..3 {
            cpu.run(&mut sram, &mut NullBus, 0, 100);
        }
        assert_eq!(cpu.reg(Reg::new(1)), 3);
    }
}
