//! The assembled LANai chip: CPU + SRAM + timers + CSR bus + DMA logic.
//!
//! [`LanaiChip`] is the "silicon" boundary between firmware (the MCP model
//! in `ftgm-mcp`) and the rest of the simulated machine. Interactions with
//! the outside world — host DMA, packet transmission, host interrupts — are
//! expressed as queued [`ChipEffect`]s that the simulation world drains and
//! turns into scheduled events, keeping this crate free of scheduler
//! dependencies.
//!
//! The CSR register map (accessible from LN32 firmware via `csrr`/`csrw`):
//!
//! | id   | register         | semantics |
//! |------|------------------|-----------|
//! | 0x00 | `ISR`            | read status; write-1-to-clear |
//! | 0x01 | `IMR`            | interrupt mask toward the host |
//! | 0x02 | `IT0_COUNT`      | write: arm (ticks); read: remaining |
//! | 0x03 | `IT1_COUNT`      | ditto |
//! | 0x04 | `IT2_COUNT`      | ditto |
//! | 0x10 | `TX_HDR_ADDR`    | packet-interface gather: header base |
//! | 0x11 | `TX_HDR_LEN`     | header length |
//! | 0x12 | `TX_PAY_ADDR`    | payload base |
//! | 0x13 | `TX_PAY_LEN`     | payload length |
//! | 0x14 | `TX_TRIGGER`     | write: emit the gathered frame |
//! | 0x20 | `HDMA_HOST_ADDR` | host DMA: host physical address |
//! | 0x21 | `HDMA_SRAM_ADDR` | SRAM address |
//! | 0x22 | `HDMA_LEN`       | length |
//! | 0x23 | `HDMA_CTRL`      | write 1: host→SRAM, 2: SRAM→host |
//! | 0x30 | `CKSUM_ADDR`     | checksum unit: region base |
//! | 0x31 | `CKSUM_LEN`      | write: compute over region |
//! | 0x32 | `CKSUM_RESULT`   | read result |

use std::collections::VecDeque;
use std::fmt;

use ftgm_sim::SimTime;

use crate::cpu::{Cpu, CsrBus};
use crate::decode::{CpuBackend, DecodeCache};
use crate::sram::Sram;
use crate::timers::{IntervalTimer, TimerId};

/// CSR ids (see module docs).
pub mod csr {
    /// Interface status register.
    pub const ISR: u32 = 0x00;
    /// Interrupt mask register.
    pub const IMR: u32 = 0x01;
    /// Interval-timer count registers (IT0..IT2).
    pub const IT_COUNT: [u32; 3] = [0x02, 0x03, 0x04];
    /// TX gather: header base address.
    pub const TX_HDR_ADDR: u32 = 0x10;
    /// TX gather: header length.
    pub const TX_HDR_LEN: u32 = 0x11;
    /// TX gather: payload base address.
    pub const TX_PAY_ADDR: u32 = 0x12;
    /// TX gather: payload length.
    pub const TX_PAY_LEN: u32 = 0x13;
    /// TX trigger: any write emits the frame.
    pub const TX_TRIGGER: u32 = 0x14;
    /// Host-DMA host physical address.
    pub const HDMA_HOST_ADDR: u32 = 0x20;
    /// Host-DMA SRAM address.
    pub const HDMA_SRAM_ADDR: u32 = 0x21;
    /// Host-DMA length in bytes.
    pub const HDMA_LEN: u32 = 0x22;
    /// Host-DMA control/trigger.
    pub const HDMA_CTRL: u32 = 0x23;
    /// Checksum unit region base.
    pub const CKSUM_ADDR: u32 = 0x30;
    /// Checksum unit region length (write computes).
    pub const CKSUM_LEN: u32 = 0x31;
    /// Checksum unit result.
    pub const CKSUM_RESULT: u32 = 0x32;
}

/// ISR bit assignments.
pub mod isr {
    /// IT0 expired.
    pub const IT0: u32 = 1 << 0;
    /// IT1 expired (the watchdog bit).
    pub const IT1: u32 = 1 << 1;
    /// IT2 expired.
    pub const IT2: u32 = 1 << 2;
    /// Host DMA completed.
    pub const HDMA_DONE: u32 = 1 << 3;
    /// A frame is waiting in the receive queue.
    pub const RX_AVAIL: u32 = 1 << 4;
    /// The host rang the doorbell (posted work).
    pub const DOORBELL: u32 = 1 << 5;
}

/// Maximum bytes the packet interface will gather per trigger; larger
/// programmed lengths are clamped, as real hardware truncates at its
/// buffer size. (4 KB payload + generous header room.)
pub const MAX_TX_GATHER: u32 = 4096 + 256;

/// Direction of a host DMA transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostDmaDir {
    /// Host memory → SRAM (send staging).
    HostToSram,
    /// SRAM → host memory (receive delivery, event posting).
    SramToHost,
}

/// A host DMA request emitted by the chip for the world to execute with
/// EBUS/PCI timing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HostDmaReq {
    /// Direction of the transfer.
    pub dir: HostDmaDir,
    /// Host physical byte address.
    pub host_addr: u64,
    /// SRAM byte address.
    pub sram_addr: u32,
    /// Length in bytes.
    pub len: u32,
}

/// Bytes handed to the link by the packet interface.
#[derive(Clone, PartialEq, Eq)]
pub struct WireFrame {
    /// Raw frame bytes (header + payload as gathered from SRAM).
    pub bytes: Vec<u8>,
}

impl fmt::Debug for WireFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WireFrame({} bytes)", self.bytes.len())
    }
}

/// Side effects queued by the chip for the simulation world.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChipEffect {
    /// `(ISR & IMR)` became non-zero: raise the host interrupt line.
    HostInterrupt,
    /// Firmware triggered a host DMA; the world models its timing and
    /// calls [`LanaiChip::host_dma_complete`] when done.
    StartHostDma(HostDmaReq),
    /// Firmware triggered a packet transmission.
    TxFrame(WireFrame),
}

/// Why the network processor is considered hung.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HangCause {
    /// The CPU took a trap (illegal instruction, memory fault, wild jump).
    Trap,
    /// The CPU exceeded its instruction budget (runaway loop).
    RunawayLoop,
    /// A DMA/packet engine was programmed with an impossible descriptor
    /// and wedged; the processor stalls waiting on it forever.
    EngineWedged,
    /// A test or experiment forced the hang.
    Forced,
}

/// The LANai chip model.
///
/// The chip owns the CPU and SRAM; the firmware model calls
/// [`LanaiChip::run_routine`] to execute LN32 code against them. All
/// externally-visible activity lands in the effect queue.
#[derive(Debug)]
pub struct LanaiChip {
    /// Local memory.
    pub sram: Sram,
    /// The RISC core's register file.
    pub cpu: Cpu,
    /// Which interpreter [`LanaiChip::run_routine`] dispatches to.
    pub backend: CpuBackend,
    decode_cache: DecodeCache,
    timers: [IntervalTimer; 3],
    isr: u32,
    imr: u32,
    irq_line: bool,
    hung: Option<HangCause>,
    rx_queue: VecDeque<WireFrame>,
    hdma_busy: bool,
    hdma_pending: Option<HostDmaReq>,
    effects: Vec<ChipEffect>,
    // CSR latches.
    tx_hdr_addr: u32,
    tx_hdr_len: u32,
    tx_pay_addr: u32,
    tx_pay_len: u32,
    hdma_host_addr: u32,
    hdma_sram_addr: u32,
    hdma_len: u32,
    cksum_addr: u32,
    cksum_result: u32,
    // `now` latched for CSR handlers that need time (timer arm/read).
    csr_now: SimTime,
}

impl LanaiChip {
    /// Creates a chip with `sram_len` bytes of zeroed SRAM.
    pub fn new(sram_len: usize) -> LanaiChip {
        LanaiChip {
            sram: Sram::new(sram_len),
            cpu: Cpu::new(),
            backend: CpuBackend::default(),
            decode_cache: DecodeCache::new(),
            timers: [IntervalTimer::new(); 3],
            isr: 0,
            imr: 0,
            irq_line: false,
            hung: None,
            rx_queue: VecDeque::new(),
            hdma_busy: false,
            hdma_pending: None,
            effects: Vec::new(),
            tx_hdr_addr: 0,
            tx_hdr_len: 0,
            tx_pay_addr: 0,
            tx_pay_len: 0,
            hdma_host_addr: 0,
            hdma_sram_addr: 0,
            hdma_len: 0,
            cksum_addr: 0,
            cksum_result: 0,
            csr_now: SimTime::ZERO,
        }
    }

    /// Drains queued effects.
    pub fn take_effects(&mut self) -> Vec<ChipEffect> {
        std::mem::take(&mut self.effects)
    }

    // ---- hang state ----------------------------------------------------

    /// Whether the network processor is hung and why.
    pub fn hang_cause(&self) -> Option<HangCause> {
        self.hung
    }

    /// `true` when the network processor is hung.
    pub fn is_hung(&self) -> bool {
        self.hung.is_some()
    }

    /// Marks the processor hung (trap, runaway loop, or forced by an
    /// experiment). Timers and interrupt logic keep operating.
    pub fn set_hung(&mut self, cause: HangCause) {
        self.hung = Some(cause);
    }

    // ---- firmware execution --------------------------------------------

    /// Runs the LN32 routine at `entry` with the current register file.
    ///
    /// On a trap or a blown instruction budget the chip transitions to the
    /// hung state, mirroring a crashed network processor. Returns the raw
    /// outcome so callers can account cycles.
    pub fn run_routine(
        &mut self,
        now: SimTime,
        entry: u32,
        max_steps: u64,
    ) -> crate::cpu::RunOutcome {
        use crate::cpu::RunOutcome;
        self.csr_now = now;
        // Split borrows: the CPU mutates SRAM while CSR accesses mutate the
        // chip's latches, so temporarily move both out of `self` (the
        // decode cache rides along the same way). CSR handlers that need
        // memory (checksum, TX gather) receive the SRAM by reference
        // through the `CsrBus` trait.
        let mut cpu = self.cpu.clone();
        let mut sram = std::mem::replace(&mut self.sram, Sram::new(0));
        let mut cache = std::mem::take(&mut self.decode_cache);
        let outcome = match self.backend {
            CpuBackend::Reference => cpu.run(&mut sram, self, entry, max_steps),
            CpuBackend::Decoded => {
                crate::decode::run_decoded(&mut cpu, &mut sram, self, entry, max_steps, &mut cache)
            }
        };
        self.decode_cache = cache;
        self.sram = sram;
        self.cpu = cpu;
        match outcome {
            RunOutcome::Completed { .. } => {}
            RunOutcome::Trap { .. } => self.set_hung(HangCause::Trap),
            RunOutcome::OutOfGas { .. } => self.set_hung(HangCause::RunawayLoop),
        }
        outcome
    }

    // ---- interrupts ------------------------------------------------------

    /// Current ISR value.
    pub fn isr(&self) -> u32 {
        self.isr
    }

    /// Current IMR value.
    pub fn imr(&self) -> u32 {
        self.imr
    }

    /// Sets ISR bits (hardware events), re-evaluating the IRQ line.
    pub fn raise_isr(&mut self, bits: u32) {
        self.isr |= bits;
        self.update_irq();
    }

    /// Clears ISR bits (write-1-to-clear semantics).
    pub fn clear_isr(&mut self, bits: u32) {
        self.isr &= !bits;
        self.update_irq();
    }

    /// Sets the interrupt mask from the host/driver side.
    pub fn set_imr(&mut self, imr: u32) {
        self.imr = imr;
        self.update_irq();
    }

    fn update_irq(&mut self) {
        let level = (self.isr & self.imr) != 0;
        if level && !self.irq_line {
            self.effects.push(ChipEffect::HostInterrupt);
        }
        self.irq_line = level;
    }

    // ---- timers ----------------------------------------------------------

    /// Arms timer `id` to expire `ticks` hardware ticks from `now`.
    pub fn arm_timer(&mut self, id: TimerId, now: SimTime, ticks: u32) {
        self.timers[id.index()].arm_ticks(now, ticks);
    }

    /// Disarms timer `id`.
    pub fn disarm_timer(&mut self, id: TimerId) {
        self.timers[id.index()].disarm();
    }

    /// The earliest pending timer deadline, if any — the world schedules a
    /// poll event at this instant.
    pub fn next_timer_deadline(&self) -> Option<SimTime> {
        self.timers.iter().filter_map(|t| t.deadline()).min()
    }

    /// Latches expired timers into the ISR. Returns the ids that fired.
    pub fn poll_timers(&mut self, now: SimTime) -> Vec<TimerId> {
        let mut fired = Vec::new();
        for id in TimerId::ALL {
            if self.timers[id.index()].take_expiry(now) {
                self.raise_isr(id.isr_bit());
                fired.push(id);
            }
        }
        fired
    }

    /// Remaining tick count of a timer, as its CSR would read.
    pub fn timer_count(&self, id: TimerId, now: SimTime) -> u32 {
        self.timers[id.index()].count(now)
    }

    // ---- host-side (EBUS PIO) access -------------------------------------

    /// Host doorbell: the GM library rings this after posting work into
    /// SRAM queues.
    pub fn ring_doorbell(&mut self) {
        self.raise_isr(isr::DOORBELL);
    }

    // ---- packet interface -------------------------------------------------

    /// Delivers an incoming frame from the link into the RX queue.
    pub fn rx_deliver(&mut self, frame: WireFrame) {
        self.rx_queue.push_back(frame);
        self.raise_isr(isr::RX_AVAIL);
    }

    /// Pops the next received frame, clearing `RX_AVAIL` when the queue
    /// drains.
    pub fn rx_pop(&mut self) -> Option<WireFrame> {
        let frame = self.rx_queue.pop_front();
        if self.rx_queue.is_empty() {
            self.clear_isr(isr::RX_AVAIL);
        }
        frame
    }

    /// Number of frames waiting in the RX queue.
    pub fn rx_pending(&self) -> usize {
        self.rx_queue.len()
    }

    /// Gathers and emits a TX frame from the latched TX registers.
    ///
    /// An impossible descriptor — empty header, oversize gather, or a base
    /// address outside SRAM — **wedges the packet engine**: the interface
    /// hangs, exactly as real DMA engines do when firmware corruption
    /// feeds them garbage. (This is one of the paper's dominant hang
    /// mechanisms: most of `send_chunk`'s data flow ends up in these
    /// registers.)
    fn tx_trigger(&mut self, sram: &Sram) {
        let sram_len = sram.len() as u32;
        let bad = self.tx_hdr_len == 0
            || self.tx_hdr_len.saturating_add(self.tx_pay_len) > MAX_TX_GATHER
            || self.tx_hdr_addr.saturating_add(self.tx_hdr_len) > sram_len
            || (self.tx_pay_len > 0
                && self.tx_pay_addr.saturating_add(self.tx_pay_len) > sram_len);
        if bad {
            self.set_hung(HangCause::EngineWedged);
            return;
        }
        let mut bytes = Vec::with_capacity((self.tx_hdr_len + self.tx_pay_len) as usize);
        bytes.extend_from_slice(sram.read_bytes(self.tx_hdr_addr, self.tx_hdr_len as usize));
        if self.tx_pay_len > 0 {
            bytes.extend_from_slice(sram.read_bytes(self.tx_pay_addr, self.tx_pay_len as usize));
        }
        self.effects.push(ChipEffect::TxFrame(WireFrame { bytes }));
    }

    // ---- host DMA ----------------------------------------------------------

    /// `true` while a host DMA is outstanding.
    pub fn hdma_busy(&self) -> bool {
        self.hdma_busy
    }

    /// Starts a host DMA from explicit parameters (used by the Rust-level
    /// MCP model; firmware uses the CSR path).
    pub fn start_host_dma(&mut self, req: HostDmaReq) {
        assert!(!self.hdma_busy, "host DMA engine already busy");
        self.hdma_busy = true;
        self.effects.push(ChipEffect::StartHostDma(req));
    }

    /// Completion callback from the world once the EBUS transfer finishes.
    /// A queued (one-deep) descriptor auto-starts.
    pub fn host_dma_complete(&mut self) {
        assert!(self.hdma_busy, "spurious host DMA completion");
        self.hdma_busy = false;
        self.raise_isr(isr::HDMA_DONE);
        if let Some(req) = self.hdma_pending.take() {
            self.start_host_dma(req);
        }
    }

    // ---- reset ---------------------------------------------------------------

    /// Full card reset: clears hang state, ISR/IMR, queues, DMA engines and
    /// timers. SRAM contents are preserved (the FTD clears SRAM explicitly
    /// before reloading the MCP, as the paper describes).
    pub fn reset(&mut self) {
        self.hung = None;
        self.isr = 0;
        self.imr = 0;
        self.irq_line = false;
        self.rx_queue.clear();
        self.hdma_busy = false;
        self.hdma_pending = None;
        self.effects.clear();
        self.cpu = Cpu::new();
        for t in &mut self.timers {
            t.disarm();
        }
        self.tx_hdr_addr = 0;
        self.tx_hdr_len = 0;
        self.tx_pay_addr = 0;
        self.tx_pay_len = 0;
        self.hdma_host_addr = 0;
        self.hdma_sram_addr = 0;
        self.hdma_len = 0;
        self.cksum_addr = 0;
        self.cksum_result = 0;
    }
}

/// Maps an `IT_COUNT` CSR id to its timer, if `id` addresses one.
fn it_timer(id: u32) -> Option<TimerId> {
    TimerId::ALL
        .into_iter()
        .find(|t| csr::IT_COUNT[t.index()] == id)
}

impl CsrBus for LanaiChip {
    fn csr_read(&mut self, _sram: &Sram, id: u32) -> u32 {
        if let Some(t) = it_timer(id) {
            return self.timer_count(t, self.csr_now);
        }
        match id {
            csr::ISR => self.isr,
            csr::IMR => self.imr,
            csr::TX_HDR_ADDR => self.tx_hdr_addr,
            csr::TX_HDR_LEN => self.tx_hdr_len,
            csr::TX_PAY_ADDR => self.tx_pay_addr,
            csr::TX_PAY_LEN => self.tx_pay_len,
            csr::HDMA_HOST_ADDR => self.hdma_host_addr,
            csr::HDMA_SRAM_ADDR => self.hdma_sram_addr,
            csr::HDMA_LEN => self.hdma_len,
            csr::CKSUM_ADDR => self.cksum_addr,
            csr::CKSUM_RESULT => self.cksum_result,
            _ => 0,
        }
    }

    fn csr_write(&mut self, sram: &Sram, id: u32, value: u32) {
        if let Some(t) = it_timer(id) {
            self.arm_timer(t, self.csr_now, value);
            return;
        }
        match id {
            csr::ISR => self.clear_isr(value),
            csr::IMR => self.set_imr(value),
            csr::TX_HDR_ADDR => self.tx_hdr_addr = value,
            csr::TX_HDR_LEN => self.tx_hdr_len = value,
            csr::TX_PAY_ADDR => self.tx_pay_addr = value,
            csr::TX_PAY_LEN => self.tx_pay_len = value,
            csr::TX_TRIGGER => self.tx_trigger(sram),
            csr::HDMA_HOST_ADDR => self.hdma_host_addr = value,
            csr::HDMA_SRAM_ADDR => self.hdma_sram_addr = value,
            csr::HDMA_LEN => self.hdma_len = value,
            csr::HDMA_CTRL => {
                // A stray firmware write here is exactly the "fault
                // propagates to the host" path: the DMA fires at whatever
                // address the latches hold (an unpinned host address then
                // crashes the host). An SRAM address outside memory wedges
                // the engine instead. Busy-engine writes are dropped.
                if self.hdma_sram_addr.saturating_add(self.hdma_len) > sram.len() as u32 {
                    self.set_hung(HangCause::EngineWedged);
                } else {
                    let dir = if value & 2 != 0 {
                        HostDmaDir::SramToHost
                    } else {
                        HostDmaDir::HostToSram
                    };
                    let req = HostDmaReq {
                        dir,
                        host_addr: self.hdma_host_addr as u64,
                        sram_addr: self.hdma_sram_addr,
                        len: self.hdma_len,
                    };
                    if self.hdma_busy {
                        // One-deep descriptor queue, as on real engines.
                        self.hdma_pending = Some(req);
                    } else {
                        self.start_host_dma(req);
                    }
                }
            }
            csr::CKSUM_ADDR => self.cksum_addr = value,
            csr::CKSUM_LEN => {
                // An impossible descriptor (base outside SRAM, or a length
                // beyond any packet) wedges the unit, like the other
                // engines.
                let sram_len = sram.len() as u32;
                if self.cksum_addr >= sram_len
                    || value > MAX_TX_GATHER
                    || self.cksum_addr + value > sram_len
                {
                    self.set_hung(HangCause::EngineWedged);
                } else {
                    self.cksum_result = sram.checksum(self.cksum_addr, value);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::cpu::RETURN_ADDR;
    use crate::isa::Reg;

    fn chip_with(src: &str) -> (LanaiChip, u32) {
        let image = assemble(src).unwrap();
        let mut chip = LanaiChip::new(64 * 1024);
        chip.sram.write_bytes(0x1000, &image.bytes);
        chip.cpu.set_reg(Reg::LINK, RETURN_ADDR);
        (chip, 0x1000)
    }

    #[test]
    fn run_routine_completes() {
        let (mut chip, entry) = chip_with("addi r1, r0, 5\njr r15\n");
        let out = chip.run_routine(SimTime::ZERO, entry, 100);
        assert!(out.is_completed());
        assert!(!chip.is_hung());
        assert_eq!(chip.cpu.reg(Reg::new(1)), 5);
    }

    #[test]
    fn trap_marks_chip_hung() {
        let mut chip = LanaiChip::new(1024);
        // Address 0 holds zeros: illegal instruction.
        chip.run_routine(SimTime::ZERO, 0, 100);
        assert_eq!(chip.hang_cause(), Some(HangCause::Trap));
    }

    #[test]
    fn runaway_loop_marks_chip_hung() {
        let (mut chip, entry) = chip_with("loop: beq r0, r0, loop\n");
        chip.run_routine(SimTime::ZERO, entry, 1000);
        assert_eq!(chip.hang_cause(), Some(HangCause::RunawayLoop));
    }

    #[test]
    fn irq_raised_when_unmasked_isr() {
        let mut chip = LanaiChip::new(1024);
        chip.set_imr(isr::IT1);
        chip.raise_isr(isr::IT1);
        assert_eq!(chip.take_effects(), vec![ChipEffect::HostInterrupt]);
        // Level-triggered: no second effect while the line stays high.
        chip.raise_isr(isr::IT1);
        assert!(chip.take_effects().is_empty());
    }

    #[test]
    fn masked_isr_raises_no_irq() {
        let mut chip = LanaiChip::new(1024);
        chip.raise_isr(isr::IT1);
        assert!(chip.take_effects().is_empty());
        // Unmasking later raises it.
        chip.set_imr(isr::IT1);
        assert_eq!(chip.take_effects(), vec![ChipEffect::HostInterrupt]);
    }

    #[test]
    fn timer_expiry_sets_isr() {
        let mut chip = LanaiChip::new(1024);
        chip.arm_timer(TimerId::It1, SimTime::ZERO, 4);
        assert_eq!(
            chip.next_timer_deadline(),
            Some(SimTime::from_nanos(2_000))
        );
        assert!(chip.poll_timers(SimTime::from_nanos(1_999)).is_empty());
        let fired = chip.poll_timers(SimTime::from_nanos(2_000));
        assert_eq!(fired, vec![TimerId::It1]);
        assert_ne!(chip.isr() & isr::IT1, 0);
    }

    #[test]
    fn timers_tick_while_hung() {
        let mut chip = LanaiChip::new(1024);
        chip.arm_timer(TimerId::It1, SimTime::ZERO, 2);
        chip.set_hung(HangCause::Forced);
        let fired = chip.poll_timers(SimTime::from_nanos(1_000));
        assert_eq!(fired, vec![TimerId::It1]);
    }

    #[test]
    fn firmware_can_rearm_timer_via_csr() {
        let (mut chip, entry) = chip_with("addi r1, r0, 100\ncsrw 0x03, r1\njr r15\n");
        let out = chip.run_routine(SimTime::from_nanos(500), entry, 100);
        assert!(out.is_completed());
        assert_eq!(
            chip.next_timer_deadline(),
            Some(SimTime::from_nanos(500 + 100 * 500))
        );
    }

    #[test]
    fn rx_queue_roundtrip() {
        let mut chip = LanaiChip::new(1024);
        chip.rx_deliver(WireFrame { bytes: vec![1, 2] });
        chip.rx_deliver(WireFrame { bytes: vec![3] });
        assert_ne!(chip.isr() & isr::RX_AVAIL, 0);
        assert_eq!(chip.rx_pending(), 2);
        assert_eq!(chip.rx_pop().unwrap().bytes, vec![1, 2]);
        assert_ne!(chip.isr() & isr::RX_AVAIL, 0);
        assert_eq!(chip.rx_pop().unwrap().bytes, vec![3]);
        assert_eq!(chip.isr() & isr::RX_AVAIL, 0);
        assert!(chip.rx_pop().is_none());
    }

    #[test]
    fn doorbell_sets_isr() {
        let mut chip = LanaiChip::new(1024);
        chip.ring_doorbell();
        assert_ne!(chip.isr() & isr::DOORBELL, 0);
    }

    #[test]
    fn tx_gather_reads_sram_bytes() {
        let src = "li r1, 0x2000\ncsrw 0x10, r1\naddi r2, r0, 4\ncsrw 0x11, r2\nli r3, 0x3000\ncsrw 0x12, r3\naddi r4, r0, 2\ncsrw 0x13, r4\ncsrw 0x14, r0\njr r15\n";
        let (mut chip, entry) = chip_with(src);
        chip.sram.write_bytes(0x2000, &[0xAA, 0xBB, 0xCC, 0xDD]);
        chip.sram.write_bytes(0x3000, &[0x11, 0x22]);
        let out = chip.run_routine(SimTime::ZERO, entry, 1000);
        assert!(out.is_completed(), "{out:?}");
        let effects = chip.take_effects();
        assert_eq!(
            effects,
            vec![ChipEffect::TxFrame(WireFrame {
                bytes: vec![0xAA, 0xBB, 0xCC, 0xDD, 0x11, 0x22]
            })]
        );
    }

    #[test]
    fn tx_gather_out_of_range_wedges_engine() {
        let mut chip = LanaiChip::new(16);
        chip.sram.write_bytes(0, &[9; 16]);
        chip.tx_hdr_addr = 14;
        chip.tx_hdr_len = 4; // reaches past the end of SRAM
        let sram = chip.sram.clone();
        chip.tx_trigger(&sram);
        assert!(chip.take_effects().is_empty());
        assert_eq!(chip.hang_cause(), Some(HangCause::EngineWedged));
    }

    #[test]
    fn tx_zero_header_wedges_engine() {
        let mut chip = LanaiChip::new(1024);
        chip.tx_hdr_addr = 0;
        chip.tx_hdr_len = 0;
        let sram = chip.sram.clone();
        chip.tx_trigger(&sram);
        assert_eq!(chip.hang_cause(), Some(HangCause::EngineWedged));
    }

    #[test]
    fn host_dma_lifecycle() {
        let mut chip = LanaiChip::new(1024);
        chip.start_host_dma(HostDmaReq {
            dir: HostDmaDir::HostToSram,
            host_addr: 0x10000,
            sram_addr: 0x100,
            len: 64,
        });
        assert!(chip.hdma_busy());
        let effects = chip.take_effects();
        assert!(matches!(effects[0], ChipEffect::StartHostDma(_)));
        chip.host_dma_complete();
        assert!(!chip.hdma_busy());
        assert_ne!(chip.isr() & isr::HDMA_DONE, 0);
    }

    #[test]
    fn queued_descriptor_autostarts_after_completion() {
        let mut chip = LanaiChip::new(4096);
        chip.start_host_dma(HostDmaReq {
            dir: HostDmaDir::HostToSram,
            host_addr: 0x1000,
            sram_addr: 0,
            len: 8,
        });
        chip.take_effects();
        // Firmware queues a second descriptor while the engine is busy.
        let sram = chip.sram.clone();
        chip.csr_write(&sram, csr::HDMA_HOST_ADDR, 0x2000);
        chip.csr_write(&sram, csr::HDMA_SRAM_ADDR, 0x100);
        chip.csr_write(&sram, csr::HDMA_LEN, 16);
        chip.csr_write(&sram, csr::HDMA_CTRL, 2);
        assert!(chip.take_effects().is_empty(), "queued, not started");
        chip.host_dma_complete();
        let effects = chip.take_effects();
        assert!(effects.iter().any(|e| matches!(
            e,
            ChipEffect::StartHostDma(HostDmaReq { host_addr: 0x2000, .. })
        )));
        assert!(chip.hdma_busy());
    }

    #[test]
    #[should_panic(expected = "already busy")]
    fn double_dma_start_panics() {
        let mut chip = LanaiChip::new(1024);
        let req = HostDmaReq {
            dir: HostDmaDir::HostToSram,
            host_addr: 0,
            sram_addr: 0,
            len: 1,
        };
        chip.start_host_dma(req);
        chip.start_host_dma(req);
    }

    #[test]
    fn firmware_hdma_csr_path() {
        let src = "li r1, 0x4000\ncsrw 0x20, r1\nli r2, 0x200\ncsrw 0x21, r2\naddi r3, r0, 64\ncsrw 0x22, r3\naddi r4, r0, 2\ncsrw 0x23, r4\njr r15\n";
        let (mut chip, entry) = chip_with(src);
        let out = chip.run_routine(SimTime::ZERO, entry, 1000);
        assert!(out.is_completed());
        let effects = chip.take_effects();
        assert_eq!(
            effects,
            vec![ChipEffect::StartHostDma(HostDmaReq {
                dir: HostDmaDir::SramToHost,
                host_addr: 0x4000,
                sram_addr: 0x200,
                len: 64,
            })]
        );
    }

    #[test]
    fn checksum_unit_via_csr() {
        let src = "li r1, 0x2000\ncsrw 0x30, r1\naddi r2, r0, 8\ncsrw 0x31, r2\ncsrr r3, 0x32\njr r15\n";
        let (mut chip, entry) = chip_with(src);
        chip.sram.write_u32(0x2000, 5).unwrap();
        chip.sram.write_u32(0x2004, 7).unwrap();
        let out = chip.run_routine(SimTime::ZERO, entry, 1000);
        assert!(out.is_completed());
        assert_eq!(chip.cpu.reg(Reg::new(3)), 12);
    }

    #[test]
    fn write1_clears_isr_from_firmware() {
        let (mut chip, entry) = chip_with("addi r1, r0, 0x20\ncsrw 0x00, r1\njr r15\n");
        chip.ring_doorbell();
        assert_ne!(chip.isr() & isr::DOORBELL, 0);
        chip.run_routine(SimTime::ZERO, entry, 100);
        assert_eq!(chip.isr() & isr::DOORBELL, 0);
    }

    #[test]
    fn reset_clears_state_preserves_sram() {
        let mut chip = LanaiChip::new(1024);
        chip.sram.write_u32(0, 0x1234).unwrap();
        chip.set_hung(HangCause::Forced);
        chip.raise_isr(isr::RX_AVAIL);
        chip.rx_deliver(WireFrame { bytes: vec![1] });
        chip.arm_timer(TimerId::It0, SimTime::ZERO, 5);
        chip.reset();
        assert!(!chip.is_hung());
        assert_eq!(chip.isr(), 0);
        assert_eq!(chip.rx_pending(), 0);
        assert_eq!(chip.next_timer_deadline(), None);
        assert_eq!(chip.sram.read_u32(0).unwrap(), 0x1234);
    }
}
