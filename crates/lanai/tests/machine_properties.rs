//! Property tests over the LN32 toolchain: assembler↔encoder agreement,
//! interpreter arithmetic against a reference model, and robustness of the
//! CPU against arbitrary memory images (the fault campaign's foundation:
//! *no* corruption may panic the simulator).

use proptest::prelude::*;

use ftgm_lanai::asm::assemble;
use ftgm_lanai::cpu::{Cpu, NullBus, RunOutcome, RETURN_ADDR};
use ftgm_lanai::isa::{mnemonic, Instr, Opcode, Reg};
use ftgm_lanai::Sram;

fn reg_strategy() -> impl Strategy<Value = u8> {
    0u8..16
}

proptest! {
    /// Rendering an ALU/immediate instruction through its mnemonic and
    /// assembling it reproduces the encoder's bytes.
    #[test]
    fn assembler_matches_encoder_for_alu(
        op_idx in 0usize..7,
        rd in reg_strategy(),
        rs1 in reg_strategy(),
        rs2 in reg_strategy(),
    ) {
        use Opcode::*;
        let op = [Add, Sub, And, Or, Xor, Sll, Srl][op_idx];
        let text = format!("{} r{rd}, r{rs1}, r{rs2}\n", mnemonic(op));
        let image = assemble(&text).expect("assembles");
        let expect = Instr::new(op, Reg::new(rd), Reg::new(rs1), Reg::new(rs2), 0).encode();
        prop_assert_eq!(image.bytes, expect.to_le_bytes().to_vec());
    }

    #[test]
    fn assembler_matches_encoder_for_imm(
        op_idx in 0usize..4,
        rd in reg_strategy(),
        rs1 in reg_strategy(),
        imm in -8192i32..8192,
    ) {
        use Opcode::*;
        let op = [Addi, Andi, Ori, Xori][op_idx];
        let text = format!("{} r{rd}, r{rs1}, {imm}\n", mnemonic(op));
        let image = assemble(&text).expect("assembles");
        let expect = Instr::new(op, Reg::new(rd), Reg::new(rs1), Reg::ZERO, imm).encode();
        prop_assert_eq!(image.bytes, expect.to_le_bytes().to_vec());
    }

    /// `li` materializes any 27-bit constant exactly.
    #[test]
    fn li_materializes_constants(v in 0u32..(1 << 27)) {
        let image = assemble(&format!("li r1, {v}\njr r15\n")).expect("assembles");
        let mut sram = Sram::new(4096);
        sram.write_bytes(0, &image.bytes);
        let mut cpu = Cpu::new();
        cpu.set_reg(Reg::LINK, RETURN_ADDR);
        let out = cpu.run(&mut sram, &mut NullBus, 0, 100);
        prop_assert!(out.is_completed());
        prop_assert_eq!(cpu.reg(Reg::new(1)), v);
    }

    /// The interpreter's ALU agrees with a Rust reference model.
    #[test]
    fn alu_semantics_match_reference(
        a in any::<u32>(),
        b in any::<u32>(),
        op_idx in 0usize..7,
    ) {
        use Opcode::*;
        let op = [Add, Sub, And, Or, Xor, Sll, Srl][op_idx];
        let expect = match op {
            Add => a.wrapping_add(b),
            Sub => a.wrapping_sub(b),
            And => a & b,
            Or => a | b,
            Xor => a ^ b,
            Sll => a.wrapping_shl(b & 31),
            Srl => a.wrapping_shr(b & 31),
            _ => unreachable!(),
        };
        let text = format!("{} r3, r1, r2\njr r15\n", mnemonic(op));
        let image = assemble(&text).expect("assembles");
        let mut sram = Sram::new(4096);
        sram.write_bytes(0, &image.bytes);
        let mut cpu = Cpu::new();
        cpu.set_reg(Reg::new(1), a);
        cpu.set_reg(Reg::new(2), b);
        cpu.set_reg(Reg::LINK, RETURN_ADDR);
        let out = cpu.run(&mut sram, &mut NullBus, 0, 100);
        prop_assert!(out.is_completed());
        prop_assert_eq!(cpu.reg(Reg::new(3)), expect);
    }

    /// Executing *any* byte soup never panics: it completes, traps, or
    /// runs out of gas — the total-function property fault injection
    /// depends on.
    #[test]
    fn arbitrary_memory_never_panics_the_cpu(
        image in proptest::collection::vec(any::<u8>(), 0..512),
        entry in 0u32..600,
        r1 in any::<u32>(),
    ) {
        let mut sram = Sram::new(1024);
        sram.write_bytes(0, &image);
        let mut cpu = Cpu::new();
        cpu.set_reg(Reg::new(1), r1);
        cpu.set_reg(Reg::LINK, RETURN_ADDR);
        let out = cpu.run(&mut sram, &mut NullBus, entry & !3, 10_000);
        // Any outcome is fine; the call returning at all is the property.
        match out {
            RunOutcome::Completed { .. }
            | RunOutcome::Trap { .. }
            | RunOutcome::OutOfGas { .. } => {}
        }
    }

    /// Store-then-load round-trips through SRAM for every width.
    #[test]
    fn memory_roundtrip_widths(v in 0u32..(1 << 27), base in 0u32..64) {
        assert_memory_roundtrip(v, base);
    }
}

fn assert_memory_roundtrip(v: u32, base: u32) {
    let base = 0x100 + base * 4;
    let text = format!(
        "li r1, {base}\nli r2, {v}\nsw r2, 0(r1)\nlw r3, 0(r1)\nlh r4, 0(r1)\nlb r5, 0(r1)\njr r15\n"
    );
    let image = assemble(&text).expect("assembles");
    let mut sram = Sram::new(4096);
    sram.write_bytes(0, &image.bytes);
    let mut cpu = Cpu::new();
    cpu.set_reg(Reg::LINK, RETURN_ADDR);
    let out = cpu.run(&mut sram, &mut NullBus, 0, 200);
    assert!(out.is_completed());
    assert_eq!(cpu.reg(Reg::new(3)), v);
    assert_eq!(cpu.reg(Reg::new(4)), v & 0xFFFF);
    assert_eq!(cpu.reg(Reg::new(5)), v & 0xFF);
}

/// Promoted from `machine_properties.proptest-regressions` (case
/// `bf9834b9…`, shrinks to `v = 134217728, base = 0`): a constant of
/// exactly 2^27 once slipped into the roundtrip strategy and tripped the
/// assembler's `li` range assertion. The largest expressible constant is
/// pinned here as a named test so the boundary runs on every
/// `cargo test`, not only when the regression file is honored.
#[test]
fn li_roundtrip_boundary_regression_bf9834b9() {
    assert_memory_roundtrip((1 << 27) - 1, 0);
}

/// The other half of the regression: the out-of-range value itself must
/// keep failing loudly at assembly time (a silent truncation would ship
/// wrong constants into firmware images).
#[test]
#[should_panic(expected = "exceeds 27 bits")]
fn li_rejects_2_pow_27_regression_bf9834b9() {
    let _ = assemble("li r1, 134217728\njr r15\n");
}
