//! Host-side backup state — the "just the right amount of information
//! required for complete recovery" (§4.1).
//!
//! FTGM's central idea: the application (via the modified GM library)
//! continuously keeps a copy of exactly the NIC state that is *not*
//! implicitly stored in host memory:
//!
//! * a copy of every **send token** handed to the LANai (so unacknowledged
//!   messages can be re-posted after a reset),
//! * a copy of every **receive token** handed to the LANai (so pinned,
//!   not-yet-filled buffers can be re-registered),
//! * the **sequence-number streams**, one per (port, remote node) — the
//!   host *generates* these and passes them through the send token, so the
//!   reloaded MCP continues exactly where the dead one stopped,
//! * the **ACK table**: per incoming (connection, port) stream, the last
//!   sequence number acknowledged — maintained from the sequence number
//!   the LANai includes in each receive event.
//!
//! The copies are updated on exactly the paper's schedule: added when the
//! token passes to the LANai, removed when the token implicitly returns
//! (callback / receive event). Everything here is plain host data — the
//! whole point is that it survives a card reset.

use std::collections::BTreeMap;

use ftgm_net::NodeId;

/// A retained copy of a send token the LANai currently holds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SendTokenCopy {
    /// Token id (matches completion events).
    pub token_id: u64,
    /// Sending port.
    pub port: u8,
    /// Destination interface.
    pub dst_node: NodeId,
    /// Destination port.
    pub dst_port: u8,
    /// Pinned buffer physical address.
    pub host_addr: u64,
    /// Message length.
    pub len: u32,
    /// High priority?
    pub prio_high: bool,
    /// First sequence number assigned to this message's chunks.
    pub first_seq: u32,
}

/// A retained copy of a receive token the LANai currently holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvTokenCopy {
    /// Token id.
    pub token_id: u64,
    /// Pinned buffer physical address.
    pub host_addr: u64,
    /// Buffer capacity.
    pub capacity: u32,
    /// Priority level accepted.
    pub prio_high: bool,
}

/// Per-port backup state (≈20 KB of extra process memory in the paper).
#[derive(Clone, Debug, Default)]
pub struct PortBackup {
    send_tokens: BTreeMap<u64, SendTokenCopy>,
    recv_tokens: BTreeMap<u64, RecvTokenCopy>,
    /// Outgoing per-(remote node, priority) sequence counters for this
    /// port.
    next_seq: BTreeMap<(NodeId, bool), u32>,
    /// Incoming ACK table: last sequence acknowledged per
    /// (remote node, remote port, priority) stream.
    ack_table: BTreeMap<(NodeId, u8, bool), u32>,
}

impl PortBackup {
    /// Creates empty backup state.
    pub fn new() -> PortBackup {
        PortBackup::default()
    }

    // --- send tokens --------------------------------------------------------

    /// Records a send token as it passes to the LANai.
    pub fn add_send(&mut self, copy: SendTokenCopy) {
        self.send_tokens.insert(copy.token_id, copy);
    }

    /// Removes a send token as its callback fires (send complete/failed).
    /// Returns the copy if it was present.
    pub fn remove_send(&mut self, token_id: u64) -> Option<SendTokenCopy> {
        self.send_tokens.remove(&token_id)
    }

    /// Outstanding send-token copies, ordered by first sequence number so
    /// that recovery re-posts messages in their original stream order.
    pub fn outstanding_sends(&self) -> Vec<SendTokenCopy> {
        let mut v: Vec<_> = self.send_tokens.values().cloned().collect();
        v.sort_by_key(|c| (c.dst_node, c.dst_port, c.first_seq));
        v
    }

    /// Number of send tokens the LANai currently holds.
    pub fn sends_outstanding(&self) -> usize {
        self.send_tokens.len()
    }

    // --- receive tokens -----------------------------------------------------

    /// Records a receive token as it passes to the LANai.
    pub fn add_recv(&mut self, copy: RecvTokenCopy) {
        self.recv_tokens.insert(copy.token_id, copy);
    }

    /// Removes a receive token as its buffer is handed back with a
    /// received message.
    pub fn remove_recv(&mut self, token_id: u64) -> Option<RecvTokenCopy> {
        self.recv_tokens.remove(&token_id)
    }

    /// Outstanding receive-token copies (unfilled pinned buffers).
    pub fn outstanding_recvs(&self) -> Vec<RecvTokenCopy> {
        let mut v: Vec<_> = self.recv_tokens.values().copied().collect();
        v.sort_by_key(|c| c.token_id);
        v
    }

    /// Number of receive tokens the LANai currently holds.
    pub fn recvs_outstanding(&self) -> usize {
        self.recv_tokens.len()
    }

    // --- sequence streams ----------------------------------------------------

    /// Reserves `chunks` sequence numbers toward `dst` at one priority
    /// level, returning the first (the host generates sequence numbers and
    /// passes them through the send token).
    pub fn reserve_seq(&mut self, dst: NodeId, prio_high: bool, chunks: u32) -> u32 {
        let ctr = self.next_seq.entry((dst, prio_high)).or_insert(0);
        let first = *ctr;
        *ctr = ctr.wrapping_add(chunks);
        first
    }

    /// The next sequence number that would be assigned toward `dst` at a
    /// priority level.
    pub fn peek_seq(&self, dst: NodeId, prio_high: bool) -> u32 {
        self.next_seq.get(&(dst, prio_high)).copied().unwrap_or(0)
    }

    // --- ACK table ------------------------------------------------------------

    /// Records the sequence number of the last message acknowledged on an
    /// incoming stream (from the receive event's `seq` field).
    pub fn record_ack(&mut self, src_node: NodeId, src_port: u8, prio_high: bool, seq: u32) {
        self.ack_table.insert((src_node, src_port, prio_high), seq);
    }

    /// Expected next sequence per incoming stream — what recovery tells the
    /// reloaded LANai ("the last sequence number received on each stream",
    /// plus one).
    pub fn expected_seqs(&self) -> Vec<(NodeId, u8, bool, u32)> {
        let mut v: Vec<_> = self
            .ack_table
            .iter()
            .map(|(&(n, p, hi), &s)| (n, p, hi, s.wrapping_add(1)))
            .collect();
        v.sort();
        v
    }

    /// Approximate backup footprint in bytes (for the paper's "~20 KB per
    /// process" memory claim).
    pub fn footprint_bytes(&self) -> usize {
        self.send_tokens.len() * std::mem::size_of::<SendTokenCopy>()
            + self.recv_tokens.len() * std::mem::size_of::<RecvTokenCopy>()
            + self.next_seq.len() * 12
            + self.ack_table.len() * 12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send_copy(id: u64, dst: NodeId, first_seq: u32) -> SendTokenCopy {
        SendTokenCopy {
            token_id: id,
            port: 0,
            dst_node: dst,
            dst_port: 0,
            host_addr: 0x1000 * id,
            len: 256,
            prio_high: false,
            first_seq,
        }
    }

    #[test]
    fn send_token_lifecycle() {
        let mut b = PortBackup::new();
        b.add_send(send_copy(1, NodeId(1), 0));
        b.add_send(send_copy(2, NodeId(1), 1));
        assert_eq!(b.sends_outstanding(), 2);
        assert!(b.remove_send(1).is_some());
        assert!(b.remove_send(1).is_none());
        assert_eq!(b.sends_outstanding(), 1);
    }

    #[test]
    fn outstanding_sends_sorted_by_stream_order() {
        let mut b = PortBackup::new();
        b.add_send(send_copy(5, NodeId(2), 7));
        b.add_send(send_copy(3, NodeId(1), 9));
        b.add_send(send_copy(4, NodeId(2), 3));
        let order: Vec<u64> = b.outstanding_sends().iter().map(|c| c.token_id).collect();
        assert_eq!(order, vec![3, 4, 5]);
    }

    #[test]
    fn recv_token_lifecycle() {
        let mut b = PortBackup::new();
        b.add_recv(RecvTokenCopy {
            token_id: 9,
            host_addr: 0x100,
            capacity: 4096,
            prio_high: false,
        });
        assert_eq!(b.recvs_outstanding(), 1);
        assert_eq!(b.outstanding_recvs()[0].token_id, 9);
        b.remove_recv(9);
        assert_eq!(b.recvs_outstanding(), 0);
    }

    #[test]
    fn sequence_reservation_is_contiguous() {
        let mut b = PortBackup::new();
        assert_eq!(b.reserve_seq(NodeId(1), false, 3), 0);
        assert_eq!(b.reserve_seq(NodeId(1), false, 2), 3);
        assert_eq!(b.reserve_seq(NodeId(2), false, 1), 0, "independent per destination");
        assert_eq!(b.reserve_seq(NodeId(1), true, 1), 0, "independent per priority");
        assert_eq!(b.peek_seq(NodeId(1), false), 5);
        assert_eq!(b.peek_seq(NodeId(1), true), 1);
    }

    #[test]
    fn ack_table_tracks_last_and_reports_next() {
        let mut b = PortBackup::new();
        b.record_ack(NodeId(1), 0, false, 41);
        b.record_ack(NodeId(1), 0, false, 42);
        b.record_ack(NodeId(1), 3, true, 7);
        let mut v = b.expected_seqs();
        v.sort();
        assert_eq!(
            v,
            vec![(NodeId(1), 0, false, 43), (NodeId(1), 3, true, 8)]
        );
    }

    #[test]
    fn footprint_is_modest() {
        let mut b = PortBackup::new();
        for i in 0..64 {
            b.add_send(send_copy(i, NodeId(1), i as u32));
            b.add_recv(RecvTokenCopy {
                token_id: 1000 + i,
                host_addr: 0,
                capacity: 4096,
                prio_high: false,
            });
        }
        // The paper reports ~20KB of extra process memory.
        assert!(b.footprint_bytes() < 20 * 1024);
    }
}
