//! Reusable GM workloads.
//!
//! These are models of the measurement programs the paper used:
//!
//! * [`Pinger`]/[`Echoer`] — the repetitive "ping-pong" exchange behind
//!   Figure 8's half-round-trip latency curves,
//! * [`Streamer`] — the `gm_allsize`-style bidirectional maximum-rate
//!   workload behind Figure 7's bandwidth curves,
//! * [`PatternSender`]/[`PatternReceiver`] — continuously validated
//!   traffic used by the fault-injection campaigns (Table 1, §5.2): every
//!   message carries a deterministic pattern, so silent corruption,
//!   duplication, loss and reordering are all observable.
//!
//! All workloads expose their measurements through shared
//! `Rc<RefCell<…>>` stats handles, readable after the simulation runs.

use std::cell::RefCell;
use std::rc::Rc;

use ftgm_net::NodeId;
use ftgm_sim::metrics::bytes_per_sec;
use ftgm_sim::{Samples, SimDuration, SimTime};

use crate::world::{App, Ctx, GmEvent};

// ---------------------------------------------------------------------------
// Ping-pong (Figure 8)
// ---------------------------------------------------------------------------

/// Results of a ping-pong run. Latency statistics come from the shared
/// [`Samples`] series, so quantiles behave identically across every
/// workload in the workspace.
#[derive(Clone, Debug, Default)]
pub struct PingPongStats {
    /// Round-trip time of every measured iteration.
    pub rtts: Samples,
    /// Whether the configured iteration count completed.
    pub done: bool,
}

impl PingPongStats {
    /// Mean half round-trip (the paper's one-way latency metric).
    pub fn mean_half_rtt(&self) -> Option<SimDuration> {
        self.rtts
            .mean()
            .map(|m| SimDuration::from_nanos(m.as_nanos() / 2))
    }
}

/// The active side of the ping-pong pair.
pub struct Pinger {
    peer: NodeId,
    peer_port: u8,
    size: u32,
    warmup: u32,
    iters: u32,
    sent_at: SimTime,
    completed: u32,
    stats: Rc<RefCell<PingPongStats>>,
}

impl Pinger {
    /// Pings `peer:peer_port` with `size`-byte messages: `warmup` unmeasured
    /// iterations, then `iters` measured ones.
    pub fn new(
        peer: NodeId,
        peer_port: u8,
        size: u32,
        warmup: u32,
        iters: u32,
        stats: Rc<RefCell<PingPongStats>>,
    ) -> Pinger {
        Pinger {
            peer,
            peer_port,
            size,
            warmup,
            iters,
            sent_at: SimTime::ZERO,
            completed: 0,
            stats,
        }
    }

    fn ping(&mut self, ctx: &mut Ctx<'_>) {
        self.sent_at = ctx.now();
        let data = vec![0x5A; self.size as usize];
        ctx.gm_send(&data, self.peer, self.peer_port);
    }
}

impl App for Pinger {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for _ in 0..2 {
            ctx.gm_provide_receive_buffer(self.size.max(64));
        }
        self.ping(ctx);
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: GmEvent) {
        if let GmEvent::Received { .. } = ev {
            ctx.gm_provide_receive_buffer(self.size.max(64));
            let rtt = ctx.now() - self.sent_at;
            if self.completed >= self.warmup {
                self.stats.borrow_mut().rtts.record(rtt);
            }
            self.completed += 1;
            if self.completed < self.warmup + self.iters {
                self.ping(ctx);
            } else {
                self.stats.borrow_mut().done = true;
            }
        }
    }
}

/// The passive side of the ping-pong pair: echoes everything back.
pub struct Echoer {
    buffer_size: u32,
}

impl Echoer {
    /// An echoer with receive buffers of `buffer_size` bytes.
    pub fn new(buffer_size: u32) -> Echoer {
        Echoer { buffer_size }
    }
}

impl App for Echoer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for _ in 0..4 {
            ctx.gm_provide_receive_buffer(self.buffer_size);
        }
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: GmEvent) {
        if let GmEvent::Received {
            src_node,
            src_port,
            data,
            ..
        } = ev
        {
            ctx.gm_provide_receive_buffer(self.buffer_size);
            ctx.gm_send(&data, src_node, src_port);
        }
    }
}

// ---------------------------------------------------------------------------
// Allsize streamer (Figure 7)
// ---------------------------------------------------------------------------

/// Results of a streaming run.
#[derive(Clone, Debug, Default)]
pub struct StreamerStats {
    /// Messages received inside the measurement window.
    pub received_msgs: u64,
    /// Bytes received inside the measurement window.
    pub received_bytes: u64,
    /// When measurement started (after the warmup alarm).
    pub window_start: Option<SimTime>,
    /// Messages sent (total, including warmup).
    pub sent_msgs: u64,
    /// Send errors observed.
    pub send_errors: u64,
}

impl StreamerStats {
    /// Received data rate in MB/s over the window ending at `now`
    /// (computed from the shared integer goodput helper so every report
    /// rounds identically).
    pub fn rate_mb_s(&self, now: SimTime) -> f64 {
        match self.window_start {
            Some(t0) if now > t0 => bytes_per_sec(self.received_bytes, now - t0) as f64 / 1e6,
            _ => 0.0,
        }
    }
}

const WARMUP_ALARM: u64 = 0xA11;

/// One side of the `gm_allsize` workload: keeps `pipeline` sends of `size`
/// bytes outstanding toward the peer while receiving at maximum rate.
pub struct Streamer {
    peer: NodeId,
    peer_port: u8,
    size: u32,
    pipeline: u32,
    warmup: SimDuration,
    stats: Rc<RefCell<StreamerStats>>,
    measuring: bool,
}

impl Streamer {
    /// Creates a streamer; measurement starts after `warmup`.
    pub fn new(
        peer: NodeId,
        peer_port: u8,
        size: u32,
        pipeline: u32,
        warmup: SimDuration,
        stats: Rc<RefCell<StreamerStats>>,
    ) -> Streamer {
        Streamer {
            peer,
            peer_port,
            size,
            pipeline,
            warmup,
            stats,
            measuring: false,
        }
    }

    fn send_one(&mut self, ctx: &mut Ctx<'_>) {
        let data = vec![0xC3; self.size as usize];
        ctx.gm_send(&data, self.peer, self.peer_port);
        self.stats.borrow_mut().sent_msgs += 1;
    }
}

impl App for Streamer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let bufs = (self.pipeline + 4).min(ctx.recv_tokens());
        for _ in 0..bufs {
            ctx.gm_provide_receive_buffer(self.size.max(64));
        }
        for _ in 0..self.pipeline.min(ctx.send_tokens()) {
            self.send_one(ctx);
        }
        ctx.set_alarm(self.warmup, WARMUP_ALARM);
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: GmEvent) {
        match ev {
            GmEvent::Received { len, .. } => {
                ctx.gm_provide_receive_buffer(self.size.max(64));
                if self.measuring {
                    let mut s = self.stats.borrow_mut();
                    s.received_msgs += 1;
                    s.received_bytes += len as u64;
                }
            }
            GmEvent::SentOk { .. } => {
                self.send_one(ctx);
            }
            GmEvent::SendError { .. } => {
                self.stats.borrow_mut().send_errors += 1;
            }
            GmEvent::Alarm { tag } if tag == WARMUP_ALARM => {
                self.measuring = true;
                self.stats.borrow_mut().window_start = Some(ctx.now());
            }
            GmEvent::Alarm { .. } => {}
            GmEvent::InterfaceDead => {
                // Escalation: the interface will not come back; stop
                // pushing (the outstanding sends already arrived as
                // SendError and were counted above).
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Validated pattern traffic (fault campaigns)
// ---------------------------------------------------------------------------

/// Deterministic message pattern: byte `i` of message `idx`.
fn pattern_byte(idx: u64, i: usize) -> u8 {
    (idx.wrapping_mul(131).wrapping_add(i as u64 * 7).wrapping_add(13) % 251) as u8
}

/// Builds the payload of message `idx` (first 8 bytes carry `idx`).
pub fn pattern_message(idx: u64, size: u32) -> Vec<u8> {
    assert!(size >= 8, "pattern messages need at least 8 bytes");
    let mut data = vec![0u8; size as usize];
    data[..8].copy_from_slice(&idx.to_le_bytes());
    for (i, b) in data.iter_mut().enumerate().skip(8) {
        *b = pattern_byte(idx, i);
    }
    data
}

/// Ground-truth observations of the validated traffic pair.
#[derive(Clone, Debug, Default)]
pub struct TrafficStats {
    /// Messages posted by the sender.
    pub sent: u64,
    /// Send completions.
    pub completed: u64,
    /// Send errors (retry exhaustion — how GM surfaces a dead peer).
    pub send_errors: u64,
    /// Messages received with a fully valid pattern.
    pub received_ok: u64,
    /// Messages received with corrupted contents.
    pub received_corrupt: u64,
    /// Messages received out of order or duplicated (index not strictly
    /// increasing).
    pub misordered: u64,
    /// Highest message index received, if any.
    pub last_idx: Option<u64>,
    /// `InterfaceDead` escalation events observed (either side).
    pub iface_dead: u64,
    /// When the most recent valid message arrived (ns since start; 0 =
    /// none yet — real deliveries always land after t=0).
    pub last_ok_at_ns: u64,
    /// Longest gap between consecutive valid deliveries (ns). This is
    /// the receiver-observed *blackout*: the window during which a fault
    /// plus its recovery starved the flow.
    pub max_gap_ns: u64,
}

impl TrafficStats {
    /// `true` if every expected delivery guarantee held: nothing corrupt,
    /// nothing misordered, no send errors, no escalation.
    pub fn clean(&self) -> bool {
        self.received_corrupt == 0
            && self.misordered == 0
            && self.send_errors == 0
            && self.iface_dead == 0
    }
}

/// Sends an endless stream of validated pattern messages.
pub struct PatternSender {
    peer: NodeId,
    peer_port: u8,
    size: u32,
    pipeline: u32,
    next_idx: u64,
    limit: Option<u64>,
    stats: Rc<RefCell<TrafficStats>>,
}

impl PatternSender {
    /// Streams `size`-byte validated messages to `peer:peer_port`,
    /// `pipeline` at a time; stops after `limit` messages if given.
    pub fn new(
        peer: NodeId,
        peer_port: u8,
        size: u32,
        pipeline: u32,
        limit: Option<u64>,
        stats: Rc<RefCell<TrafficStats>>,
    ) -> PatternSender {
        PatternSender {
            peer,
            peer_port,
            size,
            pipeline,
            next_idx: 0,
            limit,
            stats,
        }
    }

    fn send_next(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(limit) = self.limit {
            if self.next_idx >= limit {
                return;
            }
        }
        let data = pattern_message(self.next_idx, self.size);
        self.next_idx += 1;
        ctx.gm_send(&data, self.peer, self.peer_port);
        self.stats.borrow_mut().sent += 1;
    }
}

impl App for PatternSender {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for _ in 0..self.pipeline.min(ctx.send_tokens()) {
            self.send_next(ctx);
        }
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: GmEvent) {
        match ev {
            GmEvent::SentOk { .. } => {
                self.stats.borrow_mut().completed += 1;
                self.send_next(ctx);
            }
            GmEvent::SendError { .. } => {
                self.stats.borrow_mut().send_errors += 1;
                // GM middleware treats this as fatal; we keep counting but
                // stop pushing new traffic on this token.
            }
            GmEvent::InterfaceDead => {
                self.stats.borrow_mut().iface_dead += 1;
            }
            _ => {}
        }
    }
}

/// Receives and validates pattern messages.
pub struct PatternReceiver {
    buffer_size: u32,
    buffers: u32,
    stats: Rc<RefCell<TrafficStats>>,
}

impl PatternReceiver {
    /// Provides `buffers` receive buffers of `buffer_size` bytes.
    pub fn new(buffer_size: u32, buffers: u32, stats: Rc<RefCell<TrafficStats>>) -> PatternReceiver {
        PatternReceiver {
            buffer_size,
            buffers,
            stats,
        }
    }
}

impl App for PatternReceiver {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for _ in 0..self.buffers.min(ctx.recv_tokens()) {
            ctx.gm_provide_receive_buffer(self.buffer_size);
        }
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: GmEvent) {
        if let GmEvent::InterfaceDead = ev {
            self.stats.borrow_mut().iface_dead += 1;
            return;
        }
        if let GmEvent::Received { data, .. } = ev {
            ctx.gm_provide_receive_buffer(self.buffer_size);
            let mut s = self.stats.borrow_mut();
            if data.len() < 8 {
                s.received_corrupt += 1;
                return;
            }
            let idx = u64::from_le_bytes(data[..8].try_into().expect("8 bytes"));
            let expected_ok = data
                .iter()
                .enumerate()
                .skip(8)
                .all(|(i, &b)| b == pattern_byte(idx, i));
            // Plausibility: a corrupted index field also shows up as a
            // wildly wrong pattern, so check ordering only for valid data.
            if !expected_ok {
                s.received_corrupt += 1;
                return;
            }
            match s.last_idx {
                Some(last) if idx <= last => s.misordered += 1,
                _ => {
                    s.last_idx = Some(idx);
                    s.received_ok += 1;
                    let now = ctx.now().as_nanos();
                    if s.last_ok_at_ns != 0 {
                        let gap = now.saturating_sub(s.last_ok_at_ns);
                        s.max_gap_ns = s.max_gap_ns.max(gap);
                    }
                    s.last_ok_at_ns = now;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{World, WorldConfig};

    #[test]
    fn pattern_roundtrip_validates() {
        let m = pattern_message(42, 256);
        assert_eq!(u64::from_le_bytes(m[..8].try_into().unwrap()), 42);
        assert!(m.iter().enumerate().skip(8).all(|(i, &b)| b == pattern_byte(42, i)));
    }

    #[test]
    fn pingpong_measures_latency() {
        for config in [WorldConfig::gm(), WorldConfig::ftgm()] {
            let mut w = World::two_node(config);
            let stats = Rc::new(RefCell::new(PingPongStats::default()));
            w.spawn_app(NodeId(1), 2, Box::new(Echoer::new(4096)));
            w.spawn_app(
                NodeId(0),
                0,
                Box::new(Pinger::new(NodeId(1), 2, 64, 5, 20, stats.clone())),
            );
            w.run_for(SimDuration::from_ms(100));
            let s = stats.borrow();
            assert!(s.done, "pingpong finished");
            assert_eq!(s.rtts.len(), 20);
            let half = s.mean_half_rtt().unwrap().as_micros_f64();
            assert!(
                (3.0..40.0).contains(&half),
                "half-RTT out of plausible range: {half}us"
            );
        }
    }

    #[test]
    fn ftgm_pingpong_slower_than_gm() {
        let mut halves = Vec::new();
        for config in [WorldConfig::gm(), WorldConfig::ftgm()] {
            let mut w = World::two_node(config);
            let stats = Rc::new(RefCell::new(PingPongStats::default()));
            w.spawn_app(NodeId(1), 2, Box::new(Echoer::new(4096)));
            w.spawn_app(
                NodeId(0),
                0,
                Box::new(Pinger::new(NodeId(1), 2, 64, 5, 50, stats.clone())),
            );
            w.run_for(SimDuration::from_ms(100));
            halves.push(stats.borrow().mean_half_rtt().unwrap());
        }
        assert!(halves[1] > halves[0], "FTGM must cost a little: {halves:?}");
        let delta = (halves[1] - halves[0]).as_micros_f64();
        assert!(delta < 4.0, "FTGM delta too large: {delta}us");
    }

    #[test]
    fn streamer_moves_data_bidirectionally() {
        let mut w = World::two_node(WorldConfig::gm());
        let s0 = Rc::new(RefCell::new(StreamerStats::default()));
        let s1 = Rc::new(RefCell::new(StreamerStats::default()));
        let warm = SimDuration::from_ms(2);
        w.spawn_app(
            NodeId(0),
            0,
            Box::new(Streamer::new(NodeId(1), 1, 4096, 8, warm, s0.clone())),
        );
        w.spawn_app(
            NodeId(1),
            1,
            Box::new(Streamer::new(NodeId(0), 0, 4096, 8, warm, s1.clone())),
        );
        w.run_for(SimDuration::from_ms(30));
        let now = w.now();
        for s in [&s0, &s1] {
            let s = s.borrow();
            assert!(s.received_msgs > 100, "msgs: {}", s.received_msgs);
            let rate = s.rate_mb_s(now);
            assert!((20.0..260.0).contains(&rate), "rate {rate} MB/s");
            assert_eq!(s.send_errors, 0);
        }
    }

    #[test]
    fn validated_traffic_is_clean_without_faults() {
        for config in [WorldConfig::gm(), WorldConfig::ftgm()] {
            let mut w = World::two_node(config);
            let stats = Rc::new(RefCell::new(TrafficStats::default()));
            w.spawn_app(
                NodeId(1),
                2,
                Box::new(PatternReceiver::new(512, 16, stats.clone())),
            );
            w.spawn_app(
                NodeId(0),
                0,
                Box::new(PatternSender::new(NodeId(1), 2, 256, 8, Some(200), stats.clone())),
            );
            w.run_for(SimDuration::from_ms(200));
            let s = stats.borrow();
            assert_eq!(s.sent, 200);
            assert_eq!(s.completed, 200);
            assert_eq!(s.received_ok, 200);
            assert!(s.clean(), "{s:?}");
        }
    }
}

// ---------------------------------------------------------------------------
// Request/response RPC (service availability workloads)
// ---------------------------------------------------------------------------

/// Latency observations of the RPC client. Quantiles delegate to the
/// shared [`Samples`] implementation (nearest-rank, `None` when empty).
#[derive(Clone, Debug, Default)]
pub struct RpcStats {
    /// Completed request→response round trips, in issue order.
    pub latencies: Samples,
    /// Requests issued.
    pub issued: u64,
    /// Responses whose payload failed validation.
    pub bad_responses: u64,
}

impl RpcStats {
    /// The `q`-quantile (0.0–1.0) of completed latencies.
    pub fn quantile(&self, q: f64) -> Option<SimDuration> {
        self.latencies.quantile(q)
    }

    /// Longest observed round trip.
    pub fn max(&self) -> Option<SimDuration> {
        self.latencies.max()
    }
}

/// A closed-loop RPC client: issues the next request when the previous
/// response arrives (requests carry an id; responses echo it doubled).
pub struct RpcClient {
    server: NodeId,
    server_port: u8,
    request_size: u32,
    next_id: u64,
    sent_at: SimTime,
    stats: Rc<RefCell<RpcStats>>,
}

impl RpcClient {
    /// A client of `server:server_port` sending `request_size`-byte
    /// requests.
    pub fn new(
        server: NodeId,
        server_port: u8,
        request_size: u32,
        stats: Rc<RefCell<RpcStats>>,
    ) -> RpcClient {
        RpcClient {
            server,
            server_port,
            request_size: request_size.max(16),
            next_id: 1,
            sent_at: SimTime::ZERO,
            stats,
        }
    }

    fn issue(&mut self, ctx: &mut Ctx<'_>) {
        let mut req = vec![0u8; self.request_size as usize];
        req[..8].copy_from_slice(&self.next_id.to_le_bytes());
        self.sent_at = ctx.now();
        self.stats.borrow_mut().issued += 1;
        ctx.gm_send(&req, self.server, self.server_port);
        self.next_id += 1;
    }
}

impl App for RpcClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for _ in 0..4 {
            ctx.gm_provide_receive_buffer(self.request_size.max(64));
        }
        self.issue(ctx);
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: GmEvent) {
        if let GmEvent::Received { data, .. } = ev {
            ctx.gm_provide_receive_buffer(self.request_size.max(64));
            let rtt = ctx.now() - self.sent_at;
            let id = u64::from_le_bytes(data[..8].try_into().expect("8 bytes"));
            let mut s = self.stats.borrow_mut();
            if id == (self.next_id - 1) * 2 {
                s.latencies.record(rtt);
            } else {
                s.bad_responses += 1;
            }
            drop(s);
            self.issue(ctx);
        }
    }
}

/// The RPC server: echoes each request with its id doubled.
pub struct RpcServer {
    buffer_size: u32,
}

impl RpcServer {
    /// A server accepting requests up to `buffer_size` bytes.
    pub fn new(buffer_size: u32) -> RpcServer {
        RpcServer { buffer_size }
    }
}

impl App for RpcServer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for _ in 0..8 {
            ctx.gm_provide_receive_buffer(self.buffer_size);
        }
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: GmEvent) {
        if let GmEvent::Received {
            src_node,
            src_port,
            data,
            ..
        } = ev
        {
            ctx.gm_provide_receive_buffer(self.buffer_size);
            let id = u64::from_le_bytes(data[..8].try_into().expect("8 bytes"));
            let mut resp = vec![0u8; 16];
            resp[..8].copy_from_slice(&(id * 2).to_le_bytes());
            ctx.gm_send(&resp, src_node, src_port);
        }
    }
}

#[cfg(test)]
mod rpc_tests {
    use super::*;
    use crate::world::{World, WorldConfig};

    #[test]
    fn closed_loop_rpc_measures_latency() {
        let mut w = World::two_node(WorldConfig::ftgm());
        let stats = Rc::new(RefCell::new(RpcStats::default()));
        w.spawn_app(NodeId(1), 2, Box::new(RpcServer::new(4096)));
        w.spawn_app(
            NodeId(0),
            0,
            Box::new(RpcClient::new(NodeId(1), 2, 128, stats.clone())),
        );
        w.run_for(SimDuration::from_ms(20));
        let s = stats.borrow();
        assert!(s.latencies.len() > 100, "{}", s.latencies.len());
        assert_eq!(s.bad_responses, 0);
        let p50 = s.quantile(0.5).unwrap().as_micros_f64();
        // An RPC is a full round trip: ~2x the one-way latency.
        assert!((20.0..40.0).contains(&p50), "p50 {p50}us");
        assert!(s.quantile(0.99).unwrap() >= s.quantile(0.5).unwrap());
    }
}
