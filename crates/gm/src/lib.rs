#![warn(missing_docs)]

//! The **GM** message-passing system model: host library + simulation world.
//!
//! GM is Myricom's user-space communication system for Myrinet: ports
//! (eight per interface), implicit send/receive tokens for flow control,
//! zero-copy DMA between pinned user buffers and the NIC, an event queue
//! per port, and reliable in-order delivery implemented in the MCP. This
//! crate models the host side and provides the [`world::World`] that wires
//! hosts, NICs and fabric into one deterministic simulation.
//!
//! * [`world`] — the event loop, the [`world::App`]/[`world::Ctx`] GM API
//!   (`gm_send`, `gm_provide_receive_buffer`, alarms), per-port token
//!   accounting, and event delivery.
//! * [`backup`] — FTGM's host-side backup state (token copies, host
//!   sequence streams, the ACK table), maintained by the library when the
//!   world runs the FTGM variant.
//! * [`apps`] — reusable workloads: the `gm_allsize`-style bidirectional
//!   streamer (Figure 7), the ping-pong latency probe (Figure 8), and a
//!   pattern-validating traffic pair used by the fault campaigns.

pub mod apps;
pub mod backup;
pub mod world;

pub use backup::{PortBackup, RecvTokenCopy, SendTokenCopy};
pub use world::{
    App, AppId, Ctx, DrainMode, GmEvent, HostApiCosts, Hooks, NodeSim, World, WorldConfig,
    WorldStats,
};
