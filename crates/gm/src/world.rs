//! The simulation world: hosts, NICs, fabric, applications, and the event
//! loop that binds them.
//!
//! [`World`] owns one [`NodeSim`] per host (a [`ftgm_host::HostSystem`]
//! plus a [`ftgm_mcp::McpMachine`]) and the shared [`ftgm_net::Fabric`].
//! Everything advances through the deterministic scheduler: MCP dispatch
//! slots, chip timer polls, wire deliveries, PCI DMA completions, event
//! posts, and host-side callbacks.
//!
//! The host-side **GM library** lives here too: applications implement
//! [`App`] and talk GM through [`Ctx`] (`gm_send_with_callback`,
//! `gm_provide_receive_buffer`, …). Under the FTGM variant the library
//! transparently maintains the per-port [`PortBackup`] on the paper's
//! schedule — token copies added as tokens pass to the LANai, removed as
//! they return, sequence numbers generated host-side — at the paper's
//! measured extra host-CPU cost.
//!
//! Recovery *policy* (watchdog FATAL handling, the FTD, the
//! `FAULT_DETECTED` handler) is installed by `ftgm-core` through
//! [`Hooks`].

use std::collections::BTreeMap;
use std::rc::Rc;

use ftgm_host::{CpuCost, DmaRegion, HostSystem, PciParams};
use ftgm_lanai::chip::{isr, HostDmaDir, HostDmaReq, WireFrame};
use ftgm_mcp::machine::{McpEffect, NicEvent, RecvTokenDesc, SendDesc};
use ftgm_mcp::{McpMachine, McpParams};
use ftgm_net::{reroute, DropReason, Fabric, FabricParams, Mapper, NodeId, RouteTable, Topology};
use ftgm_sim::{DmaDir, DropKind, Scheduler, SimDuration, SimTime, Trace, TraceKind};

use crate::backup::{PortBackup, RecvTokenCopy, SendTokenCopy};

/// Host-CPU costs of GM library calls (Table 2's host-utilization rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HostApiCosts {
    /// `gm_send_with_callback` (paper: 0.30 µs).
    pub send: SimDuration,
    /// Receive-event handling in `gm_receive` (part of the 0.75 µs).
    pub recv_event: SimDuration,
    /// `gm_provide_receive_buffer` (the rest of the 0.75 µs).
    pub provide: SimDuration,
    /// FTGM: send-token copy into the backup queue (+0.25 µs).
    pub send_backup: SimDuration,
    /// FTGM: receive-token copy at provide time.
    pub provide_backup: SimDuration,
    /// FTGM: receive-side hash-table updates at event time.
    pub recv_event_backup: SimDuration,
    /// Send-completion callback dispatch.
    pub callback: SimDuration,
}

impl Default for HostApiCosts {
    fn default() -> Self {
        HostApiCosts {
            send: SimDuration::from_nanos(300),
            recv_event: SimDuration::from_nanos(600),
            provide: SimDuration::from_nanos(150),
            send_backup: SimDuration::from_nanos(250),
            provide_backup: SimDuration::from_nanos(100),
            recv_event_backup: SimDuration::from_nanos(300),
            callback: SimDuration::from_nanos(100),
        }
    }
}

/// How [`World::run_until`] drains the calendar queue.
///
/// Both modes deliver the identical event stream: equal-timestamp runs
/// come out of [`Scheduler::pop_run`] in the same FIFO order repeated
/// pops would produce, and events scheduled *while* a drained run is
/// being handled carry higher sequence numbers, so they sort after the
/// scratch buffer's contents either way. `Batched` is the default;
/// `SinglePop` is kept as the reference for differential harnesses
/// (`tests/sched_equivalence.rs`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DrainMode {
    /// Pop one event per scheduler call (reference behavior).
    SinglePop,
    /// Drain each same-timestamp run into a reusable scratch buffer,
    /// paying one bucket locate + resize check per run instead of per
    /// event.
    #[default]
    Batched,
}

/// World-level configuration.
#[derive(Clone, Debug)]
pub struct WorldConfig {
    /// MCP protocol variant and tunables.
    pub mcp: McpParams,
    /// Fabric physical parameters.
    pub fabric: FabricParams,
    /// PCI bus parameters.
    pub pci: PciParams,
    /// Host RAM per node.
    pub host_mem: usize,
    /// GM library call costs.
    pub api: HostApiCosts,
    /// Send tokens per port.
    pub send_tokens: u32,
    /// Receive tokens per port.
    pub recv_tokens: u32,
    /// Record a recovery trace?
    pub trace: bool,
    /// Event-loop drain strategy (bit-identical either way).
    pub drain: DrainMode,
}

impl WorldConfig {
    /// Defaults for stock GM.
    pub fn gm() -> WorldConfig {
        WorldConfig {
            mcp: McpParams::gm(),
            fabric: FabricParams::default(),
            pci: PciParams::default(),
            host_mem: 64 << 20,
            api: HostApiCosts::default(),
            send_tokens: 32,
            recv_tokens: 32,
            trace: false,
            drain: DrainMode::default(),
        }
    }

    /// Defaults for FTGM.
    pub fn ftgm() -> WorldConfig {
        WorldConfig {
            mcp: McpParams::ftgm(),
            ..WorldConfig::gm()
        }
    }
}

/// A user-visible GM event, delivered to [`App::on_event`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GmEvent {
    /// A message landed in one of this port's provided buffers.
    Received {
        /// Sender interface.
        src_node: NodeId,
        /// Sender port.
        src_port: u8,
        /// The receive token that was consumed.
        token_id: u64,
        /// Message length.
        len: u32,
        /// The message bytes (copied out of the receive buffer).
        data: Vec<u8>,
    },
    /// A send completed; its token has returned.
    SentOk {
        /// The send token.
        token_id: u64,
    },
    /// A send failed permanently (GM semantics: fatal to middleware).
    SendError {
        /// The send token.
        token_id: u64,
    },
    /// A user alarm set through [`Ctx::set_alarm`].
    Alarm {
        /// The tag passed to `set_alarm`.
        tag: u64,
    },
    /// The local interface was declared dead after repeated failed
    /// recoveries (the FTD's escalation). Outstanding sends arrive as
    /// [`GmEvent::SendError`] alongside this event; no further traffic is
    /// possible on the port.
    InterfaceDead,
}

/// Identifies a spawned application.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct AppId(usize);

/// A GM application: event-driven, like a spin-polling GM process.
pub trait App {
    /// Called once when the application starts.
    fn on_start(&mut self, ctx: &mut Ctx<'_>);
    /// Called for every GM event on the application's port.
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: GmEvent);
}

/// Host-side per-port GM state.
pub struct HostPort {
    /// The application bound to this port.
    pub app: Option<AppId>,
    /// Send tokens currently available to the process.
    pub send_tokens: u32,
    /// Receive tokens currently available to the process.
    pub recv_tokens: u32,
    next_token: u64,
    /// FTGM backup state (maintained only under the FTGM variant).
    pub backup: PortBackup,
    send_bufs: BTreeMap<u64, DmaRegion>,
    recv_bufs: BTreeMap<u64, DmaRegion>,
    free_bufs: BTreeMap<u32, Vec<DmaRegion>>,
}

impl HostPort {
    fn new(port: u8, send_tokens: u32, recv_tokens: u32) -> HostPort {
        HostPort {
            app: None,
            send_tokens,
            recv_tokens,
            // Token ids are node-global: namespace them by port so the
            // MCP's token maps never collide across ports.
            next_token: ((port as u64 + 1) << 48) | 1,
            backup: PortBackup::new(),
            send_bufs: BTreeMap::new(),
            recv_bufs: BTreeMap::new(),
            free_bufs: BTreeMap::new(),
        }
    }
}

/// One simulated machine: host plus NIC.
pub struct NodeSim {
    /// The host system.
    pub host: HostSystem,
    /// The network processor and its firmware.
    pub mcp: McpMachine,
    /// Open GM ports.
    pub ports: [Option<HostPort>; 8],
    /// Host copy of the route table (the FTD restores it).
    pub route_backup: RouteTable,
    dma_in_flight: Option<HostDmaReq>,
    dispatch_at: Option<SimTime>,
    timer_poll_at: Option<SimTime>,
    // Observability cursors into the MCP's cumulative statistics, so
    // `sync_node` can emit typed delta events (re-arms, resends,
    // commits) without the firmware knowing about the trace.
    obs_ltimer_runs: u64,
    obs_last_ltimer: Option<SimTime>,
    obs_retransmits: u64,
    obs_delivered: u64,
}

impl NodeSim {
    /// `true` once this host has crashed (wild DMA); its applications stop.
    pub fn frozen(&self) -> bool {
        self.host.crashed()
    }
}

/// A hook on the driver's FATAL-interrupt path.
pub type FatalIrqHook = Rc<dyn Fn(&mut World, NodeId)>;
/// A hook on the library's `FAULT_DETECTED` (`gm_unknown()`) path.
pub type FaultEventHook = Rc<dyn Fn(&mut World, NodeId, u8)>;
/// A hook fired right after each FTD recovery phase applies on a node.
/// The `usize` is the phase's index in the FTD's execution order; chaos
/// experiments use it to time fault injections inside specific phases.
pub type FtdPhaseHook = Rc<dyn Fn(&mut World, NodeId, usize)>;

/// Recovery hooks installed by `ftgm-core`.
#[derive(Clone, Default)]
pub struct Hooks {
    /// Called when the driver fields a FATAL (IT1 watchdog) interrupt.
    pub fatal_irq: Option<FatalIrqHook>,
    /// Called when a `FAULT_DETECTED` event reaches a port's receive queue
    /// (the `gm_unknown()` path).
    pub fault_event: Option<FaultEventHook>,
    /// Called after each FTD recovery phase completes (chaos injection).
    pub ftd_phase: Option<FtdPhaseHook>,
}

/// The trace layer's name for a fabric drop reason (the mirror exists so
/// `ftgm-sim` does not depend on `ftgm-net`).
fn drop_kind(reason: DropReason) -> DropKind {
    match reason {
        DropReason::SourceNotCabled => DropKind::SourceNotCabled,
        DropReason::DeadPort(_) => DropKind::DeadPort,
        DropReason::RouteExhausted => DropKind::RouteExhausted,
        DropReason::RouteNotConsumed => DropKind::RouteNotConsumed,
        DropReason::TooManyHops => DropKind::TooManyHops,
        DropReason::LinkDown => DropKind::LinkDown,
        DropReason::BadLink => DropKind::BadLink,
        DropReason::FaultDrop => DropKind::FaultDrop,
    }
}

/// Aggregate world statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorldStats {
    /// Frames that left a NIC but were dropped by the fabric.
    pub fabric_drops: u64,
    /// Frames delivered with a corrupted payload (link CRC would flag).
    pub corrupt_deliveries: u64,
    /// GM events delivered to applications.
    pub app_events: u64,
}

enum Event {
    McpDispatch(u16),
    TimerPoll(u16),
    FrameDelivery { dst: NodeId, bytes: Vec<u8>, crc_ok: bool },
    HostDmaDone(u16),
    NicEventArrived { node: u16, port: u8, event: NicEvent },
    Call(Box<dyn FnOnce(&mut World)>),
}

/// The simulation world.
pub struct World {
    sched: Scheduler<Event>,
    /// The switched fabric.
    pub fabric: Fabric,
    /// All simulated machines, indexed by `NodeId`.
    pub nodes: Vec<NodeSim>,
    /// Milestone trace (Figure 9 / Table 3).
    pub trace: Trace,
    /// Recovery hooks (installed by `ftgm-core`).
    pub hooks: Hooks,
    config: WorldConfig,
    apps: Vec<Option<Box<dyn App>>>,
    app_binding: Vec<(NodeId, u8)>,
    stats: WorldStats,
    /// Reusable scratch for [`DrainMode::Batched`] — kept across
    /// `run_until` calls so steady state allocates nothing.
    scratch: Vec<(SimTime, Event)>,
}

impl World {
    /// Builds a world over `topo`: creates hosts and NICs, runs the mapper,
    /// installs route tables (with host-side copies), loads and boots every
    /// MCP.
    pub fn new(topo: Topology, config: WorldConfig) -> World {
        let tables = Mapper::map(&topo);
        let fabric = Fabric::new(topo.clone(), config.fabric);
        let mut nodes = Vec::with_capacity(topo.node_count());
        for (i, table) in tables.into_iter().enumerate() {
            let mut host = HostSystem::new(config.host_mem);
            host.pci = ftgm_host::PciBus::new(config.pci);
            let mut mcp = McpMachine::new(NodeId(i as u16), config.mcp);
            // The driver stashes the pristine image for recovery reloads
            // and pins a scratch page for firmware's completion records.
            let image = mcp.firmware().bytes().to_vec();
            let entry = mcp.firmware().entry_send();
            host.driver.stash_mcp_image(image, entry);
            let scratch = host.mem.alloc_dma(64);
            mcp.set_status_report_addr(scratch.pa);
            mcp.set_routes(table.clone());
            mcp.boot(SimTime::ZERO);
            nodes.push(NodeSim {
                host,
                mcp,
                ports: Default::default(),
                route_backup: table,
                dma_in_flight: None,
                dispatch_at: None,
                timer_poll_at: None,
                obs_ltimer_runs: 0,
                obs_last_ltimer: None,
                obs_retransmits: 0,
                obs_delivered: 0,
            });
        }
        let trace = if config.trace {
            Trace::enabled()
        } else {
            Trace::disabled()
        };
        let mut w = World {
            sched: Scheduler::new(),
            fabric,
            nodes,
            trace,
            hooks: Hooks::default(),
            config,
            apps: Vec::new(),
            app_binding: Vec::new(),
            stats: WorldStats::default(),
            scratch: Vec::new(),
        };
        for n in 0..w.nodes.len() {
            w.sync_node(n);
        }
        w
    }

    /// Convenience: the paper's two-host, one-switch testbed.
    pub fn two_node(config: WorldConfig) -> World {
        World::new(Topology::two_nodes_one_switch(), config)
    }

    /// Convenience: `n` hosts on one switch (chaos campaigns over more
    /// than two nodes).
    pub fn star(n: usize, config: WorldConfig) -> World {
        World::new(Topology::star(n), config)
    }

    /// Convenience: `n` hosts on a ring of switches — multi-hop routes
    /// with redundant directions around the cycle.
    pub fn ring(n: usize, config: WorldConfig) -> World {
        World::new(Topology::ring(n), config)
    }

    /// Convenience: a two-level fat tree (leaf/spine Clos) of
    /// `leaves * hosts_per_leaf` hosts — the constant-diameter shape the
    /// scale bench uses for its 8/64/256-node cells.
    pub fn fat_tree(spines: usize, leaves: usize, hosts_per_leaf: usize, config: WorldConfig) -> World {
        World::new(Topology::fat_tree(spines, leaves, hosts_per_leaf), config)
    }

    /// Convenience: a 2-D torus of `cols × rows` switches, one host each —
    /// the high-diameter counterpoint to [`World::fat_tree`].
    pub fn torus(cols: usize, rows: usize, config: WorldConfig) -> World {
        World::new(Topology::torus(cols, rows), config)
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Total number of scheduler events delivered so far (the scale
    /// bench's denominator for events/sec).
    pub fn events_delivered(&self) -> u64 {
        self.sched.events_delivered()
    }

    /// The configuration the world was built with.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> WorldStats {
        self.stats
    }

    /// `true` when the world runs the FTGM variant.
    pub fn is_ftgm(&self) -> bool {
        self.config.mcp.is_ftgm()
    }

    // --- running ----------------------------------------------------------

    /// Processes events until the queue is empty or the clock passes `t`.
    ///
    /// The drain strategy comes from [`WorldConfig::drain`]; both modes
    /// deliver the identical stream (see [`DrainMode`]).
    pub fn run_until(&mut self, t: SimTime) {
        match self.config.drain {
            DrainMode::SinglePop => {
                while let Some(ts) = self.sched.peek_time() {
                    if ts > t {
                        break;
                    }
                    let (_, ev) = self.sched.pop().expect("peeked");
                    self.handle(ev);
                }
            }
            DrainMode::Batched => {
                // The scratch buffer is moved out so `handle` can borrow
                // the world mutably; it is returned (with its capacity)
                // when the drain loop finishes.
                let mut run = std::mem::take(&mut self.scratch);
                while let Some(ts) = self.sched.peek_time() {
                    if ts > t {
                        break;
                    }
                    self.sched.pop_run(&mut run);
                    for (_, ev) in run.drain(..) {
                        self.handle(ev);
                    }
                }
                self.scratch = run;
            }
        }
    }

    /// Runs for `d` more simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let t = self.now() + d;
        self.run_until(t);
    }

    /// Schedules `f` to run after `delay` (used by the library, recovery
    /// code, and applications' alarms).
    pub fn schedule_call(&mut self, delay: SimDuration, f: impl FnOnce(&mut World) + 'static) {
        self.sched.schedule_in(delay, Event::Call(Box::new(f)));
    }

    fn handle(&mut self, ev: Event) {
        match ev {
            Event::McpDispatch(n) => {
                let n = n as usize;
                self.nodes[n].dispatch_at = None;
                let now = self.now();
                self.nodes[n].mcp.dispatch(now);
                self.sync_node(n);
            }
            Event::TimerPoll(n) => {
                let n = n as usize;
                self.nodes[n].timer_poll_at = None;
                let now = self.now();
                self.nodes[n].mcp.poll_timers(now);
                self.sync_node(n);
            }
            Event::FrameDelivery { dst, bytes, crc_ok } => {
                let n = dst.0 as usize;
                if !crc_ok {
                    self.stats.corrupt_deliveries += 1;
                }
                // Corrupted frames are delivered; the MCP's checksums drop
                // them (GM's transparent handling of corrupted packets).
                self.nodes[n].mcp.on_frame(WireFrame { bytes });
                self.sync_node(n);
            }
            Event::HostDmaDone(n) => {
                let n = n as usize;
                self.complete_host_dma(n);
                self.sync_node(n);
            }
            Event::NicEventArrived { node, port, event } => {
                self.handle_nic_event(node as usize, port, event);
            }
            Event::Call(f) => f(self),
        }
    }

    /// Executes the byte movement of the completed host DMA, then tells
    /// the MCP.
    fn complete_host_dma(&mut self, n: usize) {
        let Some(req) = self.nodes[n].dma_in_flight.take() else {
            return;
        };
        let node = &mut self.nodes[n];
        match req.dir {
            HostDmaDir::HostToSram => {
                let data = node.host.mem.dma_read(req.host_addr, req.len);
                node.mcp.chip.sram.write_bytes(req.sram_addr, &data);
            }
            HostDmaDir::SramToHost => {
                let data = node
                    .mcp
                    .chip
                    .sram
                    .read_bytes(req.sram_addr, req.len as usize)
                    .to_vec();
                node.host.mem.dma_write(req.host_addr, &data);
            }
        }
        node.mcp.host_dma_done();
        if self.trace.is_enabled() {
            let dir = match req.dir {
                HostDmaDir::HostToSram => DmaDir::HostToSram,
                HostDmaDir::SramToHost => DmaDir::SramToHost,
            };
            let now = self.now();
            self.trace.emit(
                now,
                TraceKind::DmaDone { node: n as u16, dir, len: req.len },
            );
        }
    }

    /// Drains MCP effects and keeps the node's dispatch/timer events
    /// scheduled. Call after any interaction with a node's MCP.
    pub fn sync_node(&mut self, n: usize) {
        let now = self.now();
        for effect in self.nodes[n].mcp.take_effects() {
            match effect {
                McpEffect::Transmit { route, frame } => {
                    match self.fabric.inject(now, NodeId(n as u16), &route, frame) {
                        Ok(d) => {
                            self.sched.schedule_at(
                                d.at,
                                Event::FrameDelivery {
                                    dst: d.dst,
                                    bytes: d.bytes,
                                    crc_ok: d.crc_ok,
                                },
                            );
                        }
                        Err(reason) => {
                            self.stats.fabric_drops += 1;
                            self.trace.emit(
                                now,
                                TraceKind::FabricDrop {
                                    node: n as u16,
                                    reason: drop_kind(reason),
                                },
                            );
                        }
                    }
                }
                McpEffect::HostDma(req) => {
                    debug_assert!(self.nodes[n].dma_in_flight.is_none());
                    self.nodes[n].dma_in_flight = Some(req);
                    let tr = self.nodes[n].host.pci.transfer(now, req.len);
                    self.sched
                        .schedule_at(tr.end, Event::HostDmaDone(n as u16));
                    if self.trace.is_enabled() {
                        self.trace
                            .emit(now, TraceKind::DmaStaged { node: n as u16, len: req.len });
                    }
                }
                McpEffect::PostEvent { port, event } => {
                    // A 32-byte event record DMAed into the receive queue.
                    let tr = self.nodes[n].host.pci.transfer(now, 32);
                    self.sched.schedule_at(
                        tr.end,
                        Event::NicEventArrived {
                            node: n as u16,
                            port,
                            event,
                        },
                    );
                }
                McpEffect::HostInterrupt => {
                    let latency = self.nodes[n].host.driver.params().irq_latency;
                    self.schedule_call(latency, move |w| w.handle_irq(n));
                }
            }
        }
        // Keep the dispatch loop scheduled.
        if let Some(t) = self.nodes[n].mcp.needs_dispatch(now) {
            let already = self.nodes[n].dispatch_at.is_some_and(|d| d <= t);
            if !already {
                self.nodes[n].dispatch_at = Some(t);
                self.sched.schedule_at(t, Event::McpDispatch(n as u16));
            }
        }
        // Keep the chip timer poll scheduled.
        if let Some(dl) = self.nodes[n].mcp.next_timer_deadline() {
            let already = self.nodes[n].timer_poll_at.is_some_and(|d| d <= dl);
            if !already {
                self.nodes[n].timer_poll_at = Some(dl);
                self.sched.schedule_at(dl, Event::TimerPoll(n as u16));
            }
        }
        // Typed observability deltas against the MCP's cumulative stats
        // (watchdog re-arms, Go-Back-N resends, delayed-ACK commits).
        if self.trace.is_enabled() {
            let stats = self.nodes[n].mcp.stats();
            if stats.ltimer_runs > self.nodes[n].obs_ltimer_runs {
                let gap = match self.nodes[n].obs_last_ltimer {
                    Some(prev) => now.saturating_since(prev),
                    None => SimDuration::ZERO,
                };
                self.nodes[n].obs_ltimer_runs = stats.ltimer_runs;
                self.nodes[n].obs_last_ltimer = Some(now);
                self.trace
                    .emit(now, TraceKind::WatchdogRearmed { node: n as u16, gap });
            }
            if stats.retransmits > self.nodes[n].obs_retransmits {
                let chunks = stats.retransmits - self.nodes[n].obs_retransmits;
                self.nodes[n].obs_retransmits = stats.retransmits;
                self.trace
                    .emit(now, TraceKind::Resent { node: n as u16, chunks });
            }
            if stats.messages_delivered > self.nodes[n].obs_delivered {
                let messages = stats.messages_delivered - self.nodes[n].obs_delivered;
                self.nodes[n].obs_delivered = stats.messages_delivered;
                self.trace
                    .emit(now, TraceKind::CommitAdvanced { node: n as u16, messages });
            }
        }
    }

    /// Driver interrupt handler: classify the cause.
    fn handle_irq(&mut self, n: usize) {
        if !self.nodes[n].host.driver.interrupts_enabled() {
            return;
        }
        let cause = self.nodes[n].mcp.chip.isr() & self.nodes[n].mcp.chip.imr();
        if cause & isr::IT1 != 0 {
            // The FATAL interrupt: the watchdog expired.
            let now = self.now();
            self.trace.emit(now, TraceKind::WatchdogFired { node: n as u16 });
            if let Some(hook) = self.hooks.fatal_irq.clone() {
                hook(self, NodeId(n as u16));
            }
        }
    }

    // --- GM library: port management ---------------------------------------

    /// Spawns an application on `(node, port)`, opening the port. The
    /// application's `on_start` runs immediately (at the current instant).
    ///
    /// # Panics
    ///
    /// Panics if the port is already open.
    pub fn spawn_app(&mut self, node: NodeId, port: u8, app: Box<dyn App>) -> AppId {
        let n = node.0 as usize;
        assert!(
            self.nodes[n].ports[port as usize].is_none(),
            "port {port} on {node} already open"
        );
        let mut hp = HostPort::new(port, self.config.send_tokens, self.config.recv_tokens);
        let id = AppId(self.apps.len());
        hp.app = Some(id);
        self.nodes[n].ports[port as usize] = Some(hp);
        self.nodes[n].mcp.open_port(port);
        self.sync_node(n);
        self.apps.push(Some(app));
        self.app_binding.push((node, port));
        self.schedule_call(SimDuration::ZERO, move |w| {
            w.with_app(id, |app, ctx| app.on_start(ctx));
        });
        id
    }

    /// Detaches the application on `(node, port)` and closes the port,
    /// freeing the slot for a respawn. Events already scheduled for the
    /// detached app are dropped at delivery (its slot is empty). Returns
    /// `true` if an app was attached there.
    ///
    /// On a frozen (crashed) host only the binding is cleared — the dead
    /// firmware is not asked to close anything.
    pub fn detach_app(&mut self, node: NodeId, port: u8) -> bool {
        let n = node.0 as usize;
        let Some(hp) = self.nodes[n].ports[port as usize].take() else {
            return false;
        };
        let had_app = hp.app.is_some();
        if let Some(id) = hp.app {
            self.apps[id.0] = None;
        }
        if !self.nodes[n].frozen() {
            self.nodes[n].mcp.close_port(port);
            self.sync_node(n);
        }
        had_app
    }

    /// Runs `f` with the application and a context, unless its host froze.
    fn with_app(&mut self, id: AppId, f: impl FnOnce(&mut Box<dyn App>, &mut Ctx<'_>)) {
        let (node, port) = self.app_binding[id.0];
        if self.nodes[node.0 as usize].frozen() {
            return;
        }
        let Some(mut app) = self.apps[id.0].take() else {
            return;
        };
        {
            let mut ctx = Ctx {
                world: self,
                node,
                port,
                app_id: id,
            };
            f(&mut app, &mut ctx);
        }
        self.apps[id.0] = Some(app);
    }

    /// Delivers a GM event to the app on `(node, port)` after `delay`.
    fn deliver_app_event(&mut self, node: NodeId, port: u8, delay: SimDuration, ev: GmEvent) {
        let n = node.0 as usize;
        let Some(hp) = &self.nodes[n].ports[port as usize] else {
            return;
        };
        let Some(id) = hp.app else { return };
        self.stats.app_events += 1;
        self.schedule_call(delay, move |w| {
            w.with_app(id, |app, ctx| app.on_event(ctx, ev));
        });
    }

    // --- GM library: NIC event processing (gm_receive / gm_unknown) --------

    fn handle_nic_event(&mut self, n: usize, port: u8, event: NicEvent) {
        if self.nodes[n].frozen() {
            return;
        }
        let is_ftgm = self.is_ftgm();
        let api = self.config.api;
        match event {
            NicEvent::Received {
                src_node,
                src_port,
                token_id,
                len,
                seq,
                prio_high,
            } => {
                let node = &mut self.nodes[n];
                let Some(hp) = node.ports[port as usize].as_mut() else {
                    return;
                };
                let Some(region) = hp.recv_bufs.remove(&token_id) else {
                    return; // stale event from before a recovery
                };
                let mut cost = api.recv_event;
                node.host.cpu.charge(CpuCost::RecvEvent, api.recv_event);
                if is_ftgm {
                    // The two hash-table updates the paper charges to the
                    // receive path: drop the token copy, bump the ACK table.
                    hp.backup.remove_recv(token_id);
                    hp.backup.record_ack(src_node, src_port, prio_high, seq);
                    node.host
                        .cpu
                        .charge(CpuCost::RecvTokenBackup, api.recv_event_backup);
                    cost += api.recv_event_backup;
                }
                hp.recv_tokens += 1;
                let data = node.host.mem.read(region.pa, len).to_vec();
                hp.free_bufs.entry(region.len).or_default().push(region);
                if self.trace.is_enabled() {
                    let now = self.now();
                    self.trace.emit(
                        now,
                        TraceKind::MessageReceived {
                            node: n as u16,
                            port,
                            src_node: src_node.0,
                            src_port,
                            len,
                        },
                    );
                }
                self.deliver_app_event(
                    NodeId(n as u16),
                    port,
                    cost,
                    GmEvent::Received {
                        src_node,
                        src_port,
                        token_id,
                        len,
                        data,
                    },
                );
            }
            NicEvent::SendCompleted { token_id } => {
                let node = &mut self.nodes[n];
                let Some(hp) = node.ports[port as usize].as_mut() else {
                    return;
                };
                if let Some(region) = hp.send_bufs.remove(&token_id) {
                    hp.free_bufs.entry(region.len).or_default().push(region);
                }
                if is_ftgm {
                    hp.backup.remove_send(token_id);
                }
                hp.send_tokens += 1;
                node.host.cpu.charge(CpuCost::Callback, api.callback);
                if self.trace.is_enabled() {
                    let now = self.now();
                    self.trace.emit(
                        now,
                        TraceKind::SendCompleted { node: n as u16, port, token: token_id },
                    );
                }
                self.deliver_app_event(
                    NodeId(n as u16),
                    port,
                    api.callback,
                    GmEvent::SentOk { token_id },
                );
            }
            NicEvent::SendError { token_id } => {
                let node = &mut self.nodes[n];
                let Some(hp) = node.ports[port as usize].as_mut() else {
                    return;
                };
                if let Some(region) = hp.send_bufs.remove(&token_id) {
                    hp.free_bufs.entry(region.len).or_default().push(region);
                }
                if is_ftgm {
                    hp.backup.remove_send(token_id);
                }
                hp.send_tokens += 1;
                if self.trace.is_enabled() {
                    let now = self.now();
                    self.trace.emit(
                        now,
                        TraceKind::SendFailed { node: n as u16, port, token: token_id },
                    );
                }
                self.deliver_app_event(
                    NodeId(n as u16),
                    port,
                    api.callback,
                    GmEvent::SendError { token_id },
                );
            }
            NicEvent::FaultDetected => {
                // gm_unknown(): the transparent recovery entry point.
                if let Some(hook) = self.hooks.fault_event.clone() {
                    hook(self, NodeId(n as u16), port);
                }
            }
        }
    }

    // --- GM library: buffer management --------------------------------------

    fn alloc_buf(&mut self, n: usize, port: u8, len: u32) -> DmaRegion {
        let node = &mut self.nodes[n];
        let hp = node.ports[port as usize]
            .as_mut()
            .expect("port open");
        if let Some(r) = hp.free_bufs.get_mut(&len).and_then(|v| v.pop()) {
            return r;
        }
        let region = node.host.mem.alloc_dma(len);
        // Register the pages so the NIC may DMA there (va == pa model).
        node.host
            .pages
            .map_region(port, region.pa, region.pa, region.len as u64);
        region
    }

    // --- direct access for recovery code and experiments --------------------

    /// Immutable access to a node.
    pub fn node(&self, node: NodeId) -> &NodeSim {
        &self.nodes[node.0 as usize]
    }

    /// Mutable access to a node.
    pub fn node_mut(&mut self, node: NodeId) -> &mut NodeSim {
        &mut self.nodes[node.0 as usize]
    }

    /// Posts a `FAULT_DETECTED` event into a port's receive queue (the
    /// FTD's final per-port step), with PCI timing like any event post.
    pub fn post_fault_detected(&mut self, node: NodeId, port: u8) {
        let n = node.0 as usize;
        let now = self.now();
        let tr = self.nodes[n].host.pci.transfer(now, 32);
        self.sched.schedule_at(
            tr.end,
            Event::NicEventArrived {
                node: node.0,
                port,
                event: NicEvent::FaultDetected,
            },
        );
    }

    /// Cancels the node's pending host DMA, if any (card reset drops it).
    pub fn abort_host_dma(&mut self, node: NodeId) {
        self.nodes[node.0 as usize].dma_in_flight = None;
    }

    /// The FTD's escalation path: the interface will not come back, so
    /// every backed-up (unacknowledged) send on every open port fails back
    /// to its application as [`GmEvent::SendError`], followed by one
    /// [`GmEvent::InterfaceDead`] per port. Returns the number of sends
    /// failed. Buffers and tokens return to the process so middleware can
    /// tear down cleanly instead of leaking.
    pub fn fail_outstanding_sends(&mut self, node: NodeId) -> usize {
        let n = node.0 as usize;
        let api = self.config.api;
        let mut failed = 0;
        for port in 0..8u8 {
            let tokens: Vec<u64> = {
                let Some(hp) = self.nodes[n].ports[port as usize].as_mut() else {
                    continue;
                };
                let tokens: Vec<u64> = hp
                    .backup
                    .outstanding_sends()
                    .iter()
                    .map(|c| c.token_id)
                    .collect();
                for &token_id in &tokens {
                    hp.backup.remove_send(token_id);
                    if let Some(region) = hp.send_bufs.remove(&token_id) {
                        hp.free_bufs.entry(region.len).or_default().push(region);
                    }
                    hp.send_tokens += 1;
                }
                tokens
            };
            failed += tokens.len();
            for token_id in tokens {
                self.deliver_app_event(node, port, api.callback, GmEvent::SendError { token_id });
            }
            self.deliver_app_event(node, port, api.callback, GmEvent::InterfaceDead);
        }
        failed
    }

    /// Installs fresh per-interface route tables into the live fabric:
    /// each interface's MCP gets its new table and the host's recovery
    /// copy (`route_backup`) is updated so subsequent FTD
    /// `RestoreRoutes` phases restore the *rerouted* state, not the
    /// pre-fault one. Tables beyond the node count are ignored; nodes
    /// beyond the table count keep their current routes. Returns the
    /// number of interfaces whose table actually changed.
    pub fn install_routes(&mut self, tables: Vec<RouteTable>) -> u32 {
        let mut changed = 0u32;
        let installed = tables.len().min(self.nodes.len()) as u32;
        for (n, table) in tables.into_iter().enumerate() {
            if n >= self.nodes.len() {
                break;
            }
            if self.nodes[n].route_backup != table {
                changed += 1;
            }
            self.nodes[n].mcp.set_routes(table.clone());
            self.nodes[n].route_backup = table;
            self.sync_node(n);
        }
        let now = self.now();
        self.trace.emit(
            now,
            TraceKind::RoutesInstalled { nodes: installed, changed },
        );
        changed
    }

    /// Current per-link up/down state, indexed by link id (the snapshot
    /// [`ftgm_net::reroute::plan`] consumes).
    pub fn link_state(&self) -> Vec<bool> {
        (0..self.fabric.topology().links().len())
            .map(|l| self.fabric.link_is_up(l))
            .collect()
    }

    /// Re-runs the GM mapper over the current topology, skipping links that
    /// are administratively down, and installs the fresh route tables on
    /// every interface (updating the hosts' recovery copies too). This is
    /// the mapper's reconfiguration pass after a link disappears or comes
    /// back. Returns the number of interfaces whose table changed.
    pub fn remap(&mut self) -> u32 {
        let up = self.link_state();
        let down = up.iter().filter(|u| !**u).count() as u32;
        let now = self.now();
        self.trace
            .emit(now, TraceKind::RerouteStarted { down_links: down });
        let topo = self.fabric.topology().clone();
        let plan = reroute::plan(&topo, &up);
        self.install_routes(plan.into_tables())
    }
}

/// The GM API surface handed to applications.
///
/// Method names mirror the GM user library: sends consume a send token and
/// complete through a callback event; `gm_provide_receive_buffer` hands a
/// pinned buffer (and a receive token) to the LANai.
pub struct Ctx<'a> {
    world: &'a mut World,
    /// The node this application runs on.
    pub node: NodeId,
    /// The port it opened.
    pub port: u8,
    app_id: AppId,
}

impl Ctx<'_> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// Send tokens currently available.
    pub fn send_tokens(&self) -> u32 {
        self.port_ref().send_tokens
    }

    /// Receive tokens currently available.
    pub fn recv_tokens(&self) -> u32 {
        self.port_ref().recv_tokens
    }

    fn port_ref(&self) -> &HostPort {
        self.world.nodes[self.node.0 as usize].ports[self.port as usize]
            .as_ref()
            .expect("own port open")
    }

    /// `gm_send_with_callback`: sends `data` to `(dst, dst_port)`.
    /// Completion arrives later as [`GmEvent::SentOk`] (or `SendError`).
    /// Returns the send token id.
    ///
    /// # Panics
    ///
    /// Panics if no send token is available (GM applications must respect
    /// their token budget) or if `data` is empty.
    pub fn gm_send(&mut self, data: &[u8], dst: NodeId, dst_port: u8) -> u64 {
        self.gm_send_prio(data, dst, dst_port, false)
    }

    /// [`Ctx::gm_send`] with an explicit priority level.
    pub fn gm_send_prio(&mut self, data: &[u8], dst: NodeId, dst_port: u8, prio_high: bool) -> u64 {
        assert!(!data.is_empty(), "GM does not send zero-length messages");
        assert!(
            data.len() as u32
                <= ftgm_mcp::layout::SLAB_COUNT * self.world.config.mcp.max_chunk,
            "message exceeds the interface's maximum ({} bytes)",
            ftgm_mcp::layout::SLAB_COUNT * self.world.config.mcp.max_chunk
        );
        let n = self.node.0 as usize;
        let port = self.port;
        let is_ftgm = self.world.is_ftgm();
        let api = self.world.config.api;
        let max_chunk = self.world.config.mcp.max_chunk;

        // Token accounting and host-CPU charge.
        {
            let hp = self.world.nodes[n].ports[port as usize]
                .as_mut()
                .expect("own port open");
            assert!(hp.send_tokens > 0, "out of send tokens");
            hp.send_tokens -= 1;
        }
        self.world.nodes[n]
            .host
            .cpu
            .charge(CpuCost::SendCall, api.send);

        // Fill a pinned buffer with the payload.
        let region = self.world.alloc_buf(n, port, data.len() as u32);
        self.world.nodes[n].host.mem.write(region.pa, data);

        let (token_id, first_seq) = {
            let hp = self.world.nodes[n].ports[port as usize]
                .as_mut()
                .expect("own port open");
            let token_id = hp.next_token;
            hp.next_token += 1;
            hp.send_bufs.insert(token_id, region);
            let first_seq = if is_ftgm {
                let chunks = (data.len() as u32).div_ceil(max_chunk);
                Some(hp.backup.reserve_seq(dst, prio_high, chunks))
            } else {
                None
            };
            (token_id, first_seq)
        };

        if self.world.trace.is_enabled() {
            let depth = {
                let hp = self.world.nodes[n].ports[port as usize]
                    .as_ref()
                    .expect("own port open");
                self.world.config.send_tokens - hp.send_tokens
            };
            let now = self.world.now();
            self.world.trace.emit(
                now,
                TraceKind::SendPosted {
                    node: n as u16,
                    port,
                    token: token_id,
                    len: data.len() as u32,
                    depth,
                },
            );
        }

        let mut cost = api.send;
        if is_ftgm {
            // The paper's send-side housekeeping: copy the token into the
            // backup queue before it passes to the LANai.
            let hp = self.world.nodes[n].ports[port as usize]
                .as_mut()
                .expect("own port open");
            hp.backup.add_send(SendTokenCopy {
                token_id,
                port,
                dst_node: dst,
                dst_port,
                host_addr: region.pa,
                len: data.len() as u32,
                prio_high,
                first_seq: first_seq.expect("ftgm assigns"),
            });
            self.world.nodes[n]
                .host
                .cpu
                .charge(CpuCost::SendTokenBackup, api.send_backup);
            cost += api.send_backup;
        }

        // The PIO write + doorbell reach the NIC after the host-side cost.
        let desc = SendDesc {
            token_id,
            port,
            dst_node: dst,
            dst_port,
            host_addr: region.pa,
            len: data.len() as u32,
            prio_high,
            first_seq,
        };
        self.world.schedule_call(cost, move |w| {
            if w.nodes[n].frozen() {
                return;
            }
            w.nodes[n].mcp.post_send(desc);
            w.sync_node(n);
        });
        token_id
    }

    /// `gm_provide_receive_buffer`: hands the LANai a pinned buffer able to
    /// hold `capacity` bytes of (low-priority) messages.
    ///
    /// # Panics
    ///
    /// Panics if no receive token is available.
    pub fn gm_provide_receive_buffer(&mut self, capacity: u32) -> u64 {
        self.gm_provide_receive_buffer_prio(capacity, false)
    }

    /// [`Ctx::gm_provide_receive_buffer`] with an explicit priority.
    pub fn gm_provide_receive_buffer_prio(&mut self, capacity: u32, prio_high: bool) -> u64 {
        let n = self.node.0 as usize;
        let port = self.port;
        let is_ftgm = self.world.is_ftgm();
        let api = self.world.config.api;
        {
            let hp = self.world.nodes[n].ports[port as usize]
                .as_mut()
                .expect("own port open");
            assert!(hp.recv_tokens > 0, "out of receive tokens");
            hp.recv_tokens -= 1;
        }
        self.world.nodes[n]
            .host
            .cpu
            .charge(CpuCost::ProvideBuffer, api.provide);
        let region = self.world.alloc_buf(n, port, capacity);
        let (token_id, mut cost) = {
            let hp = self.world.nodes[n].ports[port as usize]
                .as_mut()
                .expect("own port open");
            let token_id = hp.next_token;
            hp.next_token += 1;
            hp.recv_bufs.insert(token_id, region);
            (token_id, api.provide)
        };
        if self.world.trace.is_enabled() {
            let depth = {
                let hp = self.world.nodes[n].ports[port as usize]
                    .as_ref()
                    .expect("own port open");
                self.world.config.recv_tokens - hp.recv_tokens
            };
            let now = self.world.now();
            self.world.trace.emit(
                now,
                TraceKind::RecvProvided { node: n as u16, port, token: token_id, depth },
            );
        }
        if is_ftgm {
            let hp = self.world.nodes[n].ports[port as usize]
                .as_mut()
                .expect("own port open");
            hp.backup.add_recv(RecvTokenCopy {
                token_id,
                host_addr: region.pa,
                capacity,
                prio_high,
            });
            self.world.nodes[n]
                .host
                .cpu
                .charge(CpuCost::RecvTokenBackup, api.provide_backup);
            cost += api.provide_backup;
        }
        let desc = RecvTokenDesc {
            token_id,
            host_addr: region.pa,
            capacity,
            prio_high,
        };
        self.world.schedule_call(cost, move |w| {
            if w.nodes[n].frozen() {
                return;
            }
            w.nodes[n].mcp.post_recv_token(port, desc);
            w.sync_node(n);
        });
        token_id
    }

    /// Sets a one-shot alarm delivered as [`GmEvent::Alarm`].
    pub fn set_alarm(&mut self, delay: SimDuration, tag: u64) {
        let id = self.app_id;
        self.world.schedule_call(delay, move |w| {
            w.with_app(id, |app, ctx| app.on_event(ctx, GmEvent::Alarm { tag }));
        });
    }

    /// MCP statistics of the local interface (for workload bookkeeping).
    pub fn local_mcp_stats(&self) -> ftgm_mcp::McpStats {
        self.world.nodes[self.node.0 as usize].mcp.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    /// Sends one message and records what comes back.
    struct OneShotSender {
        dst: NodeId,
        payload: Vec<u8>,
        events: Rc<RefCell<Vec<GmEvent>>>,
    }

    impl App for OneShotSender {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let payload = self.payload.clone();
            ctx.gm_send(&payload, self.dst, 2);
        }
        fn on_event(&mut self, _ctx: &mut Ctx<'_>, ev: GmEvent) {
            self.events.borrow_mut().push(ev);
        }
    }

    /// Provides buffers and records received messages.
    struct Sink {
        got: Rc<RefCell<Vec<Vec<u8>>>>,
    }

    impl App for Sink {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for _ in 0..4 {
                ctx.gm_provide_receive_buffer(32 * 1024);
            }
        }
        fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: GmEvent) {
            if let GmEvent::Received { data, .. } = ev {
                self.got.borrow_mut().push(data);
                ctx.gm_provide_receive_buffer(32 * 1024);
            }
        }
    }

    fn worlds() -> Vec<World> {
        vec![
            World::two_node(WorldConfig::gm()),
            World::two_node(WorldConfig::ftgm()),
        ]
    }

    fn wire(w: &mut World, payload: &[u8]) -> (Rc<RefCell<Vec<Vec<u8>>>>, Rc<RefCell<Vec<GmEvent>>>) {
        let got = Rc::new(RefCell::new(Vec::new()));
        let events = Rc::new(RefCell::new(Vec::new()));
        w.spawn_app(NodeId(1), 2, Box::new(Sink { got: got.clone() }));
        w.spawn_app(
            NodeId(0),
            0,
            Box::new(OneShotSender {
                dst: NodeId(1),
                payload: payload.to_vec(),
                events: events.clone(),
            }),
        );
        (got, events)
    }

    #[test]
    fn one_message_end_to_end_both_variants() {
        for mut w in worlds() {
            let payload: Vec<u8> = (0..777u32).map(|i| (i % 251) as u8).collect();
            let (got, _) = wire(&mut w, &payload);
            w.run_for(SimDuration::from_ms(50));
            let got = got.borrow();
            assert_eq!(got.len(), 1, "exactly one message delivered");
            assert_eq!(got[0], payload);
        }
    }

    #[test]
    fn multi_chunk_message_reassembles() {
        for mut w in worlds() {
            let payload: Vec<u8> = (0..20_000u32).map(|i| (i % 249) as u8).collect();
            let (got, _) = wire(&mut w, &payload);
            w.run_for(SimDuration::from_ms(100));
            let got = got.borrow();
            assert_eq!(got.len(), 1);
            assert_eq!(got[0], payload);
        }
    }

    #[test]
    fn sender_gets_completion_and_token_back() {
        for mut w in worlds() {
            let (_, events) = wire(&mut w, &[7u8; 100]);
            w.run_for(SimDuration::from_ms(50));
            let events = events.borrow();
            assert_eq!(events.len(), 1);
            assert!(matches!(events[0], GmEvent::SentOk { .. }));
            let hp = w.nodes[0].ports[0].as_ref().unwrap();
            assert_eq!(hp.send_tokens, w.config.send_tokens);
            if w.is_ftgm() {
                assert_eq!(hp.backup.sends_outstanding(), 0, "backup drained");
            }
        }
    }

    #[test]
    fn ltimer_keeps_running() {
        let mut w = World::two_node(WorldConfig::gm());
        w.run_for(SimDuration::from_ms(10));
        let runs = w.nodes[0].mcp.stats().ltimer_runs;
        // 10ms / 750us ≈ 13 invocations.
        assert!((10..=15).contains(&runs), "ltimer runs: {runs}");
    }

    #[test]
    fn ftgm_backup_tracks_seq_reservation() {
        let mut w = World::two_node(WorldConfig::ftgm());
        let payload = vec![1u8; 10_000]; // 3 chunks
        wire(&mut w, &payload);
        w.run_for(SimDuration::from_ms(50));
        let hp = w.nodes[0].ports[0].as_ref().unwrap();
        assert_eq!(hp.backup.peek_seq(NodeId(1), false), 3, "3 chunks reserved");
    }

    #[test]
    fn hung_nic_stops_traffic_but_timers_fire() {
        let mut w = World::two_node(WorldConfig::ftgm());
        let got = Rc::new(RefCell::new(Vec::new()));
        w.spawn_app(NodeId(1), 2, Box::new(Sink { got }));
        w.run_for(SimDuration::from_ms(2));
        w.nodes[1].mcp.force_hang();
        w.run_for(SimDuration::from_ms(2));
        // IT1 must have expired and raised the FATAL bit.
        assert_ne!(w.nodes[1].mcp.chip.isr() & isr::IT1, 0);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use std::cell::RefCell;

    struct AlarmApp {
        fired: Rc<RefCell<Vec<(u64, SimTime)>>>,
    }
    impl App for AlarmApp {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_alarm(SimDuration::from_us(500), 1);
            ctx.set_alarm(SimDuration::from_us(100), 2);
        }
        fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: GmEvent) {
            if let GmEvent::Alarm { tag } = ev {
                self.fired.borrow_mut().push((tag, ctx.now()));
            }
        }
    }

    #[test]
    fn alarms_fire_in_order_at_requested_times() {
        let mut w = World::two_node(WorldConfig::gm());
        let fired = Rc::new(RefCell::new(Vec::new()));
        w.spawn_app(NodeId(0), 0, Box::new(AlarmApp { fired: fired.clone() }));
        w.run_for(SimDuration::from_ms(1));
        let fired = fired.borrow();
        assert_eq!(fired.len(), 2);
        assert_eq!(fired[0].0, 2);
        assert_eq!(fired[1].0, 1);
        assert_eq!(fired[0].1.as_nanos(), 100_000);
        assert_eq!(fired[1].1.as_nanos(), 500_000);
    }

    struct Greedy;
    impl App for Greedy {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let budget = ctx.send_tokens();
            for _ in 0..budget {
                ctx.gm_send(&[1u8; 8], NodeId(1), 2);
            }
            assert_eq!(ctx.send_tokens(), 0, "all tokens consumed");
        }
        fn on_event(&mut self, _ctx: &mut Ctx<'_>, _ev: GmEvent) {}
    }

    #[test]
    fn send_token_budget_is_enforced() {
        let mut w = World::two_node(WorldConfig::gm());
        // No receiver: tokens stay with the LANai until retries exhaust.
        w.spawn_app(NodeId(0), 0, Box::new(Greedy));
        w.run_for(SimDuration::from_ms(1));
        let hp = w.nodes[0].ports[0].as_ref().unwrap();
        assert_eq!(hp.send_tokens, 0);
    }

    #[test]
    fn wild_dma_freezes_the_host_and_its_apps() {
        let mut w = World::two_node(WorldConfig::gm());
        let fired = Rc::new(RefCell::new(Vec::new()));
        w.spawn_app(NodeId(0), 0, Box::new(AlarmApp { fired: fired.clone() }));
        // Crash the host before the alarms land.
        w.nodes[0].host.mem.dma_write(64, &[0xFF; 8]);
        assert!(w.nodes[0].frozen());
        w.run_for(SimDuration::from_ms(1));
        assert!(fired.borrow().is_empty(), "frozen hosts run nothing");
    }

    #[test]
    fn buffers_are_recycled_not_leaked() {
        let mut w = World::two_node(WorldConfig::gm());
        // A loopback sender that reuses one buffer size heavily.
        struct Loop {
            left: u32,
        }
        impl App for Loop {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                for _ in 0..4 {
                    ctx.gm_provide_receive_buffer(256);
                }
                ctx.gm_send(&[7u8; 256], NodeId(0), 0);
            }
            fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: GmEvent) {
                if let GmEvent::Received { .. } = ev {
                    ctx.gm_provide_receive_buffer(256);
                    if self.left > 0 {
                        self.left -= 1;
                        ctx.gm_send(&[7u8; 256], NodeId(0), 0);
                    }
                }
            }
        }
        w.spawn_app(NodeId(0), 0, Box::new(Loop { left: 300 }));
        w.run_for(SimDuration::from_ms(50));
        // 301 sends + ~305 provides reused a small pool: allocation stays
        // far below one-region-per-call.
        let hp = w.nodes[0].ports[0].as_ref().unwrap();
        let pooled: usize = hp.free_bufs.values().map(|v| v.len()).sum();
        assert!(pooled < 20, "pool stayed small: {pooled}");
        assert!(
            w.nodes[0].host.mem.crash_reason().is_none(),
            "no runaway allocation"
        );
    }
}
