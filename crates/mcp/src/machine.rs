//! The MCP dispatch machine.
//!
//! "The MCP is basically an event-driven program. It executes a fixed (set
//! of) action(s) when a set of events occur and some conditions are
//! satisfied." (§4.2). [`McpMachine::dispatch`] is that loop: each call
//! runs at most *one* handler, charges its cost, and reports when it will
//! be free again — this serialization is what makes `L_timer()` invocation
//! gaps wander up toward 800 µs under load, which is what the watchdog
//! interval is calibrated against.
//!
//! Handlers in priority order: `L_timer()` (IT0), host-DMA completion and
//! start (the DMA engine is autonomous on real silicon, so its progress is
//! never queued behind protocol chatter), pending control frames, pending
//! retransmissions, receive, send staging. A hung chip (trap, runaway firmware, forced) never dispatches
//! again — but its interval timers keep counting, so under FTGM the IT1
//! watchdog eventually raises the FATAL interrupt.
//!
//! ## The FTGM commit point
//!
//! GM ACKs a packet at acceptance; FTGM must not ACK a *message* until it
//! has been DMAed into the user's buffer (Figure 5). With cumulative ACKs
//! this needs care: an intermediate chunk of a later message must not
//! smuggle the previous message's final chunk past the commit point. The
//! machine therefore tracks, per receive stream, the set of accepted-but-
//! uncommitted final chunks and only ever advertises an ACK frontier below
//! the oldest of them.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use ftgm_lanai::chip::{isr, ChipEffect, HangCause, HostDmaDir, HostDmaReq, LanaiChip, WireFrame};
use ftgm_lanai::cpu::RETURN_ADDR;
use ftgm_lanai::isa::Reg;
use ftgm_lanai::timers::TimerId;
use ftgm_net::{NodeId, RouteTable};
use ftgm_sim::{SimDuration, SimTime};

use crate::firmware::{layout, FirmwareImage};
use crate::gobackn::{
    ChunkCursor, ChunkRecord, ReceiverStream, RxVerdict, SenderStream, StreamKey,
};
use crate::packet::{flags, stream_word, Header, PacketType};
use crate::params::{McpParams, Variant};

/// Number of GM ports per interface ("GM allows only 8 ports per node").
pub const PORTS_PER_NODE: u8 = 8;

/// SRAM address of receive staging slab `i`.
fn rx_slab_addr(i: u32) -> u32 {
    layout::STAGE_BASE + layout::SLAB_COUNT * layout::SLAB_SIZE + i * layout::SLAB_SIZE
}

/// A send posted by the host library (the LANai's view of a send token).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SendDesc {
    /// Host-side token id; echoed back in completion events.
    pub token_id: u64,
    /// Sending port.
    pub port: u8,
    /// Destination interface.
    pub dst_node: NodeId,
    /// Destination port.
    pub dst_port: u8,
    /// Pinned host buffer address.
    pub host_addr: u64,
    /// Message length.
    pub len: u32,
    /// High priority?
    pub prio_high: bool,
    /// FTGM: host-generated first sequence number for this message.
    pub first_seq: Option<u32>,
}

/// A receive buffer provided by the host library (a receive token).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvTokenDesc {
    /// Host-side token id.
    pub token_id: u64,
    /// Pinned host buffer address.
    pub host_addr: u64,
    /// Buffer capacity.
    pub capacity: u32,
    /// Priority level this buffer accepts.
    pub prio_high: bool,
}

/// An event record the MCP posts into a process's receive queue.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NicEvent {
    /// A message arrived into the buffer of `token_id`.
    Received {
        /// Origin interface.
        src_node: NodeId,
        /// Origin port.
        src_port: u8,
        /// The receive token whose buffer was filled.
        token_id: u64,
        /// Message length.
        len: u32,
        /// FTGM: sequence number of the final chunk — the host records it
        /// as the stream's acknowledged frontier for recovery.
        seq: u32,
        /// High-priority message?
        prio_high: bool,
    },
    /// A posted send was fully acknowledged; the token returns.
    SendCompleted {
        /// The send token.
        token_id: u64,
    },
    /// A posted send exhausted its retries.
    SendError {
        /// The send token.
        token_id: u64,
    },
    /// The FTD detected and recovered an interface failure; the library's
    /// `gm_unknown()` handler must restore this port's state (§4.4).
    FaultDetected,
}

/// Externally visible actions produced by the machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum McpEffect {
    /// Transmit a frame into the fabric along `route`.
    Transmit {
        /// Source route (one byte per switch hop).
        route: Vec<u8>,
        /// Wire bytes.
        frame: Vec<u8>,
    },
    /// Start a host DMA; the world moves the bytes with PCI timing and
    /// then calls [`McpMachine::host_dma_done`].
    HostDma(HostDmaReq),
    /// Post an event record into `port`'s host receive queue (a small DMA
    /// the world also times on the PCI bus).
    PostEvent {
        /// Destination port.
        port: u8,
        /// The record.
        event: NicEvent,
    },
    /// The chip's IRQ line went high (`ISR & IMR != 0`).
    HostInterrupt,
}

/// A host DMA in flight and what to do when it completes.
#[derive(Clone, Debug, PartialEq, Eq)]
enum HdmaJob {
    /// Staging chunk payload host→SRAM before `send_chunk` runs.
    Stage {
        req: HostDmaReq,
        rec: ChunkRecord,
        stream: StreamKey,
        /// The source port's epoch when staged; a `close_port` in between
        /// (recovery re-entry) makes the job stale and it is dropped on
        /// completion instead of admitting a dead stream's chunk.
        epoch: u64,
    },
    /// Delivering an accepted chunk SRAM→host.
    Deliver {
        req: HostDmaReq,
        rx_slab: u32,
        stream: StreamKey,
        /// Final chunk seq if this delivery commits a message.
        commits_final: Option<u32>,
        /// Completion event to post once in host memory.
        completion: Option<(u8, NicEvent)>,
    },
}

impl HdmaJob {
    fn req(&self) -> HostDmaReq {
        match self {
            HdmaJob::Stage { req, .. } | HdmaJob::Deliver { req, .. } => *req,
        }
    }
}

/// An in-progress multi-chunk send.
#[derive(Clone, Debug)]
struct ActiveSend {
    desc: SendDesc,
    next_offset: u32,
    /// Sequence cursor for the chunk being staged; lives in gobackn.rs
    /// so sequence mutations stay inside the accessor surface.
    cursor: ChunkCursor,
}

/// Message reassembly state at the receiver.
#[derive(Clone, Debug)]
struct RxAssembly {
    token: RecvTokenDesc,
    port: u8,
    msg_len: u32,
    src_node: NodeId,
    src_port: u8,
    prio_high: bool,
}

#[derive(Clone, Debug, Default)]
struct PortState {
    open: bool,
    recv_tokens: Vec<RecvTokenDesc>,
    /// Bumped by `close_port`; invalidates in-flight staging jobs.
    epoch: u64,
}

/// Protocol/behaviour counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct McpStats {
    /// Data chunks transmitted (including retransmissions).
    pub data_tx: u64,
    /// Retransmitted chunks.
    pub retransmits: u64,
    /// Data chunks accepted in order.
    pub data_rx_accepted: u64,
    /// Duplicates dropped.
    pub duplicates: u64,
    /// Out-of-order chunks NACKed.
    pub nacks_sent: u64,
    /// Frames dropped by parse/validation (corruption).
    pub parse_drops: u64,
    /// Chunks dropped for want of a receive token or RX slab.
    pub no_token_drops: u64,
    /// Messages delivered to host buffers.
    pub messages_delivered: u64,
    /// Sends completed.
    pub sends_completed: u64,
    /// Sends failed after retry exhaustion.
    pub send_errors: u64,
    /// `L_timer()` invocations.
    pub ltimer_runs: u64,
}

/// The Myrinet Control Program model for one interface.
pub struct McpMachine {
    /// The chip the MCP runs on.
    pub chip: LanaiChip,
    node: NodeId,
    params: McpParams,
    firmware: FirmwareImage,
    routes: RouteTable,

    busy_until: SimTime,
    booted: bool,
    /// Times the MCP has been reloaded (connection re-setups pick fresh
    /// initial sequence numbers from this, GM-style).
    reload_count: u32,

    ports: [PortState; PORTS_PER_NODE as usize],
    /// Posted sends, one queue per priority level ("two non-preemptive
    /// priority levels"): high drains before low, but an in-progress
    /// low-priority message is not preempted.
    send_q_high: VecDeque<SendDesc>,
    send_q_low: VecDeque<SendDesc>,
    active_send: Option<ActiveSend>,
    /// Next sequence number to *assign* per stream (runs ahead of the
    /// admitted `SenderStream` counter while chunks are being staged).
    tx_assign_seq: BTreeMap<StreamKey, u32>,
    /// Sequence numbers that carry the SYN (stream-establishing) flag.
    tx_syn_seq: BTreeMap<StreamKey, u32>,
    tx_streams: BTreeMap<StreamKey, SenderStream>,
    rx_streams: BTreeMap<StreamKey, ReceiverStream>,
    rx_assembly: BTreeMap<StreamKey, RxAssembly>,
    /// Accepted final chunks whose delivery DMA has not completed: the ACK
    /// frontier may not pass the oldest of these (FTGM commit point).
    rx_uncommitted: BTreeMap<StreamKey, BTreeSet<u32>>,
    /// Last NACK value sent per stream (suppression: one NACK per stall
    /// point, re-armed when the stream advances).
    rx_nack_sent: BTreeMap<StreamKey, u32>,
    /// Port of each outstanding send token (for event routing).
    send_token_port: BTreeMap<u64, u8>,

    free_tx_slabs: Vec<u32>,
    free_rx_slabs: Vec<u32>,

    hdma_jobs: VecDeque<HdmaJob>,
    hdma_started: bool,
    /// Queued control transmissions: (stream, type, seq).
    pending_ctrl: VecDeque<(StreamKey, PacketType, u32)>,
    pending_resend: VecDeque<ChunkRecord>,

    /// Pinned host address for firmware's completion-record DMA (0 = off).
    status_report_addr: u64,
    effects: Vec<McpEffect>,
    stats: McpStats,
    account: BTreeMap<&'static str, SimDuration>,
    ltimer_times: Vec<SimTime>,
    ltimer_log_cap: usize,
}

impl std::fmt::Debug for McpMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("McpMachine")
            .field("node", &self.node)
            .field("variant", &self.params.variant)
            .field("hung", &self.chip.is_hung())
            .field("busy_until", &self.busy_until)
            .field(
                "sends_queued",
                &(self.send_q_high.len() + self.send_q_low.len()),
            )
            .finish()
    }
}

impl McpMachine {
    /// Creates a machine for `node` and loads the firmware (the model of
    /// the driver's initial MCP load). Call [`McpMachine::boot`] before
    /// use.
    pub fn new(node: NodeId, params: McpParams) -> McpMachine {
        let firmware = FirmwareImage::build();
        let mut chip = LanaiChip::new(layout::SRAM_LEN);
        chip.backend = params.cpu_backend;
        chip.sram.write_bytes(layout::CODE_BASE, firmware.bytes());
        McpMachine {
            chip,
            node,
            params,
            firmware,
            routes: RouteTable::default(),
            busy_until: SimTime::ZERO,
            booted: false,
            reload_count: 0,
            ports: Default::default(),
            send_q_high: VecDeque::new(),
            send_q_low: VecDeque::new(),
            active_send: None,
            tx_assign_seq: BTreeMap::new(),
            tx_syn_seq: BTreeMap::new(),
            tx_streams: BTreeMap::new(),
            rx_streams: BTreeMap::new(),
            rx_assembly: BTreeMap::new(),
            rx_uncommitted: BTreeMap::new(),
            rx_nack_sent: BTreeMap::new(),
            send_token_port: BTreeMap::new(),
            free_tx_slabs: (0..layout::SLAB_COUNT).rev().collect(),
            free_rx_slabs: (0..layout::SLAB_COUNT).rev().collect(),
            hdma_jobs: VecDeque::new(),
            hdma_started: false,
            pending_ctrl: VecDeque::new(),
            pending_resend: VecDeque::new(),
            status_report_addr: 0,
            effects: Vec::new(),
            stats: McpStats::default(),
            account: BTreeMap::new(),
            ltimer_times: Vec::new(),
            ltimer_log_cap: 100_000,
        }
    }

    /// The interface this MCP serves.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The protocol parameters.
    pub fn params(&self) -> &McpParams {
        &self.params
    }

    /// The firmware image (exposes the fault-injection code range).
    pub fn firmware(&self) -> &FirmwareImage {
        &self.firmware
    }

    /// Counters.
    pub fn stats(&self) -> McpStats {
        self.stats
    }

    /// LANai busy time per handler category (Table 2's LANai utilization).
    pub fn accounting(&self) -> &BTreeMap<&'static str, SimDuration> {
        &self.account
    }

    /// Total LANai busy time.
    pub fn lanai_busy(&self) -> SimDuration {
        self.account.values().fold(SimDuration::ZERO, |a, d| a + *d)
    }

    /// Recorded `L_timer()` invocation instants (§4.2's gap measurement).
    pub fn ltimer_times(&self) -> &[SimTime] {
        &self.ltimer_times
    }

    /// Boots (or re-boots after a reload): arms IT0, and under FTGM arms
    /// the IT1 watchdog and unmasks its host interrupt.
    pub fn boot(&mut self, now: SimTime) {
        self.booted = true;
        self.busy_until = now;
        self.chip.arm_timer(TimerId::It0, now, self.params.ltimer_ticks);
        if self.params.is_ftgm() && self.params.watchdog_ticks > 0 {
            self.chip
                .arm_timer(TimerId::It1, now, self.params.watchdog_ticks);
            self.chip.set_imr(isr::IT1);
        }
        self.drain_chip_effects();
    }

    /// Installs the route table (mapper output; also the FTD's restore).
    pub fn set_routes(&mut self, routes: RouteTable) {
        self.routes = routes;
    }

    /// Sets the pinned host address where `send_chunk` DMAs its per-chunk
    /// completion record (the driver allocates it at init). Zero disables
    /// the report.
    pub fn set_status_report_addr(&mut self, pa: u64) {
        self.status_report_addr = pa;
    }

    /// Host PIO: opens a port.
    pub fn open_port(&mut self, port: u8) {
        self.ports[port as usize].open = true;
    }

    /// Host PIO: closes a port, dropping its receive tokens and purging
    /// its queued (not yet active) send descriptors. The purge makes the
    /// recovery handler's close-then-open restore re-entrant: a retried
    /// `restore_port_state` replays the backup without doubling whatever
    /// an interrupted earlier attempt already queued.
    pub fn close_port(&mut self, port: u8) {
        let p = &mut self.ports[port as usize];
        p.open = false;
        p.recv_tokens.clear();
        p.epoch += 1;
        let tokens = &mut self.send_token_port;
        for q in [&mut self.send_q_high, &mut self.send_q_low] {
            q.retain(|d| {
                if d.port == port {
                    tokens.remove(&d.token_id);
                    false
                } else {
                    true
                }
            });
        }
        // Re-entry safety: the FAULT_DETECTED handler may run twice for
        // one port under the FTD retry path, with traffic already flowing
        // again. Drop the port's sender-side stream state so replayed
        // sends re-establish their streams at the backup's sequence
        // numbers instead of colliding with the advanced counters (the
        // peer's restored expected-seq counters drop the duplicates).
        if let Some(active) = self.active_send.take() {
            if active.desc.port == port {
                self.send_token_port.remove(&active.desc.token_id);
            } else {
                self.active_send = Some(active);
            }
        }
        let purged: Vec<StreamKey> = self
            .tx_streams
            .keys()
            .filter(|k| k.port == port)
            .copied()
            .collect();
        for key in purged {
            if let Some(s) = self.tx_streams.remove(&key) {
                for c in s.retained() {
                    self.free_tx_slabs.push(c.slab);
                    self.send_token_port.remove(&c.msg_id);
                }
            }
            self.tx_assign_seq.remove(&key);
            self.tx_syn_seq.remove(&key);
        }
        self.pending_resend.retain(|c| c.src_port != port);
    }

    /// Send descriptors queued on the interface but not yet active (tests
    /// and recovery-idempotency checks).
    pub fn queued_sends(&self) -> usize {
        self.send_q_high.len() + self.send_q_low.len()
    }

    /// `true` if `port` is open.
    pub fn port_open(&self, port: u8) -> bool {
        self.ports[port as usize].open
    }

    /// Host PIO: posts a send descriptor and rings the doorbell.
    pub fn post_send(&mut self, desc: SendDesc) {
        debug_assert!(self.ports[desc.port as usize].open, "send on closed port");
        self.send_token_port.insert(desc.token_id, desc.port);
        if desc.prio_high {
            self.send_q_high.push_back(desc);
        } else {
            self.send_q_low.push_back(desc);
        }
        self.chip.ring_doorbell();
        self.drain_chip_effects();
    }

    /// Host PIO: provides a receive buffer on `port`.
    pub fn post_recv_token(&mut self, port: u8, desc: RecvTokenDesc) {
        self.ports[port as usize].recv_tokens.push(desc);
        self.chip.ring_doorbell();
        self.drain_chip_effects();
    }

    /// FTGM recovery: the host restores a receive stream's expected
    /// sequence number ("the last sequence number received on each
    /// stream"). Stale half-assembled messages are discarded; Go-Back-N
    /// brings them back in full.
    ///
    /// The restore is a **forward-only merge** (wrap-aware). A stream is
    /// keyed by the *sending* (node, port, priority) with no receiving
    /// port, so on a multi-process interface the per-process recovery
    /// handlers each restore their own ack-table view of a stream whose
    /// messages interleaved across their ports — and a process that
    /// received earlier messages on the stream holds a stale frontier.
    /// Adopting a stale value would rewind `expected` below the sender's
    /// cumulative ACK; the sender has already released those messages and
    /// can never satisfy the resulting NACK, wedging the stream forever.
    /// The same rule protects traffic accepted live between a re-entrant
    /// handler's two restore passes.
    pub fn restore_receiver_stream(&mut self, key: StreamKey, expected: u32) {
        if let Some(s) = self.rx_streams.get_mut(&key) {
            if expected.wrapping_sub(s.expected()) as i32 <= 0 {
                // The live stream is at or ahead of this backup's view:
                // keep it, along with any in-progress assembly.
                return;
            }
            s.restore(expected);
        } else {
            self.rx_streams.insert(key, ReceiverStream::new(expected));
        }
        self.rx_assembly.remove(&key);
        self.rx_uncommitted.remove(&key);
        self.rx_nack_sent.remove(&key);
    }

    /// Receive-stream frontiers, for tests and state inspection.
    pub fn receiver_expected(&self, key: StreamKey) -> Option<u32> {
        self.rx_streams.get(&key).map(|s| s.expected())
    }

    /// Sender streams holding unacknowledged chunks, for stall diagnosis:
    /// `(key, outstanding, retries, cum_acked, next_seq)`.
    pub fn stalled_tx_streams(&self) -> Vec<(StreamKey, u32, u32, u32, u32)> {
        self.tx_streams
            .iter()
            .filter(|(_, s)| s.outstanding() > 0)
            .map(|(k, s)| (*k, s.outstanding(), s.retries(), s.cum_acked(), s.next_seq()))
            .collect()
    }

    /// Test/experiment hook: forces the network processor to hang.
    pub fn force_hang(&mut self) {
        self.chip.set_hung(HangCause::Forced);
    }

    /// The FTD's reset path: resets the card, clears SRAM, reloads the
    /// pristine firmware image and wipes all protocol state (it lived in
    /// SRAM). Ports close; timers stay disarmed until [`McpMachine::boot`].
    pub fn reset_and_reload(&mut self, image: &[u8]) {
        self.chip.reset();
        self.chip.sram.clear();
        self.chip.sram.write_bytes(layout::CODE_BASE, image);
        self.booted = false;
        self.busy_until = SimTime::ZERO;
        self.reload_count += 1;
        self.ports = Default::default();
        self.send_q_high.clear();
        self.send_q_low.clear();
        self.active_send = None;
        self.tx_assign_seq.clear();
        self.tx_syn_seq.clear();
        self.tx_streams.clear();
        self.rx_streams.clear();
        self.rx_assembly.clear();
        self.rx_uncommitted.clear();
        self.rx_nack_sent.clear();
        self.send_token_port.clear();
        self.free_tx_slabs = (0..layout::SLAB_COUNT).rev().collect();
        self.free_rx_slabs = (0..layout::SLAB_COUNT).rev().collect();
        self.hdma_jobs.clear();
        self.hdma_started = false;
        self.pending_ctrl.clear();
        self.pending_resend.clear();
        self.effects.clear();
    }

    /// A frame arrived from the fabric. A hung chip loses frames (its
    /// packet interface no longer drains buffers).
    pub fn on_frame(&mut self, frame: WireFrame) {
        if self.chip.is_hung() {
            return;
        }
        self.chip.rx_deliver(frame);
        self.drain_chip_effects();
    }

    /// The world finished the outstanding host DMA.
    pub fn host_dma_done(&mut self) {
        self.chip.host_dma_complete();
        self.drain_chip_effects();
    }

    /// The world's timer poll fired; latches expired chip timers into the
    /// ISR (raising the FATAL interrupt if IT1 is unmasked).
    pub fn poll_timers(&mut self, now: SimTime) {
        self.chip.poll_timers(now);
        self.drain_chip_effects();
    }

    /// Earliest chip timer deadline, for the world's poll scheduling.
    pub fn next_timer_deadline(&self) -> Option<SimTime> {
        self.chip.next_timer_deadline()
    }

    /// Drains queued effects.
    pub fn take_effects(&mut self) -> Vec<McpEffect> {
        std::mem::take(&mut self.effects)
    }

    /// When `dispatch` next needs to run: `Some(t)` means call at `t`.
    pub fn needs_dispatch(&self, now: SimTime) -> Option<SimTime> {
        if !self.booted || self.chip.is_hung() || !self.work_pending() {
            return None;
        }
        Some(self.busy_until.max(now))
    }

    fn work_pending(&self) -> bool {
        self.chip.isr() & (isr::IT0 | isr::RX_AVAIL | isr::HDMA_DONE) != 0
            || !self.pending_ctrl.is_empty()
            || !self.pending_resend.is_empty()
            || (!self.hdma_started && !self.hdma_jobs.is_empty())
            || self.staging_would_progress()
    }

    /// Whether the staging handler could actually start a DMA right now.
    fn staging_would_progress(&self) -> bool {
        if self.hdma_started || self.free_tx_slabs.is_empty() {
            return false;
        }
        let next = self.send_q_high.front().or(self.send_q_low.front());
        let key = match (&self.active_send, next) {
            (Some(a), _) => self.tx_key(a.desc.dst_node, a.desc.port, a.desc.prio_high),
            (None, Some(d)) => self.tx_key(d.dst_node, d.port, d.prio_high),
            (None, None) => return false,
        };
        self.tx_streams
            .get(&key)
            .map(|s| s.window_open(self.params.window))
            .unwrap_or(true)
    }

    /// Runs at most one handler. Returns `true` if one ran.
    pub fn dispatch(&mut self, now: SimTime) -> bool {
        if !self.booted || self.chip.is_hung() || now < self.busy_until {
            return false;
        }
        let cost;
        if self.chip.isr() & isr::HDMA_DONE != 0 {
            // DMA-engine progress first: the engine is autonomous on real
            // silicon, so its completions/starts must not queue behind
            // protocol chatter.
            self.chip.clear_isr(isr::HDMA_DONE);
            cost = self.handle_hdma_done(now);
        } else if !self.hdma_started && !self.hdma_jobs.is_empty() {
            cost = self.start_next_hdma();
        } else if let Some(ctrl) = self.pending_ctrl.pop_front() {
            cost = self.handle_ctrl_tx(ctrl);
        } else if let Some(rec) = self.pending_resend.pop_front() {
            cost = self.handle_resend(rec);
        } else if self.chip.isr() & isr::IT0 != 0 {
            // L_timer() waits behind queued engine/protocol work — the MCP
            // serialization that stretches its invocation gap toward the
            // ~800us worst case of §4.2.
            self.chip.clear_isr(isr::IT0);
            cost = self.handle_ltimer(now);
        } else if self.chip.isr() & isr::RX_AVAIL != 0 {
            cost = self.handle_rx(now);
        } else if self.staging_would_progress() {
            self.chip.clear_isr(isr::DOORBELL);
            cost = self.handle_stage_next(now);
        } else {
            self.chip.clear_isr(isr::DOORBELL);
            return false;
        }
        self.busy_until = now + self.params.dispatch_overhead + cost;
        self.charge("dispatch", self.params.dispatch_overhead);
        self.drain_chip_effects();
        true
    }

    fn charge(&mut self, cat: &'static str, d: SimDuration) {
        *self.account.entry(cat).or_insert(SimDuration::ZERO) += d;
    }

    // --- handlers ---------------------------------------------------------

    /// `L_timer()`: housekeeping, retransmit scan, timer re-arm. Under
    /// FTGM the re-arm of IT1 here is the watchdog's liveness pulse.
    fn handle_ltimer(&mut self, now: SimTime) -> SimDuration {
        self.stats.ltimer_runs += 1;
        // Clear the FTD's liveness probe: only a running MCP gets here.
        self.chip
            .sram
            .write_u32(layout::MAGIC_WORD, 0)
            .expect("magic word in range");
        if self.ltimer_times.len() < self.ltimer_log_cap {
            self.ltimer_times.push(now);
        }
        let mut failed_keys: Vec<StreamKey> = Vec::new();
        for (key, s) in self.tx_streams.iter_mut() {
            if let Some(chunks) = s.check_timeout(now, self.params.rto) {
                if s.retries() > self.params.retry_limit {
                    failed_keys.push(*key);
                } else {
                    self.pending_resend.extend(chunks);
                }
            }
        }
        for key in failed_keys {
            if let Some(s) = self.tx_streams.remove(&key) {
                let mut ids: Vec<u64> = Vec::new();
                for c in s.retained() {
                    self.free_tx_slabs.push(c.slab);
                    if !ids.contains(&c.msg_id) {
                        ids.push(c.msg_id);
                    }
                }
                for id in ids {
                    self.stats.send_errors += 1;
                    self.post_token_event(id, NicEvent::SendError { token_id: id });
                }
            }
            self.tx_assign_seq.remove(&key);
        }
        self.chip
            .arm_timer(TimerId::It0, now, self.params.ltimer_ticks);
        if self.params.is_ftgm() && self.params.watchdog_ticks > 0 {
            self.chip
                .arm_timer(TimerId::It1, now, self.params.watchdog_ticks);
        }
        self.charge("ltimer", self.params.ltimer_body);
        self.params.ltimer_body
    }

    fn handle_ctrl_tx(&mut self, (key, ptype, seq): (StreamKey, PacketType, u32)) -> SimDuration {
        let port_field = if key.port == StreamKey::CONNECTION_PORT {
            0
        } else {
            key.port
        };
        let frame =
            Header::control_frame_prio(ptype, self.node, port_field, 0, seq, key.prio_high);
        self.transmit(key.node, frame);
        self.charge("ack_build", self.params.ack_build);
        self.params.ack_build
    }

    fn handle_resend(&mut self, rec: ChunkRecord) -> SimDuration {
        // Resend only chunks still retained (an ACK may have released
        // them between scheduling and execution).
        let key = self.tx_key(rec.dst_node, rec.src_port, rec.prio_high);
        let still = self
            .tx_streams
            .get(&key)
            .is_some_and(|s| s.retained().any(|c| c.seq == rec.seq));
        if !still {
            return SimDuration::from_nanos(100);
        }
        self.stats.retransmits += 1;
        self.run_send_chunk(&rec, true)
    }

    fn handle_rx(&mut self, now: SimTime) -> SimDuration {
        let Some(frame) = self.chip.rx_pop() else {
            return SimDuration::from_nanos(100);
        };
        let mut cost = self.params.rx_process;
        if self.params.is_ftgm() {
            cost += self.params.ftgm_recv_extra;
            self.charge("ftgm_recv_extra", self.params.ftgm_recv_extra);
        }
        self.charge("rx", self.params.rx_process);
        match Header::parse(&frame.bytes) {
            Err(_) => {
                self.stats.parse_drops += 1;
            }
            Ok((h, payload)) => match h.ptype {
                PacketType::Data => {
                    let payload = payload.to_vec();
                    self.handle_data(h, payload);
                }
                PacketType::Ack => {
                    self.handle_ack(now, h);
                    self.charge("ack_process", self.params.ack_process);
                    cost += self.params.ack_process;
                }
                PacketType::Nack => {
                    self.handle_nack(h);
                    self.charge("ack_process", self.params.ack_process);
                    cost += self.params.ack_process;
                }
            },
        }
        cost
    }

    fn handle_data(&mut self, h: Header, payload: Vec<u8>) {
        // Packets to a closed port are dropped without touching stream
        // state: between an MCP reload and the port's transparent
        // recovery, arriving retransmissions must not fabricate fresh
        // sequence state (that would unleash a NACK storm).
        if h.dst_port >= PORTS_PER_NODE || !self.ports[h.dst_port as usize].open {
            self.stats.no_token_drops += 1;
            return;
        }
        let key = self.rx_key(&h);
        if !self.rx_streams.contains_key(&key) {
            // A brand-new stream may only synchronize from a SYN chunk —
            // the sender's stream-establishing sequence number. Anything
            // else is dropped stateless: adopting an arbitrary first-seen
            // sequence could silently skip a dropped earlier message.
            if !h.syn || h.chunk_offset != 0 {
                self.stats.no_token_drops += 1;
                return;
            }
            self.rx_streams.insert(key, ReceiverStream::new(h.seq));
        } else if h.syn
            && h.chunk_offset == 0
            && !self.host_owns_seqs()
            && self.rx_streams[&key].expected() != h.seq
        {
            // GM semantics: a SYN on a known stream means the peer's MCP
            // re-established the connection (e.g. after a naive reload).
            // GM resynchronizes — and thereby accepts duplicates of
            // anything delivered before the reset (Figure 4's flaw).
            // FTGM's host-owned streams never do this.
            self.rx_streams.insert(key, ReceiverStream::new(h.seq));
            self.rx_assembly.remove(&key);
            self.rx_uncommitted.remove(&key);
            self.rx_nack_sent.remove(&key);
        }
        let stream = self.rx_streams.get_mut(&key).expect("just ensured");
        match stream.classify(h.seq) {
            RxVerdict::Duplicate => {
                self.stats.duplicates += 1;
                let ack = self.committed_frontier(key);
                self.queue_ctrl(key, PacketType::Ack, ack);
                return;
            }
            RxVerdict::OutOfOrder => {
                let expected = self.rx_streams[&key].expected();
                // Suppress repeat NACKs for the same stall point: one per
                // gap, re-armed once the stream advances.
                if self.rx_nack_sent.get(&key) != Some(&expected) {
                    self.rx_nack_sent.insert(key, expected);
                    self.stats.nacks_sent += 1;
                    self.queue_ctrl(key, PacketType::Nack, expected);
                }
                return;
            }
            RxVerdict::Accept => {}
        }
        // First chunk of a message: match a receive token.
        if h.chunk_offset == 0 {
            self.rx_assembly.remove(&key); // discard any stale half-message
            let Some(token) = self.match_recv_token(h.dst_port, h.msg_len, h.prio_high) else {
                self.stats.no_token_drops += 1;
                return; // don't advance; sender will retransmit
            };
            self.rx_assembly.insert(
                key,
                RxAssembly {
                    token,
                    port: h.dst_port,
                    msg_len: h.msg_len,
                    src_node: h.src_node,
                    src_port: h.src_port,
                    prio_high: h.prio_high,
                },
            );
        }
        let Some(asm) = self.rx_assembly.get(&key) else {
            // Mid-message chunk with no assembly (we recovered, or the
            // first chunk lacked a token): drop; Go-Back-N restarts the
            // message from its first chunk.
            self.stats.no_token_drops += 1;
            return;
        };
        if h.chunk_offset + h.payload_len > asm.msg_len
            || asm.msg_len > asm.token.capacity
        {
            self.stats.parse_drops += 1;
            self.rx_assembly.remove(&key);
            return;
        }
        let Some(rx_slab) = self.free_rx_slabs.pop() else {
            self.stats.no_token_drops += 1;
            return;
        };
        let dst_host_addr = asm.token.host_addr + h.chunk_offset as u64;

        // Accept.
        self.rx_streams
            .get_mut(&key)
            .expect("stream exists")
            .advance();
        self.rx_nack_sent.remove(&key);
        self.stats.data_rx_accepted += 1;
        self.chip.sram.write_bytes(rx_slab_addr(rx_slab), &payload);

        let completion = if h.last_chunk {
            let asm = self.rx_assembly.remove(&key).expect("assembly exists");
            self.stats.messages_delivered += 1;
            Some((
                asm.port,
                NicEvent::Received {
                    src_node: asm.src_node,
                    src_port: asm.src_port,
                    token_id: asm.token.token_id,
                    len: asm.msg_len,
                    seq: h.seq,
                    prio_high: asm.prio_high,
                },
            ))
        } else {
            None
        };

        // ACK policy. Under FTGM with the delayed commit point, a final
        // chunk's ACK waits for its delivery DMA; everything else ACKs at
        // acceptance, clamped to the committed frontier.
        let delay_this_ack = self.params.is_ftgm()
            && self.params.knobs.delayed_commit_ack
            && h.last_chunk;
        let commits_final = if delay_this_ack {
            self.rx_uncommitted.entry(key).or_default().insert(h.seq);
            Some(h.seq)
        } else {
            let ack = self.committed_frontier(key);
            self.queue_ctrl(key, PacketType::Ack, ack);
            None
        };

        self.hdma_jobs.push_back(HdmaJob::Deliver {
            req: HostDmaReq {
                dir: HostDmaDir::SramToHost,
                host_addr: dst_host_addr,
                sram_addr: rx_slab_addr(rx_slab),
                len: h.payload_len,
            },
            rx_slab,
            stream: key,
            commits_final,
            completion,
        });
        self.charge("rdma_setup", self.params.rdma_setup);
    }

    /// The highest ACK value this stream may advertise: its expected
    /// frontier, clamped below the oldest uncommitted final chunk.
    fn committed_frontier(&self, key: StreamKey) -> u32 {
        let expected = self
            .rx_streams
            .get(&key)
            .map(|s| s.expected())
            .unwrap_or(0);
        match self.rx_uncommitted.get(&key).and_then(|s| s.iter().next()) {
            Some(&oldest_final) => oldest_final,
            None => expected,
        }
    }

    fn handle_ack(&mut self, now: SimTime, h: Header) {
        let key = self.ack_key(&h);
        if let Some(s) = self.tx_streams.get_mut(&key) {
            let out = s.on_ack(h.seq, now);
            for id in out.completed {
                self.stats.sends_completed += 1;
                self.post_token_event(id, NicEvent::SendCompleted { token_id: id });
            }
            self.free_tx_slabs.extend(out.freed_slabs);
        }
    }

    fn handle_nack(&mut self, h: Header) {
        let key = self.ack_key(&h);
        if !self.host_owns_seqs() {
            // GM-style resync: a NACK naming a sequence outside our window
            // means the two ends disagree about the stream (e.g. we
            // reloaded and renumbered). GM adopts the receiver's expected
            // number and renumbers its retained chunks — the exact move
            // that makes Figure 4's receiver accept duplicates.
            let out_of_window = self.tx_streams.get(&key).is_some_and(|s| {
                h.seq.wrapping_sub(s.cum_acked()) > s.next_seq().wrapping_sub(s.cum_acked())
            });
            if out_of_window {
                if let Some(s) = self.tx_streams.get_mut(&key) {
                    let renumbered = s.renumber_from(h.seq);
                    self.tx_assign_seq
                        .insert(key, h.seq.wrapping_add(renumbered.len() as u32));
                    self.pending_resend
                        .retain(|c| c.dst_node != key.node);
                    self.pending_resend.extend(renumbered);
                }
                return;
            }
        }
        if let Some(s) = self.tx_streams.get(&key) {
            let rewind = s.rewind_from(h.seq);
            // A rewind supersedes whatever retransmissions were already
            // queued for this stream — extending instead would amplify
            // NACK bursts exponentially.
            let keys: Vec<u32> = rewind.iter().map(|c| c.seq).collect();
            self.pending_resend.retain(|c| {
                !(c.dst_node == key.node && keys.contains(&c.seq))
            });
            self.pending_resend.extend(rewind);
        }
    }

    fn handle_hdma_done(&mut self, _now: SimTime) -> SimDuration {
        if !self.hdma_started {
            // A firmware-initiated DMA (the completion-record write)
            // finished; no dispatcher job is attached to it.
            return SimDuration::from_nanos(100);
        }
        self.hdma_started = false;
        let Some(job) = self.hdma_jobs.pop_front() else {
            return SimDuration::from_nanos(100);
        };
        // Chain the next DMA immediately: the engine is autonomous and
        // must not idle across a dispatch slot while work is queued.
        let chain = if let Some(next) = self.hdma_jobs.front() {
            if self.chip.hdma_busy() {
                SimDuration::ZERO // a firmware DMA holds the engine
            } else {
                self.hdma_started = true;
                self.chip.start_host_dma(next.req());
                SimDuration::from_nanos(100)
            }
        } else {
            SimDuration::ZERO
        };
        let cost = match job {
            HdmaJob::Stage { rec, stream, epoch, .. } => {
                if epoch != self.ports[rec.src_port as usize].epoch {
                    // The port was closed (recovery re-entry) after this
                    // chunk was staged; its stream is gone and the backup
                    // replay owns retransmission. Drop it on the floor.
                    self.free_tx_slabs.push(rec.slab);
                    SimDuration::from_nanos(100)
                } else {
                    let cost = self.run_send_chunk(&rec, false);
                    let now_seq = rec.seq;
                    self.tx_streams
                        .entry(stream)
                        .or_insert_with(|| SenderStream::new(now_seq, SimTime::ZERO))
                        .admit(rec);
                    cost
                }
            }
            HdmaJob::Deliver {
                rx_slab,
                stream,
                commits_final,
                completion,
                ..
            } => {
                self.free_rx_slabs.push(rx_slab);
                if let Some(final_seq) = commits_final {
                    // FTGM commit point: the message is in the user buffer;
                    // only now may its ACK leave (Figure 5's fix).
                    if let Some(set) = self.rx_uncommitted.get_mut(&stream) {
                        set.remove(&final_seq);
                        if set.is_empty() {
                            self.rx_uncommitted.remove(&stream);
                        }
                    }
                    let ack = self.committed_frontier(stream);
                    self.queue_ctrl(stream, PacketType::Ack, ack);
                }
                if let Some((port, event)) = completion {
                    self.effects.push(McpEffect::PostEvent { port, event });
                    self.charge("event_post", self.params.event_post);
                    self.params.event_post
                } else {
                    SimDuration::from_nanos(200)
                }
            }
        };
        cost + chain
    }

    fn start_next_hdma(&mut self) -> SimDuration {
        if self.chip.hdma_busy() {
            // A firmware-initiated DMA holds the engine; retry after it
            // completes.
            return SimDuration::from_nanos(100);
        }
        if let Some(job) = self.hdma_jobs.front() {
            self.hdma_started = true;
            self.chip.start_host_dma(job.req());
        }
        SimDuration::from_nanos(200)
    }

    /// Stages the next chunk of the active (or next queued) send.
    fn handle_stage_next(&mut self, now: SimTime) -> SimDuration {
        if self.active_send.is_none() {
            let desc = self.send_q_high.pop_front().or_else(|| self.send_q_low.pop_front());
            let Some(desc) = desc else {
                return SimDuration::from_nanos(100);
            };
            let key = self.tx_key(desc.dst_node, desc.port, desc.prio_high);
            let stream_is_new = !self.tx_streams.contains_key(&key);
            let first_seq = match (self.host_owns_seqs(), desc.first_seq) {
                (true, Some(s)) => s,
                _ => {
                    let init = self.gm_initial_seq(key);
                    *self.tx_assign_seq.entry(key).or_insert(init)
                }
            };
            self.tx_assign_seq.insert(key, first_seq);
            if stream_is_new {
                // The chunk carrying this sequence establishes the stream
                // at the receiver.
                self.tx_syn_seq.insert(key, first_seq);
            }
            self.tx_streams
                .entry(key)
                .or_insert_with(|| SenderStream::new(first_seq, now));
            self.active_send = Some(ActiveSend {
                desc,
                next_offset: 0,
                cursor: ChunkCursor::new(first_seq),
            });
        }
        let Some(slab) = self.free_tx_slabs.pop() else {
            return SimDuration::from_nanos(100);
        };
        let (key_node, key_port, key_prio) = {
            let a = self.active_send.as_ref().expect("ensured above");
            (a.desc.dst_node, a.desc.port, a.desc.prio_high)
        };
        let key_for_syn = self.tx_key(key_node, key_port, key_prio);
        let syn_seq = self.tx_syn_seq.get(&key_for_syn).copied();
        let active = self.active_send.as_mut().expect("ensured above");
        let off = active.next_offset;
        let len = (active.desc.len - off).min(self.params.max_chunk);
        let last = off + len == active.desc.len;
        let syn = syn_seq == Some(active.cursor.seq());
        let rec = ChunkRecord {
            seq: active.cursor.seq(),
            msg_id: active.desc.token_id,
            slab,
            len,
            msg_len: active.desc.len,
            chunk_offset: off,
            last,
            syn,
            dst_node: active.desc.dst_node,
            dst_port: active.desc.dst_port,
            src_port: active.desc.port,
            prio_high: active.desc.prio_high,
        };
        let host_addr = active.desc.host_addr + off as u64;
        active.next_offset += len;
        active.cursor.advance();
        if last {
            self.active_send = None;
        }
        let key = self.tx_key(key_node, key_port, key_prio);
        self.tx_assign_seq.insert(key, rec.seq.wrapping_add(1));
        self.hdma_jobs.push_back(HdmaJob::Stage {
            req: HostDmaReq {
                dir: HostDmaDir::HostToSram,
                host_addr,
                sram_addr: FirmwareImage::slab_addr(rec.slab),
                len,
            },
            epoch: self.ports[rec.src_port as usize].epoch,
            rec,
            stream: key,
        });
        let mut cost = self.params.sdma_setup;
        self.charge("sdma_setup", self.params.sdma_setup);
        if self.params.is_ftgm() {
            cost += self.params.ftgm_send_extra;
            self.charge("ftgm_send_extra", self.params.ftgm_send_extra);
        }
        cost
    }

    /// GM connections negotiate a fresh initial sequence number at (re-)
    /// setup; we derive it deterministically from the endpoints and the
    /// reload generation. This is what makes a naive MCP reload hand the
    /// receiver "invalid" sequence numbers (Figure 4). FTGM's host-owned
    /// streams always start at zero instead.
    fn gm_initial_seq(&self, key: StreamKey) -> u32 {
        let mut x = (self.node.0 as u64) << 48
            | (key.node.0 as u64) << 32
            | (key.port as u64) << 24
            | (key.prio_high as u64) << 23
            | self.reload_count as u64;
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (x ^ (x >> 31)) as u32 & 0x00FF_FFFF | 0x100 // keep well clear of 0
    }

    fn host_owns_seqs(&self) -> bool {
        self.params.variant == Variant::Ftgm && self.params.knobs.host_sequence_numbers
    }

    // --- key derivation -----------------------------------------------------

    fn tx_key(&self, dst: NodeId, src_port: u8, prio_high: bool) -> StreamKey {
        if self.params.variant == Variant::Ftgm && self.params.knobs.host_sequence_numbers {
            StreamKey::per_port(dst, src_port, prio_high)
        } else {
            StreamKey::connection(dst)
        }
    }

    fn rx_key(&self, h: &Header) -> StreamKey {
        if self.params.variant == Variant::Ftgm && self.params.knobs.host_sequence_numbers {
            StreamKey::per_port(h.src_node, h.src_port, h.prio_high)
        } else {
            StreamKey::connection(h.src_node)
        }
    }

    /// Key of *our* sending stream that an ACK/NACK from `h.src_node`
    /// names (its `src_port`/priority fields carry the stream identity).
    fn ack_key(&self, h: &Header) -> StreamKey {
        if self.params.variant == Variant::Ftgm && self.params.knobs.host_sequence_numbers {
            StreamKey::per_port(h.src_node, h.src_port, h.prio_high)
        } else {
            StreamKey::connection(h.src_node)
        }
    }

    // --- helpers -----------------------------------------------------------

    fn queue_ctrl(&mut self, key: StreamKey, ptype: PacketType, seq: u32) {
        self.pending_ctrl.push_back((key, ptype, seq));
    }

    /// Runs the `send_chunk` firmware for `rec`, emitting transmit
    /// effects. Returns the handler cost (firmware cycles at the core
    /// clock).
    fn run_send_chunk(&mut self, rec: &ChunkRecord, resend: bool) -> SimDuration {
        let sr = layout::SENDREC;
        use layout::sendrec as o;
        let mut flag_bits = 0;
        if rec.last {
            flag_bits |= flags::LAST_CHUNK;
        }
        if rec.prio_high {
            flag_bits |= flags::PRIO_HIGH;
        }
        if rec.syn {
            flag_bits |= flags::SYN;
        }
        let stream = stream_word(self.node, rec.src_port, rec.dst_port, flag_bits);
        let stage = FirmwareImage::slab_addr(rec.slab);
        let w = |chip: &mut LanaiChip, a: u32, v: u32| {
            chip.sram
                .write_u32(a, v)
                .expect("send record region is in range");
        };
        w(&mut self.chip, sr + o::STAGE_ADDR, stage);
        w(&mut self.chip, sr + o::LEN, rec.len);
        w(&mut self.chip, sr + o::SEQ, rec.seq);
        w(&mut self.chip, sr + o::STREAM, stream);
        w(&mut self.chip, sr + o::MSG_LEN, rec.msg_len);
        w(&mut self.chip, sr + o::CHUNK_OFF, rec.chunk_offset);
        w(&mut self.chip, sr + o::HDR_BUF, layout::PKT_BUF);
        w(&mut self.chip, sr + o::STATUS, 0);
        w(
            &mut self.chip,
            sr + o::STATUS_HOST,
            self.status_report_addr as u32,
        );
        self.chip.cpu.set_reg(Reg::LINK, RETURN_ADDR);
        let entry = if resend {
            self.firmware.entry_resend()
        } else {
            self.firmware.entry_send()
        };
        let outcome = self
            .chip
            .run_routine(self.busy_until, entry, self.params.firmware_budget);
        let fw_time = self.params.cycle * outcome.cycles();
        self.charge("send_chunk", fw_time);
        let dst = rec.dst_node;
        for e in self.chip.take_effects() {
            match e {
                ChipEffect::TxFrame(f) => {
                    self.stats.data_tx += 1;
                    self.transmit(dst, f.bytes);
                }
                other => self.route_chip_effect(other),
            }
        }
        fw_time
    }

    fn transmit(&mut self, dst: NodeId, frame: Vec<u8>) {
        // Loopback shortcut: GM supports sending to oneself; the fabric
        // has no NIC→self route, so hand the frame straight back.
        if dst == self.node {
            self.chip.rx_deliver(WireFrame { bytes: frame });
            return;
        }
        let Some(route) = self.routes.route(dst) else {
            return; // no route (mapper not run / table lost): drop
        };
        self.effects.push(McpEffect::Transmit {
            route: route.clone(),
            frame,
        });
    }

    fn match_recv_token(&mut self, port: u8, msg_len: u32, prio_high: bool) -> Option<RecvTokenDesc> {
        let p = &mut self.ports[port as usize];
        if !p.open {
            return None;
        }
        let mut best: Option<usize> = None;
        for (i, t) in p.recv_tokens.iter().enumerate() {
            if t.prio_high == prio_high && t.capacity >= msg_len {
                let better = match best {
                    None => true,
                    Some(b) => t.capacity < p.recv_tokens[b].capacity,
                };
                if better {
                    best = Some(i);
                }
            }
        }
        best.map(|i| p.recv_tokens.remove(i))
    }

    fn post_token_event(&mut self, token_id: u64, event: NicEvent) {
        let port = self
            .send_token_port
            .remove(&token_id)
            .unwrap_or(0);
        self.effects.push(McpEffect::PostEvent { port, event });
    }

    fn route_chip_effect(&mut self, e: ChipEffect) {
        match e {
            ChipEffect::HostInterrupt => self.effects.push(McpEffect::HostInterrupt),
            ChipEffect::StartHostDma(req) => self.effects.push(McpEffect::HostDma(req)),
            ChipEffect::TxFrame(_) => {
                // A TX trigger with no chunk context (stray firmware write
                // after corruption): nothing routable; the bytes die on the
                // wire.
            }
        }
    }

    fn drain_chip_effects(&mut self) {
        for e in self.chip.take_effects() {
            self.route_chip_effect(e);
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::params::McpParams;

    /// A miniature world: two machines, an ideal zero-latency wire, an
    /// ideal host DMA engine. Drives dispatch rounds by hand so tests can
    /// observe each protocol step.
    pub(crate) struct Rig {
        pub(crate) a: McpMachine,
        pub(crate) b: McpMachine,
        pub(crate) now: SimTime,
        /// Events delivered to each side's host.
        pub(crate) events: Vec<(NodeId, u8, NicEvent)>,
        /// Simulated host memory contents per node (flat).
        pub(crate) host_mem: [Vec<u8>; 2],
        /// Every transmitted frame's bytes, in wire order.
        pub(crate) tx_frames: Vec<Vec<u8>>,
    }

    impl Rig {
        pub(crate) fn new(params: McpParams) -> Rig {
            let mut table0 = ftgm_net::RouteTable::default();
            table0.insert(NodeId(1), vec![1]);
            let mut table1 = ftgm_net::RouteTable::default();
            table1.insert(NodeId(0), vec![0]);
            let mut a = McpMachine::new(NodeId(0), params);
            let mut b = McpMachine::new(NodeId(1), params);
            a.set_routes(table0);
            b.set_routes(table1);
            a.boot(SimTime::ZERO);
            b.boot(SimTime::ZERO);
            Rig {
                a,
                b,
                now: SimTime::ZERO,
                events: Vec::new(),
                host_mem: [vec![0u8; 16 << 20], vec![0u8; 16 << 20]],
                tx_frames: Vec::new(),
            }
        }

        fn machine(&mut self, n: usize) -> &mut McpMachine {
            if n == 0 {
                &mut self.a
            } else {
                &mut self.b
            }
        }

        /// Runs dispatch + effect routing until quiescent (or 10k rounds).
        pub(crate) fn settle(&mut self) {
            for _ in 0..10_000 {
                let mut progressed = false;
                for n in 0..2usize {
                    self.now += SimDuration::from_us(2);
                    let now = self.now;
                    let m = self.machine(n);
                    m.poll_timers(now);
                    if m.needs_dispatch(now).is_some() {
                        m.dispatch(now);
                        progressed = true;
                    }
                    for e in self.machine(n).take_effects() {
                        progressed = true;
                        self.route_effect(n, e);
                    }
                }
                if !progressed {
                    return;
                }
            }
            panic!("rig did not settle");
        }

        fn route_effect(&mut self, from: usize, e: McpEffect) {
            match e {
                McpEffect::Transmit { route, frame } => {
                    // Ideal wire: route byte 1 goes to node1, byte 0 to 0.
                    self.tx_frames.push(frame.clone());
                    let dst = route[0] as usize;
                    self.machine(dst).on_frame(WireFrame { bytes: frame });
                }
                McpEffect::HostDma(req) => {
                    // Ideal DMA: move bytes instantly.
                    match req.dir {
                        HostDmaDir::HostToSram => {
                            let data = self.host_mem[from]
                                [req.host_addr as usize..(req.host_addr + req.len as u64) as usize]
                                .to_vec();
                            self.machine(from).chip.sram.write_bytes(req.sram_addr, &data);
                        }
                        HostDmaDir::SramToHost => {
                            let data = self.machine(from)
                                .chip
                                .sram
                                .read_bytes(req.sram_addr, req.len as usize)
                                .to_vec();
                            self.host_mem[from]
                                [req.host_addr as usize..(req.host_addr + req.len as u64) as usize]
                                .copy_from_slice(&data);
                        }
                    }
                    self.machine(from).host_dma_done();
                }
                McpEffect::PostEvent { port, event } => {
                    self.events.push((NodeId(from as u16), port, event));
                }
                McpEffect::HostInterrupt => {}
            }
        }

        fn send(&mut self, from: usize, port: u8, dst: NodeId, dst_port: u8, data: &[u8], token: u64, first_seq: Option<u32>) {
            self.host_mem[from][0x10000..0x10000 + data.len()].copy_from_slice(data);
            let desc = SendDesc {
                token_id: token,
                port,
                dst_node: dst,
                dst_port,
                host_addr: 0x10000,
                len: data.len() as u32,
                prio_high: false,
                first_seq,
            };
            self.machine(from).post_send(desc);
        }

        pub(crate) fn provide(&mut self, on: usize, port: u8, token: u64, capacity: u32) {
            self.provide_prio(on, port, token, capacity, false);
        }

        pub(crate) fn provide_prio(&mut self, on: usize, port: u8, token: u64, capacity: u32, prio: bool) {
            let desc = RecvTokenDesc {
                token_id: token,
                host_addr: 0x40000 + (token % 64) * 0x20000,
                capacity,
                prio_high: prio,
            };
            self.machine(on).post_recv_token(port, desc);
        }

        #[allow(clippy::too_many_arguments)]
        pub(crate) fn send_prio(
            &mut self,
            from: usize,
            port: u8,
            dst: NodeId,
            dst_port: u8,
            data: &[u8],
            token: u64,
            first_seq: Option<u32>,
            prio: bool,
        ) {
            let base = 0x10000 + (token % 32) as usize * 0x8000;
            self.host_mem[from][base..base + data.len()].copy_from_slice(data);
            let desc = SendDesc {
                token_id: token,
                port,
                dst_node: dst,
                dst_port,
                host_addr: base as u64,
                len: data.len() as u32,
                prio_high: prio,
                first_seq,
            };
            self.machine(from).post_send(desc);
        }
    }

    fn rigs() -> Vec<Rig> {
        vec![Rig::new(McpParams::gm()), Rig::new(McpParams::ftgm())]
    }

    #[test]
    fn single_message_send_receive_events() {
        for mut rig in rigs() {
            rig.a.open_port(0);
            rig.b.open_port(2);
            rig.provide(1, 2, 100, 4096);
            let payload: Vec<u8> = (0..500u32).map(|i| i as u8).collect();
            rig.send(0, 0, NodeId(1), 2, &payload, 7, Some(0));
            rig.settle();
            // Receiver got the message event with the right token.
            let recv = rig
                .events
                .iter()
                .find(|(n, _, e)| *n == NodeId(1) && matches!(e, NicEvent::Received { .. }))
                .expect("received event");
            if let NicEvent::Received { token_id, len, .. } = recv.2 {
                assert_eq!(token_id, 100);
                assert_eq!(len, 500);
            }
            // Sender got its completion.
            assert!(rig.events.iter().any(|(n, _, e)| *n == NodeId(0)
                && matches!(e, NicEvent::SendCompleted { token_id: 7 })));
            // Payload landed in the receiver's host memory at the token's
            // buffer address.
            let base = 0x40000 + (100 % 64) * 0x20000;
            assert_eq!(&rig.host_mem[1][base..base + 500], &payload[..]);
        }
    }

    #[test]
    fn multi_chunk_fragmentation_and_reassembly() {
        for mut rig in rigs() {
            rig.a.open_port(0);
            rig.b.open_port(2);
            rig.provide(1, 2, 100, 20_000);
            let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
            rig.send(0, 0, NodeId(1), 2, &payload, 7, Some(0));
            rig.settle();
            assert_eq!(rig.a.stats().data_tx, 3, "3 chunks for 10000 bytes");
            assert_eq!(rig.b.stats().messages_delivered, 1);
            let base = 0x40000 + (100 % 64) * 0x20000;
            assert_eq!(&rig.host_mem[1][base..base + 10_000], &payload[..]);
        }
    }

    #[test]
    fn no_receive_token_stalls_until_provided() {
        for mut rig in rigs() {
            rig.a.open_port(0);
            rig.b.open_port(2);
            rig.send(0, 0, NodeId(1), 2, &[9u8; 100], 7, Some(0));
            rig.settle();
            assert_eq!(rig.b.stats().messages_delivered, 0);
            assert!(rig.b.stats().no_token_drops > 0);
            // Providing the buffer lets the retransmission complete.
            rig.provide(1, 2, 100, 4096);
            // Force a retransmission round: jump past the RTO.
            rig.now += SimDuration::from_ms(40);
            rig.settle();
            rig.now += SimDuration::from_ms(40);
            rig.settle();
            assert_eq!(rig.b.stats().messages_delivered, 1);
        }
    }

    #[test]
    fn duplicate_frames_are_dropped_and_reacked() {
        for mut rig in rigs() {
            rig.a.open_port(0);
            rig.b.open_port(2);
            rig.provide(1, 2, 100, 4096);
            rig.provide(1, 2, 101, 4096);
            rig.send(0, 0, NodeId(1), 2, &[1u8; 64], 7, Some(0));
            rig.settle();
            // Replay the exact same wire frame at the receiver (the
            // original sequence number is one below the stream frontier).
            let key = if rig.b.params().is_ftgm() {
                StreamKey::per_port(NodeId(0), 0, false)
            } else {
                StreamKey::connection(NodeId(0))
            };
            let seq = rig.b.receiver_expected(key).unwrap().wrapping_sub(1);
            let fw = crate::packet::build_data_frame(
                NodeId(0),
                0,
                2,
                seq,
                64,
                0,
                crate::packet::flags::LAST_CHUNK,
                &[1u8; 64],
            );
            rig.b.on_frame(WireFrame { bytes: fw });
            rig.settle();
            assert_eq!(rig.b.stats().messages_delivered, 1, "no duplicate delivery");
        }
    }

    #[test]
    fn corrupted_frame_counted_and_dropped() {
        for mut rig in rigs() {
            rig.b.open_port(2);
            let mut frame = crate::packet::build_data_frame(
                NodeId(0),
                0,
                2,
                0,
                64,
                0,
                crate::packet::flags::LAST_CHUNK,
                &[5u8; 64],
            );
            frame[40] ^= 0x10;
            rig.b.on_frame(WireFrame { bytes: frame });
            rig.settle();
            assert_eq!(rig.b.stats().parse_drops, 1);
            assert_eq!(rig.b.stats().messages_delivered, 0);
        }
    }

    #[test]
    fn closed_port_drops_without_stream_state() {
        for mut rig in rigs() {
            let frame = crate::packet::build_data_frame(
                NodeId(0),
                0,
                5, // port 5 is closed
                0,
                64,
                0,
                crate::packet::flags::LAST_CHUNK | crate::packet::flags::SYN,
                &[5u8; 64],
            );
            rig.b.on_frame(WireFrame { bytes: frame });
            rig.settle();
            assert_eq!(rig.b.stats().no_token_drops, 1);
            assert_eq!(rig.b.stats().nacks_sent, 0, "no NACK for closed ports");
        }
    }

    #[test]
    fn hung_machine_stops_dispatching_but_timers_run() {
        let mut rig = Rig::new(McpParams::ftgm());
        rig.a.open_port(0);
        rig.a.force_hang();
        rig.send(0, 0, NodeId(1), 2, &[1u8; 10], 1, Some(0));
        // needs_dispatch refuses work while hung.
        assert!(rig.a.needs_dispatch(rig.now + SimDuration::from_ms(1)).is_none());
        // Timers still latch: IT1 eventually raises the FATAL bit.
        let later = rig.now + SimDuration::from_ms(2);
        rig.a.poll_timers(later);
        assert_ne!(rig.a.chip.isr() & ftgm_lanai::chip::isr::IT1, 0);
    }

    #[test]
    fn reset_and_reload_wipes_protocol_state() {
        let mut rig = Rig::new(McpParams::ftgm());
        rig.a.open_port(0);
        rig.b.open_port(2);
        rig.provide(1, 2, 100, 4096);
        rig.send(0, 0, NodeId(1), 2, &[3u8; 256], 7, Some(0));
        rig.settle();
        let image = rig.a.firmware().bytes().to_vec();
        rig.a.force_hang();
        rig.a.reset_and_reload(&image);
        assert!(!rig.a.chip.is_hung());
        assert!(!rig.a.port_open(0), "ports close on reload");
        assert_eq!(rig.a.receiver_expected(StreamKey::per_port(NodeId(1), 0, false)), None);
        // Boot re-arms timers.
        let now = rig.now;
        rig.a.boot(now);
        assert!(rig.a.next_timer_deadline().is_some());
    }

    #[test]
    fn ltimer_clears_magic_word() {
        let mut rig = Rig::new(McpParams::gm());
        rig.a
            .chip
            .sram
            .write_u32(layout::MAGIC_WORD, 0xDEAD)
            .unwrap();
        rig.now += SimDuration::from_ms(1);
        rig.settle();
        assert_eq!(rig.a.chip.sram.read_u32(layout::MAGIC_WORD).unwrap(), 0);
    }

    #[test]
    fn ftgm_uses_host_sequence_numbers() {
        let mut rig = Rig::new(McpParams::ftgm());
        rig.a.open_port(0);
        rig.b.open_port(2);
        rig.provide(1, 2, 100, 4096);
        rig.provide(1, 2, 101, 4096);
        // Host dictates a starting sequence of 42.
        rig.send(0, 0, NodeId(1), 2, &[1u8; 64], 7, Some(42));
        rig.settle();
        assert_eq!(
            rig.b.receiver_expected(StreamKey::per_port(NodeId(0), 0, false)),
            Some(43)
        );
        // The next message continues the stream.
        rig.send(0, 0, NodeId(1), 2, &[2u8; 64], 8, Some(43));
        rig.settle();
        assert_eq!(
            rig.b.receiver_expected(StreamKey::per_port(NodeId(0), 0, false)),
            Some(44)
        );
        assert_eq!(rig.b.stats().messages_delivered, 2);
    }

    #[test]
    fn gm_streams_are_connection_level() {
        let mut rig = Rig::new(McpParams::gm());
        rig.a.open_port(0);
        rig.a.open_port(3);
        rig.b.open_port(2);
        rig.provide(1, 2, 100, 4096);
        rig.provide(1, 2, 101, 4096);
        // Two different source ports share the connection stream.
        rig.send(0, 0, NodeId(1), 2, &[1u8; 64], 7, None);
        rig.settle();
        rig.send(0, 3, NodeId(1), 2, &[2u8; 64], 8, None);
        rig.settle();
        assert_eq!(rig.b.stats().messages_delivered, 2);
        assert!(rig
            .b
            .receiver_expected(StreamKey::connection(NodeId(0)))
            .is_some());
        assert_eq!(
            rig.b.receiver_expected(StreamKey::per_port(NodeId(0), 0, false)),
            None
        );
    }

    #[test]
    fn restore_receiver_stream_drops_stale_assembly() {
        let mut rig = Rig::new(McpParams::ftgm());
        rig.b.open_port(2);
        rig.provide(1, 2, 100, 20_000);
        // Deliver only the first chunk of a two-chunk message.
        let payload = vec![7u8; 4096];
        let f = crate::packet::build_data_frame(
            NodeId(0),
            0,
            2,
            0,
            8192,
            0,
            crate::packet::flags::SYN,
            &payload,
        );
        rig.b.on_frame(WireFrame { bytes: f });
        rig.settle();
        assert_eq!(rig.b.stats().data_rx_accepted, 1);
        let key = StreamKey::per_port(NodeId(0), 0, false);
        // A restore carrying a stale frontier must NOT rewind the live
        // stream (that would wedge it below the sender's released ACKs) —
        // and must leave the in-progress assembly alone.
        rig.b.restore_receiver_stream(key, 0);
        assert_eq!(rig.b.receiver_expected(key), Some(1));
        // After a card reset the stream is gone; the restore re-creates it
        // fresh, and the half-assembled message died with the SRAM.
        let image = rig.b.firmware().bytes().to_vec();
        rig.b.reset_and_reload(&image);
        rig.b.boot(rig.now);
        rig.b.restore_receiver_stream(key, 1);
        assert_eq!(rig.b.receiver_expected(key), Some(1));
        assert_eq!(rig.b.stats().messages_delivered, 0);
    }

    #[test]
    fn restore_merges_multi_port_views_forward_only() {
        // One sending stream fans out to two receiving ports; each port's
        // recovery handler restores its own (stale or current) ack-table
        // view. The stream must end at the most advanced frontier no
        // matter which handler runs last.
        let mut m = McpMachine::new(NodeId(1), McpParams::ftgm());
        m.boot(SimTime::ZERO);
        let key = StreamKey::per_port(NodeId(0), 2, false);
        m.restore_receiver_stream(key, 3); // port 2's view: saw seq 2 last
        m.restore_receiver_stream(key, 2); // port 1's stale view: saw seq 1
        assert_eq!(m.receiver_expected(key), Some(3), "stale view must not rewind");
        m.restore_receiver_stream(key, 5);
        assert_eq!(m.receiver_expected(key), Some(5), "newer view advances");
        // Wrap-aware: a frontier just past u32::MAX is ahead of one just
        // below it.
        let wkey = StreamKey::per_port(NodeId(0), 3, false);
        m.restore_receiver_stream(wkey, u32::MAX);
        m.restore_receiver_stream(wkey, 1);
        assert_eq!(m.receiver_expected(wkey), Some(1));
        m.restore_receiver_stream(wkey, u32::MAX);
        assert_eq!(m.receiver_expected(wkey), Some(1), "wrapped stale view must not rewind");
    }

    #[test]
    fn lanai_accounting_accumulates_per_category() {
        let mut rig = Rig::new(McpParams::gm());
        rig.a.open_port(0);
        rig.b.open_port(2);
        rig.provide(1, 2, 100, 4096);
        rig.send(0, 0, NodeId(1), 2, &[1u8; 512], 7, None);
        rig.settle();
        let acct = rig.a.accounting();
        for key in ["dispatch", "sdma_setup", "send_chunk"] {
            assert!(acct.contains_key(key), "missing {key}: {acct:?}");
        }
        assert!(rig.a.lanai_busy() > SimDuration::ZERO);
    }
}

#[cfg(test)]
mod priority_tests {
    use super::tests::Rig;
    use super::*;
    use crate::packet::Header;
    use crate::params::McpParams;

    #[test]
    fn high_priority_sends_overtake_queued_low_priority() {
        for params in [McpParams::gm(), McpParams::ftgm()] {
            let mut rig = Rig::new(params);
            rig.a.open_port(0);
            rig.b.open_port(2);
            for t in 0..6 {
                rig.provide_prio(1, 2, 100 + t, 4096, false);
                rig.provide_prio(1, 2, 110 + t, 4096, true);
            }
            // Queue four low-priority messages, then one high-priority one,
            // all before any dispatch runs.
            for i in 0..4u64 {
                rig.send_prio(
                    0,
                    0,
                    NodeId(1),
                    2,
                    &[i as u8 + 1; 64],
                    i,
                    Some(i as u32),
                    false,
                );
            }
            rig.send_prio(0, 0, NodeId(1), 2, &[0xEE; 64], 99, Some(0), true);
            rig.settle();
            assert_eq!(rig.b.stats().messages_delivered, 5);
            // The high-priority frame must be the first data frame out.
            let first_payload_byte = rig
                .tx_frames
                .iter()
                .filter_map(|f| {
                    let (h, p) = Header::parse(f).ok()?;
                    (h.ptype == PacketType::Data).then(|| p[0])
                })
                .next()
                .expect("data frames were transmitted");
            assert_eq!(
                first_payload_byte, 0xEE,
                "high priority drained first ({:?})",
                rig.a.params().variant
            );
        }
    }

    #[test]
    fn priorities_are_independent_streams_under_ftgm() {
        let mut rig = Rig::new(McpParams::ftgm());
        rig.a.open_port(0);
        rig.b.open_port(2);
        rig.provide_prio(1, 2, 100, 4096, false);
        rig.provide_prio(1, 2, 101, 4096, true);
        // Both priorities start their own stream at sequence 0.
        rig.send_prio(0, 0, NodeId(1), 2, &[1u8; 64], 1, Some(0), false);
        rig.send_prio(0, 0, NodeId(1), 2, &[2u8; 64], 2, Some(0), true);
        rig.settle();
        assert_eq!(rig.b.stats().messages_delivered, 2);
        assert_eq!(
            rig.b
                .receiver_expected(StreamKey::per_port(NodeId(0), 0, false)),
            Some(1)
        );
        assert_eq!(
            rig.b
                .receiver_expected(StreamKey::per_port(NodeId(0), 0, true)),
            Some(1)
        );
    }
}
