#![warn(missing_docs)]

//! The **Myrinet Control Program** (MCP) model.
//!
//! The MCP is the firmware GM loads onto the LANai: it owns the send and
//! receive data paths, fragments messages into ≤4 KB packets, runs a
//! Go-Back-N protocol per connection for reliable in-order delivery, posts
//! events into host receive queues, and services its housekeeping timer
//! (`L_timer()`). This crate models it as an event-driven dispatch machine
//! ([`machine::McpMachine`]) around a real [`ftgm_lanai::LanaiChip`], with
//! the paper's fault-injection target — the **`send_chunk`** routine — as
//! genuine interpreted LN32 code in SRAM ([`firmware`]).
//!
//! Both protocol variants live here behind [`params::Variant`]:
//!
//! * **GM** — baseline: MCP-generated per-connection sequence numbers,
//!   ACK at packet acceptance.
//! * **FTGM** — the paper's contribution at the firmware level:
//!   host-generated per-(port, destination) sequence streams, the
//!   delayed message-commit ACK, and `L_timer()` re-arming the IT1
//!   software watchdog.
//!
//! The host-side halves (token backup, the FTD, transparent recovery) live
//! in `ftgm-gm` and `ftgm-core`.

pub mod firmware;
pub mod gobackn;
pub mod machine;
pub mod packet;
pub mod params;

pub use firmware::{layout, FirmwareImage};
pub use gobackn::{ChunkRecord, ReceiverStream, SenderStream, StreamKey};
pub use machine::{
    McpEffect, McpMachine, McpStats, NicEvent, RecvTokenDesc, SendDesc, PORTS_PER_NODE,
};
pub use packet::{Header, PacketType, ParseError};
pub use params::{FtgmKnobs, McpParams, Variant};
