//! The wire packet format.
//!
//! Data packets are *built by firmware* (`send_chunk`) directly in SRAM —
//! that is the point of the fault-injection experiments — and parsed back
//! out of raw bytes by the receiving MCP. ACK/NACK packets are built by the
//! Rust-modelled part of the MCP (the paper injects faults only into
//! `send_chunk`).
//!
//! Layout (little-endian words):
//!
//! ```text
//! +0   magic|type      0x04D59000 | {1=DATA, 2=ACK, 3=NACK}
//! +4   stream word     src_node[15:0] | src_port[19:16] | dst_port[23:20]
//!                      | prio[24] | last-chunk[25] | resend[26]
//! +8   seq             per-stream packet sequence number
//! +12  msg_len         total message length (DATA)
//! +16  chunk_offset    byte offset of this chunk within the message (DATA)
//! +20  payload_len     bytes following the header (DATA; 0 for ACK/NACK)
//! +24  payload cksum   additive word checksum of the payload
//! +28  header cksum    additive word checksum of words +0..+24
//! +32  payload...
//! ```
//!
//! The two checksums are the NIC-level integrity check: a corrupted
//! `send_chunk` that writes wrong bytes *and* sums them consistently
//! produces a silently-corrupt packet (Table 1's "messages corrupted"
//! category); one that breaks the sums produces a receiver-side drop.

use ftgm_net::NodeId;

/// Wire size of the packet header.
pub const HEADER_LEN: usize = 32;

/// Magic value in the type word.
pub const MAGIC: u32 = 0x04D5_9000;

/// Packet type codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum PacketType {
    /// A data chunk.
    Data = 1,
    /// Cumulative acknowledgement: `seq` = next expected.
    Ack = 2,
    /// Negative acknowledgement: `seq` = next expected (rewind point).
    Nack = 3,
}

/// Stream-word flag bits.
pub mod flags {
    /// High-priority message.
    pub const PRIO_HIGH: u32 = 1 << 24;
    /// This chunk completes its message.
    pub const LAST_CHUNK: u32 = 1 << 25;
    /// This chunk is a retransmission.
    pub const RESEND: u32 = 1 << 26;
    /// This chunk establishes a fresh stream at the sender (its very
    /// first sequence number after stream creation or an MCP reload).
    /// Receivers may only synchronize a stream's expected sequence from a
    /// SYN chunk.
    pub const SYN: u32 = 1 << 27;
}

/// A parsed packet header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Header {
    /// Packet type.
    pub ptype: PacketType,
    /// Originating interface.
    pub src_node: NodeId,
    /// Originating GM port.
    pub src_port: u8,
    /// Destination GM port.
    pub dst_port: u8,
    /// High priority?
    pub prio_high: bool,
    /// Final chunk of its message?
    pub last_chunk: bool,
    /// Retransmission?
    pub resend: bool,
    /// Stream-establishing chunk?
    pub syn: bool,
    /// Stream sequence number (or ack/rewind point).
    pub seq: u32,
    /// Total message length.
    pub msg_len: u32,
    /// This chunk's offset within the message.
    pub chunk_offset: u32,
    /// Payload bytes following the header.
    pub payload_len: u32,
    /// Additive checksum of the payload as claimed by the sender.
    pub payload_cksum: u32,
}

/// Why a received frame failed validation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ParseError {
    /// Shorter than a header.
    Truncated,
    /// Bad magic in the type word.
    BadMagic,
    /// Unknown packet type code.
    BadType(u8),
    /// Header checksum mismatch.
    HeaderChecksum,
    /// Payload length disagrees with the frame length.
    LengthMismatch,
    /// Payload checksum mismatch.
    PayloadChecksum,
}

/// Additive word checksum (matches the chip's checksum unit and the
/// firmware's header loop): little-endian words, tail zero-padded, wrapping.
pub fn word_checksum(data: &[u8]) -> u32 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(4);
    for c in &mut chunks {
        sum = sum.wrapping_add(u32::from_le_bytes([c[0], c[1], c[2], c[3]]));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 4];
        tail[..rem.len()].copy_from_slice(rem);
        sum = sum.wrapping_add(u32::from_le_bytes(tail));
    }
    sum
}

/// Composes a stream word.
pub fn stream_word(src_node: NodeId, src_port: u8, dst_port: u8, flag_bits: u32) -> u32 {
    (src_node.0 as u32)
        | ((src_port as u32 & 0xF) << 16)
        | ((dst_port as u32 & 0xF) << 20)
        | flag_bits
}

impl Header {
    /// Serializes an ACK/NACK-style header (no payload) to wire bytes.
    /// Data packets are built by firmware, not by this function.
    pub fn control_frame(
        ptype: PacketType,
        src_node: NodeId,
        src_port: u8,
        dst_port: u8,
        seq: u32,
    ) -> Vec<u8> {
        Self::control_frame_prio(ptype, src_node, src_port, dst_port, seq, false)
    }

    /// [`Header::control_frame`] for a specific priority class (control
    /// frames identify their stream, and FTGM streams are per-priority).
    pub fn control_frame_prio(
        ptype: PacketType,
        src_node: NodeId,
        src_port: u8,
        dst_port: u8,
        seq: u32,
        prio_high: bool,
    ) -> Vec<u8> {
        assert!(ptype != PacketType::Data, "data frames are built by firmware");
        let fl = if prio_high { flags::PRIO_HIGH } else { 0 };
        let mut bytes = vec![0u8; HEADER_LEN];
        let words = [
            MAGIC | ptype as u32,
            stream_word(src_node, src_port, dst_port, fl),
            seq,
            0,
            0,
            0,
            0, // payload checksum of empty payload
        ];
        for (i, w) in words.iter().enumerate() {
            bytes[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
        let hsum = word_checksum(&bytes[..28]);
        bytes[28..32].copy_from_slice(&hsum.to_le_bytes());
        bytes
    }

    /// Parses and fully validates a received frame, returning the header
    /// and the payload slice.
    ///
    /// # Errors
    ///
    /// Any structural or checksum failure yields a [`ParseError`]; the
    /// receiving MCP drops such frames (GM's transparent handling of
    /// corrupted packets).
    pub fn parse(frame: &[u8]) -> Result<(Header, &[u8]), ParseError> {
        if frame.len() < HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        let word = |i: usize| {
            u32::from_le_bytes([frame[i * 4], frame[i * 4 + 1], frame[i * 4 + 2], frame[i * 4 + 3]])
        };
        let type_word = word(0);
        if type_word & 0xFFFF_FF00 != MAGIC {
            return Err(ParseError::BadMagic);
        }
        // The low byte IS the type field; the magic check above already
        // validated the upper 24 bits. lint:allow(no-truncating-cast)
        let ptype = match type_word as u8 {
            1 => PacketType::Data,
            2 => PacketType::Ack,
            3 => PacketType::Nack,
            t => return Err(ParseError::BadType(t)),
        };
        let claimed_hsum = word(7);
        if word_checksum(&frame[..28]) != claimed_hsum {
            return Err(ParseError::HeaderChecksum);
        }
        let stream = word(1);
        let payload_len = word(5);
        if frame.len() != HEADER_LEN + payload_len as usize {
            return Err(ParseError::LengthMismatch);
        }
        let payload = &frame[HEADER_LEN..];
        let payload_cksum = word(6);
        if word_checksum(payload) != payload_cksum {
            return Err(ParseError::PayloadChecksum);
        }
        Ok((
            Header {
                ptype,
                // Deliberate field extractions from the packed stream
                // word: node id is the low 16 bits, ports are 4-bit
                // fields already masked to range.
                src_node: NodeId(stream as u16), // lint:allow(no-truncating-cast)
                src_port: ((stream >> 16) & 0xF) as u8, // lint:allow(no-truncating-cast)
                dst_port: ((stream >> 20) & 0xF) as u8, // lint:allow(no-truncating-cast)
                prio_high: stream & flags::PRIO_HIGH != 0,
                last_chunk: stream & flags::LAST_CHUNK != 0,
                resend: stream & flags::RESEND != 0,
                syn: stream & flags::SYN != 0,
                seq: word(2),
                msg_len: word(3),
                chunk_offset: word(4),
                payload_len,
                payload_cksum,
            },
            payload,
        ))
    }
}

/// Builds a valid data frame exactly as correct firmware would.
///
/// Used by tests and by reference checks; the production data path builds
/// these bytes in SRAM via `send_chunk` so that fault injection can corrupt
/// them.
#[allow(clippy::too_many_arguments)] // mirrors the wire header fields 1:1
pub fn build_data_frame(
    src_node: NodeId,
    src_port: u8,
    dst_port: u8,
    seq: u32,
    msg_len: u32,
    chunk_offset: u32,
    flag_bits: u32,
    payload: &[u8],
) -> Vec<u8> {
    let mut bytes = vec![0u8; HEADER_LEN + payload.len()];
    let words = [
        MAGIC | PacketType::Data as u32,
        stream_word(src_node, src_port, dst_port, flag_bits),
        seq,
        msg_len,
        chunk_offset,
        payload.len() as u32,
        word_checksum(payload),
    ];
    for (i, w) in words.iter().enumerate() {
        bytes[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
    }
    let hsum = word_checksum(&bytes[..28]);
    bytes[28..32].copy_from_slice(&hsum.to_le_bytes());
    bytes[HEADER_LEN..].copy_from_slice(payload);
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_data_frame_t(
        src_node: NodeId,
        src_port: u8,
        dst_port: u8,
        seq: u32,
        msg_len: u32,
        chunk_offset: u32,
        last: bool,
        payload: &[u8],
    ) -> Vec<u8> {
        let fl = if last { flags::LAST_CHUNK } else { 0 };
        build_data_frame(src_node, src_port, dst_port, seq, msg_len, chunk_offset, fl, payload)
    }

    #[test]
    fn data_frame_roundtrip() {
        let f = build_data_frame_t(NodeId(3), 2, 5, 77, 100, 0, true, &[9u8; 100]);
        let (h, p) = Header::parse(&f).unwrap();
        assert_eq!(h.ptype, PacketType::Data);
        assert_eq!(h.src_node, NodeId(3));
        assert_eq!(h.src_port, 2);
        assert_eq!(h.dst_port, 5);
        assert_eq!(h.seq, 77);
        assert_eq!(h.msg_len, 100);
        assert_eq!(h.chunk_offset, 0);
        assert!(h.last_chunk);
        assert!(!h.resend);
        assert_eq!(p.len(), 100);
    }

    #[test]
    fn control_frame_roundtrip() {
        let f = Header::control_frame(PacketType::Ack, NodeId(1), 4, 0, 42);
        let (h, p) = Header::parse(&f).unwrap();
        assert_eq!(h.ptype, PacketType::Ack);
        assert_eq!(h.seq, 42);
        assert_eq!(h.src_port, 4);
        assert!(p.is_empty());
    }

    #[test]
    #[should_panic(expected = "firmware")]
    fn control_frame_rejects_data() {
        Header::control_frame(PacketType::Data, NodeId(0), 0, 0, 0);
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(Header::parse(&[0; 10]), Err(ParseError::Truncated));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut f = build_data_frame_t(NodeId(0), 0, 0, 0, 4, 0, true, &[1, 2, 3, 4]);
        f[3] = 0xFF;
        assert_eq!(Header::parse(&f), Err(ParseError::BadMagic));
    }

    #[test]
    fn bad_type_rejected() {
        let mut f = Header::control_frame(PacketType::Ack, NodeId(0), 0, 0, 1);
        f[0] = 9; // type byte inside intact magic
        let hsum = word_checksum(&f[..28]);
        f[28..32].copy_from_slice(&hsum.to_le_bytes());
        assert_eq!(Header::parse(&f), Err(ParseError::BadType(9)));
    }

    #[test]
    fn header_corruption_detected() {
        let mut f = build_data_frame_t(NodeId(0), 0, 0, 5, 4, 0, true, &[1, 2, 3, 4]);
        f[8] ^= 0x01; // flip a bit in seq
        assert_eq!(Header::parse(&f), Err(ParseError::HeaderChecksum));
    }

    #[test]
    fn payload_corruption_detected() {
        let mut f = build_data_frame_t(NodeId(0), 0, 0, 5, 4, 0, true, &[1, 2, 3, 4]);
        let n = f.len();
        f[n - 1] ^= 0x80;
        assert_eq!(Header::parse(&f), Err(ParseError::PayloadChecksum));
    }

    #[test]
    fn length_mismatch_detected() {
        let mut f = build_data_frame_t(NodeId(0), 0, 0, 5, 4, 0, true, &[1, 2, 3, 4]);
        f.push(0);
        assert_eq!(Header::parse(&f), Err(ParseError::LengthMismatch));
    }

    #[test]
    fn word_checksum_matches_sram_unit() {
        // Same algorithm as Sram::checksum: word sum with zero-padded tail.
        assert_eq!(word_checksum(&[1, 0, 0, 0, 2, 0, 0, 0]), 3);
        assert_eq!(word_checksum(&[0xFF]), 0xFF);
        assert_eq!(word_checksum(&[]), 0);
    }

    #[test]
    fn stream_word_packs_fields() {
        let w = stream_word(NodeId(0x1234), 3, 7, flags::LAST_CHUNK);
        assert_eq!(w & 0xFFFF, 0x1234);
        assert_eq!((w >> 16) & 0xF, 3);
        assert_eq!((w >> 20) & 0xF, 7);
        assert_ne!(w & flags::LAST_CHUNK, 0);
    }
}
