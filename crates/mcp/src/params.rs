//! MCP timing and protocol parameters.
//!
//! Handler costs are calibrated so a GM data packet consumes ≈6.0 µs of
//! LANai time end-to-end and FTGM ≈6.8 µs, matching Table 2's "LANai
//! utilization" row; the watchdog-related intervals reproduce §4.2 (the
//! `L_timer()` period whose maximum observed gap is ~800 µs).

use ftgm_lanai::CpuBackend;
use ftgm_sim::SimDuration;

/// Which protocol the MCP speaks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Stock GM 1.5.1 semantics: MCP-owned per-connection sequence
    /// numbers, ACK on packet acceptance.
    Gm,
    /// The paper's FTGM: host-supplied per-(port, destination) sequence
    /// streams, message-commit ACK delayed until the receive DMA completes,
    /// IT1 watchdog armed by `L_timer()`.
    Ftgm,
}

/// Ablation switches for FTGM (used by the `ablation_*` benchmarks).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FtgmKnobs {
    /// When `false`, the final-chunk ACK is sent at acceptance time like
    /// GM — re-creating the Figure 5 lost-message window.
    pub delayed_commit_ack: bool,
    /// When `false`, sequence numbers come from the MCP like GM — so a
    /// reload forgets them, re-creating the Figure 4 duplicate window.
    pub host_sequence_numbers: bool,
}

impl Default for FtgmKnobs {
    fn default() -> Self {
        FtgmKnobs {
            delayed_commit_ack: true,
            host_sequence_numbers: true,
        }
    }
}

/// All MCP tunables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct McpParams {
    /// Protocol variant.
    pub variant: Variant,
    /// FTGM ablation switches (ignored in GM mode).
    pub knobs: FtgmKnobs,
    /// LANai core clock period (LANai9 ≈ 132 MHz).
    pub cycle: SimDuration,
    /// Dispatch-loop overhead charged per handler invocation.
    pub dispatch_overhead: SimDuration,
    /// Programming the send (host→SRAM) DMA for one chunk.
    pub sdma_setup: SimDuration,
    /// Receive-path parse + validate cost per packet.
    pub rx_process: SimDuration,
    /// Programming the receive (SRAM→host) DMA for one chunk.
    pub rdma_setup: SimDuration,
    /// Building and transmitting an ACK/NACK in the Rust-modelled path.
    pub ack_build: SimDuration,
    /// Processing an incoming ACK/NACK at the sender.
    pub ack_process: SimDuration,
    /// Posting one event record into a host receive queue.
    pub event_post: SimDuration,
    /// `L_timer()` housekeeping routine body cost.
    pub ltimer_body: SimDuration,
    /// FTGM: extra per-chunk send-side cost (token-seq validation,
    /// resend-map upkeep).
    pub ftgm_send_extra: SimDuration,
    /// FTGM: extra per-chunk receive-side cost (per-(connection,port) ACK
    /// table, delayed-ACK bookkeeping, event seq field).
    pub ftgm_recv_extra: SimDuration,
    /// `L_timer()` re-arm interval in IT0 ticks (0.5 µs each).
    pub ltimer_ticks: u32,
    /// FTGM: IT1 watchdog interval in ticks — "slightly greater" than the
    /// maximum observed `L_timer()` gap (§4.2: ~800 µs).
    pub watchdog_ticks: u32,
    /// Maximum payload bytes per packet (GM fragments at 4 KB).
    pub max_chunk: u32,
    /// Go-Back-N window per stream, in chunks.
    pub window: u32,
    /// Retransmit timeout.
    pub rto: SimDuration,
    /// Retransmission attempts before the send is declared failed.
    pub retry_limit: u32,
    /// Instruction budget per firmware routine invocation.
    pub firmware_budget: u64,
    /// Which LN32 interpreter executes firmware routines. Both backends
    /// are bit-exact by contract (`tests/cpu_equivalence.rs`); `Decoded`
    /// is the default, `Reference` is for differential harnesses.
    pub cpu_backend: CpuBackend,
}

impl McpParams {
    /// Parameters for stock GM.
    pub fn gm() -> McpParams {
        McpParams {
            variant: Variant::Gm,
            knobs: FtgmKnobs::default(),
            cycle: SimDuration::from_nanos(8),
            dispatch_overhead: SimDuration::from_nanos(250),
            sdma_setup: SimDuration::from_nanos(700),
            rx_process: SimDuration::from_nanos(900),
            rdma_setup: SimDuration::from_nanos(700),
            ack_build: SimDuration::from_nanos(400),
            ack_process: SimDuration::from_nanos(400),
            event_post: SimDuration::from_nanos(500),
            ltimer_body: SimDuration::from_us(6),
            ftgm_send_extra: SimDuration::ZERO,
            ftgm_recv_extra: SimDuration::ZERO,
            ltimer_ticks: 1_600,   // 800us: the paper's observed max gap
            watchdog_ticks: 0,     // GM arms no watchdog
            max_chunk: 4_096,
            window: 64,
            rto: SimDuration::from_ms(30),
            retry_limit: 200,
            firmware_budget: 20_000,
            cpu_backend: CpuBackend::default(),
        }
    }

    /// Parameters for FTGM.
    pub fn ftgm() -> McpParams {
        McpParams {
            variant: Variant::Ftgm,
            ftgm_send_extra: SimDuration::from_nanos(500),
            ftgm_recv_extra: SimDuration::from_nanos(500),
            // §4.2: IT1 is initialized "just slightly greater than 800us".
            watchdog_ticks: 1_700, // 850us
            ..McpParams::gm()
        }
    }

    /// `true` when running the FTGM variant.
    pub fn is_ftgm(&self) -> bool {
        self.variant == Variant::Ftgm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gm_has_no_watchdog() {
        assert_eq!(McpParams::gm().watchdog_ticks, 0);
        assert!(!McpParams::gm().is_ftgm());
    }

    #[test]
    fn ftgm_watchdog_exceeds_ltimer_period() {
        let p = McpParams::ftgm();
        assert!(p.is_ftgm());
        assert!(
            p.watchdog_ticks > p.ltimer_ticks,
            "watchdog must outlast the worst L_timer gap"
        );
    }

    #[test]
    fn ftgm_extras_sum_to_paper_delta() {
        // Table 2: LANai utilization 6.0us (GM) vs 6.8us (FTGM).
        let p = McpParams::ftgm();
        let delta = p.ftgm_send_extra + p.ftgm_recv_extra;
        let us = delta.as_micros_f64();
        assert!((0.6..=1.0).contains(&us), "delta {us}us");
    }

    #[test]
    fn knobs_default_on() {
        let k = FtgmKnobs::default();
        assert!(k.delayed_commit_ack && k.host_sequence_numbers);
    }
}
