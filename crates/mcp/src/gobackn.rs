//! Go-Back-N stream state.
//!
//! GM ensures reliable in-order delivery with "a version of the Go-Back-N
//! protocol" over each connection. FTGM keeps the protocol but changes the
//! *stream identity*: instead of one MCP-numbered stream per connection
//! (remote node), each **(port, remote node)** pair is an independent
//! stream whose sequence numbers the *host* generates — so the host's
//! backup copy can re-establish them after a card reset. The receiver
//! correspondingly keeps one expected-sequence counter per **(connection,
//! port)** pair (Figure 6 of the paper).
//!
//! Release discipline: a sender retains every chunk of a message until the
//! message's *final* chunk is cumulatively acknowledged, then releases the
//! whole message and reports it complete. (Stock GM recycles staging
//! per-chunk; retaining per-message costs only SRAM slack and lets a
//! recovered *receiver* rewind a partially-delivered message without
//! sender-host involvement. DESIGN.md discusses the substitution.)

use std::collections::VecDeque;

use ftgm_net::NodeId;
use ftgm_sim::{SimDuration, SimTime};

/// Identity of a sequence-number stream.
///
/// `port` is the *sending* GM port for FTGM streams, or
/// [`StreamKey::CONNECTION_PORT`] for GM's per-connection streams. FTGM
/// keys also carry the **priority level**: GM's two priority classes may
/// overtake one another in the send queues, and host-assigned sequence
/// numbers can only stay in transmission order if each class is its own
/// stream. (GM-mode connection streams don't need this — their MCP
/// assigns sequence numbers at staging time, in transmission order.)
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct StreamKey {
    /// The remote interface (the connection).
    pub node: NodeId,
    /// The sending port, or `CONNECTION_PORT` in GM mode.
    pub port: u8,
    /// The priority class (always `false` for connection streams).
    pub prio_high: bool,
}

impl StreamKey {
    /// Sentinel port value for GM's connection-level streams.
    pub const CONNECTION_PORT: u8 = 0xFF;

    /// A GM-mode (per-connection) key.
    pub fn connection(node: NodeId) -> StreamKey {
        StreamKey {
            node,
            port: Self::CONNECTION_PORT,
            prio_high: false,
        }
    }

    /// An FTGM-mode (per-port, per-destination, per-priority) key.
    pub fn per_port(node: NodeId, port: u8, prio_high: bool) -> StreamKey {
        StreamKey {
            node,
            port,
            prio_high,
        }
    }
}

/// A chunk retained by the sender until its message completes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChunkRecord {
    /// Stream sequence number.
    pub seq: u32,
    /// Host-side token id of the message this chunk belongs to.
    pub msg_id: u64,
    /// Staging slab index holding the payload copy.
    pub slab: u32,
    /// Payload length.
    pub len: u32,
    /// Total message length.
    pub msg_len: u32,
    /// Byte offset within the message.
    pub chunk_offset: u32,
    /// Final chunk of the message?
    pub last: bool,
    /// First chunk of a freshly-created stream (carries the SYN flag)?
    pub syn: bool,
    /// Destination interface.
    pub dst_node: NodeId,
    /// Destination GM port.
    pub dst_port: u8,
    /// Sending GM port.
    pub src_port: u8,
    /// High-priority message?
    pub prio_high: bool,
}

/// Result of processing a cumulative ACK.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AckOutcome {
    /// Token ids of messages that became fully acknowledged, in order.
    pub completed: Vec<u64>,
    /// Chunk slabs that may be recycled.
    pub freed_slabs: Vec<u32>,
    /// Whether the ACK advanced the window at all.
    pub progressed: bool,
}

/// A sequence cursor for the chunk currently being staged. The MCP's
/// send loop walks one message at a time; this type owns the "next
/// chunk sequence" so that every sequence-number mutation lives in this
/// module (the seqnum-discipline lint's accessor surface) and stays in
/// lock-step with [`SenderStream::record_send`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkCursor {
    next_seq: u32,
}

impl ChunkCursor {
    /// A cursor whose next chunk takes sequence `first_seq`.
    pub fn new(first_seq: u32) -> ChunkCursor {
        ChunkCursor { next_seq: first_seq }
    }

    /// The sequence number the next staged chunk will carry.
    pub fn seq(&self) -> u32 {
        self.next_seq
    }

    /// Consumes the current sequence number and steps to the next one.
    pub fn advance(&mut self) {
        self.next_seq = self.next_seq.wrapping_add(1);
    }
}

/// Sender-side state for one stream.
#[derive(Clone, Debug)]
pub struct SenderStream {
    next_seq: u32,
    /// Receiver's next expected sequence (everything below is acked).
    cum_acked: u32,
    chunks: VecDeque<ChunkRecord>,
    last_progress: SimTime,
    retries: u32,
}

impl SenderStream {
    /// A fresh stream starting at sequence `first_seq` (0 for GM; the
    /// host's stream counter for FTGM).
    pub fn new(first_seq: u32, now: SimTime) -> SenderStream {
        SenderStream {
            next_seq: first_seq,
            cum_acked: first_seq,
            chunks: VecDeque::new(),
            last_progress: now,
        retries: 0,
        }
    }

    /// Next sequence number this stream will assign.
    pub fn next_seq(&self) -> u32 {
        self.next_seq
    }

    /// The receiver's acknowledged frontier.
    pub fn cum_acked(&self) -> u32 {
        self.cum_acked
    }

    /// Unacknowledged chunks currently retained, oldest first.
    pub fn retained(&self) -> impl Iterator<Item = &ChunkRecord> {
        self.chunks.iter()
    }

    /// Number of retained chunks.
    pub fn outstanding(&self) -> u32 {
        self.chunks.len() as u32
    }

    /// Consecutive retransmission rounds without progress.
    pub fn retries(&self) -> u32 {
        self.retries
    }

    /// `true` if a new chunk may be admitted under window `w`.
    pub fn window_open(&self, w: u32) -> bool {
        self.next_seq.wrapping_sub(self.cum_acked) < w
    }

    /// Admits a chunk for transmission. In FTGM the host supplies `seq`
    /// inside `rec`; it must equal [`SenderStream::next_seq`] (host and MCP
    /// counters advance in lockstep).
    ///
    /// # Panics
    ///
    /// Panics on a non-contiguous sequence — that is a protocol-logic bug,
    /// not a runtime condition.
    pub fn admit(&mut self, rec: ChunkRecord) {
        assert_eq!(
            rec.seq, self.next_seq,
            "chunk admitted out of order: seq {} expected {}",
            rec.seq, self.next_seq
        );
        self.next_seq = self.next_seq.wrapping_add(1);
        self.chunks.push_back(rec);
    }

    /// Processes a cumulative ACK carrying the receiver's next expected
    /// sequence. Releases whole messages whose final chunk is acked.
    pub fn on_ack(&mut self, next_expected: u32, now: SimTime) -> AckOutcome {
        let mut out = AckOutcome::default();
        // Ignore stale or future ACKs (future = beyond anything sent).
        let in_window = next_expected.wrapping_sub(self.cum_acked)
            <= self.next_seq.wrapping_sub(self.cum_acked);
        if next_expected == self.cum_acked || !in_window {
            return out;
        }
        self.cum_acked = next_expected;
        self.last_progress = now;
        self.retries = 0;
        out.progressed = true;
        // Release fully-acked complete messages from the front.
        #[allow(clippy::while_let_loop)] // the loop body has two exits
        loop {
            // Find the extent of the first message.
            let Some(first) = self.chunks.front() else { break };
            let msg_id = first.msg_id;
            let mut last_seq = None;
            for c in &self.chunks {
                if c.msg_id != msg_id {
                    break;
                }
                if c.last {
                    last_seq = Some(c.seq);
                }
            }
            let Some(last_seq) = last_seq else { break };
            // Message complete iff its final chunk is below the frontier.
            if last_seq.wrapping_sub(self.cum_acked) as i32 >= 0 {
                break;
            }
            while self.chunks.front().is_some_and(|c| c.msg_id == msg_id) {
                if let Some(c) = self.chunks.pop_front() {
                    out.freed_slabs.push(c.slab);
                }
            }
            out.completed.push(msg_id);
        }
        out
    }

    /// Chunks to retransmit for a NACK naming the receiver's next expected
    /// sequence: everything retained from that point on (Go-Back-N).
    pub fn rewind_from(&self, next_expected: u32) -> Vec<ChunkRecord> {
        self.chunks
            .iter()
            .filter(|c| c.seq.wrapping_sub(next_expected) as i32 >= 0)
            .cloned()
            .collect()
    }

    /// GM-style resync after a reload: renumbers every retained chunk
    /// contiguously from `new_base`, resets the window to match, and
    /// returns the renumbered chunks for retransmission.
    pub fn renumber_from(&mut self, new_base: u32) -> Vec<ChunkRecord> {
        let mut seq = new_base;
        for c in &mut self.chunks {
            c.seq = seq;
            seq = seq.wrapping_add(1);
        }
        self.cum_acked = new_base;
        self.next_seq = seq;
        self.chunks.iter().cloned().collect()
    }

    /// If the stream has been stalled longer than `rto`, returns the full
    /// unacked window for retransmission and bumps the retry counter.
    pub fn check_timeout(&mut self, now: SimTime, rto: SimDuration) -> Option<Vec<ChunkRecord>> {
        if self.chunks.is_empty() || now.saturating_since(self.last_progress) < rto {
            return None;
        }
        self.retries += 1;
        self.last_progress = now; // back off one full RTO per round
        Some(self.rewind_from(self.cum_acked))
    }
}

/// Receiver verdict for an incoming data chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RxVerdict {
    /// In order: accept and (once delivered) advance.
    Accept,
    /// Already seen: drop, re-ACK the current frontier.
    Duplicate,
    /// A gap: drop, NACK the expected sequence.
    OutOfOrder,
}

/// Receiver-side state for one stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReceiverStream {
    expected: u32,
}

impl ReceiverStream {
    /// A fresh stream expecting `first_seq` next.
    pub fn new(first_seq: u32) -> ReceiverStream {
        ReceiverStream { expected: first_seq }
    }

    /// The next sequence this stream will accept (also the cumulative ACK
    /// value it advertises).
    pub fn expected(&self) -> u32 {
        self.expected
    }

    /// Classifies an incoming chunk without advancing.
    pub fn classify(&self, seq: u32) -> RxVerdict {
        if seq == self.expected {
            RxVerdict::Accept
        } else if seq.wrapping_sub(self.expected) as i32 > 0 {
            RxVerdict::OutOfOrder
        } else {
            RxVerdict::Duplicate
        }
    }

    /// Advances after a chunk was accepted and safely stored.
    pub fn advance(&mut self) {
        self.expected = self.expected.wrapping_add(1);
    }

    /// Forces the expected counter (FTGM recovery: the host restores the
    /// last acknowledged sequence per stream).
    pub fn restore(&mut self, expected: u32) {
        self.expected = expected;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u32, msg_id: u64, last: bool) -> ChunkRecord {
        ChunkRecord {
            seq,
            msg_id,
            slab: seq % 64,
            len: 100,
            msg_len: 100,
            chunk_offset: 0,
            last,
            syn: false,
            dst_node: NodeId(1),
            dst_port: 0,
            src_port: 0,
            prio_high: false,
        }
    }

    const T0: SimTime = SimTime::ZERO;

    #[test]
    fn admit_advances_next_seq() {
        let mut s = SenderStream::new(0, T0);
        s.admit(rec(0, 1, true));
        s.admit(rec(1, 2, true));
        assert_eq!(s.next_seq(), 2);
        assert_eq!(s.outstanding(), 2);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn admit_rejects_gap() {
        let mut s = SenderStream::new(0, T0);
        s.admit(rec(5, 1, true));
    }

    #[test]
    fn ack_releases_complete_messages() {
        let mut s = SenderStream::new(0, T0);
        // msg 10 = chunks 0,1; msg 11 = chunk 2.
        s.admit(ChunkRecord { last: false, ..rec(0, 10, false) });
        s.admit(ChunkRecord { seq: 1, ..rec(1, 10, true) });
        s.admit(rec(2, 11, true));
        // Ack only chunk 0: nothing completes.
        let o = s.on_ack(1, T0);
        assert!(o.progressed);
        assert!(o.completed.is_empty());
        assert_eq!(s.outstanding(), 3, "chunks retained until message completes");
        // Ack through chunk 1: msg 10 completes and frees two slabs.
        let o = s.on_ack(2, T0);
        assert_eq!(o.completed, vec![10]);
        assert_eq!(o.freed_slabs.len(), 2);
        assert_eq!(s.outstanding(), 1);
        // Ack chunk 2: msg 11 completes.
        let o = s.on_ack(3, T0);
        assert_eq!(o.completed, vec![11]);
        assert_eq!(s.outstanding(), 0);
    }

    #[test]
    fn stale_and_wild_acks_ignored() {
        let mut s = SenderStream::new(0, T0);
        s.admit(rec(0, 1, true));
        let o = s.on_ack(0, T0);
        assert!(!o.progressed, "stale ack");
        let o = s.on_ack(99, T0);
        assert!(!o.progressed, "ack beyond window");
        assert_eq!(s.cum_acked(), 0);
    }

    #[test]
    fn duplicate_ack_is_idempotent() {
        let mut s = SenderStream::new(0, T0);
        s.admit(rec(0, 1, true));
        s.admit(rec(1, 2, true));
        assert_eq!(s.on_ack(1, T0).completed, vec![1]);
        let o = s.on_ack(1, T0);
        assert!(!o.progressed);
        assert!(o.completed.is_empty());
    }

    #[test]
    fn window_accounting() {
        let mut s = SenderStream::new(0, T0);
        for i in 0..4 {
            assert!(s.window_open(4));
            s.admit(rec(i, i as u64, true));
        }
        assert!(!s.window_open(4));
        s.on_ack(1, T0);
        assert!(s.window_open(4));
    }

    #[test]
    fn rewind_returns_suffix() {
        let mut s = SenderStream::new(0, T0);
        for i in 0..5 {
            s.admit(rec(i, 100, i == 4));
        }
        let r = s.rewind_from(2);
        assert_eq!(r.iter().map(|c| c.seq).collect::<Vec<_>>(), vec![2, 3, 4]);
    }

    #[test]
    fn rewind_covers_acked_but_unreleased_chunks() {
        // The receiver-recovery case: chunks of an incomplete message stay
        // retransmittable even after being individually acked.
        let mut s = SenderStream::new(0, T0);
        s.admit(ChunkRecord { last: false, ..rec(0, 7, false) });
        s.admit(ChunkRecord { seq: 1, last: false, ..rec(1, 7, false) });
        s.admit(ChunkRecord { seq: 2, ..rec(2, 7, true) });
        s.on_ack(2, T0); // chunks 0,1 acked; message incomplete
        let r = s.rewind_from(0);
        assert_eq!(r.len(), 3, "whole message still retransmittable");
    }

    #[test]
    fn timeout_fires_after_rto_and_backs_off() {
        let mut s = SenderStream::new(0, T0);
        s.admit(rec(0, 1, true));
        let rto = SimDuration::from_ms(10);
        assert!(s.check_timeout(SimTime::from_nanos(5_000_000), rto).is_none());
        let r = s
            .check_timeout(SimTime::ZERO + SimDuration::from_ms(10), rto)
            .expect("fires");
        assert_eq!(r.len(), 1);
        assert_eq!(s.retries(), 1);
        // Immediately after, it must not fire again.
        assert!(s
            .check_timeout(SimTime::ZERO + SimDuration::from_ms(10), rto)
            .is_none());
        // Another RTO later it fires again.
        assert!(s
            .check_timeout(SimTime::ZERO + SimDuration::from_ms(20), rto)
            .is_some());
        assert_eq!(s.retries(), 2);
    }

    #[test]
    fn timeout_idle_stream_never_fires() {
        let mut s = SenderStream::new(0, T0);
        assert!(s
            .check_timeout(SimTime::ZERO + SimDuration::from_secs(10), SimDuration::from_ms(1))
            .is_none());
    }

    #[test]
    fn progress_resets_retries() {
        let mut s = SenderStream::new(0, T0);
        s.admit(rec(0, 1, true));
        s.admit(rec(1, 2, true));
        let rto = SimDuration::from_ms(10);
        s.check_timeout(SimTime::ZERO + SimDuration::from_ms(10), rto);
        assert_eq!(s.retries(), 1);
        s.on_ack(1, SimTime::ZERO + SimDuration::from_ms(11));
        assert_eq!(s.retries(), 0);
    }

    #[test]
    fn ftgm_streams_start_at_host_seq() {
        let mut s = SenderStream::new(42, T0);
        s.admit(ChunkRecord { seq: 42, ..rec(42, 1, true) });
        assert_eq!(s.next_seq(), 43);
        let o = s.on_ack(43, T0);
        assert_eq!(o.completed, vec![1]);
    }

    #[test]
    fn receiver_classification() {
        let r = ReceiverStream::new(5);
        assert_eq!(r.classify(5), RxVerdict::Accept);
        assert_eq!(r.classify(4), RxVerdict::Duplicate);
        assert_eq!(r.classify(6), RxVerdict::OutOfOrder);
    }

    #[test]
    fn receiver_advance_and_restore() {
        let mut r = ReceiverStream::new(0);
        r.advance();
        r.advance();
        assert_eq!(r.expected(), 2);
        r.restore(7);
        assert_eq!(r.classify(7), RxVerdict::Accept);
    }

    #[test]
    fn sequence_wraparound_works() {
        let mut s = SenderStream::new(u32::MAX, T0);
        s.admit(ChunkRecord { seq: u32::MAX, ..rec(u32::MAX, 1, true) });
        s.admit(ChunkRecord { seq: 0, ..rec(0, 2, true) });
        let o = s.on_ack(1, T0);
        assert_eq!(o.completed, vec![1, 2]);
        let mut r = ReceiverStream::new(u32::MAX);
        assert_eq!(r.classify(u32::MAX), RxVerdict::Accept);
        r.advance();
        assert_eq!(r.expected(), 0);
        assert_eq!(r.classify(u32::MAX), RxVerdict::Duplicate);
    }

    #[test]
    fn stream_keys_distinguish_modes_ports_and_priorities() {
        let a = StreamKey::connection(NodeId(1));
        let b = StreamKey::per_port(NodeId(1), 0, false);
        let c = StreamKey::per_port(NodeId(1), 1, false);
        let d = StreamKey::per_port(NodeId(1), 0, true);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(b, d);
    }
}
