//! The `send_chunk` firmware and the MCP's SRAM layout.
//!
//! `send_chunk` is "a serial piece of code that is executed by the LANai
//! each time a message is sent out" — the paper chose it as the fault-
//! injection target precisely because every injected fault is guaranteed to
//! activate. We therefore implement it as *real interpreted LN32 code in
//! SRAM*: the campaign flips one bit inside [`FirmwareImage::code_range`]
//! and the consequences (illegal instruction, runaway loop, corrupted
//! header, stray CSR write, silently wrong payload) unfold exactly as they
//! would on the card.
//!
//! Like the real `send_chunk`, the routine has several paths of which a
//! given workload exercises only some — an inline-copy fast path for tiny
//! payloads, the gather path for everything else, a resend entry, and error
//! exits. Faults landing in a path the workload never runs are the model's
//! organic source of the paper's 51% "no impact" outcomes.

use ftgm_lanai::asm::{assemble, Assembled};

/// SRAM byte addresses used by the MCP (8 MB SRAM, the top LANai9
/// configuration — the paper: "onboard SRAM ranging from 512K to 8M
/// bytes").
pub mod layout {
    /// Total SRAM size the MCP model expects.
    pub const SRAM_LEN: usize = 8 << 20;
    /// Base of the interpreted `send_chunk` code.
    pub const CODE_BASE: u32 = 0x1000;
    /// The send-record argument block (inputs to `send_chunk`).
    pub const SENDREC: u32 = 0x8000;
    /// Where `send_chunk` builds the packet header (and inline payloads).
    pub const PKT_BUF: u32 = 0xA000;
    /// The liveness scratch word: the FTD writes a magic value here and a
    /// healthy MCP clears it on its next `L_timer()` pass (§4.3's "magic
    /// word" probe).
    pub const MAGIC_WORD: u32 = 0xF000;
    /// Base of the chunk staging slabs.
    pub const STAGE_BASE: u32 = 0x20000;
    /// Size of one staging slab (4 KB payload + slack).
    pub const SLAB_SIZE: u32 = 0x1100;
    /// Number of staging slabs. Chunks are retained until their whole
    /// message is acknowledged, so this bounds the largest message:
    /// 512 slabs × 4 KB = 2 MB.
    pub const SLAB_COUNT: u32 = 512;

    /// Offsets within the send record.
    pub mod sendrec {
        /// Staging address of the payload.
        pub const STAGE_ADDR: u32 = 0;
        /// Payload length.
        pub const LEN: u32 = 4;
        /// Sequence number.
        pub const SEQ: u32 = 8;
        /// Pre-composed stream word (flags folded in by the dispatcher).
        pub const STREAM: u32 = 12;
        /// Total message length.
        pub const MSG_LEN: u32 = 16;
        /// Chunk offset within the message.
        pub const CHUNK_OFF: u32 = 20;
        /// Packet-header build buffer address.
        pub const HDR_BUF: u32 = 24;
        /// Completion status: 1 = ok, 0xFFFF_FFFF = parameter error.
        pub const STATUS: u32 = 32;
        /// Pinned host address for the completion-record DMA (0 = skip).
        pub const STATUS_HOST: u32 = 40;
    }
}

/// The `send_chunk` routine, in LN32 assembly.
///
/// Register convention: `r1` send-record base, `r2` staging address, `r3`
/// length, `r5` header buffer; `r15` is the return linkage seeded by the
/// dispatcher.
pub const SEND_CHUNK_ASM: &str = r#"
; ---- resend entry: OR the RESEND flag into the stream word, fall through
send_chunk_resend:
    li    r1, 0x8000          ; SENDREC
    lw    r6, 12(r1)          ; stream word
    li    r7, 0x4000000       ; RESEND flag (bit 26)
    or    r6, r6, r7
    sw    r6, 12(r1)

; ---- main entry ------------------------------------------------------
send_chunk:
    li    r1, 0x8000          ; SENDREC
    lw    r2, 0(r1)           ; staging address
    lw    r3, 4(r1)           ; payload length
    beq   r3, r0, err         ; zero-length send: parameter error
    li    r4, 4096
    bltu  r4, r3, err         ; oversized chunk: parameter error
    lw    r5, 24(r1)          ; header buffer

; ---- build the header ---------------------------------------------------
    li    r6, 0x04D59001      ; MAGIC | DATA
    sw    r6, 0(r5)
    lw    r6, 12(r1)          ; stream word
    sw    r6, 4(r5)
    lw    r6, 8(r1)           ; seq
    sw    r6, 8(r5)
    lw    r6, 16(r1)          ; msg_len
    sw    r6, 12(r5)
    lw    r6, 20(r1)          ; chunk_offset
    sw    r6, 16(r5)
    sw    r3, 20(r5)          ; payload_len

; ---- payload checksum via the checksum unit -----------------------------
    csrw  0x30, r2            ; CKSUM_ADDR
    csrw  0x31, r3            ; CKSUM_LEN (triggers)
    csrr  r6, 0x32            ; CKSUM_RESULT
    sw    r6, 24(r5)

; ---- header checksum over words +0..+24 ---------------------------------
    addi  r7, r0, 0           ; sum
    addi  r8, r0, 0           ; offset
    addi  r9, r0, 28          ; limit
hsum:
    add   r10, r5, r8
    lw    r11, 0(r10)
    add   r7, r7, r11
    addi  r8, r8, 4
    bltu  r8, r9, hsum
    sw    r7, 28(r5)

; ---- transmit ----------------------------------------------------------
    addi  r6, r0, 64
    bgeu  r6, r3, inline      ; tiny payloads take the inline-copy path
    csrw  0x10, r5            ; TX_HDR_ADDR
    addi  r6, r0, 32
    csrw  0x11, r6            ; TX_HDR_LEN
    csrw  0x12, r2            ; TX_PAY_ADDR
    csrw  0x13, r3            ; TX_PAY_LEN
    csrw  0x14, r0            ; TX_TRIGGER
    beq   r0, r0, done

; ---- inline-copy fast path (len <= 64): payload copied after the header
inline:
    addi  r8, r0, 0
copy:
    add   r10, r2, r8
    lb    r11, 0(r10)
    add   r12, r5, r8
    sb    r11, 32(r12)
    addi  r8, r8, 1
    bltu  r8, r3, copy
    csrw  0x10, r5            ; TX_HDR_ADDR
    addi  r6, r3, 32
    csrw  0x11, r6            ; TX_HDR_LEN = 32 + len
    csrw  0x13, r0            ; TX_PAY_LEN = 0
    csrw  0x14, r0            ; TX_TRIGGER

done:
    addi  r6, r0, 1
    sw    r6, 32(r1)          ; status = ok

; ---- DMA the completion record to the host ------------------------------
; The driver points SENDREC+40 at a pinned scratch page; firmware ships the
; 8-byte status record there so the host can observe send progress without
; PIO reads. (On real cards this descriptor is exactly how a corrupted
; send path scribbles over host memory.)
    lw    r12, 40(r1)         ; host record address
    beq   r12, r0, norep      ; zero: reporting disabled
    csrw  0x20, r12           ; HDMA_HOST_ADDR
    li    r13, 0x8020         ; SENDREC+32 (the record)
    csrw  0x21, r13           ; HDMA_SRAM_ADDR
    addi  r13, r0, 8
    csrw  0x22, r13           ; HDMA_LEN
    addi  r13, r0, 2
    csrw  0x23, r13           ; HDMA_CTRL = SRAM -> host
norep:
    jr    r15

err:
    addi  r6, r0, -1
    sw    r6, 32(r1)          ; status = parameter error
    jr    r15
"#;

/// The assembled firmware with its entry points.
#[derive(Clone, Debug)]
pub struct FirmwareImage {
    assembled: Assembled,
}

impl FirmwareImage {
    /// Assembles the MCP firmware.
    ///
    /// # Panics
    ///
    /// Panics if the embedded assembly fails to assemble — a build-time
    /// invariant, covered by tests.
    pub fn build() -> FirmwareImage {
        let assembled = assemble(SEND_CHUNK_ASM).expect("send_chunk assembles");
        FirmwareImage { assembled }
    }

    /// The image bytes to load at [`layout::CODE_BASE`].
    pub fn bytes(&self) -> &[u8] {
        &self.assembled.bytes
    }

    /// Absolute SRAM entry address of `send_chunk`.
    pub fn entry_send(&self) -> u32 {
        layout::CODE_BASE + self.assembled.label("send_chunk")
    }

    /// Absolute SRAM entry address of the resend path.
    pub fn entry_resend(&self) -> u32 {
        layout::CODE_BASE + self.assembled.label("send_chunk_resend")
    }

    /// The absolute SRAM byte range holding `send_chunk` code — the fault
    /// campaign's injection section.
    pub fn code_range(&self) -> std::ops::Range<u32> {
        layout::CODE_BASE..layout::CODE_BASE + self.assembled.bytes.len() as u32
    }

    /// Staging slab base address for slab `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= SLAB_COUNT`.
    pub fn slab_addr(i: u32) -> u32 {
        assert!(i < layout::SLAB_COUNT, "slab index {i} out of range");
        layout::STAGE_BASE + i * layout::SLAB_SIZE
    }
}

impl Default for FirmwareImage {
    fn default() -> Self {
        Self::build()
    }
}

#[cfg(test)]
mod tests {
    use super::layout::sendrec;
    use super::*;
    use crate::packet::{build_data_frame, flags, Header, PacketType};
    use ftgm_lanai::chip::ChipEffect;
    use ftgm_lanai::cpu::RETURN_ADDR;
    use ftgm_lanai::isa::Reg;
    use ftgm_lanai::LanaiChip;
    use ftgm_net::NodeId;
    use ftgm_sim::SimTime;

    fn loaded_chip(fw: &FirmwareImage) -> LanaiChip {
        let mut chip = LanaiChip::new(layout::SRAM_LEN);
        chip.sram.write_bytes(layout::CODE_BASE, fw.bytes());
        chip
    }

    #[allow(clippy::too_many_arguments)]
    fn run_send_chunk(
        chip: &mut LanaiChip,
        fw: &FirmwareImage,
        entry: u32,
        payload: &[u8],
        seq: u32,
        stream: u32,
        msg_len: u32,
        chunk_off: u32,
    ) -> (i64, Vec<Vec<u8>>) {
        let stage = FirmwareImage::slab_addr(0);
        chip.sram.write_bytes(stage, payload);
        let r = layout::SENDREC;
        chip.sram.write_u32(r + sendrec::STAGE_ADDR, stage).unwrap();
        chip.sram.write_u32(r + sendrec::LEN, payload.len() as u32).unwrap();
        chip.sram.write_u32(r + sendrec::SEQ, seq).unwrap();
        chip.sram.write_u32(r + sendrec::STREAM, stream).unwrap();
        chip.sram.write_u32(r + sendrec::MSG_LEN, msg_len).unwrap();
        chip.sram.write_u32(r + sendrec::CHUNK_OFF, chunk_off).unwrap();
        chip.sram.write_u32(r + sendrec::HDR_BUF, layout::PKT_BUF).unwrap();
        chip.sram.write_u32(r + sendrec::STATUS, 0).unwrap();
        chip.cpu.set_reg(Reg::LINK, RETURN_ADDR);
        chip.run_routine(SimTime::ZERO, entry, 20_000);
        let status = chip.sram.read_u32(r + sendrec::STATUS).unwrap() as i32 as i64;
        let frames = chip
            .take_effects()
            .into_iter()
            .filter_map(|e| match e {
                ChipEffect::TxFrame(f) => Some(f.bytes),
                _ => None,
            })
            .collect();
        (status, frames)
    }

    #[test]
    fn firmware_assembles_with_entries() {
        let fw = FirmwareImage::build();
        assert!(fw.bytes().len() > 200, "firmware suspiciously small");
        assert!(fw.entry_send() > fw.entry_resend());
        assert!(fw.code_range().contains(&fw.entry_send()));
    }

    #[test]
    fn gather_path_produces_exact_reference_frame() {
        let fw = FirmwareImage::build();
        let mut chip = loaded_chip(&fw);
        let payload: Vec<u8> = (0..300u32).map(|i| (i * 7) as u8).collect();
        let stream = crate::packet::stream_word(NodeId(4), 2, 6, flags::LAST_CHUNK);
        let (status, frames) =
            run_send_chunk(&mut chip, &fw, fw.entry_send(), &payload, 9, stream, 300, 0);
        assert_eq!(status, 1);
        assert_eq!(frames.len(), 1);
        let expected = build_data_frame(NodeId(4), 2, 6, 9, 300, 0, flags::LAST_CHUNK, &payload);
        assert_eq!(frames[0], expected, "firmware bytes differ from reference");
    }

    #[test]
    fn inline_path_produces_exact_reference_frame() {
        let fw = FirmwareImage::build();
        let mut chip = loaded_chip(&fw);
        let payload = vec![0xA5u8; 48];
        let stream = crate::packet::stream_word(NodeId(1), 0, 0, flags::LAST_CHUNK);
        let (status, frames) =
            run_send_chunk(&mut chip, &fw, fw.entry_send(), &payload, 0, stream, 48, 0);
        assert_eq!(status, 1);
        let expected = build_data_frame(NodeId(1), 0, 0, 0, 48, 0, flags::LAST_CHUNK, &payload);
        assert_eq!(frames[0], expected);
    }

    #[test]
    fn produced_frame_parses() {
        let fw = FirmwareImage::build();
        let mut chip = loaded_chip(&fw);
        let payload = vec![0x11u8; 1000];
        let stream = crate::packet::stream_word(NodeId(2), 1, 3, 0);
        let (_, frames) =
            run_send_chunk(&mut chip, &fw, fw.entry_send(), &payload, 5, stream, 5000, 1000);
        let (h, p) = Header::parse(&frames[0]).expect("parses");
        assert_eq!(h.ptype, PacketType::Data);
        assert_eq!(h.seq, 5);
        assert_eq!(h.msg_len, 5000);
        assert_eq!(h.chunk_offset, 1000);
        assert!(!h.last_chunk);
        assert_eq!(p, &payload[..]);
    }

    #[test]
    fn resend_entry_sets_resend_flag() {
        let fw = FirmwareImage::build();
        let mut chip = loaded_chip(&fw);
        let payload = vec![3u8; 128];
        let stream = crate::packet::stream_word(NodeId(0), 0, 0, flags::LAST_CHUNK);
        let (status, frames) =
            run_send_chunk(&mut chip, &fw, fw.entry_resend(), &payload, 7, stream, 128, 0);
        assert_eq!(status, 1);
        let (h, _) = Header::parse(&frames[0]).unwrap();
        assert!(h.resend);
        assert!(h.last_chunk);
        assert_eq!(h.seq, 7);
    }

    #[test]
    fn zero_length_takes_error_path() {
        let fw = FirmwareImage::build();
        let mut chip = loaded_chip(&fw);
        let (status, frames) = run_send_chunk(
            &mut chip,
            &fw,
            fw.entry_send(),
            &[],
            0,
            0,
            0,
            0,
        );
        assert_eq!(status, -1);
        assert!(frames.is_empty());
        assert!(!chip.is_hung());
    }

    #[test]
    fn oversize_length_takes_error_path() {
        let fw = FirmwareImage::build();
        let mut chip = loaded_chip(&fw);
        let payload = vec![0u8; 4097];
        let (status, frames) =
            run_send_chunk(&mut chip, &fw, fw.entry_send(), &payload, 0, 0, 4097, 0);
        assert_eq!(status, -1);
        assert!(frames.is_empty());
    }

    #[test]
    fn max_chunk_exactly_4096_is_ok() {
        let fw = FirmwareImage::build();
        let mut chip = loaded_chip(&fw);
        let payload = vec![9u8; 4096];
        let stream = crate::packet::stream_word(NodeId(0), 0, 0, 0);
        let (status, frames) =
            run_send_chunk(&mut chip, &fw, fw.entry_send(), &payload, 1, stream, 8192, 0);
        assert_eq!(status, 1);
        assert_eq!(frames[0].len(), 32 + 4096);
    }

    #[test]
    fn corrupted_code_can_hang_the_chip() {
        // Smash the whole code region with zeros (illegal instructions):
        // running send_chunk must hang, not panic the simulator.
        let fw = FirmwareImage::build();
        let mut chip = loaded_chip(&fw);
        let zeros = vec![0u8; fw.bytes().len()];
        chip.sram.write_bytes(layout::CODE_BASE, &zeros);
        let payload = vec![1u8; 64];
        let (_, _) = run_send_chunk(&mut chip, &fw, fw.entry_send(), &payload, 0, 0, 64, 0);
        assert!(chip.is_hung());
    }

    #[test]
    fn slab_addresses_do_not_overlap_code_or_sendrec() {
        let fw = FirmwareImage::build();
        let first = FirmwareImage::slab_addr(0);
        let last = FirmwareImage::slab_addr(layout::SLAB_COUNT - 1);
        assert!(first >= fw.code_range().end);
        assert!(first > layout::PKT_BUF + 0x1100);
        assert!((last + layout::SLAB_SIZE) as usize <= layout::SRAM_LEN);
    }
}
