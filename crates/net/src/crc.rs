//! CRC-32 (IEEE 802.3 polynomial), as the link-level packet check.
//!
//! Myrinet packets carry a hardware CRC that switches and interfaces check;
//! GM's Go-Back-N relies on corrupted packets being *detected and dropped*
//! at the link level. The fabric stamps every injected packet with this
//! CRC and re-checks it at delivery, so tests can corrupt packets in flight
//! and watch the protocol recover.

/// Computes the IEEE CRC-32 of `data` (reflected, init/xorout `!0`).
///
/// # Example
///
/// ```
/// // The classic check value.
/// assert_eq!(ftgm_net::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 256];
        data[10] = 0x55;
        let before = crc32(&data);
        data[100] ^= 0x04;
        assert_ne!(crc32(&data), before);
    }

    #[test]
    fn detects_swap() {
        assert_ne!(crc32(b"ab"), crc32(b"ba"));
    }
}
