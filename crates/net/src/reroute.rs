//! Mapper-driven reroute: BFS re-discovery over the residual fabric.
//!
//! The GM mapper "can also reconfigure the network if links or nodes
//! appear or disappear". This module reproduces that pass as a pure
//! planning step: given the cabled [`Topology`] and the current per-link
//! up/down state, [`plan`] re-runs the mapper's BFS with
//! [`Mapper::map_avoiding`] and returns a [`ReroutePlan`] — fresh source
//! routes for every interface plus the residual-reachability facts the
//! zone coordinator needs (which peers ended up unreachable).
//!
//! Installation into a live fabric is the world's job
//! (`World::install_routes`); keeping the planner side-effect free makes
//! it directly property-testable (routes never traverse an avoided link;
//! reachability matches residual connectivity).
//!
//! This module is recovery code: it runs from the FTD/coordinator path,
//! so it must never panic (ftgm-lint R1/R7 cover it).

use crate::mapper::{Mapper, RouteTable};
use crate::topology::{NodeId, SwitchId, Topology};

/// The outcome of one mapper re-discovery pass over the residual fabric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReroutePlan {
    avoided: Vec<usize>,
    tables: Vec<RouteTable>,
}

impl ReroutePlan {
    /// Link ids the mapper avoided (down at planning time).
    pub fn avoided(&self) -> &[usize] {
        &self.avoided
    }

    /// The fresh per-interface route tables, indexed by node id.
    pub fn tables(&self) -> &[RouteTable] {
        &self.tables
    }

    /// Consumes the plan, yielding the tables for installation.
    pub fn into_tables(self) -> Vec<RouteTable> {
        self.tables
    }

    /// Nodes the residual fabric cannot reach from anywhere: their table
    /// came back empty. (In a one-node fabric nobody has routes; that is
    /// not isolation, so the single-node case reports none.)
    pub fn isolated(&self) -> Vec<NodeId> {
        if self.tables.len() < 2 {
            return Vec::new();
        }
        self.tables
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_empty())
            .map(|(n, _)| NodeId(n as u16))
            .collect()
    }

    /// Ordered (source, destination) pairs that remain routable.
    pub fn reachable_pairs(&self) -> u64 {
        self.tables.iter().map(|t| t.len() as u64).sum()
    }
}

/// Every link cabled to a port of `sw` (empty for an unknown switch).
pub fn switch_links(topo: &Topology, sw: SwitchId) -> Vec<usize> {
    if (sw.0 as usize) >= topo.switch_count() {
        return Vec::new();
    }
    (0..topo.switch_port_count(sw))
        .filter_map(|port| topo.switch_port_link(sw, port))
        .collect()
}

/// Re-runs mapper discovery avoiding every link marked down in
/// `link_up` (indexed by link id; missing entries count as down, so a
/// stale or truncated snapshot degrades to avoidance, never to reuse of
/// a dead link).
pub fn plan(topo: &Topology, link_up: &[bool]) -> ReroutePlan {
    let avoided: Vec<usize> = (0..topo.links().len())
        .filter(|&l| !link_up.get(l).copied().unwrap_or(false))
        .collect();
    let tables = Mapper::map_avoiding(topo, |l| link_up.get(l).copied().unwrap_or(false));
    ReroutePlan { avoided, tables }
}

/// [`plan`], additionally treating every link of `sw` as down — the
/// "route around a dead switch" pass, usable even before the per-link
/// state has caught up with the switch's death.
pub fn plan_around_switch(topo: &Topology, sw: SwitchId, link_up: &[bool]) -> ReroutePlan {
    let dead = switch_links(topo, sw);
    let up = |l: usize| link_up.get(l).copied().unwrap_or(false) && !dead.contains(&l);
    let avoided: Vec<usize> = (0..topo.links().len()).filter(|&l| !up(l)).collect();
    let tables = Mapper::map_avoiding(topo, up);
    ReroutePlan { avoided, tables }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_up(topo: &Topology) -> Vec<bool> {
        vec![true; topo.links().len()]
    }

    #[test]
    fn plan_with_all_links_up_matches_mapper() {
        let topo = Topology::ring(6);
        let p = plan(&topo, &all_up(&topo));
        assert!(p.avoided().is_empty());
        assert_eq!(p.tables(), Mapper::map(&topo).as_slice());
        assert!(p.isolated().is_empty());
        assert_eq!(p.reachable_pairs(), 6 * 5);
    }

    #[test]
    fn ring_survives_one_interswitch_link_loss() {
        // Ring(5): NIC links come first per switch; find an inter-switch
        // link by looking for one not attached to any NIC.
        let topo = Topology::ring(5);
        let nic_links: Vec<usize> = (0..5)
            .filter_map(|n| topo.nic_link(NodeId(n as u16)))
            .collect();
        let inter = (0..topo.links().len())
            .find(|l| !nic_links.contains(l))
            .expect("ring has inter-switch links");
        let mut up = all_up(&topo);
        up[inter] = false;
        let p = plan(&topo, &up);
        assert_eq!(p.avoided(), &[inter]);
        assert!(p.isolated().is_empty(), "cycle offers the other direction");
        assert_eq!(p.reachable_pairs(), 5 * 4, "full reachability restored");
    }

    #[test]
    fn switch_death_isolates_only_its_hosts() {
        // Ring(5): killing switch 2 cuts exactly node 2 off; everyone
        // else reroutes the long way around.
        let topo = Topology::ring(5);
        let p = plan_around_switch(&topo, SwitchId(2), &all_up(&topo));
        assert_eq!(p.isolated(), vec![NodeId(2)]);
        assert_eq!(p.reachable_pairs(), 4 * 3);
        for (n, table) in p.tables().iter().enumerate() {
            assert_eq!(table.route(NodeId(2)).is_some(), false, "node{n} cannot reach node2");
        }
    }

    #[test]
    fn fat_tree_spine_death_keeps_full_reachability() {
        // fat_tree(2, 4, 2): leaf switches 0..4, spines 4 and 5. Killing
        // spine 0 (switch id 4) leaves spine 1 carrying all cross-leaf
        // routes.
        let topo = Topology::fat_tree(2, 4, 2);
        let spine0 = SwitchId(4);
        let dead = switch_links(&topo, spine0);
        assert_eq!(dead.len(), 4, "one uplink per leaf");
        let p = plan_around_switch(&topo, spine0, &all_up(&topo));
        assert!(p.isolated().is_empty());
        assert_eq!(p.reachable_pairs(), 8 * 7);
        // No surviving route may traverse a dead link: every table still
        // resolves because map_avoiding already skips them; spot-check
        // that cross-leaf routes exist.
        let t0 = &p.tables()[0];
        assert!(t0.route(NodeId(7)).is_some(), "cross-leaf route via spine 1");
    }

    #[test]
    fn star_switch_death_isolates_everyone() {
        let topo = Topology::star(4);
        let p = plan_around_switch(&topo, SwitchId(0), &all_up(&topo));
        assert_eq!(p.isolated().len(), 4);
        assert_eq!(p.reachable_pairs(), 0);
    }

    #[test]
    fn unknown_switch_and_short_link_state_degrade_gracefully() {
        let topo = Topology::star(3);
        assert!(switch_links(&topo, SwitchId(9)).is_empty());
        // A truncated up-vector counts missing links as down.
        let p = plan(&topo, &[]);
        assert_eq!(p.avoided().len(), topo.links().len());
        assert_eq!(p.reachable_pairs(), 0);
    }
}
