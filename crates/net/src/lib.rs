#![warn(missing_docs)]

//! The Myrinet fabric model.
//!
//! Myrinet is a switched, point-to-point, full-duplex gigabit network using
//! **wormhole switching**, **source routing** and **backpressure flow
//! control** (Boden et al., IEEE Micro 1995). This crate models the fabric
//! at packet granularity while preserving the wormhole timing shape:
//!
//! * a packet's head cuts through each switch after a fall-through latency,
//! * each channel (link direction) is occupied until the packet's *tail*
//!   has drained past it,
//! * a blocked head holds every upstream channel it occupies — that is
//!   backpressure, and it is what serializes contending traffic.
//!
//! [`fabric::Fabric::inject`] walks a source route hop by hop, resolves
//! contention against per-channel `free_at` reservations in injection
//! order (FCFS arbitration), and returns the delivery instant — or a
//! drop, if the route is bad or a link fault model eats the packet.
//!
//! The [`mapper`] module reproduces the *GM mapper*'s job: explore the
//! topology and compute a route from every interface to every other
//! interface, deterministically.

pub mod crc;
pub mod fabric;
pub mod mapper;
pub mod reroute;
pub mod topology;

pub use crc::crc32;
pub use fabric::{Delivery, DropReason, Fabric, FabricParams};
pub use mapper::{Mapper, RouteTable};
pub use reroute::ReroutePlan;
pub use topology::{Endpoint, NodeId, SwitchId, Topology, TopologyBuilder};
