//! The GM mapper: topology discovery and route computation.
//!
//! On a real Myrinet, one node runs the *GM mapper*, which floods probe
//! packets with trial routes, assembles a map of the network, computes a
//! route from every interface to every other interface, and distributes the
//! route tables to each interface's SRAM. The FTD later *restores* that
//! table from the host's copy after a card reset — which is why the route
//! table is part of the recovery state.
//!
//! We reproduce the mapper's *outcome* deterministically: a breadth-first
//! exploration of the cabled topology with lowest-port-first tie-breaking,
//! yielding minimal-hop source routes. (Probe-packet timing is irrelevant
//! to every experiment in the paper; mapping happens before traffic
//! starts.)

use std::collections::{BTreeMap, VecDeque};

use crate::topology::{Endpoint, NodeId, Topology};

/// A source route: one output-port byte per switch traversed.
pub type Route = Vec<u8>;

/// Routes from one interface to every reachable peer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RouteTable {
    routes: BTreeMap<NodeId, Route>,
}

impl RouteTable {
    /// The route to `dst`, if one was discovered.
    pub fn route(&self, dst: NodeId) -> Option<&Route> {
        self.routes.get(&dst)
    }

    /// Number of reachable destinations.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// `true` when no destinations are reachable.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Iterates over `(destination, route)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&NodeId, &Route)> {
        self.routes.iter()
    }

    /// Inserts a route (used when restoring a table from a host backup).
    pub fn insert(&mut self, dst: NodeId, route: Route) {
        self.routes.insert(dst, route);
    }
}

/// The mapping engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct Mapper;

impl Mapper {
    /// Computes a route table for every interface in `topo`.
    ///
    /// Routes are minimal-hop; ties break toward lower switch ports, so the
    /// result is deterministic. Self-routes are not included. Unreachable
    /// pairs are simply absent.
    ///
    /// # Example
    ///
    /// ```
    /// use ftgm_net::{Mapper, NodeId, Topology};
    ///
    /// let tables = Mapper::map(&Topology::two_nodes_one_switch());
    /// assert_eq!(tables[0].route(NodeId(1)).unwrap(), &vec![1]);
    /// assert_eq!(tables[1].route(NodeId(0)).unwrap(), &vec![0]);
    /// ```
    pub fn map(topo: &Topology) -> Vec<RouteTable> {
        Self::map_avoiding(topo, |_| true)
    }

    /// Like [`Mapper::map`], but skipping links for which `link_up`
    /// returns `false` — the mapper's re-configuration pass after a link
    /// disappears ("the GM mapper can also reconfigure the network if
    /// links or nodes appear or disappear").
    pub fn map_avoiding(topo: &Topology, link_up: impl Fn(usize) -> bool) -> Vec<RouteTable> {
        (0..topo.node_count())
            .map(|n| Self::map_from_avoiding(topo, NodeId(n as u16), &link_up))
            .collect()
    }

    /// Computes the route table for a single source interface.
    pub fn map_from(topo: &Topology, src: NodeId) -> RouteTable {
        Self::map_from_avoiding(topo, src, &|_| true)
    }

    /// [`Mapper::map_from`] with a link filter.
    pub fn map_from_avoiding(
        topo: &Topology,
        src: NodeId,
        link_up: &impl Fn(usize) -> bool,
    ) -> RouteTable {
        let mut table = RouteTable::default();
        let Some(first_link) = topo.nic_link(src) else {
            return table;
        };
        if !link_up(first_link) {
            return table;
        }
        // BFS over endpoints we arrive at; state = endpoint we landed on
        // (a NIC, or a switch reached through one of its ports).
        let mut visited_switch = vec![false; topo.switch_count()];
        let mut visited_nic = vec![false; topo.node_count()];
        visited_nic[src.0 as usize] = true;
        let mut queue: VecDeque<(Endpoint, Route)> = VecDeque::new();
        let Some(entry) = topo.peer(first_link, Endpoint::Nic(src)) else {
            return table;
        };
        queue.push_back((entry, Vec::new()));
        while let Some((at, route)) = queue.pop_front() {
            match at {
                Endpoint::Nic(n) => {
                    if !visited_nic[n.0 as usize] {
                        visited_nic[n.0 as usize] = true;
                        table.insert(n, route);
                    }
                }
                Endpoint::SwitchPort { switch, .. } => {
                    if visited_switch[switch.0 as usize] {
                        continue;
                    }
                    visited_switch[switch.0 as usize] = true;
                    for port in 0..topo.switch_port_count(switch) {
                        let Some(link) = topo.switch_port_link(switch, port) else {
                            continue;
                        };
                        if !link_up(link) {
                            continue;
                        }
                        let here = Endpoint::SwitchPort { switch, port };
                        let Some(far) = topo.peer(link, here) else {
                            continue;
                        };
                        let mut r = route.clone();
                        r.push(port);
                        queue.push_back((far, r));
                    }
                }
            }
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{Fabric, FabricParams};
    use ftgm_sim::SimTime;

    #[test]
    fn two_node_routes() {
        let topo = Topology::two_nodes_one_switch();
        let tables = Mapper::map(&topo);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].route(NodeId(1)), Some(&vec![1]));
        assert_eq!(tables[1].route(NodeId(0)), Some(&vec![0]));
        assert_eq!(tables[0].route(NodeId(0)), None, "no self-route");
    }

    #[test]
    fn star_routes_are_single_hop() {
        let topo = Topology::star(6);
        let tables = Mapper::map(&topo);
        for s in 0..6u16 {
            for d in 0..6u16 {
                if s == d {
                    continue;
                }
                let r = tables[s as usize].route(NodeId(d)).expect("route exists");
                assert_eq!(r, &vec![d as u8]);
            }
        }
    }

    #[test]
    fn chain_routes_cross_switches() {
        let topo = Topology::switch_chain(3, 2);
        let tables = Mapper::map(&topo);
        // node0 (switch0) to node5 (switch2): 3 switch hops.
        let r = tables[0].route(NodeId(5)).expect("route exists");
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn all_computed_routes_actually_deliver() {
        for topo in [
            Topology::two_nodes_one_switch(),
            Topology::star(5),
            Topology::switch_chain(3, 2),
            Topology::fat_tree(2, 2, 4),
            Topology::torus(3, 3),
        ] {
            let tables = Mapper::map(&topo);
            let mut fabric = Fabric::new(topo.clone(), FabricParams::default());
            for s in 0..topo.node_count() {
                for (dst, route) in tables[s].iter() {
                    let d = fabric
                        .inject(SimTime::ZERO, NodeId(s as u16), route, vec![0xEE; 32])
                        .unwrap_or_else(|e| {
                            panic!("route {route:?} from node{s} to {dst} dropped: {e:?}")
                        });
                    assert_eq!(d.dst, *dst);
                }
            }
        }
    }

    #[test]
    fn unreachable_node_absent() {
        let mut b = Topology::builder();
        b.add_nodes(3);
        let sw = b.add_switch(8);
        b.connect(Endpoint::Nic(NodeId(0)), Endpoint::SwitchPort { switch: sw, port: 0 });
        b.connect(Endpoint::Nic(NodeId(1)), Endpoint::SwitchPort { switch: sw, port: 1 });
        // node2 left uncabled.
        let tables = Mapper::map(&b.build());
        assert!(tables[0].route(NodeId(2)).is_none());
        assert!(tables[2].is_empty());
        assert_eq!(tables[0].len(), 1);
    }

    #[test]
    fn routes_are_minimal_hop() {
        // Redundant topology: two switches, two parallel inter-switch links.
        let mut b = Topology::builder();
        b.add_nodes(2);
        let s0 = b.add_switch(8);
        let s1 = b.add_switch(8);
        b.connect(Endpoint::Nic(NodeId(0)), Endpoint::SwitchPort { switch: s0, port: 0 });
        b.connect(Endpoint::Nic(NodeId(1)), Endpoint::SwitchPort { switch: s1, port: 0 });
        b.connect(
            Endpoint::SwitchPort { switch: s0, port: 6 },
            Endpoint::SwitchPort { switch: s1, port: 6 },
        );
        b.connect(
            Endpoint::SwitchPort { switch: s0, port: 7 },
            Endpoint::SwitchPort { switch: s1, port: 7 },
        );
        let tables = Mapper::map(&b.build());
        let r = tables[0].route(NodeId(1)).unwrap();
        assert_eq!(r.len(), 2);
        // Deterministic tie-break: lowest port (6) wins.
        assert_eq!(r, &vec![6, 0]);
    }

    #[test]
    fn mapping_is_deterministic() {
        let topo = Topology::switch_chain(4, 3);
        assert_eq!(Mapper::map(&topo), Mapper::map(&topo));
    }
}
