//! Network topology: host interfaces, switches, and the links between them.
//!
//! A Myrinet network is a graph whose vertices are host interfaces (one
//! port each) and crossbar switches (the paper's M3M-SW8 has 8 ports), and
//! whose edges are full-duplex links. [`TopologyBuilder`] assembles the
//! graph; [`Topology`] provides the read-only queries the fabric and the
//! mapper need.

use std::fmt;

/// Identifies a host interface (one per node).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u16);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Identifies a switch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SwitchId(pub u16);

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "switch{}", self.0)
    }
}

/// One attachable point in the network: a NIC, or a numbered switch port.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Endpoint {
    /// A host interface's single network port.
    Nic(NodeId),
    /// Port `port` of switch `switch`.
    SwitchPort {
        /// The switch.
        switch: SwitchId,
        /// Port index on that switch.
        port: u8,
    },
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Nic(n) => write!(f, "{n}"),
            Endpoint::SwitchPort { switch, port } => write!(f, "{switch}.p{port}"),
        }
    }
}

/// A full-duplex link between two endpoints, identified by index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Link {
    /// One side.
    pub a: Endpoint,
    /// The other side.
    pub b: Endpoint,
}

/// An immutable network graph.
#[derive(Clone, Debug)]
pub struct Topology {
    node_count: usize,
    switch_ports: Vec<u8>,
    links: Vec<Link>,
    // nic_link[node] = link index attached to that NIC.
    nic_link: Vec<Option<usize>>,
    // switch_link[switch][port] = link index, if connected.
    switch_link: Vec<Vec<Option<usize>>>,
}

impl Topology {
    /// Starts building a topology.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// Number of host interfaces.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of switches.
    pub fn switch_count(&self) -> usize {
        self.switch_ports.len()
    }

    /// Port count of a switch.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn switch_port_count(&self, s: SwitchId) -> u8 {
        self.switch_ports[s.0 as usize]
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The link attached to a NIC, if cabled.
    pub fn nic_link(&self, n: NodeId) -> Option<usize> {
        self.nic_link.get(n.0 as usize).copied().flatten()
    }

    /// The link attached to a switch port, if cabled.
    pub fn switch_port_link(&self, s: SwitchId, port: u8) -> Option<usize> {
        self.switch_link
            .get(s.0 as usize)
            .and_then(|ports| ports.get(port as usize))
            .copied()
            .flatten()
    }

    /// The endpoint on the far side of `link` from `from`, or `None`
    /// when the link id is out of range or `from` is not one of the
    /// link's endpoints. Fallible on purpose: the mapper walks links
    /// while recomputing routes after a fault, i.e. on the recovery
    /// path, where a corrupt walk must degrade and not panic.
    pub fn peer(&self, link: usize, from: Endpoint) -> Option<Endpoint> {
        let l = self.links.get(link)?;
        if l.a == from {
            Some(l.b)
        } else if l.b == from {
            Some(l.a)
        } else {
            None
        }
    }

    /// Convenience: the two-host, one-switch testbed of the paper's
    /// evaluation (two PCI64B cards cabled to an M3M-SW8): node0 on switch
    /// port 0, node1 on port 1.
    pub fn two_nodes_one_switch() -> Topology {
        let mut b = Topology::builder();
        b.add_nodes(2);
        let sw = b.add_switch(8);
        b.connect(Endpoint::Nic(NodeId(0)), Endpoint::SwitchPort { switch: sw, port: 0 });
        b.connect(Endpoint::Nic(NodeId(1)), Endpoint::SwitchPort { switch: sw, port: 1 });
        b.build()
    }

    /// Convenience: `n` hosts on a single switch with at least `n` ports.
    ///
    /// # Panics
    ///
    /// Panics if `n > 255`.
    pub fn star(n: usize) -> Topology {
        assert!(n <= 255, "star topology limited to 255 hosts");
        let mut b = Topology::builder();
        b.add_nodes(n);
        let ports = (n.max(8)) as u8;
        let sw = b.add_switch(ports);
        for i in 0..n {
            b.connect(
                Endpoint::Nic(NodeId(i as u16)),
                Endpoint::SwitchPort {
                    switch: sw,
                    port: i as u8,
                },
            );
        }
        b.build()
    }

    /// Convenience: `n` hosts on a ring of `n` switches.
    ///
    /// One host hangs off port 0 of each switch; the switches close a
    /// cycle on ports 7→6. Routes between non-adjacent hosts take multiple
    /// switch hops, and the cycle gives the mapper two candidate
    /// directions — the shape chaos campaigns use for multi-node,
    /// multi-hop fault scenarios.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `n > 255`.
    pub fn ring(n: usize) -> Topology {
        assert!((2..=255).contains(&n), "ring topology needs 2..=255 hosts");
        let mut b = Topology::builder();
        b.add_nodes(n);
        let sws: Vec<SwitchId> = (0..n).map(|_| b.add_switch(8)).collect();
        for (i, &sw) in sws.iter().enumerate() {
            b.connect(
                Endpoint::Nic(NodeId(i as u16)),
                Endpoint::SwitchPort { switch: sw, port: 0 },
            );
            let next = sws[(i + 1) % n];
            b.connect(
                Endpoint::SwitchPort { switch: sw, port: 7 },
                Endpoint::SwitchPort {
                    switch: next,
                    port: 6,
                },
            );
        }
        b.build()
    }

    /// Convenience: hosts spread across a chain of switches.
    ///
    /// `hosts_per_switch` hosts hang off each of `switches` switches; the
    /// switches are daisy-chained on their two highest ports. Models
    /// multi-hop routes and inter-switch contention.
    pub fn switch_chain(switches: usize, hosts_per_switch: usize) -> Topology {
        assert!(switches >= 1);
        let mut b = Topology::builder();
        b.add_nodes(switches * hosts_per_switch);
        let ports = (hosts_per_switch + 2).max(8) as u8;
        let sws: Vec<SwitchId> = (0..switches).map(|_| b.add_switch(ports)).collect();
        for (si, &sw) in sws.iter().enumerate() {
            for h in 0..hosts_per_switch {
                b.connect(
                    Endpoint::Nic(NodeId((si * hosts_per_switch + h) as u16)),
                    Endpoint::SwitchPort {
                        switch: sw,
                        port: h as u8,
                    },
                );
            }
        }
        for w in sws.windows(2) {
            b.connect(
                Endpoint::SwitchPort {
                    switch: w[0],
                    port: ports - 1,
                },
                Endpoint::SwitchPort {
                    switch: w[1],
                    port: ports - 2,
                },
            );
        }
        b.build()
    }

    /// Convenience: a two-level fat tree (leaf/spine Clos).
    ///
    /// `hosts_per_leaf` hosts hang off each of `leaves` leaf switches on
    /// their low ports; every leaf uplinks to every one of `spines` spine
    /// switches (leaf port `hosts_per_leaf + s` to spine `s` port `l`).
    /// Every host pair is at most four channel hops apart regardless of
    /// fabric size, and the spine layer gives the mapper `spines`
    /// equal-length candidate routes — the shape the scale bench uses for
    /// its 8/64/256-node cells.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero, a switch would need more than 255
    /// ports, or the host count would exceed `u16` node ids.
    pub fn fat_tree(spines: usize, leaves: usize, hosts_per_leaf: usize) -> Topology {
        assert!(
            spines >= 1 && leaves >= 1 && hosts_per_leaf >= 1,
            "fat_tree dimensions must be at least 1"
        );
        assert!(
            hosts_per_leaf + spines <= 255,
            "fat_tree leaf switch needs more than 255 ports"
        );
        assert!(leaves <= 255, "fat_tree spine switch needs more than 255 ports");
        let hosts = leaves * hosts_per_leaf;
        assert!(hosts <= u16::MAX as usize, "fat_tree host count exceeds u16");
        let mut b = Topology::builder();
        b.add_nodes(hosts);
        let leaf_sws: Vec<SwitchId> = (0..leaves)
            .map(|_| b.add_switch((hosts_per_leaf + spines) as u8))
            .collect();
        let spine_sws: Vec<SwitchId> = (0..spines)
            .map(|_| b.add_switch(leaves as u8))
            .collect();
        for (l, &leaf) in leaf_sws.iter().enumerate() {
            for h in 0..hosts_per_leaf {
                b.connect(
                    Endpoint::Nic(NodeId((l * hosts_per_leaf + h) as u16)),
                    Endpoint::SwitchPort {
                        switch: leaf,
                        port: h as u8,
                    },
                );
            }
            for (s, &spine) in spine_sws.iter().enumerate() {
                b.connect(
                    Endpoint::SwitchPort {
                        switch: leaf,
                        port: (hosts_per_leaf + s) as u8,
                    },
                    Endpoint::SwitchPort {
                        switch: spine,
                        port: l as u8,
                    },
                );
            }
        }
        b.build()
    }

    /// Convenience: a 2-D torus of `cols × rows` switches, one host each.
    ///
    /// Each switch carries its host on port 0 and meshes with its four
    /// neighbours with wrap-around: port 1 east to the neighbour's port 2,
    /// port 3 north to the neighbour's port 4. Routes grow with Manhattan
    /// distance (up to `cols/2 + rows/2` switch hops), making this the
    /// high-diameter counterpoint to [`Topology::fat_tree`].
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below 2 or the host count would
    /// exceed `u16` node ids.
    pub fn torus(cols: usize, rows: usize) -> Topology {
        assert!(cols >= 2 && rows >= 2, "torus needs both dimensions >= 2");
        let hosts = cols * rows;
        assert!(hosts <= u16::MAX as usize, "torus host count exceeds u16");
        let mut b = Topology::builder();
        b.add_nodes(hosts);
        let sws: Vec<SwitchId> = (0..hosts).map(|_| b.add_switch(5)).collect();
        let at = |x: usize, y: usize| sws[y * cols + x];
        for y in 0..rows {
            for x in 0..cols {
                b.connect(
                    Endpoint::Nic(NodeId((y * cols + x) as u16)),
                    Endpoint::SwitchPort {
                        switch: at(x, y),
                        port: 0,
                    },
                );
                b.connect(
                    Endpoint::SwitchPort {
                        switch: at(x, y),
                        port: 1,
                    },
                    Endpoint::SwitchPort {
                        switch: at((x + 1) % cols, y),
                        port: 2,
                    },
                );
                b.connect(
                    Endpoint::SwitchPort {
                        switch: at(x, y),
                        port: 3,
                    },
                    Endpoint::SwitchPort {
                        switch: at(x, (y + 1) % rows),
                        port: 4,
                    },
                );
            }
        }
        b.build()
    }
}

/// Incrementally assembles a [`Topology`].
///
/// # Example
///
/// ```
/// use ftgm_net::topology::{Endpoint, NodeId, Topology};
///
/// let mut b = Topology::builder();
/// b.add_nodes(2);
/// let sw = b.add_switch(8);
/// b.connect(Endpoint::Nic(NodeId(0)), Endpoint::SwitchPort { switch: sw, port: 0 });
/// b.connect(Endpoint::Nic(NodeId(1)), Endpoint::SwitchPort { switch: sw, port: 5 });
/// let topo = b.build();
/// assert_eq!(topo.node_count(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TopologyBuilder {
    node_count: usize,
    switch_ports: Vec<u8>,
    links: Vec<Link>,
}

impl TopologyBuilder {
    /// Adds `n` host interfaces, ids assigned consecutively.
    pub fn add_nodes(&mut self, n: usize) -> &mut Self {
        self.node_count += n;
        self
    }

    /// Adds a switch with `ports` ports, returning its id.
    pub fn add_switch(&mut self, ports: u8) -> SwitchId {
        assert!(ports > 0, "a switch needs at least one port");
        self.switch_ports.push(ports);
        SwitchId((self.switch_ports.len() - 1) as u16)
    }

    /// Cables two endpoints together.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint does not exist, is already cabled, or the
    /// two endpoints are identical.
    pub fn connect(&mut self, a: Endpoint, b: Endpoint) -> &mut Self {
        assert_ne!(a, b, "cannot cable an endpoint to itself");
        for ep in [a, b] {
            match ep {
                Endpoint::Nic(n) => {
                    assert!(
                        (n.0 as usize) < self.node_count,
                        "unknown node {n} (have {})",
                        self.node_count
                    );
                }
                Endpoint::SwitchPort { switch, port } => {
                    let ports = self
                        .switch_ports
                        .get(switch.0 as usize)
                        .unwrap_or_else(|| panic!("unknown switch {switch}"));
                    assert!(port < *ports, "switch {switch} has no port {port}");
                }
            }
            assert!(
                !self
                    .links
                    .iter()
                    .any(|l| l.a == ep || l.b == ep),
                "{ep} is already cabled"
            );
        }
        self.links.push(Link { a, b });
        self
    }

    /// Finalizes the topology.
    pub fn build(&self) -> Topology {
        let mut nic_link = vec![None; self.node_count];
        let mut switch_link: Vec<Vec<Option<usize>>> = self
            .switch_ports
            .iter()
            .map(|&p| vec![None; p as usize])
            .collect();
        for (i, l) in self.links.iter().enumerate() {
            for ep in [l.a, l.b] {
                match ep {
                    Endpoint::Nic(n) => nic_link[n.0 as usize] = Some(i),
                    Endpoint::SwitchPort { switch, port } => {
                        switch_link[switch.0 as usize][port as usize] = Some(i)
                    }
                }
            }
        }
        Topology {
            node_count: self.node_count,
            switch_ports: self.switch_ports.clone(),
            links: self.links.clone(),
            nic_link,
            switch_link,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_node_testbed_shape() {
        let t = Topology::two_nodes_one_switch();
        assert_eq!(t.node_count(), 2);
        assert_eq!(t.switch_count(), 1);
        assert_eq!(t.links().len(), 2);
        assert!(t.nic_link(NodeId(0)).is_some());
        assert!(t.nic_link(NodeId(1)).is_some());
        assert!(t.switch_port_link(SwitchId(0), 2).is_none());
    }

    #[test]
    fn peer_resolves_far_side() {
        let t = Topology::two_nodes_one_switch();
        let l = t.nic_link(NodeId(0)).unwrap();
        let far = t.peer(l, Endpoint::Nic(NodeId(0)));
        assert_eq!(
            far,
            Some(Endpoint::SwitchPort {
                switch: SwitchId(0),
                port: 0
            })
        );
    }

    #[test]
    fn peer_rejects_foreign_endpoint() {
        let t = Topology::two_nodes_one_switch();
        let l = t.nic_link(NodeId(0)).unwrap();
        assert_eq!(t.peer(l, Endpoint::Nic(NodeId(1))), None);
        assert_eq!(t.peer(usize::MAX, Endpoint::Nic(NodeId(0))), None);
    }

    #[test]
    fn fat_tree_shape() {
        // The scale bench's 256-node cell: 8 spines, 16 leaves, 16 hosts/leaf.
        let t = Topology::fat_tree(8, 16, 16);
        assert_eq!(t.node_count(), 256);
        assert_eq!(t.switch_count(), 16 + 8);
        // 256 host links + 16*8 leaf-spine uplinks.
        assert_eq!(t.links().len(), 256 + 128);
        for n in 0..256 {
            assert!(t.nic_link(NodeId(n)).is_some(), "host {n} cabled");
        }
        // Leaf 0 uplink to spine 3 sits on port hosts_per_leaf + 3.
        assert!(t.switch_port_link(SwitchId(0), 16 + 3).is_some());
        // Spine 0 has one downlink per leaf and nothing else.
        assert_eq!(t.switch_port_count(SwitchId(16)), 16);
    }

    #[test]
    #[should_panic(expected = "255 ports")]
    fn fat_tree_rejects_oversized_leaf() {
        Topology::fat_tree(200, 2, 200);
    }

    #[test]
    fn torus_shape_and_wraparound() {
        let t = Topology::torus(4, 4);
        assert_eq!(t.node_count(), 16);
        assert_eq!(t.switch_count(), 16);
        // One host link plus two mesh links (east, north) per switch.
        assert_eq!(t.links().len(), 16 * 3);
        // East of the last column wraps to column 0: switch 3's port 1
        // must land on switch 0's port 2.
        let l = t.switch_port_link(SwitchId(3), 1).unwrap();
        let far = t.peer(
            l,
            Endpoint::SwitchPort {
                switch: SwitchId(3),
                port: 1,
            },
        );
        assert_eq!(
            far,
            Some(Endpoint::SwitchPort {
                switch: SwitchId(0),
                port: 2
            })
        );
    }

    #[test]
    fn minimal_torus_is_buildable() {
        // cols == 2 produces parallel links between neighbour pairs; the
        // builder must accept them (distinct ports on both sides).
        let t = Topology::torus(2, 2);
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.links().len(), 4 * 3);
    }

    #[test]
    fn star_connects_all() {
        let t = Topology::star(5);
        assert_eq!(t.node_count(), 5);
        for i in 0..5 {
            assert!(t.nic_link(NodeId(i)).is_some());
        }
    }

    #[test]
    fn ring_closes_the_cycle() {
        let t = Topology::ring(4);
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.switch_count(), 4);
        // 4 host links + 4 inter-switch links close the cycle.
        assert_eq!(t.links().len(), 8);
        for i in 0..4 {
            assert!(t.nic_link(NodeId(i)).is_some());
            assert!(t.switch_port_link(SwitchId(i), 6).is_some());
            assert!(t.switch_port_link(SwitchId(i), 7).is_some());
        }
    }

    #[test]
    #[should_panic(expected = "2..=255")]
    fn ring_rejects_single_node() {
        Topology::ring(1);
    }

    #[test]
    fn switch_chain_links_switches() {
        let t = Topology::switch_chain(3, 2);
        assert_eq!(t.node_count(), 6);
        assert_eq!(t.switch_count(), 3);
        // 6 host links + 2 inter-switch links.
        assert_eq!(t.links().len(), 8);
    }

    #[test]
    #[should_panic(expected = "already cabled")]
    fn double_cable_rejected() {
        let mut b = Topology::builder();
        b.add_nodes(2);
        let sw = b.add_switch(4);
        b.connect(Endpoint::Nic(NodeId(0)), Endpoint::SwitchPort { switch: sw, port: 0 });
        b.connect(Endpoint::Nic(NodeId(0)), Endpoint::SwitchPort { switch: sw, port: 1 });
    }

    #[test]
    #[should_panic(expected = "no port")]
    fn bad_port_rejected() {
        let mut b = Topology::builder();
        b.add_nodes(1);
        let sw = b.add_switch(4);
        b.connect(Endpoint::Nic(NodeId(0)), Endpoint::SwitchPort { switch: sw, port: 9 });
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn unknown_node_rejected() {
        let mut b = Topology::builder();
        let sw = b.add_switch(4);
        b.connect(Endpoint::Nic(NodeId(0)), Endpoint::SwitchPort { switch: sw, port: 0 });
    }
}
