//! Wormhole-timed packet transport over a [`Topology`].
//!
//! # Timing model
//!
//! Wormhole switching is modelled at packet granularity. For a packet of
//! serialization time `ser` crossing channels `c0..cn` (a channel is one
//! direction of a link):
//!
//! ```text
//! start[0] = max(inject_time + tx_setup, free_at[c0])
//! start[i] = max(start[i-1] + prop + fall_through, free_at[ci])
//! free_at[ci]   = start[i+1] + ser      (tail has drained downstream)
//! free_at[cn]   = start[n] + ser
//! delivered_at  = start[n] + prop + ser
//! ```
//!
//! `start[i]` is when the packet's head starts down channel `i`; if the
//! next channel is busy the head waits and — because `free_at` of the
//! upstream channel is pinned to the *downstream* start — every channel it
//! occupies stays reserved. That is backpressure: blocked packets hold
//! their path, exactly like flit-level wormhole at the granularity the
//! paper's measurements resolve.
//!
//! Injections are resolved in simulation-time order, giving FCFS
//! arbitration per channel.

use ftgm_sim::{SimDuration, SimRng, SimTime};

use crate::topology::{Endpoint, NodeId, Topology};

/// Physical-layer parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FabricParams {
    /// Link bandwidth in bytes per second (Myrinet 2000: 2 Gb/s).
    pub bandwidth: u64,
    /// Per-hop propagation delay.
    pub prop_delay: SimDuration,
    /// Switch fall-through latency (head arrival → head eligible to exit).
    pub fall_through: SimDuration,
    /// NIC packet-interface start-up cost per packet.
    pub tx_setup: SimDuration,
    /// Fixed per-packet wire overhead in bytes (framing, CRC, gap).
    pub wire_overhead: u32,
}

impl Default for FabricParams {
    fn default() -> Self {
        FabricParams {
            bandwidth: 250_000_000, // 2 Gb/s
            prop_delay: SimDuration::from_nanos(300),
            fall_through: SimDuration::from_nanos(550),
            tx_setup: SimDuration::from_nanos(500),
            wire_overhead: 8,
        }
    }
}

/// Why a packet did not arrive.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// The source NIC has no cable.
    SourceNotCabled,
    /// The route named a switch port with no cable.
    DeadPort(u8),
    /// The route ran out of bytes while still at a switch.
    RouteExhausted,
    /// The packet reached a NIC with route bytes left over (misroute).
    RouteNotConsumed,
    /// The route looped past the hop limit.
    TooManyHops,
    /// A link on the path is administratively down.
    LinkDown,
    /// The walk landed on a link that does not include the current
    /// endpoint (corrupt topology or route table).
    BadLink,
    /// The link fault model dropped the packet.
    FaultDrop,
}

/// A successfully transported packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// When the tail arrives at the destination NIC.
    pub at: SimTime,
    /// The destination interface.
    pub dst: NodeId,
    /// The frame bytes as received (possibly corrupted in flight).
    pub bytes: Vec<u8>,
    /// Whether the link CRC checked out; receivers drop `false` frames.
    pub crc_ok: bool,
}

/// Optional per-packet fault model for protocol testing.
#[derive(Clone, Debug)]
pub struct LinkFaults {
    /// Probability a packet vanishes in flight.
    pub drop_prob: f64,
    /// Probability a packet arrives with a flipped bit (CRC catches it).
    pub corrupt_prob: f64,
    /// Deterministic randomness source.
    pub rng: SimRng,
}

/// Transport statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Packets accepted by `inject`.
    pub injected: u64,
    /// Packets that produced a [`Delivery`].
    pub delivered: u64,
    /// Packets dropped for any reason.
    pub dropped: u64,
    /// Payload bytes delivered.
    pub bytes_delivered: u64,
}

/// The packet transport engine.
///
/// # Example
///
/// ```
/// use ftgm_net::{Fabric, FabricParams, NodeId, Topology};
/// use ftgm_sim::SimTime;
///
/// let topo = Topology::two_nodes_one_switch();
/// let mut fabric = Fabric::new(topo, FabricParams::default());
/// // node0 → switch port 1 → node1; source route is one byte: exit port 1.
/// let d = fabric
///     .inject(SimTime::ZERO, NodeId(0), &[1], vec![0xAB; 64])
///     .expect("delivers");
/// assert_eq!(d.dst, NodeId(1));
/// assert!(d.crc_ok);
/// ```
#[derive(Debug)]
pub struct Fabric {
    topo: Topology,
    params: FabricParams,
    /// `free_at[link][dir]`, dir 0 = a→b, 1 = b→a.
    free_at: Vec<[SimTime; 2]>,
    /// Accumulated occupancy per channel (for utilization reporting).
    busy: Vec<[SimDuration; 2]>,
    link_up: Vec<bool>,
    faults: Option<LinkFaults>,
    stats: FabricStats,
    /// Pooled per-packet scratch: the `(link, dir)` channel path of the
    /// worm being walked. Taken and returned by `walk` so the hot path
    /// allocates nothing once capacities warm up.
    scratch_channels: Vec<(usize, usize)>,
    /// Pooled per-packet scratch: head-start times per channel.
    scratch_start: Vec<SimTime>,
}

/// Safety bound on route length (Myrinet routes are tiny; a loop is a bug).
const MAX_HOPS: usize = 64;

impl Fabric {
    /// Creates a fabric over `topo`.
    pub fn new(topo: Topology, params: FabricParams) -> Fabric {
        let links = topo.links().len();
        Fabric {
            topo,
            params,
            free_at: vec![[SimTime::ZERO; 2]; links],
            busy: vec![[SimDuration::ZERO; 2]; links],
            link_up: vec![true; links],
            faults: None,
            stats: FabricStats::default(),
            scratch_channels: Vec::new(),
            scratch_start: Vec::new(),
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The physical parameters.
    pub fn params(&self) -> &FabricParams {
        &self.params
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> FabricStats {
        self.stats
    }

    /// Installs (or clears) the link fault model.
    pub fn set_faults(&mut self, faults: Option<LinkFaults>) {
        self.faults = faults;
    }

    /// Administratively raises or lowers a link.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn set_link_up(&mut self, link: usize, up: bool) {
        self.link_up[link] = up;
    }

    /// Whether a link is administratively up.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn link_is_up(&self, link: usize) -> bool {
        self.link_up[link]
    }

    /// Occupied time of one channel (`dir` 0 = a→b) since simulation
    /// start — utilization is this over elapsed time.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn channel_busy(&self, link: usize, dir: usize) -> SimDuration {
        self.busy[link][dir]
    }

    /// Serialization time of a frame of `len` payload bytes.
    pub fn serialization_time(&self, len: usize) -> SimDuration {
        SimDuration::for_bytes(len as u64 + self.params.wire_overhead as u64, self.params.bandwidth)
    }

    /// Injects a frame at `src`'s packet interface, following `route`
    /// (one output-port byte per switch), and computes its delivery.
    ///
    /// # Errors
    ///
    /// Returns the [`DropReason`] if the packet cannot be delivered. Channel
    /// reservations made before the failure point stay in place (the doomed
    /// worm still occupied them).
    pub fn inject(
        &mut self,
        now: SimTime,
        src: NodeId,
        route: &[u8],
        bytes: Vec<u8>,
    ) -> Result<Delivery, DropReason> {
        self.stats.injected += 1;
        let result = self.walk(now, src, route, bytes);
        match &result {
            Ok(d) => {
                self.stats.delivered += 1;
                self.stats.bytes_delivered += d.bytes.len() as u64;
            }
            Err(_) => self.stats.dropped += 1,
        }
        result
    }

    /// Resolves the `(link, dir)` channel path for a worm from `src`
    /// following `route`, appending into the caller-supplied (pooled)
    /// `channels` buffer.
    fn resolve_path(
        &self,
        src: NodeId,
        route: &[u8],
        channels: &mut Vec<(usize, usize)>,
    ) -> Result<NodeId, DropReason> {
        let mut at = Endpoint::Nic(src);
        let mut link = self.topo.nic_link(src).ok_or(DropReason::SourceNotCabled)?;
        let mut route_pos = 0;
        loop {
            if channels.len() >= MAX_HOPS {
                return Err(DropReason::TooManyHops);
            }
            if !self.link_up[link] {
                return Err(DropReason::LinkDown);
            }
            let dir = if self.topo.links()[link].a == at { 0 } else { 1 };
            channels.push((link, dir));
            let far = self.topo.peer(link, at).ok_or(DropReason::BadLink)?;
            match far {
                Endpoint::Nic(n) => {
                    if route_pos != route.len() {
                        return Err(DropReason::RouteNotConsumed);
                    }
                    return Ok(n);
                }
                Endpoint::SwitchPort { switch, .. } => {
                    let Some(&out_port) = route.get(route_pos) else {
                        return Err(DropReason::RouteExhausted);
                    };
                    route_pos += 1;
                    let Some(next) = self.topo.switch_port_link(switch, out_port) else {
                        return Err(DropReason::DeadPort(out_port));
                    };
                    at = Endpoint::SwitchPort {
                        switch,
                        port: out_port,
                    };
                    link = next;
                }
            }
        }
    }

    fn walk(
        &mut self,
        now: SimTime,
        src: NodeId,
        route: &[u8],
        mut bytes: Vec<u8>,
    ) -> Result<Delivery, DropReason> {
        // --- resolve the channel path -----------------------------------
        // Borrow the pooled path buffers; they go back before any return
        // so their capacity survives for the next packet.
        let mut channels = std::mem::take(&mut self.scratch_channels);
        channels.clear();
        let resolved = self.resolve_path(src, route, &mut channels);
        let dst = match resolved {
            Ok(dst) => dst,
            Err(e) => {
                self.scratch_channels = channels;
                return Err(e);
            }
        };

        // --- wormhole timing ---------------------------------------------
        let ser = self.serialization_time(bytes.len());
        let prop = self.params.prop_delay;
        let n = channels.len();
        let mut start = std::mem::take(&mut self.scratch_start);
        start.clear();
        start.resize(n, SimTime::ZERO);
        for i in 0..n {
            let (l, d) = channels[i];
            let earliest = if i == 0 {
                now + self.params.tx_setup
            } else {
                start[i - 1] + prop + self.params.fall_through
            };
            start[i] = earliest.max(self.free_at[l][d]);
        }
        for i in 0..n {
            let (l, d) = channels[i];
            let new_free = if i + 1 < n {
                start[i + 1] + ser
            } else {
                start[i] + ser
            };
            self.busy[l][d] += new_free.saturating_since(start[i]);
            self.free_at[l][d] = new_free;
        }
        let delivered_at = start[n - 1] + prop + ser;
        self.scratch_channels = channels;
        self.scratch_start = start;

        // --- fault model ----------------------------------------------------
        let mut crc_ok = true;
        if let Some(f) = &mut self.faults {
            if f.rng.gen_bool(f.drop_prob) {
                return Err(DropReason::FaultDrop);
            }
            if !bytes.is_empty() && f.rng.gen_bool(f.corrupt_prob) {
                let bit = f.rng.gen_range(bytes.len() as u64 * 8);
                bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
                crc_ok = false;
            }
        }
        Ok(Delivery {
            at: delivered_at,
            dst,
            bytes,
            crc_ok,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric2() -> Fabric {
        Fabric::new(Topology::two_nodes_one_switch(), FabricParams::default())
    }

    #[test]
    fn basic_delivery() {
        let mut f = fabric2();
        let d = f.inject(SimTime::ZERO, NodeId(0), &[1], vec![1, 2, 3]).unwrap();
        assert_eq!(d.dst, NodeId(1));
        assert_eq!(d.bytes, vec![1, 2, 3]);
        assert!(d.crc_ok);
        assert_eq!(f.stats().delivered, 1);
    }

    #[test]
    fn latency_matches_model() {
        let mut f = fabric2();
        let p = *f.params();
        let d = f.inject(SimTime::ZERO, NodeId(0), &[1], vec![0; 56]).unwrap();
        // 64 wire bytes at 250 MB/s = 256ns serialization.
        let ser = SimDuration::from_nanos(256);
        let expect = SimTime::ZERO
            + p.tx_setup          // start[0]
            + p.prop_delay        // head at switch
            + p.fall_through      // head exits switch (start[1])
            + p.prop_delay        // head at NIC
            + ser; // tail arrives
        assert_eq!(d.at, expect);
    }

    #[test]
    fn contention_serializes_on_shared_channel() {
        // Three senders all target node0 through the same switch output.
        let topo = Topology::star(4);
        let mut f = Fabric::new(topo, FabricParams::default());
        let payload = vec![0u8; 1016]; // 1024 wire bytes → 4.096us ser
        let d1 = f.inject(SimTime::ZERO, NodeId(1), &[0], payload.clone()).unwrap();
        let d2 = f.inject(SimTime::ZERO, NodeId(2), &[0], payload.clone()).unwrap();
        let d3 = f.inject(SimTime::ZERO, NodeId(3), &[0], payload).unwrap();
        let ser = SimDuration::from_nanos(4096);
        assert!(d2.at >= d1.at + ser, "{d1:?} {d2:?}");
        assert!(d3.at >= d2.at + ser);
    }

    #[test]
    fn backpressure_holds_upstream_channel() {
        // Two switches in a chain; node0,node1 on switch0; node2 on switch1.
        // node0 → node2 and node1 → node2 contend on the inter-switch link;
        // the loser's NIC link must stay reserved until it drains.
        let topo = Topology::switch_chain(2, 2);
        let mut f = Fabric::new(topo, FabricParams::default());
        let ports = 8u8; // hosts_per_switch+2 max(8)
        let inter = ports - 1; // switch0's uplink port
        let payload = vec![0u8; 2040];
        let a = f
            .inject(SimTime::ZERO, NodeId(0), &[inter, 0], payload.clone())
            .unwrap();
        let b = f
            .inject(SimTime::ZERO, NodeId(1), &[inter, 0], payload.clone())
            .unwrap();
        assert_eq!(a.dst, NodeId(2));
        assert_eq!(b.dst, NodeId(2));
        assert!(b.at > a.at);
        // node1's own NIC channel stayed reserved while blocked: a third
        // packet from node1 cannot start before the first drained.
        let c = f
            .inject(SimTime::from_nanos(1), NodeId(1), &[inter, 1], payload)
            .unwrap();
        assert!(c.at > b.at - SimDuration::from_nanos(2048 * 4));
    }

    #[test]
    fn route_exhausted_drops() {
        let mut f = fabric2();
        assert_eq!(
            f.inject(SimTime::ZERO, NodeId(0), &[], vec![0; 8]),
            Err(DropReason::RouteExhausted)
        );
        assert_eq!(f.stats().dropped, 1);
    }

    #[test]
    fn leftover_route_drops() {
        let mut f = fabric2();
        assert_eq!(
            f.inject(SimTime::ZERO, NodeId(0), &[1, 3], vec![0; 8]),
            Err(DropReason::RouteNotConsumed)
        );
    }

    #[test]
    fn dead_port_drops() {
        let mut f = fabric2();
        assert_eq!(
            f.inject(SimTime::ZERO, NodeId(0), &[7], vec![0; 8]),
            Err(DropReason::DeadPort(7))
        );
    }

    #[test]
    fn link_down_drops() {
        let mut f = fabric2();
        let l = f.topology().nic_link(NodeId(1)).unwrap();
        f.set_link_up(l, false);
        assert_eq!(
            f.inject(SimTime::ZERO, NodeId(0), &[1], vec![0; 8]),
            Err(DropReason::LinkDown)
        );
        f.set_link_up(l, true);
        assert!(f.inject(SimTime::ZERO, NodeId(0), &[1], vec![0; 8]).is_ok());
    }

    #[test]
    fn routing_loop_detected() {
        // Cable two ports of a switch together and route through them
        // forever.
        let mut b = Topology::builder();
        b.add_nodes(1);
        let sw = b.add_switch(8);
        b.connect(Endpoint::Nic(NodeId(0)), Endpoint::SwitchPort { switch: sw, port: 0 });
        b.connect(
            Endpoint::SwitchPort { switch: sw, port: 1 },
            Endpoint::SwitchPort { switch: sw, port: 2 },
        );
        let mut f = Fabric::new(b.build(), FabricParams::default());
        let route: Vec<u8> = std::iter::repeat([1u8, 2u8]).flatten().take(100).collect();
        assert_eq!(
            f.inject(SimTime::ZERO, NodeId(0), &route, vec![0; 8]),
            Err(DropReason::TooManyHops)
        );
    }

    #[test]
    fn fault_model_drops_and_corrupts() {
        let mut f = fabric2();
        f.set_faults(Some(LinkFaults {
            drop_prob: 1.0,
            corrupt_prob: 0.0,
            rng: SimRng::new(1),
        }));
        assert_eq!(
            f.inject(SimTime::ZERO, NodeId(0), &[1], vec![0; 16]),
            Err(DropReason::FaultDrop)
        );
        f.set_faults(Some(LinkFaults {
            drop_prob: 0.0,
            corrupt_prob: 1.0,
            rng: SimRng::new(2),
        }));
        let d = f.inject(SimTime::ZERO, NodeId(0), &[1], vec![0; 16]).unwrap();
        assert!(!d.crc_ok);
        assert_ne!(d.bytes, vec![0; 16]);
    }

    #[test]
    fn bandwidth_is_respected_over_many_packets() {
        let mut f = fabric2();
        let mut t = SimTime::ZERO;
        let mut last = SimTime::ZERO;
        let n = 100u64;
        let payload_len = 4088usize; // 4096 wire bytes
        for _ in 0..n {
            let d = f.inject(t, NodeId(0), &[1], vec![0; payload_len]).unwrap();
            last = d.at;
            t = t + SimDuration::from_nanos(1); // saturate
        }
        // 100 * 4096B at 250MB/s = 1.6384ms minimum.
        let min = SimDuration::for_bytes(n * 4096, 250_000_000);
        assert!(last.saturating_since(SimTime::ZERO) >= min);
    }

    #[test]
    fn channel_utilization_accumulates_under_load() {
        let mut f = fabric2();
        let ser = f.serialization_time(4088);
        let mut t = SimTime::ZERO;
        for _ in 0..10 {
            let d = f.inject(t, NodeId(0), &[1], vec![0; 4088]).unwrap();
            t = d.at;
        }
        let l0 = f.topology().nic_link(NodeId(0)).unwrap();
        // The NIC's outbound channel carried 10 packets' worth of bytes
        // (within blocking slack).
        let busy = f.channel_busy(l0, 0);
        assert!(busy >= ser * 10, "{busy} vs {}", ser * 10);
        // The reverse direction carried nothing.
        assert_eq!(f.channel_busy(l0, 1), SimDuration::ZERO);
    }

    #[test]
    fn stats_accumulate() {
        let mut f = fabric2();
        f.inject(SimTime::ZERO, NodeId(0), &[1], vec![0; 8]).unwrap();
        let _ = f.inject(SimTime::ZERO, NodeId(0), &[], vec![0; 8]);
        let s = f.stats();
        assert_eq!(s.injected, 2);
        assert_eq!(s.delivered, 1);
        assert_eq!(s.dropped, 1);
        assert_eq!(s.bytes_delivered, 8);
    }
}
