//! Rank programs, operations, and the execution runtime.
//!
//! An MPI process is modelled as a *sequential stream of operations*: the
//! middleware asks the [`RankProgram`] for its next [`Op`], runs that
//! operation's protocol over GM (point-to-point tag matching, collective
//! schedules, or one-sided RMA), and hands the [`OpResult`] back. SPMD
//! programs therefore look like a straight-line list of sends, receives,
//! barriers and reductions — and, as on the paper's testbed, they have no
//! idea whether the interface below them failed and recovered.
//!
//! On top of that baseline this runtime implements the GASPI-style
//! failure contract when a [`RecoveryConfig`] is installed:
//!
//! * every blocking operation carries a **timeout**: a rank blocked past
//!   the deadline posts a suspicion against the peer it waits on, and a
//!   declared death surfaces as a typed [`OpResult::Fault`] instead of a
//!   hang or an abort,
//! * [`Op::Checkpoint`] captures opaque program state onto a buddy rank's
//!   in-memory [`ReplicaStore`](crate::recovery::ReplicaStore),
//! * after a death the job restarts under the configured
//!   [`RestartPolicy`]: **notify** (programs decide), **shrink**
//!   (collectives re-plan over the dense survivor index in a new epoch),
//!   or **spare** (the dead rank respawns on a hot-spare port from its
//!   last checkpoint while survivors *replay* their logged collectives so
//!   the restored rank re-receives everything it needs).
//!
//! ### Instance numbering
//!
//! Every collective or checkpoint a program issues gets a monotonically
//! increasing *instance number*; collective wire tags embed it, so
//! message streams from different operations can never cross-match.
//! Point-to-point and RMA ops ride outside the sequence (they match by
//! user tag or request id, not instance). Tag matching and replay rely
//! on the MPI ordering contract: every rank issues its collectives and
//! checkpoints in the same order, so instance *i* is the same logical
//! operation everywhere — even when ranks interleave different numbers
//! of point-to-point ops between them. Shrink/notify transitions re-align
//! the job by starting each new epoch's instances at `epoch << 32` and
//! purging buffered protocol traffic from older prefixes. Spare
//! transitions deliberately do *not* re-number: survivors replay the
//! original instances and duplicate envelopes are inert (same tag, same
//! deterministic contents, consumed at most once).
//!
//! Replay is exactly-once for collectives and checkpoints (they are
//! logged); point-to-point sends and RMA data ops are not replayed, so
//! under a spare restart they keep at-most-once semantics — the same
//! contract real GASPI gives unmanaged point-to-point traffic.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use ftgm_gm::{App, Ctx, GmEvent, World};
use ftgm_sim::{Metrics, SimDuration, SimTime, TraceKind};

use crate::collectives::{
    barrier_schedule, broadcast_plan, grid_dims, halo_neighbor, halo_opposite, rd_plan, ring_plan,
};
use crate::mailbox::{Envelope, Mailbox, Pattern, TAG_USER_MAX};
use crate::recovery::{
    FaultKind, Membership, RankFault, RankSpec, ReplicaStore, RestartPolicy, SuspectBoard,
};
use crate::rma::{OriginCounters, RmaMsg, WindowStore, TAG_RMA};

/// A rank's sequential program.
pub trait RankProgram: 'static {
    /// Returns the next operation, given the result of the previous one
    /// (`None` on the first call). Returning `None` finishes the rank.
    fn next_op(&mut self, rank: u32, nranks: u32, last: Option<OpResult>) -> Option<Op>;

    /// Called once, before the first `next_op`, when this program is a
    /// spare-restart reincarnation: `state` is the bytes the dead rank
    /// captured with its last [`Op::Checkpoint`] (empty if it never
    /// checkpointed). The program must rewind itself to that position
    /// and **re-issue that same `Checkpoint` as its first operation** —
    /// replay restarts at the checkpoint instance, with survivors
    /// re-running it so the barrier re-forms around the restored rank.
    fn on_restore(&mut self, _state: &[u8]) {}
}

/// The operations a rank program can issue.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Eager point-to-point send.
    Send {
        /// Destination rank.
        to: u32,
        /// Match tag (must be below [`TAG_USER_MAX`]).
        tag: u64,
        /// Payload.
        data: Vec<u8>,
    },
    /// Blocking receive by `(source, tag)`.
    Recv {
        /// Required source, or any.
        from: Option<u32>,
        /// Match tag.
        tag: u64,
    },
    /// Dissemination barrier across the communicator.
    Barrier,
    /// Binomial-tree broadcast; the root supplies `data`.
    Broadcast {
        /// The broadcasting rank.
        root: u32,
        /// Payload (root only; ignored elsewhere).
        data: Option<Vec<u8>>,
    },
    /// Ring all-reduce: element-wise wrapping sum of `u64` vectors.
    AllReduceSum {
        /// This rank's contribution.
        values: Vec<u64>,
    },
    /// Recursive-doubling all-reduce; same reduction, ⌈log₂ n⌉ depth.
    AllReduceSumRd {
        /// This rank's contribution.
        values: Vec<u64>,
    },
    /// 2-D halo exchange with the four torus grid neighbors.
    HaloExchange {
        /// Boundary payloads, indexed by direction
        /// ([`crate::collectives::HALO_UP`] …).
        sends: [Vec<u8>; 4],
    },
    /// Capture `state` onto the buddy rank's in-memory replica store;
    /// completes when the buddy acknowledges.
    Checkpoint {
        /// Opaque program state (what [`RankProgram::on_restore`] gets).
        state: Vec<u8>,
    },
    /// Expose one-sided window `win` on this rank.
    WinCreate {
        /// Window id (scoped to the owner rank).
        win: u32,
    },
    /// One-sided write into `(owner, win)`.
    Put {
        /// Window owner rank.
        owner: u32,
        /// Window id.
        win: u32,
        /// Byte offset.
        offset: u64,
        /// Bytes to write.
        data: Vec<u8>,
    },
    /// One-sided read from `(owner, win)`.
    Get {
        /// Window owner rank.
        owner: u32,
        /// Window id.
        win: u32,
        /// Byte offset.
        offset: u64,
        /// Bytes to read.
        len: u64,
    },
    /// One-sided element-wise wrapping add of `u64` slots.
    Accumulate {
        /// Window owner rank.
        owner: u32,
        /// Window id.
        win: u32,
        /// Byte offset (little-endian `u64` slots).
        offset: u64,
        /// Addends.
        values: Vec<u64>,
    },
    /// Wait until every window this origin wrote has applied all its ops
    /// (at the primary and the replica, whichever copies are alive).
    Flush,
}

/// What an operation produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpResult {
    /// The send was posted.
    Sent,
    /// A message arrived.
    Received {
        /// Sender rank.
        from: u32,
        /// Payload.
        data: Vec<u8>,
    },
    /// All ranks passed the barrier.
    BarrierDone,
    /// The broadcast payload.
    Broadcast {
        /// The (root's) data.
        data: Vec<u8>,
    },
    /// The reduced vector (ring or recursive doubling).
    AllReduceSum {
        /// Element-wise totals.
        values: Vec<u64>,
    },
    /// The halo payloads that arrived, indexed by the direction they
    /// came from.
    HaloDone {
        /// `recv[d]` is the payload from the neighbor in direction `d`.
        recv: [Vec<u8>; 4],
    },
    /// The checkpoint is replicated; `seqno` names it for restart.
    CheckpointDone {
        /// The checkpoint's instance number.
        seqno: u64,
    },
    /// The window exists.
    WinCreated {
        /// Window id.
        win: u32,
    },
    /// The put was issued to every live copy.
    PutDone,
    /// The window bytes (zero-filled past the written extent).
    GetDone {
        /// Bytes read.
        data: Vec<u8>,
    },
    /// The accumulate was issued to every live copy.
    AccumulateDone,
    /// Every live copy acknowledged this origin's writes.
    FlushDone,
    /// A rank died; this op was aborted (GASPI: a typed notification
    /// instead of a hang).
    Fault(RankFault),
}

// ---------------------------------------------------------------------------
// Reserved tag space.
// ---------------------------------------------------------------------------

/// Tag bit marking collective protocol traffic.
pub const TAG_COLL: u64 = 1 << 63;
/// Tag bit marking checkpoint store/ack traffic.
pub const TAG_CKPT: u64 = 1 << 61;
/// Width of the instance field embedded in protocol tags.
pub const INSTANCE_MASK: u64 = (1 << 42) - 1;

const KIND_BARRIER: u64 = 1;
const KIND_BCAST: u64 = 2;
const KIND_AR_RING: u64 = 3;
const KIND_AR_RD: u64 = 4;
const KIND_HALO: u64 = 5;
const KIND_CKPT_BAR: u64 = 6;

/// Recursive doubling: a folder's pre-round contribution to its host.
const ROUND_FOLD_IN: u64 = 0xFFFE;
/// Recursive doubling: the host's post-round result to its folder.
const ROUND_FOLD_OUT: u64 = 0xFFFF;

/// Alarm tag reserved for the runtime's poll tick.
const ALARM_POLL: u64 = 0x4654_504C; // "FTPL"

/// Instance sentinel for ops outside the collective sequence (p2p, RMA):
/// they are never logged, replayed, or muted.
const NO_INSTANCE: u64 = u64::MAX;

fn coll_tag(kind: u64, instance: u64, round: u64) -> u64 {
    TAG_COLL | (kind << 58) | ((instance & INSTANCE_MASK) << 16) | (round & 0xFFFF)
}

fn ckpt_tag(instance: u64, ack: bool) -> u64 {
    TAG_CKPT | ((instance & INSTANCE_MASK) << 16) | u64::from(ack)
}

/// The epoch prefix of a protocol tag's embedded instance.
fn tag_epoch_prefix(tag: u64) -> u64 {
    ((tag >> 16) & INSTANCE_MASK) >> 32
}

/// `true` for collective or checkpoint tags (the epoch-prefixed space).
fn is_protocol_tag(tag: u64) -> bool {
    tag & (TAG_COLL | TAG_CKPT) != 0
}

// ---------------------------------------------------------------------------
// Shared state and configuration.
// ---------------------------------------------------------------------------

/// Failure-semantics knobs. Installed on the harness before spawning;
/// absent means the pre-fault-tolerant behavior (hangs hang, escalations
/// count as fatal errors).
#[derive(Clone, Copy, Debug)]
pub struct RecoveryConfig {
    /// What to do when a rank is declared dead.
    pub policy: RestartPolicy,
    /// How long an operation may block before its runtime suspects the
    /// peer it waits on. Must exceed FTGM's transparent recovery time
    /// (~1.7 s) or recoveries get reported as deaths.
    pub op_timeout: SimDuration,
    /// How long a suspicion must persist (without progress) to ripen
    /// into an `OpTimeout` death. `InterfaceDead` confirmations ripen
    /// immediately.
    pub grace: SimDuration,
    /// Runtime poll-tick period (timeout checks, epoch rebinds).
    pub poll: SimDuration,
    /// Harness controller tick period (death declaration, respawn).
    pub controller: SimDuration,
}

impl RecoveryConfig {
    /// Defaults tuned to FTGM's measured ~1.7 s transparent recovery.
    pub fn with_policy(policy: RestartPolicy) -> RecoveryConfig {
        RecoveryConfig {
            policy,
            op_timeout: SimDuration::from_ms(2500),
            grace: SimDuration::from_ms(400),
            poll: SimDuration::from_ms(50),
            controller: SimDuration::from_ms(100),
        }
    }
}

/// State shared by every rank runtime and the harness controller: the
/// membership view, the failure-detection board, the checkpoint replica
/// store, and the middleware metrics registry.
pub struct MpiShared {
    /// Communicator membership (epoch, liveness, placement, spares).
    pub membership: RefCell<Membership>,
    /// Suspicions posted by runtimes, read by the controller.
    pub board: RefCell<SuspectBoard>,
    /// Checkpoint replicas (management plane: survives NIC death).
    pub replicas: RefCell<ReplicaStore>,
    /// Middleware metrics (mailbox depth histogram etc.).
    pub metrics: RefCell<Metrics>,
    /// Failure semantics; `None` = pre-fault-tolerant baseline.
    pub recovery: RefCell<Option<RecoveryConfig>>,
    /// Set by the harness when the job is finished; stops poll alarms.
    pub halt: Cell<bool>,
}

impl MpiShared {
    /// Fresh shared state over an epoch-0 membership.
    pub fn new(specs: Vec<RankSpec>, spares: Vec<RankSpec>) -> Rc<MpiShared> {
        Rc::new(MpiShared {
            membership: RefCell::new(Membership::fresh(specs, spares)),
            board: RefCell::new(SuspectBoard::default()),
            replicas: RefCell::new(ReplicaStore::default()),
            metrics: RefCell::new(Metrics::default()),
            recovery: RefCell::new(None),
            halt: Cell::new(false),
        })
    }

    fn config(&self) -> Option<RecoveryConfig> {
        *self.recovery.borrow()
    }
}

/// Shared observation point for a harness's ranks.
#[derive(Debug, Default)]
pub struct HarnessState {
    /// `(rank, finish time)` of every completed program.
    pub finished: Vec<(u32, SimTime)>,
    /// GM send errors / escalations surfaced with no recovery configured
    /// (MPI would abort).
    pub fatal_errors: u64,
    /// GM send errors absorbed by the recovery layer.
    pub gm_send_errors: u64,
    /// Typed `OpResult::Fault`s delivered to programs.
    pub faults_delivered: u64,
    /// Spare respawns performed by the controller.
    pub respawns: u64,
    /// Logged operations re-executed by survivors for a spare restart.
    pub replayed_instances: u64,
    /// Checkpoints stored on buddy ranks.
    pub checkpoints_stored: u64,
}

// ---------------------------------------------------------------------------
// Execution state.
// ---------------------------------------------------------------------------

/// A collective's communicator snapshot: `members[dense] = actual rank`.
/// Under the shrink policy past epoch 0 this is the dense survivor index;
/// otherwise it is the identity over the full job.
#[derive(Clone, Debug)]
struct Comm {
    me: u32,
    members: Vec<u32>,
}

impl Comm {
    fn n(&self) -> u32 {
        self.members.len() as u32
    }

    /// Dense index → actual rank (`u32::MAX`, which no spec resolves,
    /// when out of range — the post path drops it).
    fn actual(&self, dense: u32) -> u32 {
        self.members.get(dense as usize).copied().unwrap_or(u32::MAX)
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum ArStage {
    Lap1,
    Lap2,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum RdPhase {
    /// Host: waiting for its folder's pre-round contribution.
    FoldIn,
    /// Core: waiting for the current round's partner.
    Round,
    /// Folder: waiting for the host's finished result.
    FoldOut,
}

enum CollState {
    Barrier {
        schedule: Vec<(u32, u32)>,
        round: usize,
    },
    Bcast {
        recv_from: u32,
        send_to: Vec<u32>,
    },
    ArRing {
        values: Vec<u64>,
        stage: ArStage,
    },
    ArRd {
        acc: Vec<u64>,
        k: usize,
        phase: RdPhase,
    },
    Halo {
        cols: u32,
        rows: u32,
        got: [Option<Vec<u8>>; 4],
    },
    Ckpt {
        state: Vec<u8>,
        stage: CkptStage,
    },
}

/// Checkpoint protocol stage. The barrier runs FIRST: a stored replica
/// at seqno `c` therefore proves every rank entered checkpoint `c`
/// (completed all instances below it and consumed their inputs), which
/// is what makes `c` a consistent spare-restart cut.
enum CkptStage {
    Barrier { schedule: Vec<(u32, u32)>, round: usize },
    Store { buddy: u32 },
}

enum RmaPending {
    Get {
        owner: u32,
        win: u32,
        offset: u64,
        len: u64,
        req: u64,
        target: u32,
    },
    Flush {
        /// req → holder rank still owing an ack.
        awaiting: BTreeMap<u64, u32>,
    },
}

enum Executing {
    Idle,
    Recv {
        instance: u64,
        pattern: Pattern,
    },
    Coll {
        instance: u64,
        comm: Comm,
        st: CollState,
    },
    Rma {
        instance: u64,
        pending: RmaPending,
    },
}

fn loggable(op: &Op) -> bool {
    matches!(
        op,
        Op::Barrier
            | Op::Broadcast { .. }
            | Op::AllReduceSum { .. }
            | Op::AllReduceSumRd { .. }
            | Op::HaloExchange { .. }
            | Op::Checkpoint { .. }
    )
}

fn encode_u64s(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn decode_u64s(data: &[u8]) -> Vec<u64> {
    data.chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap_or([0; 8])))
        .collect()
}

fn add_into(acc: &mut [u64], other: &[u64]) {
    for (a, b) in acc.iter_mut().zip(other.iter()) {
        *a = a.wrapping_add(*b);
    }
}

/// The GM application that runs one rank.
pub struct MpiRankApp {
    rank: u32,
    me: RankSpec,
    shared: Rc<MpiShared>,
    program: Box<dyn RankProgram>,
    restore: Option<Vec<u8>>,
    mailbox: Mailbox,
    executing: Executing,
    pending_results: VecDeque<OpResult>,
    /// Sends waiting for a token: `(dst rank, tag, payload)`. Destination
    /// specs resolve at drain time so queued traffic follows a spare
    /// remap.
    outbox: VecDeque<(u32, u64, Vec<u8>)>,
    next_instance: u64,
    /// Instance → op, for spare-restart replay (collectives and
    /// checkpoints only; pruned at each completed checkpoint).
    log: BTreeMap<u64, Op>,
    /// Instances still to re-execute after a spare restart.
    replaying: VecDeque<u64>,
    /// Results of instances below this are replay catch-up and are not
    /// re-delivered to the program.
    mute_below: u64,
    /// Most recently completed checkpoint instance. A peer's replica can
    /// lag at most one checkpoint behind the newest completed one, so
    /// the log is pruned only up to the *previous* completed checkpoint.
    last_ckpt: Option<u64>,
    cached_epoch: u32,
    faults_seen: usize,
    blocked_since: SimTime,
    suspected: Vec<u32>,
    req_counter: u64,
    windows: WindowStore,
    counters: OriginCounters,
    /// Flush requests from origins whose ops have not all applied yet:
    /// `(origin, owner, win, sent_count, req)`.
    flush_backlog: Vec<(u32, u32, u32, u64, u64)>,
    buf_size: u32,
    done: bool,
    halted: bool,
    state: Rc<RefCell<HarnessState>>,
}

impl MpiRankApp {
    fn recovery(&self) -> Option<RecoveryConfig> {
        self.shared.config()
    }

    fn nranks_full(&self) -> u32 {
        self.shared.membership.borrow().specs.len() as u32
    }

    /// What the program sees as the communicator size: the dense survivor
    /// count once a shrink epoch is in force, the full job otherwise.
    fn program_nranks(&self) -> u32 {
        let m = self.shared.membership.borrow();
        if self.recovery().map(|c| c.policy) == Some(RestartPolicy::Shrink) && m.epoch > 0 {
            m.live_count()
        } else {
            m.specs.len() as u32
        }
    }

    /// The static replica holder for windows owned by `owner`: its ring
    /// successor in the *initial* job (fixed at window creation).
    fn replica_holder(&self, owner: u32) -> u32 {
        let n = self.nranks_full();
        if n <= 1 { owner } else { (owner + 1) % n }
    }

    fn build_comm(&self) -> Comm {
        let m = self.shared.membership.borrow();
        let shrink =
            self.recovery().map(|c| c.policy) == Some(RestartPolicy::Shrink) && m.epoch > 0;
        if shrink {
            let members: Vec<u32> =
                (0..m.alive.len() as u32).filter(|&r| m.is_alive(r)).collect();
            let me = m.dense_index(self.rank).unwrap_or(0);
            Comm { me, members }
        } else {
            Comm {
                me: self.rank,
                members: (0..m.specs.len() as u32).collect(),
            }
        }
    }

    /// Queues a protocol message to `to` (an actual rank id). Messages to
    /// ranks currently marked dead are dropped at drain — they are going
    /// nowhere, and sends into a dead interface leak tokens.
    fn post(&mut self, ctx: &mut Ctx<'_>, to: u32, tag: u64, payload: Vec<u8>) {
        if to == self.rank {
            // Loopback without touching GM (GM has no self-send).
            let env = Envelope { src_rank: self.rank, tag, payload };
            self.deliver_to_mailbox(ctx, env);
            return;
        }
        self.outbox.push_back((to, tag, payload));
        self.drain_outbox(ctx);
    }

    fn drain_outbox(&mut self, ctx: &mut Ctx<'_>) {
        if self.halted {
            self.outbox.clear();
            return;
        }
        while let Some(&(to, _, _)) = self.outbox.front() {
            if ctx.send_tokens() == 0 {
                return;
            }
            let (spec, alive) = {
                let m = self.shared.membership.borrow();
                (m.specs.get(to as usize).copied(), m.is_alive(to))
            };
            let Some((_, tag, payload)) = self.outbox.pop_front() else {
                return;
            };
            let Some(spec) = spec else { continue };
            if self.recovery().is_some() && !alive {
                continue;
            }
            let env = Envelope { src_rank: self.rank, tag, payload };
            ctx.gm_send(&env.encode(), spec.node, spec.port);
        }
    }

    fn deliver_to_mailbox(&mut self, ctx: &mut Ctx<'_>, env: Envelope) {
        let depth = self.mailbox.deliver(env) as u32;
        self.shared.metrics.borrow_mut().observe(
            ctx.now(),
            &TraceKind::MailboxQueued {
                node: self.me.node.0,
                port: self.me.port,
                depth,
            },
        );
    }

    /// Marks forward progress: resets the block timer and withdraws any
    /// suspicions this runtime had posted.
    fn progressed(&mut self, now: SimTime) {
        self.blocked_since = now;
        if self.suspected.is_empty() {
            return;
        }
        let mut board = self.shared.board.borrow_mut();
        for s in self.suspected.drain(..) {
            board.absolve(s);
        }
    }

    /// Prunes the replay log after completing checkpoint `instance`:
    /// only entries back to the *previous* completed checkpoint can
    /// still be needed (a dead peer's replica lags at most one
    /// checkpoint behind the newest globally completed one).
    ///
    /// A *replayed* checkpoint (one at or below `last_ckpt`) must not
    /// prune: its pruning already happened on first completion, and
    /// running it again here with the newer `last_ckpt` as the floor
    /// would drop the very instances the replay queue is about to
    /// re-execute — the restored rank would then wait forever for
    /// messages nobody re-sends.
    fn prune_log_at(&mut self, instance: u64) {
        if self.last_ckpt.is_some_and(|c| instance <= c) {
            return;
        }
        let keep_from = self.last_ckpt.unwrap_or(0);
        self.log.retain(|&i, _| i >= keep_from);
        self.last_ckpt = Some(instance);
    }

    /// Delivers a completed operation's result unless it is replay
    /// catch-up.
    fn finish(&mut self, instance: u64, result: OpResult) {
        if instance < self.mute_below {
            return;
        }
        if matches!(result, OpResult::Fault(_)) {
            self.state.borrow_mut().faults_delivered += 1;
        }
        self.pending_results.push_back(result);
    }

    fn next_req(&mut self) -> u64 {
        let r = self.req_counter;
        self.req_counter += 1;
        (u64::from(self.rank) << 32) | (r & 0xFFFF_FFFF)
    }
}

// ---------------------------------------------------------------------------
// Operation start.
// ---------------------------------------------------------------------------

impl MpiRankApp {
    /// Starts executing `op` as `instance`; may complete it synchronously.
    fn begin(&mut self, ctx: &mut Ctx<'_>, instance: u64, op: Op) {
        self.blocked_since = ctx.now();
        match op {
            Op::Send { to, tag, data } => {
                assert!(tag < TAG_USER_MAX, "tag {tag:#x} is reserved");
                self.post(ctx, to, tag, data);
                self.finish(instance, OpResult::Sent);
                self.executing = Executing::Idle;
            }
            Op::Recv { from, tag } => {
                assert!(tag < TAG_USER_MAX, "tag {tag:#x} is reserved");
                self.executing = Executing::Recv {
                    instance,
                    pattern: Pattern { from, tag },
                };
            }
            Op::Barrier => {
                let comm = self.build_comm();
                let schedule = barrier_schedule(comm.me, comm.n());
                if schedule.is_empty() {
                    self.finish(instance, OpResult::BarrierDone);
                    self.executing = Executing::Idle;
                    return;
                }
                if let Some(&(to, _)) = schedule.first() {
                    let to = comm.actual(to);
                    self.post(ctx, to, coll_tag(KIND_BARRIER, instance, 0), Vec::new());
                }
                self.executing = Executing::Coll {
                    instance,
                    comm,
                    st: CollState::Barrier { schedule, round: 0 },
                };
            }
            Op::Broadcast { root, data } => {
                let comm = self.build_comm();
                // `root` is an original rank id; map it into the dense
                // communicator (fall back to dense 0 if it died).
                let root_dense = comm
                    .members
                    .iter()
                    .position(|&r| r == root)
                    .map(|p| p as u32)
                    .unwrap_or(0);
                let plan = broadcast_plan(comm.me, root_dense, comm.n());
                if comm.me == root_dense {
                    let data = data.unwrap_or_default();
                    for &to in &plan.send_to {
                        let to = comm.actual(to);
                        self.post(ctx, to, coll_tag(KIND_BCAST, instance, 0), data.clone());
                    }
                    self.finish(instance, OpResult::Broadcast { data });
                    self.executing = Executing::Idle;
                } else {
                    let recv_from = plan.recv_from.unwrap_or(root_dense);
                    self.executing = Executing::Coll {
                        instance,
                        comm,
                        st: CollState::Bcast {
                            recv_from,
                            send_to: plan.send_to,
                        },
                    };
                }
            }
            Op::AllReduceSum { values } => {
                let comm = self.build_comm();
                if comm.n() <= 1 {
                    self.finish(instance, OpResult::AllReduceSum { values });
                    self.executing = Executing::Idle;
                    return;
                }
                let plan = ring_plan(comm.me, comm.n());
                if plan.l1_recv_from.is_none() {
                    // Dense rank 0 seeds lap 1.
                    if let Some(to) = plan.l1_send_to {
                        let to = comm.actual(to);
                        let payload = encode_u64s(&values);
                        self.post(ctx, to, coll_tag(KIND_AR_RING, instance, 0), payload);
                    }
                }
                self.executing = Executing::Coll {
                    instance,
                    comm,
                    st: CollState::ArRing {
                        values,
                        stage: ArStage::Lap1,
                    },
                };
            }
            Op::AllReduceSumRd { values } => {
                let comm = self.build_comm();
                if comm.n() <= 1 {
                    self.finish(instance, OpResult::AllReduceSum { values });
                    self.executing = Executing::Idle;
                    return;
                }
                let plan = rd_plan(comm.me, comm.n());
                if let Some(host) = plan.fold_to {
                    // Folder: contribute, then wait for the result.
                    let to = comm.actual(host);
                    self.post(
                        ctx,
                        to,
                        coll_tag(KIND_AR_RD, instance, ROUND_FOLD_IN),
                        encode_u64s(&values),
                    );
                    self.executing = Executing::Coll {
                        instance,
                        comm,
                        st: CollState::ArRd {
                            acc: values,
                            k: 0,
                            phase: RdPhase::FoldOut,
                        },
                    };
                } else if plan.fold_from.is_some() {
                    // Host: absorb the folder's vector first.
                    self.executing = Executing::Coll {
                        instance,
                        comm,
                        st: CollState::ArRd {
                            acc: values,
                            k: 0,
                            phase: RdPhase::FoldIn,
                        },
                    };
                } else {
                    // Core rank: open round 0 immediately.
                    if let Some(&p) = plan.partners.first() {
                        let to = comm.actual(p);
                        self.post(ctx, to, coll_tag(KIND_AR_RD, instance, 0), encode_u64s(&values));
                    }
                    self.executing = Executing::Coll {
                        instance,
                        comm,
                        st: CollState::ArRd {
                            acc: values,
                            k: 0,
                            phase: RdPhase::Round,
                        },
                    };
                }
            }
            Op::HaloExchange { sends } => {
                let comm = self.build_comm();
                let (cols, rows) = grid_dims(comm.n());
                let mut got: [Option<Vec<u8>>; 4] = [None, None, None, None];
                for dir in 0..4u32 {
                    let nb = halo_neighbor(comm.me, cols, rows, dir);
                    if nb == comm.me {
                        // Size-1 dimension: my own opposite-direction
                        // payload wraps straight back to me.
                        if let (Some(slot), Some(send)) = (
                            got.get_mut(dir as usize),
                            sends.get(halo_opposite(dir) as usize),
                        ) {
                            *slot = Some(send.clone());
                        }
                    } else if let Some(payload) = sends.get(dir as usize) {
                        let to = comm.actual(nb);
                        self.post(
                            ctx,
                            to,
                            coll_tag(KIND_HALO, instance, u64::from(dir)),
                            payload.clone(),
                        );
                    }
                }
                self.executing = Executing::Coll {
                    instance,
                    comm,
                    st: CollState::Halo { cols, rows, got },
                };
            }
            Op::Checkpoint { state } => {
                let comm = self.build_comm();
                let schedule = barrier_schedule(comm.me, comm.n());
                if schedule.is_empty() {
                    // Sole survivor: no barrier, and the management
                    // plane is local.
                    self.shared
                        .replicas
                        .borrow_mut()
                        .store(self.rank, instance, state);
                    self.state.borrow_mut().checkpoints_stored += 1;
                    self.prune_log_at(instance);
                    self.finish(instance, OpResult::CheckpointDone { seqno: instance });
                    self.executing = Executing::Idle;
                    return;
                }
                if let Some(&(to, _)) = schedule.first() {
                    let to = comm.actual(to);
                    self.post(ctx, to, coll_tag(KIND_CKPT_BAR, instance, 0), Vec::new());
                }
                self.executing = Executing::Coll {
                    instance,
                    comm,
                    st: CollState::Ckpt {
                        state,
                        stage: CkptStage::Barrier { schedule, round: 0 },
                    },
                };
            }
            Op::WinCreate { win } => {
                self.windows.create(self.rank, win);
                self.finish(instance, OpResult::WinCreated { win });
                self.executing = Executing::Idle;
            }
            Op::Put { owner, win, offset, data } => {
                self.counters.record(owner, win);
                self.rma_fan_out(ctx, owner, RmaMsg::Put { owner, win, offset, data });
                self.finish(instance, OpResult::PutDone);
                self.executing = Executing::Idle;
            }
            Op::Accumulate { owner, win, offset, values } => {
                self.counters.record(owner, win);
                self.rma_fan_out(ctx, owner, RmaMsg::Acc { owner, win, offset, values });
                self.finish(instance, OpResult::AccumulateDone);
                self.executing = Executing::Idle;
            }
            Op::Get { owner, win, offset, len } => {
                self.begin_get(ctx, instance, owner, win, offset, len);
            }
            Op::Flush => {
                let mut awaiting: BTreeMap<u64, u32> = BTreeMap::new();
                for (owner, win, sent) in self.counters.touched() {
                    let replica = self.replica_holder(owner);
                    for target in [owner, replica] {
                        if target == self.rank || (target == replica && replica == owner) {
                            continue; // local copies apply synchronously
                        }
                        if self.recovery().is_some()
                            && !self.shared.membership.borrow().is_alive(target)
                        {
                            continue;
                        }
                        let req = self.next_req();
                        self.post(
                            ctx,
                            target,
                            TAG_RMA,
                            RmaMsg::FlushReq { owner, win, sent_count: sent, req }.encode(),
                        );
                        awaiting.insert(req, target);
                    }
                }
                if awaiting.is_empty() {
                    self.finish(instance, OpResult::FlushDone);
                    self.executing = Executing::Idle;
                } else {
                    self.executing = Executing::Rma {
                        instance,
                        pending: RmaPending::Flush { awaiting },
                    };
                }
            }
        }
    }

    /// Sends an RMA data op to the owner and its replica holder, applying
    /// any local copy directly.
    fn rma_fan_out(&mut self, ctx: &mut Ctx<'_>, owner: u32, msg: RmaMsg) {
        let replica = self.replica_holder(owner);
        let mut targets = vec![owner];
        if replica != owner {
            targets.push(replica);
        }
        for target in targets {
            if target == self.rank {
                self.rma_apply_local(&msg);
                continue;
            }
            if self.recovery().is_some() && !self.shared.membership.borrow().is_alive(target) {
                continue;
            }
            self.post(ctx, target, TAG_RMA, msg.encode());
        }
    }

    fn rma_apply_local(&mut self, msg: &RmaMsg) {
        match msg {
            RmaMsg::Put { owner, win, offset, data } => {
                self.windows.apply_put(*owner, *win, self.rank, *offset, data);
            }
            RmaMsg::Acc { owner, win, offset, values } => {
                self.windows.apply_acc(*owner, *win, self.rank, *offset, values);
            }
            _ => {}
        }
    }

    fn begin_get(
        &mut self,
        ctx: &mut Ctx<'_>,
        instance: u64,
        owner: u32,
        win: u32,
        offset: u64,
        len: u64,
    ) {
        let replica = self.replica_holder(owner);
        let target = {
            let m = self.shared.membership.borrow();
            if self.recovery().is_none() || m.is_alive(owner) {
                Some(owner)
            } else if m.is_alive(replica) {
                Some(replica)
            } else {
                None
            }
        };
        match target {
            Some(t) if t == self.rank => {
                let data = self.windows.read(owner, win, offset, len);
                self.finish(instance, OpResult::GetDone { data });
                self.executing = Executing::Idle;
            }
            Some(t) => {
                let req = self.next_req();
                self.post(
                    ctx,
                    t,
                    TAG_RMA,
                    RmaMsg::GetReq { owner, win, offset, len, req }.encode(),
                );
                self.executing = Executing::Rma {
                    instance,
                    pending: RmaPending::Get { owner, win, offset, len, req, target: t },
                };
            }
            None => {
                let fault = self.last_fault_or(owner, ctx.now());
                self.finish(instance, OpResult::Fault(fault));
                self.executing = Executing::Idle;
            }
        }
    }

    /// The most recent declared fault, or a synthesized one naming
    /// `rank` (both window copies dead before any declaration reached
    /// this runtime).
    fn last_fault_or(&self, rank: u32, now: SimTime) -> RankFault {
        let m = self.shared.membership.borrow();
        m.faults.last().copied().unwrap_or(RankFault {
            rank,
            kind: FaultKind::InterfaceDead,
            epoch: m.epoch,
            declared_at: now,
        })
    }
}

// ---------------------------------------------------------------------------
// Operation progress.
// ---------------------------------------------------------------------------

impl MpiRankApp {
    /// Tries to advance the current operation with mailbox contents.
    fn advance(&mut self, ctx: &mut Ctx<'_>) {
        loop {
            // Take ownership of the execution state so protocol steps can
            // freely post messages; write it back when still blocked.
            let ex = std::mem::replace(&mut self.executing, Executing::Idle);
            match ex {
                Executing::Idle => return,
                Executing::Rma { instance, pending } => {
                    // RMA completions arrive through the passive handler,
                    // not the mailbox; nothing to poll here.
                    self.executing = Executing::Rma { instance, pending };
                    return;
                }
                Executing::Recv { instance, pattern } => match self.mailbox.take(pattern) {
                    Some(env) => {
                        self.progressed(ctx.now());
                        self.finish(
                            instance,
                            OpResult::Received { from: env.src_rank, data: env.payload },
                        );
                        return;
                    }
                    None => {
                        self.executing = Executing::Recv { instance, pattern };
                        return;
                    }
                },
                Executing::Coll { instance, comm, st } => {
                    match self.advance_coll(ctx, instance, &comm, st) {
                        Some(st) => {
                            self.executing = Executing::Coll { instance, comm, st };
                            return;
                        }
                        None => {
                            // Completed (result already queued); loop so a
                            // replayed or newly begun op can also drain.
                            return;
                        }
                    }
                }
            }
        }
    }

    /// One collective's progress step. Returns the still-blocked state,
    /// or `None` when the operation completed (result queued).
    fn advance_coll(
        &mut self,
        ctx: &mut Ctx<'_>,
        instance: u64,
        comm: &Comm,
        st: CollState,
    ) -> Option<CollState> {
        match st {
            CollState::Barrier { schedule, mut round } => loop {
                let Some(&(to_next, from)) = schedule.get(round) else {
                    self.finish(instance, OpResult::BarrierDone);
                    return None;
                };
                let _ = to_next;
                let from = comm.actual(from);
                let tag = coll_tag(KIND_BARRIER, instance, round as u64);
                if self.mailbox.take(Pattern { from: Some(from), tag }).is_none() {
                    return Some(CollState::Barrier { schedule, round });
                }
                self.progressed(ctx.now());
                round += 1;
                if let Some(&(to, _)) = schedule.get(round) {
                    let to = comm.actual(to);
                    self.post(ctx, to, coll_tag(KIND_BARRIER, instance, round as u64), Vec::new());
                } else {
                    self.finish(instance, OpResult::BarrierDone);
                    return None;
                }
            },
            CollState::Bcast { recv_from, send_to } => {
                let from = comm.actual(recv_from);
                let tag = coll_tag(KIND_BCAST, instance, 0);
                match self.mailbox.take(Pattern { from: Some(from), tag }) {
                    Some(env) => {
                        self.progressed(ctx.now());
                        for &to in &send_to {
                            let to = comm.actual(to);
                            self.post(ctx, to, tag, env.payload.clone());
                        }
                        self.finish(instance, OpResult::Broadcast { data: env.payload });
                        None
                    }
                    None => Some(CollState::Bcast { recv_from, send_to }),
                }
            }
            CollState::ArRing { values, stage } => {
                self.advance_ar_ring(ctx, instance, comm, values, stage)
            }
            CollState::ArRd { acc, k, phase } => {
                self.advance_ar_rd(ctx, instance, comm, acc, k, phase)
            }
            CollState::Halo { cols, rows, mut got } => {
                for dir in 0..4u32 {
                    if got.get(dir as usize).is_some_and(|g| g.is_some()) {
                        continue;
                    }
                    let nb = halo_neighbor(comm.me, cols, rows, dir);
                    if nb == comm.me {
                        continue; // filled at begin
                    }
                    let from = comm.actual(nb);
                    let tag = coll_tag(KIND_HALO, instance, u64::from(halo_opposite(dir)));
                    if let Some(env) = self.mailbox.take(Pattern { from: Some(from), tag }) {
                        self.progressed(ctx.now());
                        if let Some(slot) = got.get_mut(dir as usize) {
                            *slot = Some(env.payload);
                        }
                    }
                }
                if got.iter().all(|g| g.is_some()) {
                    let [a, b, c, d] = got;
                    let recv = [
                        a.unwrap_or_default(),
                        b.unwrap_or_default(),
                        c.unwrap_or_default(),
                        d.unwrap_or_default(),
                    ];
                    self.finish(instance, OpResult::HaloDone { recv });
                    None
                } else {
                    Some(CollState::Halo { cols, rows, got })
                }
            }
            CollState::Ckpt { state, stage } => match stage {
                CkptStage::Barrier { schedule, mut round } => {
                    loop {
                        let Some(&(_, from)) = schedule.get(round) else {
                            break;
                        };
                        let from = comm.actual(from);
                        let tag = coll_tag(KIND_CKPT_BAR, instance, round as u64);
                        if self.mailbox.take(Pattern { from: Some(from), tag }).is_none() {
                            return Some(CollState::Ckpt {
                                state,
                                stage: CkptStage::Barrier { schedule, round },
                            });
                        }
                        self.progressed(ctx.now());
                        round += 1;
                        if let Some(&(to, _)) = schedule.get(round) {
                            let to = comm.actual(to);
                            self.post(
                                ctx,
                                to,
                                coll_tag(KIND_CKPT_BAR, instance, round as u64),
                                Vec::new(),
                            );
                        }
                    }
                    // Barrier passed: every rank entered this checkpoint.
                    // Now persist the state onto the buddy.
                    let buddy = self.shared.membership.borrow().next_live(self.rank);
                    let Some(buddy) = buddy else {
                        self.shared
                            .replicas
                            .borrow_mut()
                            .store(self.rank, instance, state);
                        self.state.borrow_mut().checkpoints_stored += 1;
                        self.prune_log_at(instance);
                        self.finish(instance, OpResult::CheckpointDone { seqno: instance });
                        return None;
                    };
                    self.post(ctx, buddy, ckpt_tag(instance, false), state.clone());
                    Some(CollState::Ckpt {
                        state,
                        stage: CkptStage::Store { buddy },
                    })
                }
                CkptStage::Store { buddy } => {
                    let tag = ckpt_tag(instance, true);
                    match self.mailbox.take(Pattern { from: Some(buddy), tag }) {
                        Some(_) => {
                            self.progressed(ctx.now());
                            self.prune_log_at(instance);
                            self.finish(instance, OpResult::CheckpointDone { seqno: instance });
                            None
                        }
                        None => Some(CollState::Ckpt {
                            state,
                            stage: CkptStage::Store { buddy },
                        }),
                    }
                }
            },
        }
    }

    fn advance_ar_ring(
        &mut self,
        ctx: &mut Ctx<'_>,
        instance: u64,
        comm: &Comm,
        values: Vec<u64>,
        stage: ArStage,
    ) -> Option<CollState> {
        let n = comm.n();
        let plan = ring_plan(comm.me, n);
        let last = n - 1;
        match stage {
            ArStage::Lap1 => {
                let Some(from) = plan.l1_recv_from else {
                    // Dense rank 0 already seeded lap 1; wait in lap 2.
                    return self.advance_ar_ring(ctx, instance, comm, values, ArStage::Lap2);
                };
                let from = comm.actual(from);
                let tag = coll_tag(KIND_AR_RING, instance, 0);
                let Some(env) = self.mailbox.take(Pattern { from: Some(from), tag }) else {
                    return Some(CollState::ArRing { values, stage: ArStage::Lap1 });
                };
                self.progressed(ctx.now());
                let mut acc = decode_u64s(&env.payload);
                add_into(&mut acc, &values);
                if comm.me == last {
                    // Total computed here: start lap 2, done.
                    if let Some(to) = plan.l2_send_to {
                        let to = comm.actual(to);
                        self.post(ctx, to, coll_tag(KIND_AR_RING, instance, 1), encode_u64s(&acc));
                    }
                    self.finish(instance, OpResult::AllReduceSum { values: acc });
                    return None;
                }
                if let Some(to) = plan.l1_send_to {
                    let to = comm.actual(to);
                    self.post(ctx, to, coll_tag(KIND_AR_RING, instance, 0), encode_u64s(&acc));
                }
                self.advance_ar_ring(ctx, instance, comm, values, ArStage::Lap2)
            }
            ArStage::Lap2 => {
                let Some(from) = plan.l2_recv_from else {
                    // Only dense rank n-1 lacks a lap-2 source, and it
                    // finished in lap 1.
                    return Some(CollState::ArRing { values, stage: ArStage::Lap2 });
                };
                let from = comm.actual(from);
                let tag = coll_tag(KIND_AR_RING, instance, 1);
                let Some(env) = self.mailbox.take(Pattern { from: Some(from), tag }) else {
                    return Some(CollState::ArRing { values, stage: ArStage::Lap2 });
                };
                self.progressed(ctx.now());
                let totals = decode_u64s(&env.payload);
                if let Some(to) = plan.l2_send_to {
                    let to = comm.actual(to);
                    self.post(ctx, to, tag, env.payload.clone());
                }
                self.finish(instance, OpResult::AllReduceSum { values: totals });
                None
            }
        }
    }

    fn advance_ar_rd(
        &mut self,
        ctx: &mut Ctx<'_>,
        instance: u64,
        comm: &Comm,
        mut acc: Vec<u64>,
        mut k: usize,
        phase: RdPhase,
    ) -> Option<CollState> {
        let plan = rd_plan(comm.me, comm.n());
        match phase {
            RdPhase::FoldOut => {
                // Folder: the host sends the finished result.
                let Some(host) = plan.fold_to else {
                    return Some(CollState::ArRd { acc, k, phase });
                };
                let from = comm.actual(host);
                let tag = coll_tag(KIND_AR_RD, instance, ROUND_FOLD_OUT);
                let Some(env) = self.mailbox.take(Pattern { from: Some(from), tag }) else {
                    return Some(CollState::ArRd { acc, k, phase });
                };
                self.progressed(ctx.now());
                self.finish(instance, OpResult::AllReduceSum { values: decode_u64s(&env.payload) });
                None
            }
            RdPhase::FoldIn => {
                let Some(folder) = plan.fold_from else {
                    return Some(CollState::ArRd { acc, k, phase });
                };
                let from = comm.actual(folder);
                let tag = coll_tag(KIND_AR_RD, instance, ROUND_FOLD_IN);
                let Some(env) = self.mailbox.take(Pattern { from: Some(from), tag }) else {
                    return Some(CollState::ArRd { acc, k, phase });
                };
                self.progressed(ctx.now());
                add_into(&mut acc, &decode_u64s(&env.payload));
                // Open round 0.
                if let Some(&p) = plan.partners.first() {
                    let to = comm.actual(p);
                    self.post(ctx, to, coll_tag(KIND_AR_RD, instance, 0), encode_u64s(&acc));
                    self.advance_ar_rd(ctx, instance, comm, acc, 0, RdPhase::Round)
                } else {
                    self.finish_rd(ctx, instance, comm, &plan, acc)
                }
            }
            RdPhase::Round => loop {
                let Some(&partner) = plan.partners.get(k) else {
                    return self.finish_rd(ctx, instance, comm, &plan, acc);
                };
                let from = comm.actual(partner);
                let tag = coll_tag(KIND_AR_RD, instance, k as u64);
                let Some(env) = self.mailbox.take(Pattern { from: Some(from), tag }) else {
                    return Some(CollState::ArRd { acc, k, phase: RdPhase::Round });
                };
                self.progressed(ctx.now());
                add_into(&mut acc, &decode_u64s(&env.payload));
                k += 1;
                if let Some(&p) = plan.partners.get(k) {
                    let to = comm.actual(p);
                    self.post(ctx, to, coll_tag(KIND_AR_RD, instance, k as u64), encode_u64s(&acc));
                } else {
                    return self.finish_rd(ctx, instance, comm, &plan, acc);
                }
            },
        }
    }

    /// Core rounds done: return the result to a folder if hosting one,
    /// then complete.
    fn finish_rd(
        &mut self,
        ctx: &mut Ctx<'_>,
        instance: u64,
        comm: &Comm,
        plan: &crate::collectives::RdPlan,
        acc: Vec<u64>,
    ) -> Option<CollState> {
        if let Some(folder) = plan.fold_from {
            let to = comm.actual(folder);
            self.post(
                ctx,
                to,
                coll_tag(KIND_AR_RD, instance, ROUND_FOLD_OUT),
                encode_u64s(&acc),
            );
        }
        self.finish(instance, OpResult::AllReduceSum { values: acc });
        None
    }
}

// ---------------------------------------------------------------------------
// The drive loop and passive protocol handlers.
// ---------------------------------------------------------------------------

impl MpiRankApp {
    /// Drives the program: deliver completed results, re-execute replayed
    /// instances, fetch next ops.
    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        loop {
            self.advance(ctx);
            self.drain_outbox(ctx);
            if self.halted || !matches!(self.executing, Executing::Idle) {
                return;
            }
            if let Some(inst) = self.replaying.pop_front() {
                if let Some(op) = self.log.get(&inst).cloned() {
                    self.state.borrow_mut().replayed_instances += 1;
                    self.begin(ctx, inst, op);
                }
                continue;
            }
            if self.done {
                return;
            }
            let last = self.pending_results.pop_front();
            let rank = self.rank;
            let nranks = self.program_nranks();
            match self.program.next_op(rank, nranks, last) {
                Some(op) => {
                    // Only collectives and checkpoints consume an
                    // instance: programs must issue them in the same
                    // order on every rank (the MPI contract), so the
                    // counters agree across ranks and the instance can
                    // serve as the wire tag's matching key. Point-to-
                    // point and RMA ops ride outside the sequence.
                    let inst = if loggable(&op) {
                        let i = self.next_instance;
                        self.next_instance += 1;
                        if self.recovery().is_some() {
                            self.log.insert(i, op.clone());
                        }
                        i
                    } else {
                        NO_INSTANCE
                    };
                    self.begin(ctx, inst, op);
                }
                None => {
                    self.done = true;
                    self.state.borrow_mut().finished.push((rank, ctx.now()));
                    return;
                }
            }
        }
    }

    /// Routes an arrived GM message: RMA and checkpoint-store traffic is
    /// handled immediately (the passive side needs no posted receive);
    /// everything else waits in the mailbox for a matching take.
    fn handle_received(&mut self, ctx: &mut Ctx<'_>, data: Vec<u8>) {
        let Some(env) = Envelope::decode(&data) else {
            return;
        };
        if env.tag & TAG_RMA != 0 {
            self.handle_rma(ctx, env);
        } else if env.tag & TAG_CKPT != 0 && env.tag & TAG_COLL == 0 && env.tag & 1 == 0 {
            // Checkpoint store request: this rank is the buddy.
            let seqno = (env.tag >> 16) & INSTANCE_MASK;
            self.shared
                .replicas
                .borrow_mut()
                .store(env.src_rank, seqno, env.payload);
            self.state.borrow_mut().checkpoints_stored += 1;
            self.post(ctx, env.src_rank, env.tag | 1, Vec::new());
        } else {
            self.deliver_to_mailbox(ctx, env);
        }
    }

    fn handle_rma(&mut self, ctx: &mut Ctx<'_>, env: Envelope) {
        let origin = env.src_rank;
        let Some(msg) = RmaMsg::decode(&env.payload) else {
            return;
        };
        match msg {
            RmaMsg::Put { owner, win, offset, data } => {
                self.windows.apply_put(owner, win, origin, offset, &data);
                self.service_flush_backlog(ctx);
            }
            RmaMsg::Acc { owner, win, offset, values } => {
                self.windows.apply_acc(owner, win, origin, offset, &values);
                self.service_flush_backlog(ctx);
            }
            RmaMsg::GetReq { owner, win, offset, len, req } => {
                let data = self.windows.read(owner, win, offset, len);
                self.post(ctx, origin, TAG_RMA, RmaMsg::GetRep { req, data }.encode());
            }
            RmaMsg::GetRep { req, data } => {
                if let Executing::Rma {
                    instance,
                    pending: RmaPending::Get { req: want, .. },
                } = &self.executing
                {
                    if *want == req {
                        let instance = *instance;
                        self.executing = Executing::Idle;
                        self.progressed(ctx.now());
                        self.finish(instance, OpResult::GetDone { data });
                    }
                }
            }
            RmaMsg::FlushReq { owner, win, sent_count, req } => {
                if self.windows.applied_count(owner, win, origin) >= sent_count {
                    self.post(ctx, origin, TAG_RMA, RmaMsg::FlushAck { req }.encode());
                } else {
                    self.flush_backlog.push((origin, owner, win, sent_count, req));
                }
            }
            RmaMsg::FlushAck { req } => {
                if let Executing::Rma {
                    instance,
                    pending: RmaPending::Flush { awaiting },
                } = &mut self.executing
                {
                    awaiting.remove(&req);
                    if awaiting.is_empty() {
                        let instance = *instance;
                        self.executing = Executing::Idle;
                        self.progressed(ctx.now());
                        self.finish(instance, OpResult::FlushDone);
                    }
                }
            }
        }
    }

    /// Acks queued flushes whose origin streams have caught up.
    fn service_flush_backlog(&mut self, ctx: &mut Ctx<'_>) {
        let mut ready = Vec::new();
        self.flush_backlog.retain(|&(origin, owner, win, sent, req)| {
            if self.windows.applied_count(owner, win, origin) >= sent {
                ready.push((origin, req));
                false
            } else {
                true
            }
        });
        for (origin, req) in ready {
            self.post(ctx, origin, TAG_RMA, RmaMsg::FlushAck { req }.encode());
        }
    }
}

// ---------------------------------------------------------------------------
// Failure detection, epoch rebinding, and replay.
// ---------------------------------------------------------------------------

impl MpiRankApp {
    /// The actual ranks the current operation is blocked on (suspicion
    /// targets for the timeout path).
    fn awaited(&self) -> Vec<u32> {
        match &self.executing {
            Executing::Idle => Vec::new(),
            Executing::Recv { pattern, .. } => pattern.from.into_iter().collect(),
            Executing::Rma { pending, .. } => match pending {
                RmaPending::Get { target, .. } => vec![*target],
                RmaPending::Flush { awaiting } => {
                    let mut holders: Vec<u32> = awaiting.values().copied().collect();
                    holders.sort_unstable();
                    holders.dedup();
                    holders
                }
            },
            Executing::Coll { comm, st, .. } => match st {
                CollState::Barrier { schedule, round } => schedule
                    .get(*round)
                    .map(|&(_, from)| vec![comm.actual(from)])
                    .unwrap_or_default(),
                CollState::Bcast { recv_from, .. } => vec![comm.actual(*recv_from)],
                CollState::ArRing { stage, .. } => {
                    let plan = ring_plan(comm.me, comm.n());
                    let from = match stage {
                        ArStage::Lap1 => plan.l1_recv_from.or(plan.l2_recv_from),
                        ArStage::Lap2 => plan.l2_recv_from,
                    };
                    from.map(|f| vec![comm.actual(f)]).unwrap_or_default()
                }
                CollState::ArRd { k, phase, .. } => {
                    let plan = rd_plan(comm.me, comm.n());
                    let from = match phase {
                        RdPhase::FoldIn => plan.fold_from,
                        RdPhase::FoldOut => plan.fold_to,
                        RdPhase::Round => plan.partners.get(*k).copied(),
                    };
                    from.map(|f| vec![comm.actual(f)]).unwrap_or_default()
                }
                CollState::Halo { cols, rows, got } => (0..4u32)
                    .filter(|&d| got.get(d as usize).is_some_and(|g| g.is_none()))
                    .map(|d| comm.actual(halo_neighbor(comm.me, *cols, *rows, d)))
                    .filter(|&r| r != self.rank)
                    .collect(),
                CollState::Ckpt { stage, .. } => match stage {
                    CkptStage::Barrier { schedule, round } => schedule
                        .get(*round)
                        .map(|&(_, from)| vec![comm.actual(from)])
                        .unwrap_or_default(),
                    CkptStage::Store { buddy } => vec![*buddy],
                },
            },
        }
    }

    /// The runtime's periodic tick: epoch rebinds, RMA failover, and
    /// operation-timeout suspicion.
    fn poll(&mut self, ctx: &mut Ctx<'_>) {
        let Some(cfg) = self.recovery() else {
            return;
        };
        if self.shared.halt.get() {
            return; // job finished: let the world quiesce
        }
        let now = ctx.now();
        let epoch = self.shared.membership.borrow().epoch;
        if epoch != self.cached_epoch {
            self.rebind(cfg, epoch, now);
        }
        self.rma_retarget(ctx, now);
        if !self.halted
            && !matches!(self.executing, Executing::Idle)
            && now.saturating_since(self.blocked_since) >= cfg.op_timeout
        {
            let awaited = self.awaited();
            let mut board = self.shared.board.borrow_mut();
            let m = self.shared.membership.borrow();
            for s in awaited {
                if m.is_alive(s) && s != self.rank {
                    board.suspect(s, now);
                    if !self.suspected.contains(&s) {
                        self.suspected.push(s);
                    }
                }
            }
        }
        if !self.halted {
            ctx.set_alarm(cfg.poll, ALARM_POLL);
        }
        self.pump(ctx);
    }

    /// Applies a membership epoch change to this runtime.
    fn rebind(&mut self, cfg: RecoveryConfig, new_epoch: u32, now: SimTime) {
        let _ = now;
        self.cached_epoch = new_epoch;
        let (alive_me, replay_from, new_faults) = {
            let m = self.shared.membership.borrow();
            let fresh: Vec<RankFault> =
                m.faults.get(self.faults_seen..).map(<[_]>::to_vec).unwrap_or_default();
            (m.is_alive(self.rank), m.replay_from, fresh)
        };
        self.faults_seen += new_faults.len();
        if !alive_me {
            // Declared dead and not respawned here: the controller will
            // detach this app; stop doing anything.
            self.halted = true;
            self.outbox.clear();
            self.executing = Executing::Idle;
            return;
        }
        match cfg.policy {
            RestartPolicy::Spare => {
                // Survivors at or past the replay window abort their
                // in-flight collective and re-execute the logged ops so
                // the restored rank re-receives everything; only the
                // aborted instance's result reaches the program again.
                if self.done {
                    self.mute_below = u64::MAX;
                    self.replaying = self.log.range(replay_from..).map(|(&i, _)| i).collect();
                    return;
                }
                if let Executing::Coll { instance, .. } = self.executing {
                    if instance >= replay_from {
                        self.executing = Executing::Idle;
                        self.replaying =
                            self.log.range(replay_from..=instance).map(|(&i, _)| i).collect();
                        self.mute_below = instance;
                    }
                }
                // Slow ranks (still below the replay window) and p2p/RMA
                // waiters continue untouched.
            }
            RestartPolicy::Shrink | RestartPolicy::Notify => {
                let abort = match &self.executing {
                    Executing::Coll { .. } => true,
                    Executing::Recv { pattern, .. } => pattern
                        .from
                        .is_some_and(|f| !self.shared.membership.borrow().is_alive(f)),
                    _ => false,
                };
                // Re-align: new epoch, new instance prefix, stale
                // protocol traffic purged.
                let e = u64::from(new_epoch);
                self.mailbox
                    .purge_where(|_, tag| is_protocol_tag(tag) && tag_epoch_prefix(tag) != e);
                {
                    let m = self.shared.membership.borrow();
                    self.outbox.retain(|&(to, tag, _)| {
                        m.is_alive(to) && !(is_protocol_tag(tag) && tag_epoch_prefix(tag) != e)
                    });
                }
                self.log.clear();
                self.replaying.clear();
                self.next_instance = self.next_instance.max(e << 32);
                if abort && !self.done {
                    self.executing = Executing::Idle;
                    if let Some(&fault) = new_faults.last() {
                        self.state.borrow_mut().faults_delivered += 1;
                        self.pending_results.push_back(OpResult::Fault(fault));
                    }
                }
            }
        }
        self.suspected.clear();
    }

    /// Fails over in-flight one-sided operations whose target died.
    fn rma_retarget(&mut self, ctx: &mut Ctx<'_>, now: SimTime) {
        if self.recovery().is_none() {
            return;
        }
        let ex = std::mem::replace(&mut self.executing, Executing::Idle);
        match ex {
            Executing::Rma {
                instance,
                pending: RmaPending::Get { owner, win, offset, len, req, target },
            } => {
                let target_alive = self.shared.membership.borrow().is_alive(target);
                if target_alive {
                    self.executing = Executing::Rma {
                        instance,
                        pending: RmaPending::Get { owner, win, offset, len, req, target },
                    };
                    return;
                }
                // The copy we asked died: ask the other one.
                self.begin_get(ctx, instance, owner, win, offset, len);
            }
            Executing::Rma {
                instance,
                pending: RmaPending::Flush { mut awaiting },
            } => {
                {
                    let m = self.shared.membership.borrow();
                    awaiting.retain(|_, holder| m.is_alive(*holder));
                }
                if awaiting.is_empty() {
                    self.progressed(now);
                    self.finish(instance, OpResult::FlushDone);
                } else {
                    self.executing = Executing::Rma {
                        instance,
                        pending: RmaPending::Flush { awaiting },
                    };
                }
            }
            other => self.executing = other,
        }
    }
}

// ---------------------------------------------------------------------------
// GM integration.
// ---------------------------------------------------------------------------

impl App for MpiRankApp {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for _ in 0..8 {
            ctx.gm_provide_receive_buffer(self.buf_size);
        }
        if let Some(state) = self.restore.take() {
            self.program.on_restore(&state);
        }
        if let Some(cfg) = self.recovery() {
            ctx.set_alarm(cfg.poll, ALARM_POLL);
        }
        self.blocked_since = ctx.now();
        self.pump(ctx);
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: GmEvent) {
        match ev {
            GmEvent::Received { data, .. } => {
                ctx.gm_provide_receive_buffer(self.buf_size);
                self.handle_received(ctx, data);
                self.pump(ctx);
            }
            GmEvent::SentOk { .. } => {
                self.drain_outbox(ctx);
            }
            GmEvent::SendError { .. } => {
                // Without a recovery layer, MPI over GM treats send
                // errors as fatal (count them so tests can assert they
                // never happen under FTGM). With recovery, they are the
                // expected debris of a dying interface.
                if self.recovery().is_some() {
                    self.state.borrow_mut().gm_send_errors += 1;
                    self.drain_outbox(ctx);
                } else {
                    self.state.borrow_mut().fatal_errors += 1;
                }
            }
            GmEvent::InterfaceDead => {
                if self.recovery().is_some() {
                    self.shared
                        .board
                        .borrow_mut()
                        .confirm_interface_dead(self.rank, ctx.now());
                    self.halted = true;
                    self.outbox.clear();
                } else {
                    self.state.borrow_mut().fatal_errors += 1;
                }
            }
            GmEvent::Alarm { tag } => {
                if tag == ALARM_POLL {
                    self.poll(ctx);
                }
            }
        }
    }
}

/// Spawns one rank into the world at its current spec in `shared`'s
/// membership. `restore` carries checkpoint bytes for a spare respawn.
pub fn spawn_rank(
    world: &mut World,
    rank: u32,
    buf_size: u32,
    program: Box<dyn RankProgram>,
    shared: Rc<MpiShared>,
    state: Rc<RefCell<HarnessState>>,
    restore: Option<Vec<u8>>,
) {
    let (spec, epoch, replay_from) = {
        let m = shared.membership.borrow();
        (m.specs.get(rank as usize).copied(), m.epoch, m.replay_from)
    };
    let Some(spec) = spec else { return };
    // A respawned rank starts its instance counter at the replay window
    // so its re-issued ops line up with the survivors' replayed ones.
    let next_instance = if restore.is_some() { replay_from } else { 0 };
    world.spawn_app(
        spec.node,
        spec.port,
        Box::new(MpiRankApp {
            rank,
            me: spec,
            shared,
            program,
            restore,
            mailbox: Mailbox::new(),
            executing: Executing::Idle,
            pending_results: VecDeque::new(),
            outbox: VecDeque::new(),
            next_instance,
            log: BTreeMap::new(),
            replaying: VecDeque::new(),
            mute_below: 0,
            last_ckpt: None,
            cached_epoch: epoch,
            faults_seen: 0,
            blocked_since: SimTime::ZERO,
            suspected: Vec::new(),
            req_counter: 0,
            windows: WindowStore::default(),
            counters: OriginCounters::default(),
            flush_backlog: Vec::new(),
            buf_size,
            done: false,
            halted: false,
            state,
        }),
    );
}
