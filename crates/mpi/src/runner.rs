//! Rank programs, operations, and the execution harness.
//!
//! An MPI process is modelled as a *sequential stream of operations*: the
//! middleware asks the [`RankProgram`] for its next [`Op`], runs that
//! operation's protocol over GM (point-to-point tag matching, or one of
//! the collective schedules), and hands the [`OpResult`] back. SPMD
//! programs therefore look like a straight-line list of sends, receives,
//! barriers and reductions — and, as on the paper's testbed, they have no
//! idea whether the interface below them failed and recovered.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use ftgm_gm::{App, Ctx, GmEvent, World};
use ftgm_net::NodeId;
use ftgm_sim::SimTime;

use crate::collectives::{barrier_schedule, broadcast_plan, ring_plan};
use crate::mailbox::{Envelope, Mailbox, Pattern, TAG_USER_MAX};

/// A rank's sequential program.
pub trait RankProgram: 'static {
    /// Returns the next operation, given the result of the previous one
    /// (`None` on the first call). Returning `None` finishes the rank.
    fn next_op(&mut self, rank: u32, nranks: u32, last: Option<OpResult>) -> Option<Op>;
}

/// The operations a rank program can issue.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Eager point-to-point send.
    Send {
        /// Destination rank.
        to: u32,
        /// Match tag (must be below [`TAG_USER_MAX`]).
        tag: u64,
        /// Payload.
        data: Vec<u8>,
    },
    /// Blocking receive by `(source, tag)`.
    Recv {
        /// Required source, or any.
        from: Option<u32>,
        /// Match tag.
        tag: u64,
    },
    /// Dissemination barrier across all ranks.
    Barrier,
    /// Binomial-tree broadcast; the root supplies `data`.
    Broadcast {
        /// The broadcasting rank.
        root: u32,
        /// Payload (root only; ignored elsewhere).
        data: Option<Vec<u8>>,
    },
    /// Ring all-reduce: element-wise wrapping sum of `u64` vectors.
    AllReduceSum {
        /// This rank's contribution.
        values: Vec<u64>,
    },
}

/// What an operation produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpResult {
    /// The send was posted.
    Sent,
    /// A message arrived.
    Received {
        /// Sender rank.
        from: u32,
        /// Payload.
        data: Vec<u8>,
    },
    /// All ranks passed the barrier.
    BarrierDone,
    /// The broadcast payload.
    Broadcast {
        /// The (root's) data.
        data: Vec<u8>,
    },
    /// The reduced vector.
    AllReduceSum {
        /// Element-wise totals.
        values: Vec<u64>,
    },
}

// Reserved tag space: [kind | collective-sequence | round].
const TAG_COLL_BASE: u64 = TAG_USER_MAX;
const KIND_BARRIER: u64 = 1;
const KIND_BCAST: u64 = 2;
const KIND_AR_L1: u64 = 3;
const KIND_AR_L2: u64 = 4;

fn coll_tag(kind: u64, seq: u64, round: u64) -> u64 {
    TAG_COLL_BASE | (kind << 40) | (seq << 8) | round
}

/// Shared observation point for a harness's ranks.
#[derive(Debug, Default)]
pub struct HarnessState {
    /// `(rank, finish time)` of every completed program.
    pub finished: Vec<(u32, SimTime)>,
    /// GM send errors surfaced to the middleware (MPI would abort).
    pub fatal_errors: u64,
}

/// Where each rank lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankSpec {
    /// Host interface.
    pub node: NodeId,
    /// GM port on that interface.
    pub port: u8,
}

enum Executing {
    Idle,
    Recv(Pattern),
    Barrier {
        schedule: Vec<(u32, u32)>,
        round: usize,
        seq: u64,
    },
    Broadcast {
        recv_from: Option<u32>,
        send_to: Vec<u32>,
        data: Option<Vec<u8>>,
        seq: u64,
    },
    AllReduce {
        values: Vec<u64>,
        stage: ArStage,
        seq: u64,
    },
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum ArStage {
    Lap1,
    Lap2,
}

/// The GM application that runs one rank.
pub struct MpiRankApp {
    rank: u32,
    ranks: Vec<RankSpec>,
    program: Box<dyn RankProgram>,
    mailbox: Mailbox,
    executing: Executing,
    coll_seq: u64,
    buf_size: u32,
    done: bool,
    state: Rc<RefCell<HarnessState>>,
    pending_results: VecDeque<OpResult>,
}

impl MpiRankApp {
    fn nranks(&self) -> u32 {
        self.ranks.len() as u32
    }

    fn post(&mut self, ctx: &mut Ctx<'_>, to: u32, tag: u64, payload: Vec<u8>) {
        let env = Envelope {
            src_rank: self.rank,
            tag,
            payload,
        };
        let spec = self.ranks[to as usize];
        ctx.gm_send(&env.encode(), spec.node, spec.port);
    }

    /// Starts executing `op`; may complete it synchronously.
    fn begin(&mut self, ctx: &mut Ctx<'_>, op: Op) {
        match op {
            Op::Send { to, tag, data } => {
                assert!(tag < TAG_USER_MAX, "tag {tag:#x} is reserved");
                self.post(ctx, to, tag, data);
                self.pending_results.push_back(OpResult::Sent);
                self.executing = Executing::Idle;
            }
            Op::Recv { from, tag } => {
                assert!(tag < TAG_USER_MAX, "tag {tag:#x} is reserved");
                self.executing = Executing::Recv(Pattern { from, tag });
            }
            Op::Barrier => {
                let seq = self.coll_seq;
                self.coll_seq += 1;
                let schedule = barrier_schedule(self.rank, self.nranks());
                if schedule.is_empty() {
                    self.pending_results.push_back(OpResult::BarrierDone);
                    self.executing = Executing::Idle;
                    return;
                }
                let (to, _) = schedule[0];
                self.post(ctx, to, coll_tag(KIND_BARRIER, seq, 0), Vec::new());
                self.executing = Executing::Barrier {
                    schedule,
                    round: 0,
                    seq,
                };
            }
            Op::Broadcast { root, data } => {
                let seq = self.coll_seq;
                self.coll_seq += 1;
                let plan = broadcast_plan(self.rank, root, self.nranks());
                if self.rank == root {
                    let data = data.expect("broadcast root must supply data");
                    for &to in &plan.send_to {
                        self.post(ctx, to, coll_tag(KIND_BCAST, seq, 0), data.clone());
                    }
                    self.pending_results
                        .push_back(OpResult::Broadcast { data });
                    self.executing = Executing::Idle;
                } else {
                    self.executing = Executing::Broadcast {
                        recv_from: plan.recv_from,
                        send_to: plan.send_to,
                        data: None,
                        seq,
                    };
                }
            }
            Op::AllReduceSum { values } => {
                let seq = self.coll_seq;
                self.coll_seq += 1;
                let n = self.nranks();
                if n == 1 {
                    self.pending_results
                        .push_back(OpResult::AllReduceSum { values });
                    self.executing = Executing::Idle;
                    return;
                }
                let plan = ring_plan(self.rank, n);
                if plan.l1_recv_from.is_none() {
                    // Rank 0 seeds lap 1.
                    let to = plan.l1_send_to.expect("n>1");
                    let payload = encode_u64s(&values);
                    self.post(ctx, to, coll_tag(KIND_AR_L1, seq, 0), payload);
                }
                self.executing = Executing::AllReduce {
                    values,
                    stage: ArStage::Lap1,
                    seq,
                };
            }
        }
    }

    /// Tries to advance the current operation with mailbox contents.
    fn advance(&mut self, ctx: &mut Ctx<'_>) {
        loop {
            // Take ownership of the execution state so protocol steps can
            // freely post messages; write it back when still blocked.
            let ex = std::mem::replace(&mut self.executing, Executing::Idle);
            match ex {
                Executing::Idle => return,
                Executing::Recv(pattern) => {
                    match self.mailbox.take(pattern) {
                        Some(env) => {
                            self.pending_results.push_back(OpResult::Received {
                                from: env.src_rank,
                                data: env.payload,
                            });
                            return;
                        }
                        None => {
                            self.executing = Executing::Recv(pattern);
                            return;
                        }
                    }
                }
                Executing::Barrier {
                    schedule,
                    mut round,
                    seq,
                } => {
                    let (_, from) = schedule[round];
                    let tag = coll_tag(KIND_BARRIER, seq, round as u64);
                    if self
                        .mailbox
                        .take(Pattern { from: Some(from), tag })
                        .is_none()
                    {
                        self.executing = Executing::Barrier { schedule, round, seq };
                        return;
                    }
                    round += 1;
                    if round == schedule.len() {
                        self.pending_results.push_back(OpResult::BarrierDone);
                        return;
                    }
                    let (to, _) = schedule[round];
                    self.post(ctx, to, coll_tag(KIND_BARRIER, seq, round as u64), Vec::new());
                    self.executing = Executing::Barrier { schedule, round, seq };
                }
                Executing::Broadcast {
                    recv_from,
                    send_to,
                    data,
                    seq,
                } => {
                    let from = recv_from.expect("non-root broadcast receives");
                    let tag = coll_tag(KIND_BCAST, seq, 0);
                    match self.mailbox.take(Pattern { from: Some(from), tag }) {
                        Some(env) => {
                            for to in send_to {
                                self.post(ctx, to, tag, env.payload.clone());
                            }
                            self.pending_results
                                .push_back(OpResult::Broadcast { data: env.payload });
                            return;
                        }
                        None => {
                            self.executing = Executing::Broadcast {
                                recv_from,
                                send_to,
                                data,
                                seq,
                            };
                            return;
                        }
                    }
                }
                Executing::AllReduce { values, stage, seq } => {
                    let n = self.nranks();
                    let plan = ring_plan(self.rank, n);
                    let last = n - 1;
                    match stage {
                        ArStage::Lap1 => {
                            let Some(from) = plan.l1_recv_from else {
                                // Rank 0 already seeded lap 1; wait in lap 2.
                                self.executing = Executing::AllReduce {
                                    values,
                                    stage: ArStage::Lap2,
                                    seq,
                                };
                                continue;
                            };
                            let tag = coll_tag(KIND_AR_L1, seq, 0);
                            let Some(env) = self.mailbox.take(Pattern { from: Some(from), tag })
                            else {
                                self.executing = Executing::AllReduce {
                                    values,
                                    stage: ArStage::Lap1,
                                    seq,
                                };
                                return;
                            };
                            let mut acc = decode_u64s(&env.payload);
                            for (a, v) in acc.iter_mut().zip(values.iter()) {
                                *a = a.wrapping_add(*v);
                            }
                            if self.rank == last {
                                // Total computed here: start lap 2, done.
                                let to = plan.l2_send_to.expect("n>1");
                                self.post(ctx, to, coll_tag(KIND_AR_L2, seq, 0), encode_u64s(&acc));
                                self.pending_results
                                    .push_back(OpResult::AllReduceSum { values: acc });
                                return;
                            }
                            let to = plan.l1_send_to.expect("mid-ring sends");
                            self.post(ctx, to, coll_tag(KIND_AR_L1, seq, 0), encode_u64s(&acc));
                            self.executing = Executing::AllReduce {
                                values,
                                stage: ArStage::Lap2,
                                seq,
                            };
                        }
                        ArStage::Lap2 => {
                            let Some(from) = plan.l2_recv_from else {
                                // Only rank n-1 lacks a lap-2 source, and it
                                // finished in lap 1.
                                unreachable!("rank n-1 completes in lap 1");
                            };
                            let tag = coll_tag(KIND_AR_L2, seq, 0);
                            let Some(env) = self.mailbox.take(Pattern { from: Some(from), tag })
                            else {
                                self.executing = Executing::AllReduce {
                                    values,
                                    stage: ArStage::Lap2,
                                    seq,
                                };
                                return;
                            };
                            let totals = decode_u64s(&env.payload);
                            if let Some(to) = plan.l2_send_to {
                                self.post(ctx, to, tag, env.payload.clone());
                            }
                            self.pending_results
                                .push_back(OpResult::AllReduceSum { values: totals });
                            return;
                        }
                    }
                }
            }
        }
    }

    /// Drives the program: deliver completed results, fetch next ops.
    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        loop {
            self.advance(ctx);
            if self.done || !matches!(self.executing, Executing::Idle) {
                return;
            }
            let last = self.pending_results.pop_front();
            let nranks = self.nranks();
            match self.program.next_op(self.rank, nranks, last) {
                Some(op) => self.begin(ctx, op),
                None => {
                    self.done = true;
                    self.state
                        .borrow_mut()
                        .finished
                        .push((self.rank, ctx.now()));
                    return;
                }
            }
        }
    }
}

fn encode_u64s(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn decode_u64s(data: &[u8]) -> Vec<u64> {
    data.chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect()
}

impl App for MpiRankApp {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for _ in 0..8 {
            ctx.gm_provide_receive_buffer(self.buf_size);
        }
        self.pump(ctx);
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: GmEvent) {
        match ev {
            GmEvent::Received { data, .. } => {
                ctx.gm_provide_receive_buffer(self.buf_size);
                if let Some(env) = Envelope::decode(&data) {
                    self.mailbox.deliver(env);
                }
                self.pump(ctx);
            }
            GmEvent::SendError { .. } | GmEvent::InterfaceDead => {
                // MPI over GM treats send errors (and an escalated-dead
                // interface) as fatal; count them so tests can assert they
                // never happen under FTGM.
                self.state.borrow_mut().fatal_errors += 1;
            }
            GmEvent::SentOk { .. } | GmEvent::Alarm { .. } => {}
        }
    }
}

/// Spawns one rank into the world.
pub fn spawn_rank(
    world: &mut World,
    rank: u32,
    ranks: Vec<RankSpec>,
    buf_size: u32,
    program: Box<dyn RankProgram>,
    state: Rc<RefCell<HarnessState>>,
) {
    let spec = ranks[rank as usize];
    world.spawn_app(
        spec.node,
        spec.port,
        Box::new(MpiRankApp {
            rank,
            ranks,
            program,
            mailbox: Mailbox::new(),
            executing: Executing::Idle,
            coll_seq: 0,
            buf_size,
            done: false,
            state,
            pending_results: VecDeque::new(),
        }),
    );
}

/// Convenience harness: `n` ranks on a single-switch star, one per node.
pub struct MpiHarness {
    /// The underlying world (exposed for fault injection etc.).
    pub world: World,
    /// Shared completion/error observations.
    pub state: Rc<RefCell<HarnessState>>,
    ranks: Vec<RankSpec>,
}

impl MpiHarness {
    /// Builds the world (star topology) without spawning ranks yet.
    pub fn star(n: u32, config: ftgm_gm::WorldConfig) -> MpiHarness {
        let world = World::new(ftgm_net::Topology::star(n as usize), config);
        let ranks = (0..n)
            .map(|r| RankSpec {
                node: NodeId(r as u16),
                port: 1,
            })
            .collect();
        MpiHarness {
            world,
            state: Rc::new(RefCell::new(HarnessState::default())),
            ranks,
        }
    }

    /// The rank placement.
    pub fn ranks(&self) -> &[RankSpec] {
        &self.ranks
    }

    /// Spawns every rank with a program built per rank.
    pub fn spawn_all<F>(&mut self, buf_size: u32, mut make: F)
    where
        F: FnMut(u32) -> Box<dyn RankProgram>,
    {
        for r in 0..self.ranks.len() as u32 {
            spawn_rank(
                &mut self.world,
                r,
                self.ranks.clone(),
                buf_size,
                make(r),
                self.state.clone(),
            );
        }
    }

    /// `true` once every rank's program returned `None`.
    pub fn all_done(&self) -> bool {
        self.state.borrow().finished.len() == self.ranks.len()
    }
}
