//! One-sided RMA windows over GM, with in-memory replication.
//!
//! Besta/Hoefler-style fault-tolerant RMA: a rank *exposes* a window
//! (a growable byte region); any rank may `put`/`get`/`accumulate` into it
//! without the target's program participating, and `flush` waits until the
//! target (and its replica) have applied everything this origin issued.
//!
//! Fault tolerance is by replication at the origin: every `put` and
//! `accumulate` is sent twice — to the window's *primary* (the owner rank)
//! and to its *replica* (the owner's ring successor at window-creation
//! time). Both copies apply the same in-order stream from each origin, so
//! they stay byte-identical. When the primary's NIC dies mid-epoch, `get`
//! and `flush` fail over to the replica and the application never notices —
//! the paper's "recovers from the replica without application involvement".
//!
//! This module is the pure part: wire encode/decode for the RMA protocol
//! messages and the window/counter bookkeeping. The runtime in
//! [`crate::runner`] moves the bytes.

use std::collections::BTreeMap;

/// Tag bit marking an RMA protocol message (all RMA traffic shares one
/// tag; the payload header routes it).
pub const TAG_RMA: u64 = 1 << 62;

/// An RMA protocol message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RmaMsg {
    /// Write `data` at `offset` of `(owner, win)`.
    Put {
        /// Window owner rank.
        owner: u32,
        /// Window id within the owner.
        win: u32,
        /// Byte offset.
        offset: u64,
        /// Bytes to write.
        data: Vec<u8>,
    },
    /// Element-wise wrapping-add `values` into the `u64`s at `offset`.
    Acc {
        /// Window owner rank.
        owner: u32,
        /// Window id within the owner.
        win: u32,
        /// Byte offset (interpreted as little-endian `u64` slots).
        offset: u64,
        /// Addends.
        values: Vec<u64>,
    },
    /// Read `len` bytes at `offset`; answered with a [`RmaMsg::GetRep`].
    GetReq {
        /// Window owner rank.
        owner: u32,
        /// Window id within the owner.
        win: u32,
        /// Byte offset.
        offset: u64,
        /// Bytes to read.
        len: u64,
        /// Origin-chosen request id echoed in the reply.
        req: u64,
    },
    /// Reply to a [`RmaMsg::GetReq`].
    GetRep {
        /// Echoed request id.
        req: u64,
        /// The window bytes (zero-filled beyond the written extent).
        data: Vec<u8>,
    },
    /// Ask the holder to ack once it has applied `sent_count` ops from
    /// this origin to `(owner, win)`.
    FlushReq {
        /// Window owner rank.
        owner: u32,
        /// Window id within the owner.
        win: u32,
        /// Ops this origin has issued to the window so far.
        sent_count: u64,
        /// Origin-chosen request id echoed in the ack.
        req: u64,
    },
    /// Reply to a [`RmaMsg::FlushReq`].
    FlushAck {
        /// Echoed request id.
        req: u64,
    },
}

const MSG_PUT: u8 = 1;
const MSG_ACC: u8 = 2;
const MSG_GET_REQ: u8 = 3;
const MSG_GET_REP: u8 = 4;
const MSG_FLUSH_REQ: u8 = 5;
const MSG_FLUSH_ACK: u8 = 6;

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn read_u32(data: &[u8], at: usize) -> Option<u32> {
    Some(u32::from_le_bytes(data.get(at..at + 4)?.try_into().ok()?))
}

fn read_u64(data: &[u8], at: usize) -> Option<u64> {
    Some(u64::from_le_bytes(data.get(at..at + 8)?.try_into().ok()?))
}

impl RmaMsg {
    /// Serializes to an envelope payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            RmaMsg::Put {
                owner,
                win,
                offset,
                data,
            } => {
                out.push(MSG_PUT);
                push_u32(&mut out, *owner);
                push_u32(&mut out, *win);
                push_u64(&mut out, *offset);
                out.extend_from_slice(data);
            }
            RmaMsg::Acc {
                owner,
                win,
                offset,
                values,
            } => {
                out.push(MSG_ACC);
                push_u32(&mut out, *owner);
                push_u32(&mut out, *win);
                push_u64(&mut out, *offset);
                for v in values {
                    push_u64(&mut out, *v);
                }
            }
            RmaMsg::GetReq {
                owner,
                win,
                offset,
                len,
                req,
            } => {
                out.push(MSG_GET_REQ);
                push_u32(&mut out, *owner);
                push_u32(&mut out, *win);
                push_u64(&mut out, *offset);
                push_u64(&mut out, *len);
                push_u64(&mut out, *req);
            }
            RmaMsg::GetRep { req, data } => {
                out.push(MSG_GET_REP);
                push_u64(&mut out, *req);
                out.extend_from_slice(data);
            }
            RmaMsg::FlushReq {
                owner,
                win,
                sent_count,
                req,
            } => {
                out.push(MSG_FLUSH_REQ);
                push_u32(&mut out, *owner);
                push_u32(&mut out, *win);
                push_u64(&mut out, *sent_count);
                push_u64(&mut out, *req);
            }
            RmaMsg::FlushAck { req } => {
                out.push(MSG_FLUSH_ACK);
                push_u64(&mut out, *req);
            }
        }
        out
    }

    /// Parses an envelope payload; `None` on malformed input.
    pub fn decode(data: &[u8]) -> Option<RmaMsg> {
        match *data.first()? {
            MSG_PUT => Some(RmaMsg::Put {
                owner: read_u32(data, 1)?,
                win: read_u32(data, 5)?,
                offset: read_u64(data, 9)?,
                data: data.get(17..)?.to_vec(),
            }),
            MSG_ACC => {
                let body = data.get(17..)?;
                if body.len() % 8 != 0 {
                    return None;
                }
                Some(RmaMsg::Acc {
                    owner: read_u32(data, 1)?,
                    win: read_u32(data, 5)?,
                    offset: read_u64(data, 9)?,
                    values: body
                        .chunks_exact(8)
                        .map(|c| u64::from_le_bytes(c.try_into().unwrap_or([0; 8])))
                        .collect(),
                })
            }
            MSG_GET_REQ => Some(RmaMsg::GetReq {
                owner: read_u32(data, 1)?,
                win: read_u32(data, 5)?,
                offset: read_u64(data, 9)?,
                len: read_u64(data, 17)?,
                req: read_u64(data, 25)?,
            }),
            MSG_GET_REP => Some(RmaMsg::GetRep {
                req: read_u64(data, 1)?,
                data: data.get(9..)?.to_vec(),
            }),
            MSG_FLUSH_REQ => Some(RmaMsg::FlushReq {
                owner: read_u32(data, 1)?,
                win: read_u32(data, 5)?,
                sent_count: read_u64(data, 9)?,
                req: read_u64(data, 17)?,
            }),
            MSG_FLUSH_ACK => Some(RmaMsg::FlushAck {
                req: read_u64(data, 1)?,
            }),
            _ => None,
        }
    }
}

/// Windows a rank holds — its own (primary) plus replicas for peers.
///
/// Windows grow on write and reads beyond the written extent return
/// zeros, so primary and replica agree without negotiating sizes.
#[derive(Clone, Debug, Default)]
pub struct WindowStore {
    windows: BTreeMap<(u32, u32), Vec<u8>>,
    applied: BTreeMap<(u32, u32, u32), u64>,
}

impl WindowStore {
    /// Registers `(owner, win)` (idempotent).
    pub fn create(&mut self, owner: u32, win: u32) {
        self.windows.entry((owner, win)).or_default();
    }

    /// `true` if `(owner, win)` exists here.
    pub fn has_window(&self, owner: u32, win: u32) -> bool {
        self.windows.contains_key(&(owner, win))
    }

    fn grow_to(&mut self, owner: u32, win: u32, end: usize) -> &mut Vec<u8> {
        let w = self.windows.entry((owner, win)).or_default();
        if w.len() < end {
            w.resize(end, 0);
        }
        w
    }

    fn bump_applied(&mut self, owner: u32, win: u32, origin: u32) -> u64 {
        let c = self.applied.entry((owner, win, origin)).or_insert(0);
        *c += 1;
        *c
    }

    /// Applies a put from `origin`; returns the applied-op count for that
    /// `(owner, win, origin)` stream.
    pub fn apply_put(&mut self, owner: u32, win: u32, origin: u32, offset: u64, data: &[u8]) -> u64 {
        let start = offset as usize;
        let w = self.grow_to(owner, win, start.saturating_add(data.len()));
        if let Some(dst) = w.get_mut(start..start + data.len()) {
            dst.copy_from_slice(data);
        }
        self.bump_applied(owner, win, origin)
    }

    /// Applies an accumulate (wrapping add of little-endian `u64` slots)
    /// from `origin`; returns the applied-op count.
    pub fn apply_acc(
        &mut self,
        owner: u32,
        win: u32,
        origin: u32,
        offset: u64,
        values: &[u64],
    ) -> u64 {
        let start = offset as usize;
        let end = start.saturating_add(values.len() * 8);
        let w = self.grow_to(owner, win, end);
        for (i, v) in values.iter().enumerate() {
            let at = start + i * 8;
            if let Some(slot) = w.get_mut(at..at + 8) {
                let cur = u64::from_le_bytes(slot.try_into().unwrap_or([0; 8]));
                slot.copy_from_slice(&cur.wrapping_add(*v).to_le_bytes());
            }
        }
        self.bump_applied(owner, win, origin)
    }

    /// Reads `len` bytes at `offset`, zero-filled past the written extent.
    pub fn read(&self, owner: u32, win: u32, offset: u64, len: u64) -> Vec<u8> {
        let mut out = vec![0u8; len as usize];
        if let Some(w) = self.windows.get(&(owner, win)) {
            let start = (offset as usize).min(w.len());
            let end = (offset as usize).saturating_add(len as usize).min(w.len());
            let avail = &w[start..end];
            if let Some(dst) = out.get_mut(..avail.len()) {
                dst.copy_from_slice(avail);
            }
        }
        out
    }

    /// Ops applied so far on the `(owner, win, origin)` stream.
    pub fn applied_count(&self, owner: u32, win: u32, origin: u32) -> u64 {
        self.applied.get(&(owner, win, origin)).copied().unwrap_or(0)
    }

    /// Raw window contents (for checksums in tests/benches).
    pub fn snapshot(&self, owner: u32, win: u32) -> Option<&[u8]> {
        self.windows.get(&(owner, win)).map(|w| w.as_slice())
    }
}

/// Origin-side issue counters: ops sent per `(owner, win)` — the number a
/// flush must see applied at each live copy.
#[derive(Clone, Debug, Default)]
pub struct OriginCounters {
    sent: BTreeMap<(u32, u32), u64>,
}

impl OriginCounters {
    /// Records one issued op against `(owner, win)`; returns the total.
    pub fn record(&mut self, owner: u32, win: u32) -> u64 {
        let c = self.sent.entry((owner, win)).or_insert(0);
        *c += 1;
        *c
    }

    /// Ops issued to `(owner, win)` so far.
    pub fn issued(&self, owner: u32, win: u32) -> u64 {
        self.sent.get(&(owner, win)).copied().unwrap_or(0)
    }

    /// Every `(owner, win)` this origin has touched.
    pub fn touched(&self) -> Vec<(u32, u32, u64)> {
        self.sent.iter().map(|(&(o, w), &c)| (o, w, c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msgs_roundtrip() {
        let msgs = [
            RmaMsg::Put {
                owner: 3,
                win: 1,
                offset: 16,
                data: vec![1, 2, 3],
            },
            RmaMsg::Acc {
                owner: 3,
                win: 1,
                offset: 8,
                values: vec![10, u64::MAX],
            },
            RmaMsg::GetReq {
                owner: 0,
                win: 2,
                offset: 0,
                len: 32,
                req: 77,
            },
            RmaMsg::GetRep {
                req: 77,
                data: vec![0; 4],
            },
            RmaMsg::FlushReq {
                owner: 1,
                win: 0,
                sent_count: 5,
                req: 78,
            },
            RmaMsg::FlushAck { req: 78 },
        ];
        for m in msgs {
            assert_eq!(RmaMsg::decode(&m.encode()), Some(m));
        }
        assert_eq!(RmaMsg::decode(&[]), None);
        assert_eq!(RmaMsg::decode(&[99, 0, 0]), None);
    }

    #[test]
    fn windows_grow_and_replicate_deterministically() {
        let mut primary = WindowStore::default();
        let mut replica = WindowStore::default();
        for store in [&mut primary, &mut replica] {
            store.create(2, 0);
            store.apply_put(2, 0, 5, 8, &[0xAA; 4]);
            store.apply_acc(2, 0, 5, 0, &[7]);
            store.apply_acc(2, 0, 5, 0, &[u64::MAX]);
        }
        assert_eq!(primary.snapshot(2, 0), replica.snapshot(2, 0));
        assert_eq!(primary.applied_count(2, 0, 5), 3);
        // acc wrapped: 7 + MAX == 6 (mod 2^64)
        assert_eq!(primary.read(2, 0, 0, 8), 6u64.to_le_bytes().to_vec());
        // reads past the extent zero-fill
        assert_eq!(primary.read(2, 0, 100, 4), vec![0; 4]);
        assert_eq!(primary.read(9, 9, 0, 2), vec![0; 2]);
    }

    #[test]
    fn origin_counters_track_per_window() {
        let mut o = OriginCounters::default();
        assert_eq!(o.record(1, 0), 1);
        assert_eq!(o.record(1, 0), 2);
        assert_eq!(o.record(2, 0), 1);
        assert_eq!(o.issued(1, 0), 2);
        assert_eq!(o.issued(3, 3), 0);
        assert_eq!(o.touched(), vec![(1, 0, 2), (2, 0, 1)]);
    }
}
