#![warn(missing_docs)]

//! A minimal MPI-like middleware over the GM model.
//!
//! The paper's motivation names MPI explicitly: "Middleware, such as MPI,
//! built on top of GM, consider GM send errors to be fatal and exit when
//! they encounter such errors. This can cause a distributed application
//! using MPI to come to a grinding halt if proper fault tolerance is not
//! implemented." — and FTGM's promise is that such middleware keeps
//! working, unmodified, across an interface failure.
//!
//! This crate is that middleware, scaled to the simulation: ranks over GM
//! ports, tag-matched point-to-point messaging ([`mailbox`]), and the
//! classic collectives ([`collectives`]): dissemination **barrier**,
//! binomial-tree **broadcast**, and ring **all-reduce**. Rank programs are
//! written as sequential *operation streams* ([`Op`]); the middleware runs
//! each operation's protocol and feeds the result back.
//!
//! Nothing in this crate references `ftgm-core`: it runs identically on
//! plain GM and on FTGM — the integration tests demonstrate that a
//! collective rides out a network-processor hang when (and only when) the
//! fault-tolerance stack is installed.

pub mod collectives;
pub mod mailbox;
pub mod runner;

pub use mailbox::{Envelope, TAG_USER_MAX};
pub use runner::{spawn_rank, MpiHarness, Op, OpResult, RankProgram, RankSpec};
