#![warn(missing_docs)]

//! A fault-tolerant MPI-like application tier over the GM model.
//!
//! The paper's motivation names MPI explicitly: "Middleware, such as MPI,
//! built on top of GM, consider GM send errors to be fatal and exit when
//! they encounter such errors. This can cause a distributed application
//! using MPI to come to a grinding halt if proper fault tolerance is not
//! implemented." — and FTGM's promise is that such middleware keeps
//! working, unmodified, across an interface failure.
//!
//! This crate is that middleware, scaled to the simulation: ranks over GM
//! ports, tag-matched point-to-point messaging ([`mailbox`]), the classic
//! collectives ([`collectives`]) — dissemination **barrier**, binomial
//! **broadcast**, ring and recursive-doubling **all-reduce**, 2-D torus
//! **halo exchange** — and a one-sided **RMA** subsystem ([`rma`]) with
//! replicated backing windows. Rank programs are written as sequential
//! *operation streams* ([`Op`]); the middleware runs each operation's
//! protocol and feeds the result back.
//!
//! Beyond FTGM's transparent recovery, the [`recovery`] module adds
//! GASPI-style *application-visible* failure semantics: per-operation
//! timeouts that surface typed [`RankFault`]s instead of hanging, and
//! three restart policies — notify, **shrink** (re-plan collectives over
//! the survivors) and **spare-node** (remap the dead rank onto a hot
//! spare and replay from its last checkpoint).
//!
//! Nothing in this crate references `ftgm-core`: it runs identically on
//! plain GM and on FTGM — the integration tests demonstrate that a
//! collective rides out a network-processor hang when (and only when) the
//! fault-tolerance stack is installed.

pub mod collectives;
pub mod harness;
pub mod mailbox;
pub mod recovery;
pub mod rma;
pub mod runner;

pub use harness::MpiHarness;
pub use mailbox::{Envelope, TAG_USER_MAX};
pub use recovery::{FaultKind, RankFault, RankSpec, RestartPolicy};
pub use runner::{
    spawn_rank, HarnessState, MpiShared, Op, OpResult, RankProgram, RecoveryConfig,
};
