//! Tag-matched messaging over GM.
//!
//! MPI matches receives by `(source, tag)`; GM delivers whatever arrives.
//! The mailbox bridges the two: every middleware message travels as a GM
//! message carrying an [`Envelope`] header (source rank, tag), and arrived
//! envelopes wait in per-`(tag, source)` queues until a matching receive
//! posts. GM's in-order delivery per stream makes each `(source, tag)`
//! queue FIFO.
//!
//! Matching is indexed: envelopes live in a `BTreeMap` keyed by
//! `(tag, source)`, so an exact-match take is one map lookup and an
//! any-source take is a range scan over the (few) sources that sent that
//! tag — arrivals carry a global sequence number so any-source still
//! returns the oldest match. At 1024 ranks a collective round parks up to
//! a thousand envelopes; the old linear scan made every receive O(total
//! buffered), which went quadratic exactly when the job was largest.

use std::collections::{BTreeMap, VecDeque};

/// Highest tag value available to applications; larger tags are reserved
/// for the collective, checkpoint, and RMA protocols.
pub const TAG_USER_MAX: u64 = 1 << 48;

/// Wire format of a middleware message: `[src_rank u32][tag u64][payload]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Sending rank.
    pub src_rank: u32,
    /// Match tag.
    pub tag: u64,
    /// Application bytes.
    pub payload: Vec<u8>,
}

impl Envelope {
    /// Serializes to GM message bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.payload.len());
        out.extend_from_slice(&self.src_rank.to_le_bytes());
        out.extend_from_slice(&self.tag.to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses GM message bytes.
    ///
    /// Returns `None` for messages too short to carry a header (not
    /// produced by this middleware).
    pub fn decode(data: &[u8]) -> Option<Envelope> {
        if data.len() < 12 {
            return None;
        }
        let src_rank = u32::from_le_bytes(data.get(0..4)?.try_into().ok()?);
        let tag = u64::from_le_bytes(data.get(4..12)?.try_into().ok()?);
        Some(Envelope {
            src_rank,
            tag,
            payload: data.get(12..)?.to_vec(),
        })
    }
}

/// A pending receive's match pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pattern {
    /// Required source rank, or `None` for any source.
    pub from: Option<u32>,
    /// Required tag.
    pub tag: u64,
}

/// Buffers unmatched arrivals, indexed by `(tag, source)`.
#[derive(Clone, Debug, Default)]
pub struct Mailbox {
    /// `(tag, src) → FIFO of (arrival seqno, payload)`.
    queues: BTreeMap<(u64, u32), VecDeque<(u64, Vec<u8>)>>,
    arrivals: u64,
    depth: usize,
    max_depth: usize,
}

impl Mailbox {
    /// Creates an empty mailbox.
    pub fn new() -> Mailbox {
        Mailbox::default()
    }

    /// Stores an arrived envelope; returns the buffered depth after the
    /// store (the middleware feeds this to its depth histogram).
    pub fn deliver(&mut self, env: Envelope) -> usize {
        let at = self.arrivals;
        self.arrivals += 1;
        self.queues
            .entry((env.tag, env.src_rank))
            .or_default()
            .push_back((at, env.payload));
        self.depth += 1;
        self.max_depth = self.max_depth.max(self.depth);
        self.depth
    }

    /// Takes the oldest envelope matching `pattern`, if any.
    pub fn take(&mut self, pattern: Pattern) -> Option<Envelope> {
        let key = match pattern.from {
            Some(src) => {
                let key = (pattern.tag, src);
                self.queues.contains_key(&key).then_some(key)?
            }
            None => {
                // Any-source: the oldest head across this tag's queues.
                let range = (pattern.tag, u32::MIN)..=(pattern.tag, u32::MAX);
                self.queues
                    .range(range)
                    .filter_map(|(k, q)| q.front().map(|(at, _)| (*at, *k)))
                    .min()
                    .map(|(_, k)| k)?
            }
        };
        let q = self.queues.get_mut(&key)?;
        let (_, payload) = q.pop_front()?;
        if q.is_empty() {
            self.queues.remove(&key);
        }
        self.depth -= 1;
        Some(Envelope {
            src_rank: key.1,
            tag: key.0,
            payload,
        })
    }

    /// Drops every buffered envelope whose `(src, tag)` satisfies `pred`;
    /// returns the number dropped (stale-epoch cleanup after a
    /// communicator transition).
    pub fn purge_where(&mut self, pred: impl Fn(u32, u64) -> bool) -> usize {
        let mut dropped = 0;
        self.queues.retain(|&(tag, src), q| {
            if pred(src, tag) {
                dropped += q.len();
                false
            } else {
                true
            }
        });
        self.depth -= dropped;
        dropped
    }

    /// Number of buffered envelopes.
    pub fn len(&self) -> usize {
        self.depth
    }

    /// `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.depth == 0
    }

    /// High-water mark of the buffered depth.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(src: u32, tag: u64, byte: u8) -> Envelope {
        Envelope {
            src_rank: src,
            tag,
            payload: vec![byte],
        }
    }

    #[test]
    fn envelope_roundtrip() {
        let e = Envelope {
            src_rank: 7,
            tag: 0xDEAD_BEEF,
            payload: vec![1, 2, 3],
        };
        assert_eq!(Envelope::decode(&e.encode()), Some(e));
    }

    #[test]
    fn short_messages_rejected() {
        assert_eq!(Envelope::decode(&[0; 11]), None);
        assert!(Envelope::decode(&[0; 12]).is_some());
    }

    #[test]
    fn take_matches_tag_and_source() {
        let mut m = Mailbox::new();
        m.deliver(env(1, 10, 0xA));
        m.deliver(env(2, 10, 0xB));
        m.deliver(env(1, 20, 0xC));
        // Any-source by tag: FIFO.
        let got = m.take(Pattern { from: None, tag: 10 }).unwrap();
        assert_eq!(got.payload, vec![0xA]);
        assert_eq!(got.src_rank, 1);
        // Specific source.
        let got = m.take(Pattern { from: Some(2), tag: 10 }).unwrap();
        assert_eq!(got.payload, vec![0xB]);
        // No match for wrong source.
        assert!(m.take(Pattern { from: Some(2), tag: 20 }).is_none());
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn fifo_per_source_and_tag() {
        let mut m = Mailbox::new();
        m.deliver(env(3, 5, 1));
        m.deliver(env(3, 5, 2));
        let p = Pattern { from: Some(3), tag: 5 };
        assert_eq!(m.take(p).unwrap().payload, vec![1]);
        assert_eq!(m.take(p).unwrap().payload, vec![2]);
        assert!(m.is_empty());
    }

    #[test]
    fn any_source_is_globally_fifo_across_sources() {
        let mut m = Mailbox::new();
        m.deliver(env(9, 7, 1));
        m.deliver(env(2, 7, 2));
        m.deliver(env(9, 7, 3));
        let p = Pattern { from: None, tag: 7 };
        // Oldest overall wins even though source 2 < source 9.
        assert_eq!(m.take(p).unwrap().src_rank, 9);
        assert_eq!(m.take(p).unwrap().src_rank, 2);
        assert_eq!(m.take(p).unwrap().payload, vec![3]);
        assert!(m.take(p).is_none());
    }

    #[test]
    fn depth_tracking_and_purge() {
        let mut m = Mailbox::new();
        assert_eq!(m.deliver(env(0, 1, 0)), 1);
        assert_eq!(m.deliver(env(0, 2, 0)), 2);
        assert_eq!(m.deliver(env(1, 1, 0)), 3);
        assert_eq!(m.max_depth(), 3);
        let dropped = m.purge_where(|_, tag| tag == 1);
        assert_eq!(dropped, 2);
        assert_eq!(m.len(), 1);
        assert_eq!(m.max_depth(), 3);
        assert!(m.take(Pattern { from: None, tag: 2 }).is_some());
        assert!(m.is_empty());
    }
}
