//! Tag-matched messaging over GM.
//!
//! MPI matches receives by `(source, tag)`; GM delivers whatever arrives.
//! The mailbox bridges the two: every middleware message travels as a GM
//! message carrying an [`Envelope`] header (source rank, tag), and arrived
//! envelopes wait in per-`(source, tag)` queues until a matching receive
//! posts. GM's in-order delivery per stream makes each `(source, tag)`
//! queue FIFO.

use std::collections::VecDeque;

/// Highest tag value available to applications; larger tags are reserved
/// for the collective protocols.
pub const TAG_USER_MAX: u64 = 1 << 48;

/// Wire format of a middleware message: `[src_rank u32][tag u64][payload]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Sending rank.
    pub src_rank: u32,
    /// Match tag.
    pub tag: u64,
    /// Application bytes.
    pub payload: Vec<u8>,
}

impl Envelope {
    /// Serializes to GM message bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.payload.len());
        out.extend_from_slice(&self.src_rank.to_le_bytes());
        out.extend_from_slice(&self.tag.to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses GM message bytes.
    ///
    /// Returns `None` for messages too short to carry a header (not
    /// produced by this middleware).
    pub fn decode(data: &[u8]) -> Option<Envelope> {
        if data.len() < 12 {
            return None;
        }
        let src_rank = u32::from_le_bytes(data[0..4].try_into().expect("4 bytes"));
        let tag = u64::from_le_bytes(data[4..12].try_into().expect("8 bytes"));
        Some(Envelope {
            src_rank,
            tag,
            payload: data[12..].to_vec(),
        })
    }
}

/// A pending receive's match pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pattern {
    /// Required source rank, or `None` for any source.
    pub from: Option<u32>,
    /// Required tag.
    pub tag: u64,
}

impl Pattern {
    fn matches(&self, env: &Envelope) -> bool {
        self.tag == env.tag && self.from.is_none_or(|f| f == env.src_rank)
    }
}

/// Buffers unmatched arrivals and unmatched receives.
#[derive(Clone, Debug, Default)]
pub struct Mailbox {
    arrived: VecDeque<Envelope>,
}

impl Mailbox {
    /// Creates an empty mailbox.
    pub fn new() -> Mailbox {
        Mailbox::default()
    }

    /// Stores an arrived envelope.
    pub fn deliver(&mut self, env: Envelope) {
        self.arrived.push_back(env);
    }

    /// Takes the oldest envelope matching `pattern`, if any.
    pub fn take(&mut self, pattern: Pattern) -> Option<Envelope> {
        let idx = self.arrived.iter().position(|e| pattern.matches(e))?;
        self.arrived.remove(idx)
    }

    /// Number of buffered envelopes.
    pub fn len(&self) -> usize {
        self.arrived.len()
    }

    /// `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.arrived.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(src: u32, tag: u64, byte: u8) -> Envelope {
        Envelope {
            src_rank: src,
            tag,
            payload: vec![byte],
        }
    }

    #[test]
    fn envelope_roundtrip() {
        let e = Envelope {
            src_rank: 7,
            tag: 0xDEAD_BEEF,
            payload: vec![1, 2, 3],
        };
        assert_eq!(Envelope::decode(&e.encode()), Some(e));
    }

    #[test]
    fn short_messages_rejected() {
        assert_eq!(Envelope::decode(&[0; 11]), None);
        assert!(Envelope::decode(&[0; 12]).is_some());
    }

    #[test]
    fn take_matches_tag_and_source() {
        let mut m = Mailbox::new();
        m.deliver(env(1, 10, 0xA));
        m.deliver(env(2, 10, 0xB));
        m.deliver(env(1, 20, 0xC));
        // Any-source by tag: FIFO.
        let got = m.take(Pattern { from: None, tag: 10 }).unwrap();
        assert_eq!(got.payload, vec![0xA]);
        // Specific source.
        let got = m.take(Pattern { from: Some(2), tag: 10 }).unwrap();
        assert_eq!(got.payload, vec![0xB]);
        // No match for wrong source.
        assert!(m.take(Pattern { from: Some(2), tag: 20 }).is_none());
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn fifo_per_source_and_tag() {
        let mut m = Mailbox::new();
        m.deliver(env(3, 5, 1));
        m.deliver(env(3, 5, 2));
        let p = Pattern { from: Some(3), tag: 5 };
        assert_eq!(m.take(p).unwrap().payload, vec![1]);
        assert_eq!(m.take(p).unwrap().payload, vec![2]);
        assert!(m.is_empty());
    }
}
