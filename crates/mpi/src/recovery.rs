//! Failure semantics: suspicion, membership, and restart planning.
//!
//! FTGM hides *transient* interface failures below the middleware — a hung
//! LANai is reset and the collective resumes, invisibly. But FTGM also has
//! a loud failure mode: after `max_attempts` recoveries inside the re-hang
//! window it escalates to `InterfaceDead`, and the paper's unmodified MPI
//! would abort the whole job. This module implements the GASPI-style
//! answer for that case: *timeout-based failure notification* surfaced to
//! the rank program as a typed [`RankFault`] (never a hang, never an
//! abort), plus checkpoint-based restart under two policies —
//! **shrink** (re-plan collectives over the surviving communicator) and
//! **spare** (remap the dead rank onto a hot spare port and replay it from
//! its last checkpoint).
//!
//! Everything here is *pure* bookkeeping: runtimes post suspicions to a
//! [`SuspectBoard`], the harness controller calls [`plan_rank_restart`] /
//! [`apply_rank_restart`] to transition the [`Membership`] to a new epoch,
//! and rank runtimes observe the epoch change and rebind. None of these
//! paths may panic — they are entry points for the lint's transitive
//! panic-reachability rule (R7).

use std::collections::BTreeMap;

use ftgm_net::NodeId;
use ftgm_sim::SimTime;

/// Where a rank lives: a GM port on a host interface.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankSpec {
    /// Host interface.
    pub node: NodeId,
    /// GM port on that interface.
    pub port: u8,
}

/// What to do when a rank is declared dead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RestartPolicy {
    /// Only notify: surviving programs receive a [`RankFault`] result and
    /// decide for themselves (the GASPI baseline).
    Notify,
    /// Shrink the communicator: collectives re-plan over the survivors;
    /// programs receive the fault and continue with a smaller world.
    Shrink,
    /// Respawn the dead rank on a hot spare port, restored from its last
    /// checkpoint replica; survivors replay the interrupted collective.
    Spare,
}

/// Why a rank was declared dead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// An operation exceeded its deadline and FTGM never brought the
    /// interface back (or kept it down past the suspicion grace).
    OpTimeout,
    /// FTGM escalated the interface to dead (`InterfaceDead`).
    InterfaceDead,
    /// A spare restart was requested but no spare port remained.
    SparesExhausted,
}

/// A typed failure notification delivered to surviving rank programs in
/// place of the operation result — the GASPI contract: *"a timeout instead
/// of a hang, a notification instead of an abort."*
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankFault {
    /// The rank that died.
    pub rank: u32,
    /// Why it was declared dead.
    pub kind: FaultKind,
    /// The membership epoch that the failure transitioned the job into.
    pub epoch: u32,
    /// When the controller declared the fault.
    pub declared_at: SimTime,
}

/// A checkpointed rank state held in memory on a buddy rank.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Replica {
    /// Collective sequence number of the `Checkpoint` op that wrote it.
    pub ckpt_seqno: u64,
    /// Opaque program state captured by the rank.
    pub state: Vec<u8>,
}

/// In-memory replica store: rank → last checkpoint.
///
/// Modeled as a management-plane structure shared across the harness: a
/// NIC failure kills the *interface*, not host memory, so the checkpoint a
/// buddy acknowledged stays reachable for the restart path.
#[derive(Clone, Debug, Default)]
pub struct ReplicaStore {
    entries: BTreeMap<u32, Replica>,
}

impl ReplicaStore {
    /// Records `rank`'s checkpoint if it is newer than the stored one.
    pub fn store(&mut self, rank: u32, ckpt_seqno: u64, state: Vec<u8>) {
        let slot = self.entries.entry(rank).or_default();
        if slot.state.is_empty() || ckpt_seqno >= slot.ckpt_seqno {
            slot.ckpt_seqno = ckpt_seqno;
            slot.state = state;
        }
    }

    /// The last checkpoint for `rank`, if any.
    pub fn lookup(&self, rank: u32) -> Option<&Replica> {
        self.entries.get(&rank)
    }
}

/// One rank's suspicion record on the board.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Suspicion {
    /// When the first timeout was posted.
    pub first_at: SimTime,
    /// `true` once the rank's own runtime saw `InterfaceDead`.
    pub interface_dead: bool,
}

/// Shared failure-detection board between rank runtimes and the harness
/// controller.
///
/// Runtimes post op-timeout suspicions and `InterfaceDead` observations;
/// the controller reads them on its tick and declares deaths. A suspicion
/// is *cleared* when the suspected rank's traffic resumes (FTGM recovered
/// the interface) — only suspicions that outlive the grace period, or that
/// carry an `InterfaceDead` confirmation, become faults.
#[derive(Clone, Debug, Default)]
pub struct SuspectBoard {
    suspicions: BTreeMap<u32, Suspicion>,
}

impl SuspectBoard {
    /// Posts (or refreshes) an op-timeout suspicion against `rank`.
    pub fn suspect(&mut self, rank: u32, at: SimTime) {
        self.suspicions.entry(rank).or_insert(Suspicion {
            first_at: at,
            interface_dead: false,
        });
    }

    /// Marks `rank` as confirmed dead by its own interface.
    pub fn confirm_interface_dead(&mut self, rank: u32, at: SimTime) {
        let s = self.suspicions.entry(rank).or_insert(Suspicion {
            first_at: at,
            interface_dead: false,
        });
        s.interface_dead = true;
    }

    /// Withdraws a suspicion (the suspected rank made progress again).
    pub fn absolve(&mut self, rank: u32) {
        let confirmed = self
            .suspicions
            .get(&rank)
            .is_some_and(|s| s.interface_dead);
        if !confirmed {
            self.suspicions.remove(&rank);
        }
    }

    /// Ranks whose suspicion has ripened into a death verdict: either the
    /// interface is confirmed dead, or the suspicion outlived `grace`.
    pub fn ripe(&self, now: SimTime, grace: ftgm_sim::SimDuration) -> Vec<(u32, FaultKind)> {
        self.suspicions
            .iter()
            .filter_map(|(&rank, s)| {
                if s.interface_dead {
                    Some((rank, FaultKind::InterfaceDead))
                } else if now.saturating_since(s.first_at) >= grace {
                    Some((rank, FaultKind::OpTimeout))
                } else {
                    None
                }
            })
            .collect()
    }

    /// Forgets `rank` entirely (after the controller acted on it).
    pub fn retire(&mut self, rank: u32) {
        self.suspicions.remove(&rank);
    }

    /// `true` when nothing is suspected.
    pub fn is_quiet(&self) -> bool {
        self.suspicions.is_empty()
    }
}

/// The communicator's membership view, shared by every rank runtime.
///
/// Runtimes compare `epoch` against their cached value each poll tick; a
/// bump means a restart happened and they must rebind (purge stale
/// envelopes, rewind or re-plan, surface the fault).
#[derive(Clone, Debug)]
pub struct Membership {
    /// Monotonic epoch; bumped by every applied restart plan.
    pub epoch: u32,
    /// Per-rank liveness (index = rank).
    pub alive: Vec<bool>,
    /// Per-rank placement; a spare restart rewrites the dead rank's entry.
    pub specs: Vec<RankSpec>,
    /// Unused hot-spare ports, consumed back-to-front.
    pub spares: Vec<RankSpec>,
    /// Collective seqno from which the current epoch replays (spare policy:
    /// the restored rank's checkpoint + 1; otherwise the epoch's start).
    pub replay_from: u64,
    /// Faults declared so far, newest last.
    pub faults: Vec<RankFault>,
}

impl Membership {
    /// A fresh epoch-0 membership over `specs` with the given spare pool.
    pub fn fresh(specs: Vec<RankSpec>, spares: Vec<RankSpec>) -> Membership {
        Membership {
            epoch: 0,
            alive: vec![true; specs.len()],
            specs,
            spares,
            replay_from: 0,
            faults: Vec::new(),
        }
    }

    /// Number of live ranks.
    pub fn live_count(&self) -> u32 {
        self.alive.iter().filter(|a| **a).count() as u32
    }

    /// `rank`'s dense index among the survivors (shrink-mode collectives
    /// plan over these), or `None` if the rank is dead or out of range.
    pub fn dense_index(&self, rank: u32) -> Option<u32> {
        if !self.is_alive(rank) {
            return None;
        }
        let dense = self
            .alive
            .iter()
            .take(rank as usize)
            .filter(|a| **a)
            .count();
        Some(dense as u32)
    }

    /// The rank holding dense index `dense` among survivors.
    pub fn rank_at_dense(&self, dense: u32) -> Option<u32> {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, a)| **a)
            .nth(dense as usize)
            .map(|(r, _)| r as u32)
    }

    /// `true` if `rank` is in range and alive.
    pub fn is_alive(&self, rank: u32) -> bool {
        self.alive.get(rank as usize).copied().unwrap_or(false)
    }

    /// The next live rank after `rank` in ring order, skipping `rank`
    /// itself — the checkpoint buddy / replica holder. `None` when `rank`
    /// is the only survivor.
    pub fn next_live(&self, rank: u32) -> Option<u32> {
        let n = self.alive.len() as u32;
        if n == 0 {
            return None;
        }
        (1..n)
            .map(|step| (rank + step) % n)
            .find(|&cand| self.is_alive(cand))
    }

    /// Picks a usable spare: the NIC died with the host's whole interface,
    /// so a spare port on the dead rank's node — or any node hosting a
    /// dead rank — is no spare at all.
    pub fn pick_spare(&self, dead_rank: u32) -> Option<RankSpec> {
        let dead_nodes: Vec<_> = self
            .specs
            .iter()
            .enumerate()
            .filter(|&(r, _)| r as u32 == dead_rank || !self.is_alive(r as u32))
            .map(|(_, s)| s.node)
            .collect();
        self.spares
            .iter()
            .rev()
            .find(|s| !dead_nodes.contains(&s.node))
            .copied()
    }
}

/// A restart decision produced by [`plan_rank_restart`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RestartPlan {
    /// Mark dead, bump epoch, deliver the fault; survivors carry on with
    /// the membership unchanged otherwise.
    NotifyOnly {
        /// The fault to deliver.
        fault: RankFault,
    },
    /// Mark dead, bump epoch, deliver the fault; collectives re-plan over
    /// the dense survivor index.
    ShrinkWorld {
        /// The fault to deliver.
        fault: RankFault,
    },
    /// Respawn the dead rank on `spare`, restored from `replica`; the
    /// whole job replays collectives from `replay_from`.
    SpareRespawn {
        /// The fault to deliver.
        fault: RankFault,
        /// The spare port that takes over the dead rank's identity.
        spare: RankSpec,
        /// Checkpoint to restore (empty default when never checkpointed).
        replica: Replica,
        /// First collective seqno the new epoch must (re)execute.
        replay_from: u64,
    },
}

impl RestartPlan {
    /// The fault carried by any plan variant.
    pub fn fault(&self) -> RankFault {
        match self {
            RestartPlan::NotifyOnly { fault }
            | RestartPlan::ShrinkWorld { fault }
            | RestartPlan::SpareRespawn { fault, .. } => *fault,
        }
    }
}

/// Decides how to restart after `dead_rank`'s death (R7 entry: this path
/// must never panic — a failed restart must degrade to a loud
/// notification, not take the controller down).
pub fn plan_rank_restart(
    policy: RestartPolicy,
    dead_rank: u32,
    kind: FaultKind,
    now: SimTime,
    membership: &Membership,
    replicas: &ReplicaStore,
) -> RestartPlan {
    let fault = RankFault {
        rank: dead_rank,
        kind,
        epoch: membership.epoch.saturating_add(1),
        declared_at: now,
    };
    match policy {
        RestartPolicy::Notify => RestartPlan::NotifyOnly { fault },
        RestartPolicy::Shrink => RestartPlan::ShrinkWorld { fault },
        RestartPolicy::Spare => {
            let Some(spare) = membership.pick_spare(dead_rank) else {
                // Out of spares: degrade to a loud notification.
                return RestartPlan::NotifyOnly {
                    fault: RankFault {
                        kind: FaultKind::SparesExhausted,
                        ..fault
                    },
                };
            };
            let replica = replicas.lookup(dead_rank).cloned().unwrap_or_default();
            // Replay restarts AT the checkpoint instance itself: the
            // restored program re-issues the checkpoint as its first
            // operation, and — because the checkpoint protocol runs its
            // barrier before storing — a stored seqno proves every rank
            // already entered that instance, so nobody needs a message
            // from below the cut.
            let replay_from = if replica.state.is_empty() {
                0
            } else {
                replica.ckpt_seqno
            };
            RestartPlan::SpareRespawn {
                fault,
                spare,
                replica,
                replay_from,
            }
        }
    }
}

/// Applies a plan to the membership: marks the dead rank, bumps the epoch,
/// performs the spare remap, and logs the fault (R7 entry; must never
/// panic). Returns the fault for delivery to surviving programs.
pub fn apply_rank_restart(plan: &RestartPlan, membership: &mut Membership) -> RankFault {
    let fault = plan.fault();
    if let Some(slot) = membership.alive.get_mut(fault.rank as usize) {
        *slot = false;
    }
    membership.epoch = membership.epoch.saturating_add(1);
    match plan {
        RestartPlan::NotifyOnly { .. } | RestartPlan::ShrinkWorld { .. } => {
            membership.replay_from = 0;
        }
        RestartPlan::SpareRespawn {
            spare, replay_from, ..
        } => {
            membership.spares.retain(|s| s != spare);
            if let Some(slot) = membership.specs.get_mut(fault.rank as usize) {
                *slot = *spare;
            }
            if let Some(slot) = membership.alive.get_mut(fault.rank as usize) {
                *slot = true;
            }
            membership.replay_from = *replay_from;
        }
    }
    membership.faults.push(fault);
    fault
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftgm_sim::SimDuration;

    fn specs(n: u32) -> Vec<RankSpec> {
        (0..n)
            .map(|r| RankSpec {
                node: NodeId(r as u16),
                port: 1,
            })
            .collect()
    }

    #[test]
    fn suspicion_ripens_by_grace_or_confirmation() {
        let mut board = SuspectBoard::default();
        let grace = SimDuration::from_ms(100);
        board.suspect(3, SimTime::from_nanos(0));
        assert!(board.ripe(SimTime::from_nanos(1), grace).is_empty());
        assert_eq!(
            board.ripe(SimTime::ZERO + grace, grace),
            vec![(3, FaultKind::OpTimeout)]
        );
        // Absolved before ripening → gone.
        board.absolve(3);
        assert!(board.is_quiet());
        // Interface-dead confirmation ripens immediately and survives absolve.
        board.confirm_interface_dead(5, SimTime::from_nanos(10));
        board.absolve(5);
        assert_eq!(
            board.ripe(SimTime::from_nanos(11), grace),
            vec![(5, FaultKind::InterfaceDead)]
        );
        board.retire(5);
        assert!(board.is_quiet());
    }

    #[test]
    fn dense_index_skips_the_dead() {
        let mut m = Membership::fresh(specs(5), Vec::new());
        m.alive[2] = false;
        assert_eq!(m.live_count(), 4);
        assert_eq!(m.dense_index(0), Some(0));
        assert_eq!(m.dense_index(1), Some(1));
        assert_eq!(m.dense_index(2), None);
        assert_eq!(m.dense_index(3), Some(2));
        assert_eq!(m.dense_index(4), Some(3));
        assert_eq!(m.rank_at_dense(2), Some(3));
        assert_eq!(m.rank_at_dense(3), Some(4));
        assert_eq!(m.rank_at_dense(4), None);
        assert_eq!(m.next_live(1), Some(3));
        assert_eq!(m.next_live(4), Some(0));
    }

    #[test]
    fn spare_plan_restores_and_remaps() {
        let spare = RankSpec {
            node: NodeId(0),
            port: 7,
        };
        let mut m = Membership::fresh(specs(4), vec![spare]);
        let mut replicas = ReplicaStore::default();
        replicas.store(2, 6, vec![9, 9]);
        replicas.store(2, 4, vec![1]); // stale: ignored
        let plan = plan_rank_restart(
            RestartPolicy::Spare,
            2,
            FaultKind::InterfaceDead,
            SimTime::from_nanos(42),
            &m,
            &replicas,
        );
        let RestartPlan::SpareRespawn {
            fault,
            spare: got,
            replica,
            replay_from,
        } = &plan
        else {
            panic!("expected spare plan, got {plan:?}");
        };
        assert_eq!(*got, spare);
        assert_eq!(replica.state, vec![9, 9]);
        assert_eq!(*replay_from, 6);
        assert_eq!(fault.epoch, 1);
        let fault = apply_rank_restart(&plan, &mut m);
        assert_eq!(m.epoch, 1);
        assert!(m.is_alive(2));
        assert_eq!(m.specs[2], spare);
        assert!(m.spares.is_empty());
        assert_eq!(m.replay_from, 6);
        assert_eq!(m.faults, vec![fault]);

        // Second death with no spares left degrades to a loud notification.
        let plan2 = plan_rank_restart(
            RestartPolicy::Spare,
            0,
            FaultKind::OpTimeout,
            SimTime::from_nanos(50),
            &m,
            &replicas,
        );
        assert_eq!(plan2.fault().kind, FaultKind::SparesExhausted);
        apply_rank_restart(&plan2, &mut m);
        assert!(!m.is_alive(0));
        assert_eq!(m.live_count(), 3);
    }

    #[test]
    fn shrink_plan_marks_dead_and_bumps_epoch() {
        let mut m = Membership::fresh(specs(3), Vec::new());
        let plan = plan_rank_restart(
            RestartPolicy::Shrink,
            1,
            FaultKind::OpTimeout,
            SimTime::ZERO,
            &m,
            &ReplicaStore::default(),
        );
        apply_rank_restart(&plan, &mut m);
        assert_eq!(m.epoch, 1);
        assert!(!m.is_alive(1));
        assert_eq!(m.dense_index(2), Some(1));
    }
}
