//! Collective communication schedules.
//!
//! Pure rank arithmetic — who talks to whom in which round — kept separate
//! from the execution machinery so the algorithms are unit-testable:
//!
//! * **dissemination barrier**: ⌈log₂ n⌉ rounds; in round *k* every rank
//!   sends to `(r + 2^k) mod n` and waits for `(r − 2^k) mod n`,
//! * **binomial-tree broadcast**: rank `vr = (r − root) mod n` receives in
//!   round ⌊log₂ vr⌋ from `vr − 2^k`, then relays to `vr + 2^j` in later
//!   rounds,
//! * **recursive-doubling all-reduce**: the largest power-of-two core
//!   pairwise-exchanges in ⌊log₂ n⌋ rounds; the `n − 2^⌊log₂ n⌋` extra
//!   ranks fold their vectors into a host first and get the result back
//!   last ([`rd_plan`]),
//! * **2-D halo exchange**: each rank trades a boundary payload with its
//!   four torus-wrapped grid neighbors ([`halo_plan`]).
//!
//! The pure reference executors ([`reduce_ring_reference`],
//! [`reduce_rd_reference`]) run a whole all-reduce on plain vectors with a
//! caller-supplied combine function; the property suite uses them to show
//! that ring and recursive doubling agree for any commutative, associative
//! reduction at any rank count.

/// Number of rounds for an n-rank dissemination or binomial pattern.
pub fn rounds(n: u32) -> u32 {
    assert!(n >= 1, "collectives need at least one rank");
    32 - (n - 1).leading_zeros()
}

/// One round of the dissemination barrier: `(send_to, recv_from)`.
pub fn barrier_round(rank: u32, n: u32, round: u32) -> (u32, u32) {
    assert!(rank < n);
    let k = 1u32 << round;
    ((rank + k) % n, (rank + n - k % n) % n)
}

/// The barrier's full schedule for `rank`.
pub fn barrier_schedule(rank: u32, n: u32) -> Vec<(u32, u32)> {
    (0..rounds(n)).map(|r| barrier_round(rank, n, r)).collect()
}

/// A broadcast participant's schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BroadcastPlan {
    /// Where the data comes from (`None` at the root).
    pub recv_from: Option<u32>,
    /// Ranks to relay to, in round order.
    pub send_to: Vec<u32>,
}

/// Computes the binomial-tree plan for `rank` with the given `root`.
pub fn broadcast_plan(rank: u32, root: u32, n: u32) -> BroadcastPlan {
    assert!(rank < n && root < n);
    let vr = (rank + n - root) % n;
    let (recv_from, first_send_round) = if vr == 0 {
        (None, 0)
    } else {
        let k = 31 - vr.leading_zeros(); // highest set bit: receiving round
        let from_vr = vr - (1 << k);
        (Some((from_vr + root) % n), k + 1)
    };
    let mut send_to = Vec::new();
    for j in first_send_round..rounds(n) {
        let to_vr = vr + (1 << j);
        if to_vr < n {
            send_to.push((to_vr + root) % n);
        }
    }
    BroadcastPlan { recv_from, send_to }
}

/// A ring all-reduce participant's lap-1/lap-2 roles.
///
/// Lap 1 accumulates around the ring `0 → 1 → … → n−1`; rank `n−1` then
/// holds the total and starts lap 2, `n−1 → 0 → 1 → … → n−2`, distributing
/// it (rank `n−2` is the last receiver that must forward nothing new to
/// `n−1`, which already has the total).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RingPlan {
    /// Lap 1: who we accumulate from (`None` at rank 0, which starts).
    pub l1_recv_from: Option<u32>,
    /// Lap 1: who we pass the running sum to (`None` at rank n−1, which
    /// completes the total).
    pub l1_send_to: Option<u32>,
    /// Lap 2: who we get the total from (`None` at rank n−1).
    pub l2_recv_from: Option<u32>,
    /// Lap 2: who we forward the total to (`None` at rank n−2, the last
    /// receiver before the loop would close).
    pub l2_send_to: Option<u32>,
}

/// Computes the ring plan for `rank` of `n`.
pub fn ring_plan(rank: u32, n: u32) -> RingPlan {
    assert!(rank < n);
    if n == 1 {
        return RingPlan {
            l1_recv_from: None,
            l1_send_to: None,
            l2_recv_from: None,
            l2_send_to: None,
        };
    }
    let last = n - 1;
    RingPlan {
        l1_recv_from: (rank > 0).then(|| rank - 1),
        l1_send_to: (rank < last).then(|| rank + 1),
        l2_recv_from: (rank != last).then(|| (rank + n - 1) % n),
        l2_send_to: (rank == last || rank + 1 != last).then(|| (rank + 1) % n),
    }
}

/// A recursive-doubling all-reduce participant's role.
///
/// For `n` ranks, let `p = 2^⌊log₂ n⌋` and `extras = n − p`. Ranks
/// `p..n` are **folders**: they send their vector to `rank − p` before
/// the core rounds and receive the finished result afterwards. Ranks
/// `0..extras` are **hosts**: they absorb a folder's vector first and
/// return the result last. Every rank below `p` then runs `log₂ p`
/// pairwise exchange rounds with partner `rank ^ 2^k`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RdPlan {
    /// Folders: the host rank absorbing our vector (and returning the
    /// result). `None` for core ranks.
    pub fold_to: Option<u32>,
    /// Hosts: the folder rank whose vector we absorb first (and send
    /// the result back to). `None` otherwise.
    pub fold_from: Option<u32>,
    /// Core exchange partners, one per round. Empty for folders.
    pub partners: Vec<u32>,
}

/// Largest power of two ≤ `n` (the recursive-doubling core size).
pub fn rd_core(n: u32) -> u32 {
    assert!(n >= 1, "collectives need at least one rank");
    1 << (31 - n.leading_zeros())
}

/// Computes the recursive-doubling plan for `rank` of `n`.
pub fn rd_plan(rank: u32, n: u32) -> RdPlan {
    assert!(rank < n);
    let p = rd_core(n);
    let extras = n - p;
    if rank >= p {
        return RdPlan {
            fold_to: Some(rank - p),
            fold_from: None,
            partners: Vec::new(),
        };
    }
    let fold_from = (rank < extras).then_some(rank + p);
    let core_rounds = 31 - p.leading_zeros();
    let partners = (0..core_rounds).map(|k| rank ^ (1 << k)).collect();
    RdPlan {
        fold_to: None,
        fold_from,
        partners,
    }
}

/// The four halo directions, in wire order: the `round` field of a halo
/// message carries the *sender's* direction index.
pub const HALO_UP: u32 = 0;
/// Direction index: toward row + 1 (torus wrap).
pub const HALO_DOWN: u32 = 1;
/// Direction index: toward col − 1 (torus wrap).
pub const HALO_LEFT: u32 = 2;
/// Direction index: toward col + 1 (torus wrap).
pub const HALO_RIGHT: u32 = 3;

/// The direction a halo message *arrives from*: a message the sender
/// labeled `UP` fills the receiver's `DOWN` slot, and so on.
pub fn halo_opposite(dir: u32) -> u32 {
    dir ^ 1
}

/// A near-square `(cols, rows)` factorization of `n` with
/// `cols ≥ rows ≥ 1` and `cols · rows == n` (the default halo grid).
pub fn grid_dims(n: u32) -> (u32, u32) {
    assert!(n >= 1);
    let mut rows = 1;
    let mut d = 1;
    while d * d <= n {
        if n % d == 0 {
            rows = d;
        }
        d += 1;
    }
    (n / rows, rows)
}

/// The torus-wrapped grid neighbor of `rank` in direction `dir`
/// (`HALO_UP`/`DOWN`/`LEFT`/`RIGHT`) on a `cols × rows` grid.
pub fn halo_neighbor(rank: u32, cols: u32, rows: u32, dir: u32) -> u32 {
    assert!(cols >= 1 && rows >= 1 && rank < cols * rows);
    assert!(dir < 4, "halo direction out of range");
    let (col, row) = (rank % cols, rank / cols);
    let (ncol, nrow) = match dir {
        HALO_UP => (col, (row + rows - 1) % rows),
        HALO_DOWN => (col, (row + 1) % rows),
        HALO_LEFT => ((col + cols - 1) % cols, row),
        _ => ((col + 1) % cols, row),
    };
    nrow * cols + ncol
}

/// All four neighbors of `rank`, indexed by direction.
pub fn halo_plan(rank: u32, cols: u32, rows: u32) -> [u32; 4] {
    [
        halo_neighbor(rank, cols, rows, HALO_UP),
        halo_neighbor(rank, cols, rows, HALO_DOWN),
        halo_neighbor(rank, cols, rows, HALO_LEFT),
        halo_neighbor(rank, cols, rows, HALO_RIGHT),
    ]
}

/// Reference ring all-reduce: folds every rank's vector in ring order
/// (lap 1) and hands every rank the total (lap 2). `inputs[r]` is rank
/// `r`'s contribution; all vectors must share a length.
pub fn reduce_ring_reference<T: Clone>(
    inputs: &[Vec<T>],
    combine: &dyn Fn(&T, &T) -> T,
) -> Vec<T> {
    let mut iter = inputs.iter();
    let Some(first) = iter.next() else {
        return Vec::new();
    };
    let mut acc = first.clone();
    for v in iter {
        for (a, b) in acc.iter_mut().zip(v.iter()) {
            *a = combine(a, b);
        }
    }
    acc
}

/// Reference recursive-doubling all-reduce: executes [`rd_plan`]'s
/// fold/exchange/unfold phases on plain vectors. Returns the value every
/// rank ends with (they all agree by construction).
pub fn reduce_rd_reference<T: Clone>(
    inputs: &[Vec<T>],
    combine: &dyn Fn(&T, &T) -> T,
) -> Vec<T> {
    let n = inputs.len() as u32;
    if n == 0 {
        return Vec::new();
    }
    let p = rd_core(n);
    let extras = n - p;
    let mut vals: Vec<Vec<T>> = inputs.to_vec();
    // Pre-fold: hosts absorb their folder's vector.
    for host in 0..extras {
        let folder = (host + p) as usize;
        let incoming = vals[folder].clone();
        let mine = &mut vals[host as usize];
        for (a, b) in mine.iter_mut().zip(incoming.iter()) {
            *a = combine(a, b);
        }
    }
    // Core rounds: pairwise exchange over the power-of-two core.
    let core_rounds = 31 - p.leading_zeros();
    for k in 0..core_rounds {
        let prev = vals.clone();
        for (r, mine) in vals.iter_mut().enumerate().take(p as usize) {
            let partner = (r as u32 ^ (1 << k)) as usize;
            for (a, b) in mine.iter_mut().zip(prev[partner].iter()) {
                *a = combine(a, b);
            }
        }
    }
    // Post-fold: every rank ends with the core's value.
    vals.into_iter().next().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn rounds_is_ceil_log2() {
        assert_eq!(rounds(1), 0);
        assert_eq!(rounds(2), 1);
        assert_eq!(rounds(3), 2);
        assert_eq!(rounds(4), 2);
        assert_eq!(rounds(5), 3);
        assert_eq!(rounds(8), 3);
        assert_eq!(rounds(9), 4);
    }

    #[test]
    fn barrier_partners_are_symmetric() {
        // If rank a sends to b in round k, then b expects a in round k.
        for n in 2..10u32 {
            for k in 0..rounds(n) {
                for a in 0..n {
                    let (to, _) = barrier_round(a, n, k);
                    let (_, from) = barrier_round(to, n, k);
                    assert_eq!(from, a, "n={n} k={k} a={a}");
                }
            }
        }
    }

    #[test]
    fn broadcast_covers_all_ranks_exactly_once() {
        for n in 1..17u32 {
            for root in 0..n {
                let mut received: HashSet<u32> = HashSet::new();
                received.insert(root);
                let mut senders = 0;
                for r in 0..n {
                    let plan = broadcast_plan(r, root, n);
                    if r == root {
                        assert!(plan.recv_from.is_none());
                    } else {
                        assert!(plan.recv_from.is_some());
                        assert!(received.insert(r) || !received.contains(&r));
                    }
                    senders += plan.send_to.len();
                }
                // Every non-root rank is someone's send target exactly once.
                let mut targets: Vec<u32> = (0..n)
                    .flat_map(|r| broadcast_plan(r, root, n).send_to)
                    .collect();
                targets.sort_unstable();
                let mut expect: Vec<u32> = (0..n).filter(|&r| r != root).collect();
                expect.sort_unstable();
                assert_eq!(targets, expect, "n={n} root={root}");
                assert_eq!(senders as u32, n - 1);
            }
        }
    }

    #[test]
    fn broadcast_receive_precedes_sends() {
        // A rank's receiving round is strictly before its sending rounds.
        for n in 2..17u32 {
            for r in 1..n {
                let plan = broadcast_plan(r, 0, n);
                let k = 31 - r.leading_zeros();
                for (i, &to) in plan.send_to.iter().enumerate() {
                    let to_vr = to; // root 0: vr == rank
                    assert_eq!(to_vr, r + (1 << (k + 1 + i as u32)));
                }
            }
        }
    }

    #[test]
    fn rd_plan_pairs_core_ranks_symmetrically() {
        for n in 1..40u32 {
            let p = rd_core(n);
            assert!(p <= n && p * 2 > n && p.is_power_of_two());
            for r in 0..n {
                let plan = rd_plan(r, n);
                if r >= p {
                    assert_eq!(plan.fold_to, Some(r - p));
                    assert!(plan.partners.is_empty());
                    // The host points back.
                    assert_eq!(rd_plan(r - p, n).fold_from, Some(r));
                } else {
                    for (k, &partner) in plan.partners.iter().enumerate() {
                        assert!(partner < p);
                        let back = rd_plan(partner, n);
                        assert_eq!(back.partners[k], r, "n={n} r={r} k={k}");
                    }
                }
            }
        }
    }

    #[test]
    fn rd_and_ring_references_agree_on_sums() {
        for n in 1..33usize {
            let inputs: Vec<Vec<u64>> = (0..n)
                .map(|r| (0..5).map(|i| (r as u64 + 1) * (i + 3)).collect())
                .collect();
            let combine = |a: &u64, b: &u64| a.wrapping_add(*b);
            assert_eq!(
                reduce_ring_reference(&inputs, &combine),
                reduce_rd_reference(&inputs, &combine),
                "n={n}"
            );
        }
    }

    #[test]
    fn grid_dims_factors_exactly() {
        for n in 1..200u32 {
            let (cols, rows) = grid_dims(n);
            assert_eq!(cols * rows, n);
            assert!(cols >= rows);
        }
        assert_eq!(grid_dims(256), (16, 16));
        assert_eq!(grid_dims(1024), (32, 32));
    }

    #[test]
    fn halo_neighbors_are_mutual() {
        for (cols, rows) in [(1u32, 1u32), (4, 1), (2, 2), (4, 4), (16, 16), (5, 3)] {
            for rank in 0..cols * rows {
                for dir in 0..4 {
                    let peer = halo_neighbor(rank, cols, rows, dir);
                    assert_eq!(
                        halo_neighbor(peer, cols, rows, halo_opposite(dir)),
                        rank,
                        "cols={cols} rows={rows} rank={rank} dir={dir}"
                    );
                }
            }
        }
    }

    #[test]
    fn ring_plan_chains_completely() {
        for n in 1..9u32 {
            let plans: Vec<RingPlan> = (0..n).map(|r| ring_plan(r, n)).collect();
            if n == 1 {
                assert_eq!(plans[0].l1_send_to, None);
                continue;
            }
            // Lap 1 visits every rank once, 0 → n-1.
            let mut at = 0u32;
            let mut visited = 1;
            while let Some(next) = plans[at as usize].l1_send_to {
                assert_eq!(plans[next as usize].l1_recv_from, Some(at));
                at = next;
                visited += 1;
            }
            assert_eq!(at, n - 1);
            assert_eq!(visited, n);
            // Lap 2 reaches every rank except n-1 (which computed the total).
            let mut at = n - 1;
            let mut reached = 0;
            while let Some(next) = plans[at as usize].l2_send_to {
                assert_eq!(plans[next as usize].l2_recv_from, Some(at));
                at = next;
                reached += 1;
                assert!(reached <= n, "lap 2 loops");
            }
            assert_eq!(reached, n - 1, "n={n}");
        }
    }
}
