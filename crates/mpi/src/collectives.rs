//! Collective communication schedules.
//!
//! Pure rank arithmetic — who talks to whom in which round — kept separate
//! from the execution machinery so the algorithms are unit-testable:
//!
//! * **dissemination barrier**: ⌈log₂ n⌉ rounds; in round *k* every rank
//!   sends to `(r + 2^k) mod n` and waits for `(r − 2^k) mod n`,
//! * **binomial-tree broadcast**: rank `vr = (r − root) mod n` receives in
//!   round ⌊log₂ vr⌋ from `vr − 2^k`, then relays to `vr + 2^j` in later
//!   rounds.

/// Number of rounds for an n-rank dissemination or binomial pattern.
pub fn rounds(n: u32) -> u32 {
    assert!(n >= 1, "collectives need at least one rank");
    32 - (n - 1).leading_zeros()
}

/// One round of the dissemination barrier: `(send_to, recv_from)`.
pub fn barrier_round(rank: u32, n: u32, round: u32) -> (u32, u32) {
    assert!(rank < n);
    let k = 1u32 << round;
    ((rank + k) % n, (rank + n - k % n) % n)
}

/// The barrier's full schedule for `rank`.
pub fn barrier_schedule(rank: u32, n: u32) -> Vec<(u32, u32)> {
    (0..rounds(n)).map(|r| barrier_round(rank, n, r)).collect()
}

/// A broadcast participant's schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BroadcastPlan {
    /// Where the data comes from (`None` at the root).
    pub recv_from: Option<u32>,
    /// Ranks to relay to, in round order.
    pub send_to: Vec<u32>,
}

/// Computes the binomial-tree plan for `rank` with the given `root`.
pub fn broadcast_plan(rank: u32, root: u32, n: u32) -> BroadcastPlan {
    assert!(rank < n && root < n);
    let vr = (rank + n - root) % n;
    let (recv_from, first_send_round) = if vr == 0 {
        (None, 0)
    } else {
        let k = 31 - vr.leading_zeros(); // highest set bit: receiving round
        let from_vr = vr - (1 << k);
        (Some((from_vr + root) % n), k + 1)
    };
    let mut send_to = Vec::new();
    for j in first_send_round..rounds(n) {
        let to_vr = vr + (1 << j);
        if to_vr < n {
            send_to.push((to_vr + root) % n);
        }
    }
    BroadcastPlan { recv_from, send_to }
}

/// A ring all-reduce participant's lap-1/lap-2 roles.
///
/// Lap 1 accumulates around the ring `0 → 1 → … → n−1`; rank `n−1` then
/// holds the total and starts lap 2, `n−1 → 0 → 1 → … → n−2`, distributing
/// it (rank `n−2` is the last receiver that must forward nothing new to
/// `n−1`, which already has the total).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RingPlan {
    /// Lap 1: who we accumulate from (`None` at rank 0, which starts).
    pub l1_recv_from: Option<u32>,
    /// Lap 1: who we pass the running sum to (`None` at rank n−1, which
    /// completes the total).
    pub l1_send_to: Option<u32>,
    /// Lap 2: who we get the total from (`None` at rank n−1).
    pub l2_recv_from: Option<u32>,
    /// Lap 2: who we forward the total to (`None` at rank n−2, the last
    /// receiver before the loop would close).
    pub l2_send_to: Option<u32>,
}

/// Computes the ring plan for `rank` of `n`.
pub fn ring_plan(rank: u32, n: u32) -> RingPlan {
    assert!(rank < n);
    if n == 1 {
        return RingPlan {
            l1_recv_from: None,
            l1_send_to: None,
            l2_recv_from: None,
            l2_send_to: None,
        };
    }
    let last = n - 1;
    RingPlan {
        l1_recv_from: (rank > 0).then(|| rank - 1),
        l1_send_to: (rank < last).then(|| rank + 1),
        l2_recv_from: (rank != last).then(|| (rank + n - 1) % n),
        l2_send_to: (rank == last || rank + 1 != last).then(|| (rank + 1) % n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn rounds_is_ceil_log2() {
        assert_eq!(rounds(1), 0);
        assert_eq!(rounds(2), 1);
        assert_eq!(rounds(3), 2);
        assert_eq!(rounds(4), 2);
        assert_eq!(rounds(5), 3);
        assert_eq!(rounds(8), 3);
        assert_eq!(rounds(9), 4);
    }

    #[test]
    fn barrier_partners_are_symmetric() {
        // If rank a sends to b in round k, then b expects a in round k.
        for n in 2..10u32 {
            for k in 0..rounds(n) {
                for a in 0..n {
                    let (to, _) = barrier_round(a, n, k);
                    let (_, from) = barrier_round(to, n, k);
                    assert_eq!(from, a, "n={n} k={k} a={a}");
                }
            }
        }
    }

    #[test]
    fn broadcast_covers_all_ranks_exactly_once() {
        for n in 1..17u32 {
            for root in 0..n {
                let mut received: HashSet<u32> = HashSet::new();
                received.insert(root);
                let mut senders = 0;
                for r in 0..n {
                    let plan = broadcast_plan(r, root, n);
                    if r == root {
                        assert!(plan.recv_from.is_none());
                    } else {
                        assert!(plan.recv_from.is_some());
                        assert!(received.insert(r) || !received.contains(&r));
                    }
                    senders += plan.send_to.len();
                }
                // Every non-root rank is someone's send target exactly once.
                let mut targets: Vec<u32> = (0..n)
                    .flat_map(|r| broadcast_plan(r, root, n).send_to)
                    .collect();
                targets.sort_unstable();
                let mut expect: Vec<u32> = (0..n).filter(|&r| r != root).collect();
                expect.sort_unstable();
                assert_eq!(targets, expect, "n={n} root={root}");
                assert_eq!(senders as u32, n - 1);
            }
        }
    }

    #[test]
    fn broadcast_receive_precedes_sends() {
        // A rank's receiving round is strictly before its sending rounds.
        for n in 2..17u32 {
            for r in 1..n {
                let plan = broadcast_plan(r, 0, n);
                let k = 31 - r.leading_zeros();
                for (i, &to) in plan.send_to.iter().enumerate() {
                    let to_vr = to; // root 0: vr == rank
                    assert_eq!(to_vr, r + (1 << (k + 1 + i as u32)));
                }
            }
        }
    }

    #[test]
    fn ring_plan_chains_completely() {
        for n in 1..9u32 {
            let plans: Vec<RingPlan> = (0..n).map(|r| ring_plan(r, n)).collect();
            if n == 1 {
                assert_eq!(plans[0].l1_send_to, None);
                continue;
            }
            // Lap 1 visits every rank once, 0 → n-1.
            let mut at = 0u32;
            let mut visited = 1;
            while let Some(next) = plans[at as usize].l1_send_to {
                assert_eq!(plans[next as usize].l1_recv_from, Some(at));
                at = next;
                visited += 1;
            }
            assert_eq!(at, n - 1);
            assert_eq!(visited, n);
            // Lap 2 reaches every rank except n-1 (which computed the total).
            let mut at = n - 1;
            let mut reached = 0;
            while let Some(next) = plans[at as usize].l2_send_to {
                assert_eq!(plans[next as usize].l2_recv_from, Some(at));
                at = next;
                reached += 1;
                assert!(reached <= n, "lap 2 loops");
            }
            assert_eq!(reached, n - 1, "n={n}");
        }
    }
}
