//! Job harness: builds a world, places ranks (and hot spares) on it,
//! spawns their runtimes, and — when failure semantics are enabled —
//! runs the *controller*: the management-plane agent that turns ripened
//! suspicions into membership changes and spare respawns.
//!
//! The controller models the piece of an MPI launcher (`mpirun`, a PMIx
//! server) that lives on the host CPUs: it survives NIC deaths by
//! construction, which is why membership and the checkpoint replica
//! directory live behind it rather than on any rank's interface.

use std::cell::RefCell;
use std::rc::Rc;

use ftgm_gm::{World, WorldConfig};
use ftgm_net::NodeId;
use ftgm_sim::{SimDuration, SimTime};

use crate::recovery::{apply_rank_restart, plan_rank_restart, RankSpec, RestartPlan};
use crate::runner::{spawn_rank, HarnessState, MpiShared, RankProgram, RecoveryConfig};

/// Program factory shared between initial spawn and spare respawn.
type Factory = Rc<dyn Fn(u32) -> Box<dyn RankProgram>>;

/// Builds and runs an MPI job over a GM world.
pub struct MpiHarness {
    /// The simulated network the job runs on.
    pub world: World,
    /// Management-plane state shared by ranks and controller.
    pub shared: Rc<MpiShared>,
    /// Aggregate observation point (finish times, error counters).
    pub state: Rc<RefCell<HarnessState>>,
    ranks: Vec<RankSpec>,
    factory: Rc<RefCell<Option<Factory>>>,
    buf_size: Rc<RefCell<u32>>,
}

impl MpiHarness {
    fn from_world(world: World, ranks: Vec<RankSpec>, spares: Vec<RankSpec>) -> MpiHarness {
        MpiHarness {
            world,
            shared: MpiShared::new(ranks.clone(), spares),
            state: Rc::new(RefCell::new(HarnessState::default())),
            ranks,
            factory: Rc::new(RefCell::new(None)),
            buf_size: Rc::new(RefCell::new(4096)),
        }
    }

    /// `n` ranks, one per host, on a single switch. No spares.
    pub fn star(n: usize, config: WorldConfig) -> MpiHarness {
        let world = World::star(n, config);
        let ranks = (0..n)
            .map(|i| RankSpec { node: NodeId(i as u16), port: 1 })
            .collect();
        MpiHarness::from_world(world, ranks, Vec::new())
    }

    /// A two-level fat tree with `ranks_per_host` ranks per host (ports
    /// `1..=ranks_per_host`) and `spare_hosts` trailing hosts held out of
    /// the job as hot spares (one spare rank slot each, port 1).
    ///
    /// `256 ranks = fat_tree(4, 16, 16, 1, ..)`;
    /// `1024 ranks = fat_tree(8, 32, 16, 2, ..)`.
    pub fn fat_tree(
        spines: usize,
        leaves: usize,
        hosts_per_leaf: usize,
        ranks_per_host: usize,
        spare_hosts: usize,
        config: WorldConfig,
    ) -> MpiHarness {
        let world = World::fat_tree(spines, leaves, hosts_per_leaf, config);
        let hosts = leaves * hosts_per_leaf;
        assert!(
            spare_hosts < hosts,
            "spare hosts must leave at least one working host"
        );
        assert!(
            (1..=5).contains(&ranks_per_host),
            "ranks_per_host must be 1..=5 (ports 1..=5; 6/7 reserved)"
        );
        let job_hosts = hosts - spare_hosts;
        let mut ranks = Vec::new();
        for h in 0..job_hosts {
            for p in 0..ranks_per_host {
                ranks.push(RankSpec { node: NodeId(h as u16), port: (p + 1) as u8 });
            }
        }
        let spares = (job_hosts..hosts)
            .map(|h| RankSpec { node: NodeId(h as u16), port: 1 })
            .collect();
        MpiHarness::from_world(world, ranks, spares)
    }

    /// A `cols x rows` switch torus, one host per switch,
    /// `ranks_per_host` ranks each, with `spare_hosts` trailing hosts as
    /// hot spares.
    pub fn torus(
        cols: usize,
        rows: usize,
        ranks_per_host: usize,
        spare_hosts: usize,
        config: WorldConfig,
    ) -> MpiHarness {
        let world = World::torus(cols, rows, config);
        let hosts = cols * rows;
        assert!(spare_hosts < hosts, "spare hosts must leave a working host");
        assert!(
            (1..=5).contains(&ranks_per_host),
            "ranks_per_host must be 1..=5"
        );
        let job_hosts = hosts - spare_hosts;
        let mut ranks = Vec::new();
        for h in 0..job_hosts {
            for p in 0..ranks_per_host {
                ranks.push(RankSpec { node: NodeId(h as u16), port: (p + 1) as u8 });
            }
        }
        let spares = (job_hosts..hosts)
            .map(|h| RankSpec { node: NodeId(h as u16), port: 1 })
            .collect();
        MpiHarness::from_world(world, ranks, spares)
    }

    /// Number of ranks in the job (epoch-0 size; shrink reduces the live
    /// count but never this).
    pub fn nranks(&self) -> u32 {
        self.ranks.len() as u32
    }

    /// Installs failure semantics. Must be called before [`spawn_all`]
    /// (runtimes read the config at spawn to arm their poll alarms).
    ///
    /// [`spawn_all`]: MpiHarness::spawn_all
    pub fn enable_recovery(&mut self, cfg: RecoveryConfig) {
        *self.shared.recovery.borrow_mut() = Some(cfg);
    }

    /// Spawns every rank's runtime with programs from `factory`. With
    /// recovery enabled, also starts the controller tick; the factory is
    /// retained so a spare respawn can rebuild the dead rank's program.
    pub fn spawn_all<F>(&mut self, buf_size: u32, factory: F)
    where
        F: Fn(u32) -> Box<dyn RankProgram> + 'static,
    {
        let factory: Factory = Rc::new(factory);
        *self.factory.borrow_mut() = Some(Rc::clone(&factory));
        *self.buf_size.borrow_mut() = buf_size;
        for rank in 0..self.ranks.len() as u32 {
            spawn_rank(
                &mut self.world,
                rank,
                buf_size,
                factory(rank),
                Rc::clone(&self.shared),
                Rc::clone(&self.state),
                None,
            );
        }
        if let Some(cfg) = *self.shared.recovery.borrow() {
            let shared = Rc::clone(&self.shared);
            let state = Rc::clone(&self.state);
            let fac = Rc::clone(&self.factory);
            let buf = Rc::clone(&self.buf_size);
            self.world.schedule_call(cfg.controller, move |w| {
                controller_tick(w, cfg, shared, state, fac, buf);
            });
        }
    }

    /// `true` once every live rank's program has run to completion.
    pub fn all_done(&self) -> bool {
        let live = self.shared.membership.borrow().live_count() as usize;
        let state = self.state.borrow();
        let mut done: Vec<u32> = state
            .finished
            .iter()
            .map(|&(r, _)| r)
            .filter(|&r| self.shared.membership.borrow().is_alive(r))
            .collect();
        done.sort_unstable();
        done.dedup();
        done.len() >= live
    }

    /// Runs the world until every live rank finished or `limit` elapses;
    /// returns the completion time if the job finished. Sets the shared
    /// halt flag on exit so poll alarms and controller ticks go quiet.
    pub fn run_until_done(&mut self, limit: SimDuration) -> Option<SimTime> {
        let deadline = self.world.now().checked_add(limit).unwrap_or(SimTime::MAX);
        let step = SimDuration::from_ms(10);
        let mut at = None;
        while self.world.now() < deadline {
            self.world.run_for(step);
            if self.all_done() {
                at = Some(
                    self.state
                        .borrow()
                        .finished
                        .iter()
                        .map(|&(_, t)| t)
                        .max()
                        .unwrap_or(self.world.now()),
                );
                break;
            }
        }
        self.shared.halt.set(true);
        // A short drain lets in-flight protocol debris settle.
        self.world.run_for(SimDuration::from_ms(1));
        at
    }
}

/// One controller tick: declare ripe suspects dead, apply the restart
/// plan, detach the dead runtime, respawn onto a spare if the policy says
/// so, and re-arm.
fn controller_tick(
    world: &mut World,
    cfg: RecoveryConfig,
    shared: Rc<MpiShared>,
    state: Rc<RefCell<HarnessState>>,
    factory: Rc<RefCell<Option<Factory>>>,
    buf_size: Rc<RefCell<u32>>,
) {
    if shared.halt.get() {
        return;
    }
    let now = world.now();
    let ripe = shared.board.borrow().ripe(now, cfg.grace);
    for (rank, kind) in ripe {
        let (alive, old_spec) = {
            let m = shared.membership.borrow();
            (m.is_alive(rank), m.specs.get(rank as usize).copied())
        };
        if !alive {
            shared.board.borrow_mut().retire(rank);
            continue;
        }
        let plan = {
            let m = shared.membership.borrow();
            let r = shared.replicas.borrow();
            plan_rank_restart(cfg.policy, rank, kind, now, &m, &r)
        };
        apply_rank_restart(&plan, &mut shared.membership.borrow_mut());
        if let Some(spec) = old_spec {
            world.detach_app(spec.node, spec.port);
        }
        if let RestartPlan::SpareRespawn { replica, .. } = &plan {
            let program = factory.borrow().as_ref().map(|f| f(rank));
            if let Some(program) = program {
                let restore = (!replica.state.is_empty()).then(|| replica.state.clone());
                spawn_rank(
                    world,
                    rank,
                    *buf_size.borrow(),
                    program,
                    Rc::clone(&shared),
                    Rc::clone(&state),
                    restore,
                );
                state.borrow_mut().respawns += 1;
            }
        }
        shared.board.borrow_mut().retire(rank);
    }
    let fac = factory;
    world.schedule_call(cfg.controller, move |w| {
        controller_tick(w, cfg, shared, state, fac, buf_size);
    });
}
