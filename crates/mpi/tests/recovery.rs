//! The fault-tolerant application tier end to end: typed faults instead
//! of hangs, shrink and spare-node restarts, and replica-backed RMA.

use std::cell::RefCell;
use std::rc::Rc;

use ftgm_core::FtSystem;
use ftgm_gm::WorldConfig;
use ftgm_mpi::{
    FaultKind, MpiHarness, Op, OpResult, RankProgram, RecoveryConfig, RestartPolicy,
};
use ftgm_net::NodeId;
use ftgm_sim::SimDuration;

/// A scripted program that records every result.
struct Script {
    ops: Vec<Op>,
    at: usize,
    results: Rc<RefCell<Vec<(u32, OpResult)>>>,
}

impl RankProgram for Script {
    fn next_op(&mut self, rank: u32, _n: u32, last: Option<OpResult>) -> Option<Op> {
        if let Some(r) = last {
            self.results.borrow_mut().push((rank, r));
        }
        let op = self.ops.get(self.at).cloned();
        self.at += 1;
        op
    }
}

#[test]
fn recursive_doubling_matches_ring_allreduce() {
    for n in [4usize, 6, 16] {
        let results = Rc::new(RefCell::new(Vec::new()));
        let mut h = MpiHarness::fat_tree(2, 4, 4, 1, 16 - n, WorldConfig::ftgm());
        assert_eq!(h.nranks(), n as u32);
        let r2 = Rc::clone(&results);
        h.spawn_all(4096, move |rank| {
            Box::new(Script {
                ops: vec![
                    Op::AllReduceSum { values: vec![rank as u64 + 1, 10 * (rank as u64 + 1)] },
                    Op::AllReduceSumRd { values: vec![rank as u64 + 1, 10 * (rank as u64 + 1)] },
                ],
                at: 0,
                results: Rc::clone(&r2),
            })
        });
        h.world.run_for(SimDuration::from_ms(200));
        assert!(h.all_done(), "n={n}: {:?}", h.state.borrow());
        let expect: u64 = (1..=n as u64).sum();
        let results = results.borrow();
        assert_eq!(results.len(), 2 * n);
        for (rank, r) in results.iter() {
            let OpResult::AllReduceSum { values } = r else {
                panic!("rank {rank}: unexpected {r:?}");
            };
            assert_eq!(values[..], [expect, 10 * expect], "rank {rank}");
        }
    }
}

#[test]
fn halo_exchange_delivers_neighbor_faces() {
    // 4x4 torus of ranks; each sends its rank id stamped per direction.
    let results = Rc::new(RefCell::new(Vec::new()));
    let mut h = MpiHarness::torus(4, 4, 1, 0, WorldConfig::ftgm());
    assert_eq!(h.nranks(), 16);
    let r2 = Rc::clone(&results);
    h.spawn_all(4096, move |rank| {
        let face = |d: u8| vec![rank as u8, d, 0xEE];
        Box::new(Script {
            ops: vec![Op::HaloExchange {
                sends: [face(0), face(1), face(2), face(3)],
            }],
            at: 0,
            results: Rc::clone(&r2),
        })
    });
    h.world.run_for(SimDuration::from_ms(200));
    assert!(h.all_done(), "{:?}", h.state.borrow());
    let results = results.borrow();
    assert_eq!(results.len(), 16);
    // grid_dims(16) = (4, 4): up neighbor of rank r sends its "down" face.
    for (rank, r) in results.iter() {
        let OpResult::HaloDone { recv } = r else {
            panic!("rank {rank}: unexpected {r:?}");
        };
        let (col, row) = (rank % 4, rank / 4);
        let up = (col + (row + 3) % 4 * 4) as u8;
        let down = (col + (row + 1) % 4 * 4) as u8;
        let left = ((col + 3) % 4 + row * 4) as u8;
        let right = ((col + 1) % 4 + row * 4) as u8;
        // The face received from direction d was sent by that neighbor in
        // the opposite direction (d ^ 1).
        assert_eq!(recv[0][..2], [up, 1], "rank {rank} up");
        assert_eq!(recv[1][..2], [down, 0], "rank {rank} down");
        assert_eq!(recv[2][..2], [left, 3], "rank {rank} left");
        assert_eq!(recv[3][..2], [right, 2], "rank {rank} right");
    }
}

/// An iterative reducer that keeps going across faults: on a fault it
/// simply re-issues its reduction (shrink re-plans over the survivors).
struct Persistent {
    iters: u32,
    done_iters: u32,
    results: Rc<RefCell<Vec<(u32, Vec<u64>)>>>,
    faults: Rc<RefCell<Vec<(u32, FaultKind)>>>,
}

impl RankProgram for Persistent {
    fn next_op(&mut self, rank: u32, _n: u32, last: Option<OpResult>) -> Option<Op> {
        match last {
            Some(OpResult::AllReduceSum { values }) => {
                self.results.borrow_mut().push((rank, values));
                self.done_iters += 1;
            }
            Some(OpResult::Fault(f)) => {
                self.faults.borrow_mut().push((rank, f.kind));
                // Shrink contract: survivors may be spread across two
                // adjacent collectives when the epoch turns, so a fault
                // is a phase boundary — restart the phase to re-align.
                self.done_iters = 0;
            }
            Some(other) => panic!("rank {rank}: unexpected {other:?}"),
            None => {}
        }
        (self.done_iters < self.iters).then(|| Op::AllReduceSum { values: vec![1] })
    }
}

#[test]
fn shrink_replans_collectives_over_survivors() {
    let results = Rc::new(RefCell::new(Vec::new()));
    let faults = Rc::new(RefCell::new(Vec::new()));
    let mut h = MpiHarness::star(8, WorldConfig::ftgm());
    let ft = FtSystem::install(&mut h.world);
    h.enable_recovery(RecoveryConfig::with_policy(RestartPolicy::Shrink));
    let (r2, f2) = (Rc::clone(&results), Rc::clone(&faults));
    h.spawn_all(4096, move |_rank| {
        Box::new(Persistent {
            iters: 40,
            done_iters: 0,
            results: Rc::clone(&r2),
            faults: Rc::clone(&f2),
        })
    });
    // Let a few iterations land, then kill rank 5's interface for good.
    h.world.run_for(SimDuration::from_ms(2));
    ft.escalate_isolated(&mut h.world, NodeId(5));
    let done = h.run_until_done(SimDuration::from_secs(20));
    assert!(done.is_some(), "survivors finish: {:?}", h.state.borrow());
    assert_eq!(h.state.borrow().fatal_errors, 0);
    // Early iterations reduced over 8 ranks, later ones over 7.
    let results = results.borrow();
    let mut sums: Vec<u64> = results.iter().map(|(_, v)| v[0]).collect();
    sums.sort_unstable();
    sums.dedup();
    assert_eq!(sums, vec![7, 8], "reductions re-planned over survivors");
    assert!(
        !faults.borrow().is_empty(),
        "survivors saw a typed fault, not a hang"
    );
}

#[test]
fn notify_policy_surfaces_fault_and_stops() {
    // Under Notify the job is told and decides; our program stops at the
    // first fault.
    struct StopOnFault {
        issued: u32,
    }
    impl RankProgram for StopOnFault {
        fn next_op(&mut self, _rank: u32, _n: u32, last: Option<OpResult>) -> Option<Op> {
            if matches!(last, Some(OpResult::Fault(_))) {
                return None;
            }
            self.issued += 1;
            (self.issued < 1000).then(|| Op::Barrier)
        }
    }
    let mut h = MpiHarness::star(6, WorldConfig::ftgm());
    let ft = FtSystem::install(&mut h.world);
    h.enable_recovery(RecoveryConfig::with_policy(RestartPolicy::Notify));
    h.spawn_all(4096, |_rank| Box::new(StopOnFault { issued: 0 }));
    h.world.run_for(SimDuration::from_ms(2));
    ft.escalate_isolated(&mut h.world, NodeId(2));
    let done = h.run_until_done(SimDuration::from_secs(20));
    assert!(done.is_some(), "{:?}", h.state.borrow());
    assert!(h.state.borrow().faults_delivered >= 5, "{:?}", h.state.borrow());
    assert_eq!(h.state.borrow().fatal_errors, 0);
}

/// Checkpointed iterative reducer for the spare-restart test: each
/// iteration reduces, then checkpoints the iteration counter and the
/// accumulated total.
struct Ckpt {
    iters: u32,
    iter: u32,
    total: u64,
    phase: u8, // 0 = reduce next, 1 = checkpoint next
    finals: Rc<RefCell<Vec<(u32, u64)>>>,
}

impl Ckpt {
    fn encode(&self) -> Vec<u8> {
        let mut s = self.iter.to_le_bytes().to_vec();
        s.extend_from_slice(&self.total.to_le_bytes());
        s
    }
}

impl RankProgram for Ckpt {
    fn next_op(&mut self, rank: u32, _n: u32, last: Option<OpResult>) -> Option<Op> {
        match last {
            Some(OpResult::AllReduceSum { values }) => {
                self.total = self.total.wrapping_add(values[0]);
                self.iter += 1;
                self.phase = 1;
            }
            Some(OpResult::CheckpointDone { .. }) => self.phase = 0,
            Some(OpResult::Fault(f)) => panic!("rank {rank}: unexpected fault {f:?}"),
            _ => {}
        }
        if self.phase == 1 {
            return Some(Op::Checkpoint { state: self.encode() });
        }
        if self.iter < self.iters {
            return Some(Op::AllReduceSum { values: vec![u64::from(self.iter) + 1] });
        }
        self.finals.borrow_mut().push((rank, self.total));
        None
    }

    fn on_restore(&mut self, state: &[u8]) {
        if state.len() >= 12 {
            self.iter = u32::from_le_bytes(state[..4].try_into().unwrap());
            self.total = u64::from_le_bytes(state[4..12].try_into().unwrap());
        }
        // Re-issue the checkpoint we restored from: replay restarts at
        // the checkpoint instance on every rank.
        self.phase = 1;
    }
}

fn run_spare_job(kill: Option<NodeId>) -> (Vec<(u32, u64)>, u64, u64) {
    let finals = Rc::new(RefCell::new(Vec::new()));
    // 16 hosts; 2 held out as spares -> 14 ranks.
    let mut h = MpiHarness::fat_tree(2, 4, 4, 1, 2, WorldConfig::ftgm());
    let ft = FtSystem::install(&mut h.world);
    h.enable_recovery(RecoveryConfig::with_policy(RestartPolicy::Spare));
    let f2 = Rc::clone(&finals);
    h.spawn_all(4096, move |_rank| {
        Box::new(Ckpt {
            iters: 12,
            iter: 0,
            total: 0,
            phase: 0,
            finals: Rc::clone(&f2),
        })
    });
    if let Some(node) = kill {
        h.world.run_for(SimDuration::from_ms(3));
        ft.escalate_isolated(&mut h.world, node);
    }
    let done = h.run_until_done(SimDuration::from_secs(30));
    assert!(done.is_some(), "job finished: {:?}", h.state.borrow());
    let state = h.state.borrow();
    let mut out = finals.borrow().clone();
    out.sort_unstable();
    (out, state.respawns, state.fatal_errors)
}

#[test]
fn spare_restart_resumes_from_checkpoint_with_identical_results() {
    let (clean, respawns0, fatals0) = run_spare_job(None);
    assert_eq!(respawns0, 0);
    assert_eq!(fatals0, 0);
    assert_eq!(clean.len(), 14);

    let (faulted, respawns, fatals) = run_spare_job(Some(NodeId(6)));
    assert_eq!(respawns, 1, "rank 6 respawned on a spare host");
    assert_eq!(fatals, 0);
    assert_eq!(
        faulted, clean,
        "every rank's total is byte-identical to the fault-free run"
    );
}

// ---------------------------------------------------------------------------
// One-sided (RMA) operations.
// ---------------------------------------------------------------------------

#[test]
fn rma_put_accumulate_get_flush_roundtrip() {
    let results = Rc::new(RefCell::new(Vec::new()));
    let mut h = MpiHarness::star(4, WorldConfig::ftgm());
    let r2 = Rc::clone(&results);
    h.spawn_all(4096, move |rank| {
        // Rank 1 owns window 7. Rank 0 puts bytes, ranks 2 and 3 each
        // accumulate into slot 4; after a flush + barrier, rank 3 reads
        // the whole window back.
        let mut ops = vec![];
        if rank == 1 {
            ops.push(Op::WinCreate { win: 7 });
        }
        ops.push(Op::Barrier);
        match rank {
            0 => ops.push(Op::Put { owner: 1, win: 7, offset: 0, data: vec![0xA; 8] }),
            2 | 3 => {
                ops.push(Op::Accumulate { owner: 1, win: 7, offset: 32, values: vec![rank as u64] })
            }
            _ => {}
        }
        ops.push(Op::Flush);
        ops.push(Op::Barrier);
        if rank == 3 {
            ops.push(Op::Get { owner: 1, win: 7, offset: 0, len: 40 });
        }
        Box::new(Script { ops, at: 0, results: Rc::clone(&r2) })
    });
    h.world.run_for(SimDuration::from_ms(100));
    assert!(h.all_done(), "{:?}", h.state.borrow());
    let results = results.borrow();
    let got = results
        .iter()
        .find_map(|(rank, r)| match (rank, r) {
            (3, OpResult::GetDone { data }) => Some(data.clone()),
            _ => None,
        })
        .expect("rank 3 read the window");
    assert_eq!(got[..8], [0xA; 8], "put landed");
    assert_eq!(
        u64::from_le_bytes(got[32..40].try_into().unwrap()),
        2 + 3,
        "both accumulates landed exactly once"
    );
}

#[test]
fn rma_get_survives_owner_death_via_replica() {
    // Rank 1 owns the window; rank 2 (its replica holder: (1+1)%6) keeps
    // the backing copy. After rank 1's interface dies mid-epoch, rank
    // 0's Get is re-targeted to the replica without the program doing
    // anything.
    let results = Rc::new(RefCell::new(Vec::new()));
    let mut h = MpiHarness::star(6, WorldConfig::ftgm());
    let ft = FtSystem::install(&mut h.world);
    let mut cfg = RecoveryConfig::with_policy(RestartPolicy::Notify);
    cfg.op_timeout = SimDuration::from_ms(400);
    h.enable_recovery(cfg);
    let r2 = Rc::clone(&results);
    h.spawn_all(4096, move |rank| {
        let mut ops = vec![];
        if rank == 1 {
            ops.push(Op::WinCreate { win: 3 });
        }
        ops.push(Op::Barrier);
        if rank == 0 {
            ops.push(Op::Put { owner: 1, win: 3, offset: 0, data: vec![0x5A; 16] });
            ops.push(Op::Flush);
        }
        ops.push(Op::Barrier);
        if rank == 0 {
            // The owner dies between this barrier and the get; the
            // replica on rank 2 answers.
            ops.push(Op::Get { owner: 1, win: 3, offset: 0, len: 16 });
        }
        Box::new(Script { ops, at: 0, results: Rc::clone(&r2) })
    });
    h.world.run_for(SimDuration::from_ms(5));
    ft.escalate_isolated(&mut h.world, NodeId(1));
    let done = h.run_until_done(SimDuration::from_secs(20));
    assert!(done.is_some(), "{:?}", h.state.borrow());
    assert_eq!(h.state.borrow().fatal_errors, 0);
    let results = results.borrow();
    let got = results
        .iter()
        .find_map(|(rank, r)| match (rank, r) {
            (0, OpResult::GetDone { data }) => Some(data.clone()),
            _ => None,
        })
        .expect("rank 0's get completed");
    assert_eq!(got, vec![0x5A; 16], "replica served the put data");
}
