//! A 1-D Jacobi stencil with halo exchange — the other canonical MPI
//! pattern, driving the point-to-point path hard, with and without an
//! interface failure.

use ftgm_core::FtSystem;
use ftgm_gm::WorldConfig;
use ftgm_mpi::{MpiHarness, Op, OpResult, RankProgram};
use ftgm_net::NodeId;
use ftgm_sim::SimDuration;

const CELLS: usize = 64; // interior cells per rank
const ITERS: u32 = 12;
const TAG_LEFT: u64 = 1; // halo moving left (to rank-1)
const TAG_RIGHT: u64 = 2; // halo moving right (to rank+1)

/// One rank of a 1-D heat diffusion: exchange boundary cells with both
/// neighbors each iteration, then relax.
struct Stencil {
    cells: Vec<f64>,
    left_halo: f64,
    right_halo: f64,
    iter: u32,
    phase: u8,
    done_sum: Option<f64>,
}

impl Stencil {
    fn new(rank: u32, n: u32) -> Stencil {
        // Heat source at the left edge of rank 0.
        let mut cells = vec![0.0; CELLS];
        if rank == 0 {
            cells[0] = 1000.0;
        }
        let _ = n;
        Stencil {
            cells,
            left_halo: 0.0,
            right_halo: 0.0,
            iter: 0,
            phase: 0,
            done_sum: None,
        }
    }

    fn relax(&mut self) {
        let mut next = self.cells.clone();
        for i in 0..CELLS {
            let l = if i == 0 { self.left_halo } else { self.cells[i - 1] };
            let r = if i == CELLS - 1 {
                self.right_halo
            } else {
                self.cells[i + 1]
            };
            next[i] = (l + r + 2.0 * self.cells[i]) / 4.0;
        }
        // Pin the global boundary condition.
        self.cells = next;
    }
}

impl RankProgram for Stencil {
    fn next_op(&mut self, rank: u32, n: u32, last: Option<OpResult>) -> Option<Op> {
        let leftmost = rank == 0;
        let rightmost = rank == n - 1;
        // Consume halo data from the previous phase.
        if let Some(OpResult::Received { data, .. }) = &last {
            let v = f64::from_le_bytes(data[..8].try_into().expect("8 bytes"));
            match self.phase {
                // Phase 1's receive (consumed entering phase 2) came from
                // the LEFT neighbor: it is our left halo. Phase 3's
                // (consumed entering phase 4) is our right halo.
                2 => self.left_halo = v,
                4 => self.right_halo = v,
                _ => {}
            }
        }
        if let Some(OpResult::AllReduceSum { values }) = &last {
            self.done_sum = Some(values[0] as f64);
            return None;
        }
        loop {
            match self.phase {
                // Phase 0: send my right edge to the right neighbor.
                0 => {
                    self.phase = 1;
                    if !rightmost {
                        let v = self.cells[CELLS - 1].to_le_bytes().to_vec();
                        return Some(Op::Send { to: rank + 1, tag: TAG_RIGHT, data: v });
                    }
                }
                // Phase 1: receive my left halo (from the left neighbor).
                1 => {
                    self.phase = 2;
                    if !leftmost {
                        return Some(Op::Recv { from: Some(rank - 1), tag: TAG_RIGHT });
                    }
                }
                // Phase 2: halo stashed above; send my left edge left.
                2 => {
                    self.phase = 3;
                    if !leftmost {
                        let v = self.cells[0].to_le_bytes().to_vec();
                        return Some(Op::Send { to: rank - 1, tag: TAG_LEFT, data: v });
                    }
                }
                // Phase 3: receive my right halo (from the right neighbor).
                3 => {
                    self.phase = 4;
                    if !rightmost {
                        return Some(Op::Recv { from: Some(rank + 1), tag: TAG_LEFT });
                    }
                }
                // Phase 4: relax; loop or finish with a checksum reduce.
                4 => {
                    self.relax();
                    self.iter += 1;
                    self.phase = 0;
                    if self.iter == ITERS {
                        let sum: f64 = self.cells.iter().sum();
                        return Some(Op::AllReduceSum {
                            values: vec![(sum * 1e6) as u64],
                        });
                    }
                }
                _ => unreachable!(),
            }
        }
    }
}

fn run_stencil(n: u32, hang: Option<(NodeId, u64)>) -> (bool, Vec<f64>, u64) {
    let config = WorldConfig::ftgm();
    let mut h = MpiHarness::star(n as usize, config);
    let ft = hang.map(|_| FtSystem::install(&mut h.world));
    h.spawn_all(4096, move |rank| Box::new(Stencil::new(rank, n)));
    if let Some((node, at_us)) = hang {
        h.world.run_for(SimDuration::from_us(at_us));
        ft.as_ref().unwrap().inject_forced_hang(&mut h.world, node);
    }
    h.world.run_for(SimDuration::from_secs(4));
    let done = h.all_done();
    let errors = h.state.borrow().fatal_errors;
    (done, Vec::new(), errors)
}

#[test]
fn stencil_completes_cleanly() {
    let (done, _, errors) = run_stencil(5, None);
    assert!(done);
    assert_eq!(errors, 0);
}

#[test]
fn stencil_rides_out_a_mid_iteration_hang() {
    let (done, _, errors) = run_stencil(5, Some((NodeId(2), 60)));
    assert!(done, "stencil finished across the recovery");
    assert_eq!(errors, 0);
}

#[test]
fn stencil_result_is_identical_with_and_without_failure() {
    // Determinism + transparency: the numerical result must not depend on
    // whether a NIC died and recovered mid-run. We compare the final
    // all-reduced checksums via the harness state (both runs reduce the
    // same sum if delivery was exactly-once).
    struct SumCatcher {
        inner: Stencil,
        sums: std::rc::Rc<std::cell::RefCell<Vec<u64>>>,
    }
    impl RankProgram for SumCatcher {
        fn next_op(&mut self, rank: u32, n: u32, last: Option<OpResult>) -> Option<Op> {
            if let Some(OpResult::AllReduceSum { values }) = &last {
                self.sums.borrow_mut().push(values[0]);
            }
            self.inner.next_op(rank, n, last)
        }
    }
    let run = |hang: bool| -> Vec<u64> {
        let sums = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut h = MpiHarness::star(4, WorldConfig::ftgm());
        let ft = FtSystem::install(&mut h.world);
        let s2 = sums.clone();
        h.spawn_all(4096, move |rank| {
            Box::new(SumCatcher {
                inner: Stencil::new(rank, 4),
                sums: s2.clone(),
            })
        });
        if hang {
            h.world.run_for(SimDuration::from_us(55));
            ft.inject_forced_hang(&mut h.world, NodeId(1));
        }
        h.world.run_for(SimDuration::from_secs(4));
        assert!(h.all_done());
        let mut v = sums.borrow().clone();
        v.sort_unstable();
        v
    };
    assert_eq!(run(false), run(true), "bit-identical results across a failure");
}
