//! The middleware in action: point-to-point, collectives, and — the
//! paper's motivating scenario — an MPI job riding out a network-processor
//! hang without aborting.

use ftgm_core::FtSystem;
use ftgm_gm::WorldConfig;
use ftgm_mpi::{MpiHarness, Op, OpResult, RankProgram};
use ftgm_net::NodeId;
use ftgm_sim::SimDuration;

/// A program from a plain list of ops (SPMD-style).
struct Script {
    ops: Vec<Op>,
    at: usize,
    results: Vec<OpResult>,
}

impl Script {
    fn new(ops: Vec<Op>) -> Script {
        Script {
            ops,
            at: 0,
            results: Vec::new(),
        }
    }
}

impl RankProgram for Script {
    fn next_op(&mut self, _rank: u32, _n: u32, last: Option<OpResult>) -> Option<Op> {
        if let Some(r) = last {
            self.results.push(r);
        }
        let op = self.ops.get(self.at).cloned();
        self.at += 1;
        op
    }
}

#[test]
fn point_to_point_ring_passes_a_token() {
    let mut h = MpiHarness::star(4, WorldConfig::gm());
    h.spawn_all(4096, |rank| {
        let n = 4u32;
        let ops = if rank == 0 {
            vec![
                Op::Send { to: 1, tag: 9, data: vec![1] },
                Op::Recv { from: Some(n - 1), tag: 9 },
            ]
        } else {
            vec![
                Op::Recv { from: Some(rank - 1), tag: 9 },
                Op::Send { to: (rank + 1) % n, tag: 9, data: vec![(rank + 1) as u8] },
            ]
        };
        Box::new(Script::new(ops))
    });
    h.world.run_for(SimDuration::from_ms(50));
    assert!(h.all_done(), "{:?}", h.state.borrow());
    assert_eq!(h.state.borrow().fatal_errors, 0);
}

#[test]
fn barrier_holds_everyone_until_the_last_arrives() {
    // Rank 3 enters the barrier late (it first waits for a message that
    // rank 0 sends late); nobody may leave before it entered.
    let mut h = MpiHarness::star(4, WorldConfig::ftgm());
    h.spawn_all(80_000, |rank| {
        let ops = match rank {
            0 => vec![
                // A large transfer delays rank 3's barrier entry.
                Op::Send { to: 3, tag: 1, data: vec![0; 60_000] },
                Op::Barrier,
            ],
            3 => vec![Op::Recv { from: Some(0), tag: 1 }, Op::Barrier],
            _ => vec![Op::Barrier],
        };
        Box::new(Script::new(ops))
    });
    h.world.run_for(SimDuration::from_ms(100));
    assert!(h.all_done());
    let state = h.state.borrow();
    // All ranks finish after rank 3 could have entered (the 60 KB message
    // takes ~650us to move), proving the barrier actually synchronized.
    let min_finish = state.finished.iter().map(|(_, t)| *t).min().unwrap();
    assert!(
        min_finish.as_micros_f64() > 400.0,
        "a rank left the barrier early: {state:?}"
    );
}

#[test]
fn broadcast_from_every_root() {
    for root in 0..5u32 {
        let mut h = MpiHarness::star(5, WorldConfig::gm());
        let payload = vec![root as u8; 300];
        let expect = payload.clone();
        h.spawn_all(4096, move |rank| {
            let data = (rank == root).then(|| payload.clone());
            Box::new(Script::new(vec![Op::Broadcast { root, data }]))
        });
        h.world.run_for(SimDuration::from_ms(50));
        assert!(h.all_done(), "root {root}");
        let _ = expect;
    }
}

#[test]
fn allreduce_sums_across_ranks() {
    /// Checks its reduced vector and reports through panics.
    struct Reduce {
        rank: u32,
        issued: bool,
    }
    impl RankProgram for Reduce {
        fn next_op(&mut self, rank: u32, n: u32, last: Option<OpResult>) -> Option<Op> {
            if !self.issued {
                self.issued = true;
                let values: Vec<u64> = (0..16).map(|i| (rank as u64 + 1) * (i + 1)).collect();
                return Some(Op::AllReduceSum { values });
            }
            let Some(OpResult::AllReduceSum { values }) = last else {
                panic!("rank {rank}: expected allreduce result, got {last:?}");
            };
            let total_ranks: u64 = (1..=n as u64).sum();
            for (i, v) in values.iter().enumerate() {
                assert_eq!(*v, total_ranks * (i as u64 + 1), "rank {rank} elem {i}");
            }
            None
        }
    }
    for n in [2u32, 3, 5, 8] {
        let mut h = MpiHarness::star(n as usize, WorldConfig::ftgm());
        h.spawn_all(4096, |rank| Box::new(Reduce { rank, issued: false }));
        h.world.run_for(SimDuration::from_ms(100));
        assert!(h.all_done(), "n={n}: {:?}", h.state.borrow());
    }
}

#[test]
fn repeated_collectives_do_not_cross_talk() {
    // Three barriers + two broadcasts back-to-back: sequence numbers keep
    // the instances apart.
    let mut h = MpiHarness::star(4, WorldConfig::ftgm());
    h.spawn_all(4096, |rank| {
        let d0 = (rank == 0).then(|| vec![0xAA; 64]);
        let d2 = (rank == 2).then(|| vec![0xBB; 64]);
        Box::new(Script::new(vec![
            Op::Barrier,
            Op::Broadcast { root: 0, data: d0 },
            Op::Barrier,
            Op::Broadcast { root: 2, data: d2 },
            Op::Barrier,
        ]))
    });
    h.world.run_for(SimDuration::from_ms(100));
    assert!(h.all_done(), "{:?}", h.state.borrow());
    assert_eq!(h.state.borrow().fatal_errors, 0);
}

#[test]
fn mpi_job_survives_interface_hang_under_ftgm() {
    // The paper's motivation, end to end: an MPI job whose rank-2
    // interface hangs mid-collective. Under FTGM the job completes with
    // zero fatal errors.
    let mut config = WorldConfig::ftgm();
    config.trace = true;
    let mut h = MpiHarness::star(6, config);
    let ft = FtSystem::install(&mut h.world);
    h.spawn_all(8192, |rank| {
        let d = (rank == 1).then(|| vec![7; 2048]);
        Box::new(Script::new(vec![
            Op::Barrier,
            Op::AllReduceSum { values: vec![rank as u64; 64] },
            Op::Broadcast { root: 1, data: d },
            Op::Barrier,
            Op::AllReduceSum { values: vec![1; 64] },
        ]))
    });
    // Let the job get going, then hang rank 2's NIC.
    h.world.run_for(SimDuration::from_us(80));
    ft.inject_forced_hang(&mut h.world, NodeId(2));
    h.world.run_for(SimDuration::from_secs(4));
    assert_eq!(ft.recoveries(NodeId(2)), 1, "recovery ran");
    assert!(h.all_done(), "job completed: {:?}", h.state.borrow());
    assert_eq!(h.state.borrow().fatal_errors, 0, "MPI saw no fatal errors");
}

#[test]
fn mpi_job_dies_without_ftgm() {
    // The counterfactual: plain GM, same hang — the job never completes
    // and the middleware sees fatal send errors (MPI would abort).
    let mut config = WorldConfig::gm();
    config.mcp.retry_limit = 20;
    let mut h = MpiHarness::star(6, config);
    h.spawn_all(8192, |rank| {
        let d = (rank == 1).then(|| vec![7; 2048]);
        Box::new(Script::new(vec![
            Op::Barrier,
            Op::AllReduceSum { values: vec![rank as u64; 64] },
            Op::Broadcast { root: 1, data: d },
            Op::Barrier,
        ]))
    });
    h.world.run_for(SimDuration::from_us(80));
    h.world.nodes[2].mcp.force_hang();
    h.world.run_for(SimDuration::from_secs(4));
    assert!(!h.all_done(), "the job must hang without recovery");
    assert!(
        h.state.borrow().fatal_errors > 0,
        "GM surfaces fatal errors: {:?}",
        h.state.borrow()
    );
}
