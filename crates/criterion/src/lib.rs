//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! Offline builds cannot fetch the real `criterion`; this shim keeps
//! `crates/bench/benches/paper_benches.rs` compiling and producing useful
//! numbers. It implements `Criterion::bench_function`, benchmark groups,
//! `Bencher::{iter, iter_batched}`, `BatchSize`, and the
//! `criterion_group!`/`criterion_main!` macros. Reporting is a median
//! ns/iter line per benchmark — no statistics, plots, or baselines.

use std::time::Instant;

/// How much setup output to batch per timing measurement. The shim times
/// each batch individually, so the variants behave identically.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Bencher {
    samples: Vec<f64>,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            samples: Vec::new(),
        }
    }

    /// Times `routine` over several sample batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        std::hint::black_box(routine());
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..ITERS_PER_SAMPLE {
                std::hint::black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_nanos() as f64 / ITERS_PER_SAMPLE as f64);
        }
    }

    /// Times `routine` on fresh inputs from `setup` (setup excluded).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        for _ in 0..SAMPLES {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed().as_nanos() as f64);
        }
    }

    fn median_ns(&mut self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        self.samples[self.samples.len() / 2]
    }
}

const SAMPLES: usize = 10;
const ITERS_PER_SAMPLE: usize = 3;

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(name, b.median_ns());
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            prefix: name.to_string(),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(&format!("{}/{}", self.prefix, name), b.median_ns());
        self
    }

    pub fn finish(&mut self) {}
}

fn report(name: &str, median_ns: f64) {
    if median_ns >= 1_000_000.0 {
        println!("bench {name:<40} {:>12.3} ms/iter", median_ns / 1_000_000.0);
    } else {
        println!("bench {name:<40} {median_ns:>12.0} ns/iter");
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
