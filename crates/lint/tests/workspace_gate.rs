//! The tier-1 lint gate plus a CLI self-test.
//!
//! `workspace_has_no_new_findings` is the actual gate: it scans the real
//! checkout and fails the build if anyone introduces a rule violation.
//! `baseline_has_no_stale_entries` keeps the checked-in ledger honest in
//! the other direction. The `cli_*` tests drive the compiled binary
//! against a throwaway fake workspace to prove the end-to-end behavior
//! the acceptance criteria call for: non-zero exit on a violation, zero
//! after `--write-baseline`, and a JSON report that round-trips through
//! the baseline mechanism.

use std::path::PathBuf;
use std::process::Command;

use ftgm_lint::baseline::Baseline;
use ftgm_lint::{baseline_path, default_root, json, scan_workspace};

#[test]
fn workspace_has_no_new_findings() {
    let root = default_root();
    let findings = scan_workspace(&root).expect("workspace scan");
    let baseline = Baseline::load(&baseline_path(&root)).expect("baseline");
    let diff = baseline.diff(&findings);
    assert!(
        diff.new.is_empty(),
        "new lint findings (fix them or, for pre-existing debt, run \
         `cargo run -p ftgm-lint -- --write-baseline`):\n{}",
        diff.new
            .iter()
            .map(ftgm_lint::Finding::render)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn baseline_has_no_stale_entries() {
    let root = default_root();
    let findings = scan_workspace(&root).expect("workspace scan");
    let baseline = Baseline::load(&baseline_path(&root)).expect("baseline");
    let diff = baseline.diff(&findings);
    assert!(
        diff.stale.is_empty(),
        "stale baseline entries — the violations were fixed, so shrink the \
         ledger with `cargo run -p ftgm-lint -- --write-baseline`:\n{:#?}",
        diff.stale
    );
}

#[test]
fn baseline_file_is_canonically_formatted() {
    // `--write-baseline` must be idempotent: re-rendering the parsed
    // baseline reproduces the checked-in bytes exactly.
    let path = baseline_path(&default_root());
    let text = std::fs::read_to_string(&path).expect("baseline exists");
    let parsed = Baseline::parse(&text).expect("baseline parses");
    assert_eq!(
        parsed.render(),
        text,
        "baseline.json was hand-edited into a non-canonical form; \
         regenerate it with `cargo run -p ftgm-lint -- --write-baseline`"
    );
}

/// A throwaway fake workspace with one rule-governed file, torn down on
/// drop. Unique per test via the test name.
struct FakeTree {
    root: PathBuf,
}

impl FakeTree {
    fn new(tag: &str) -> FakeTree {
        let root = std::env::temp_dir().join(format!(
            "ftgm-lint-selftest-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("crates/core/src")).expect("mkdir");
        FakeTree { root }
    }

    fn write_recovery(&self, body: &str) {
        self.write("crates/core/src/recovery.rs", body);
    }

    fn write(&self, rel: &str, body: &str) {
        let path = self.root.join(rel);
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(path, body).expect("write fixture file");
    }

    fn baseline(&self) -> PathBuf {
        self.root.join("baseline.json")
    }

    fn run(&self, extra: &[&str]) -> std::process::Output {
        let baseline = self.baseline();
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_ftgm-lint"));
        cmd.arg("--root")
            .arg(&self.root)
            .arg("--baseline")
            .arg(&baseline)
            .args(extra);
        cmd.output().expect("run ftgm-lint binary")
    }
}

impl Drop for FakeTree {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

const VIOLATION: &str = "fn recover(x: Option<u8>) -> u8 { x.unwrap() }\n";
const CLEAN: &str = "fn recover(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n";

#[test]
fn cli_fails_on_fresh_violation_and_passes_when_fixed() {
    let tree = FakeTree::new("fresh");
    tree.write_recovery(VIOLATION);
    let out = tree.run(&[]);
    assert_eq!(out.status.code(), Some(1), "violation must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("crates/core/src/recovery.rs:1:") && stdout.contains("recovery-no-panic"),
        "report names file:line and rule:\n{stdout}"
    );

    tree.write_recovery(CLEAN);
    let out = tree.run(&[]);
    assert_eq!(out.status.code(), Some(0), "clean tree must exit 0");
}

#[test]
fn cli_baseline_round_trip() {
    let tree = FakeTree::new("roundtrip");
    tree.write_recovery(VIOLATION);

    // 1. Ungated: the violation fails the run.
    assert_eq!(tree.run(&["--deny-new"]).status.code(), Some(1));

    // 2. Accept it into the baseline...
    assert_eq!(tree.run(&["--write-baseline"]).status.code(), Some(0));
    assert!(tree.baseline().exists(), "--write-baseline creates the file");

    // 3. ...after which the same tree gates clean, and the JSON report
    //    shows the finding as baselined rather than new.
    let out = tree.run(&["--deny-new", "--json"]);
    assert_eq!(out.status.code(), Some(0), "baselined violation passes the gate");
    let report = json::parse(&String::from_utf8_lossy(&out.stdout)).expect("JSON report parses");
    assert_eq!(report.get("new_count").and_then(json::Value::as_u64), Some(0));
    assert_eq!(
        report.get("baselined_count").and_then(json::Value::as_u64),
        Some(1)
    );

    // 4. Fixing the violation strands the baseline entry; --deny-new
    //    notices the stale ledger, a plain run does not.
    tree.write_recovery(CLEAN);
    assert_eq!(tree.run(&[]).status.code(), Some(0));
    assert_eq!(tree.run(&["--deny-new"]).status.code(), Some(1));

    // 5. Regenerating empties the ledger and the gate closes again.
    assert_eq!(tree.run(&["--write-baseline"]).status.code(), Some(0));
    assert_eq!(tree.run(&["--deny-new"]).status.code(), Some(0));
    let rewritten = std::fs::read_to_string(tree.baseline()).expect("baseline");
    let parsed = Baseline::parse(&rewritten).expect("rewritten baseline parses");
    assert!(parsed.entries.is_empty(), "clean tree yields an empty ledger");
}

#[test]
fn cli_inline_allow_suppresses() {
    let tree = FakeTree::new("allow");
    tree.write_recovery(
        "fn recover(x: Option<u8>) -> u8 {\n\
         \x20   x.unwrap() // lint:allow(recovery-no-panic): startup only\n\
         }\n",
    );
    assert_eq!(tree.run(&["--deny-new"]).status.code(), Some(0));
}

#[test]
fn cli_rejects_unknown_flags_with_usage_error() {
    let tree = FakeTree::new("usage");
    tree.write_recovery(CLEAN);
    assert_eq!(tree.run(&["--frobnicate"]).status.code(), Some(2));
}

/// The self-test the acceptance criteria ask for, run against the *real*
/// tree: take the current checkout's findings, append one synthetic
/// violation, and check the baseline diff flags exactly that one as new.
/// (The CLI variant above uses a fake tree so it can mutate files; this
/// one proves the shipped baseline covers the shipped tree and nothing
/// more.)
#[test]
fn injected_violation_is_detected_against_real_baseline() {
    let root = default_root();
    let mut findings = scan_workspace(&root).expect("workspace scan");
    let baseline = Baseline::load(&baseline_path(&root)).expect("baseline");
    assert!(baseline.diff(&findings).new.is_empty(), "precondition: tree clean");

    findings.extend(ftgm_lint::scan_file_content(
        "crates/core/src/recovery.rs",
        VIOLATION,
    ));
    let diff = baseline.diff(&findings);
    assert_eq!(diff.new.len(), 1, "exactly the injected violation is new");
    assert_eq!(diff.new[0].rule, "recovery-no-panic");
}

/// The tentpole acceptance criterion end-to-end: a panic seeded two
/// calls below a recovery entry point, across a crate boundary, is
/// reported by the CLI with the full call chain in both the human and
/// JSON forms.
#[test]
fn cli_reports_cross_crate_call_chain_for_seeded_panic() {
    let tree = FakeTree::new("chain");
    // Entry point: recovery.rs is an R7 entry file (and R1-covered, so
    // the panic must live elsewhere for R7 to own the diagnostic).
    tree.write_recovery("pub fn verify(state: &[u8]) -> u8 { helper_a(state) }\n");
    // The panic, two calls below, in a different crate.
    tree.write(
        "crates/net/src/util.rs",
        "pub fn helper_a(state: &[u8]) -> u8 { helper_b(state) }\n\
         pub fn helper_b(state: &[u8]) -> u8 { state.first().copied().unwrap() }\n",
    );
    // Realistic manifests: core depends on net, so the cross-crate call
    // resolves through the dependency closure (not fixture allow-all).
    tree.write(
        "crates/core/Cargo.toml",
        "[package]\nname = \"ftgm-core\"\n[dependencies]\nftgm-net = { path = \"../net\" }\n",
    );
    tree.write("crates/net/Cargo.toml", "[package]\nname = \"ftgm-net\"\n");

    let out = tree.run(&["--json"]);
    assert_eq!(out.status.code(), Some(1), "seeded panic must fail the run");
    let report = json::parse(&String::from_utf8_lossy(&out.stdout)).expect("JSON report parses");
    let findings = report.get("findings").and_then(json::Value::as_arr).expect("findings");
    let f = findings
        .iter()
        .find(|f| f.get("rule").and_then(json::Value::as_str) == Some("transitive-panic"))
        .expect("a transitive-panic finding");
    assert_eq!(
        f.get("file").and_then(json::Value::as_str),
        Some("crates/net/src/util.rs")
    );
    assert_eq!(f.get("symbol").and_then(json::Value::as_str), Some("helper_b"));
    let chain = f.get("chain").and_then(json::Value::as_arr).expect("chain");
    let hops: Vec<&str> = chain
        .iter()
        .filter_map(|h| h.get("symbol").and_then(json::Value::as_str))
        .collect();
    assert_eq!(hops, vec!["verify", "helper_a", "helper_b"]);
    assert_eq!(
        chain[0].get("file").and_then(json::Value::as_str),
        Some("crates/core/src/recovery.rs"),
        "chain hops carry their defining files"
    );
    assert!(
        f.get("message")
            .and_then(json::Value::as_str)
            .is_some_and(|m| m.contains("2 calls below entry `verify`")),
        "{f:?}"
    );

    // Human form: the same chain on a `via` line.
    let human = tree.run(&[]);
    let stdout = String::from_utf8_lossy(&human.stdout);
    assert!(
        stdout.contains("via verify \u{2192} helper_a \u{2192} helper_b"),
        "human output shows the chain:\n{stdout}"
    );
}

#[test]
fn cli_migrates_legacy_baseline_and_drops_dead_entries() {
    let tree = FakeTree::new("migrate");
    tree.write_recovery(VIOLATION);
    // A legacy snippet-keyed ledger: one entry covering the live
    // violation, one entry whose violation was since fixed.
    std::fs::write(
        tree.baseline(),
        "{\n  \"entries\": [\n    \
         {\"rule\": \"recovery-no-panic\", \"file\": \"crates/core/src/recovery.rs\", \
          \"count\": 1, \"snippet\": \"fn recover(x: Option<u8>) -> u8 { x.unwrap() }\"},\n    \
         {\"rule\": \"recovery-no-panic\", \"file\": \"crates/core/src/gone.rs\", \
          \"count\": 2, \"snippet\": \"y.expect(\\\"gone\\\")\"}\n  ]\n}\n",
    )
    .expect("write legacy baseline");

    // Pre-migration, the legacy format is rejected with a pointer.
    let out = tree.run(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--migrate-baseline"),
        "rejection names the fix"
    );

    // One shot: re-keys the covered finding, drops the dead entry.
    let out = tree.run(&["--migrate-baseline"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1 dead legacy entry dropped"), "{stdout}");

    let migrated = std::fs::read_to_string(tree.baseline()).expect("baseline");
    let parsed = Baseline::parse(&migrated).expect("v2 format");
    assert_eq!(parsed.entries.len(), 1);
    assert_eq!(parsed.entries[0].symbol, "recover");
    assert!(!migrated.contains("gone.rs"), "dead entry dropped");

    // The migrated ledger gates clean, and a second migrate is a no-op.
    assert_eq!(tree.run(&["--deny-new"]).status.code(), Some(0));
    let again = tree.run(&["--migrate-baseline"]);
    assert_eq!(again.status.code(), Some(0));
    assert!(
        String::from_utf8_lossy(&again.stdout).contains("nothing to do"),
        "idempotent"
    );
}

#[test]
fn cli_report_file_is_deterministic_and_integer_only() {
    let tree = FakeTree::new("report");
    tree.write_recovery(VIOLATION);
    let report_path = tree.root.join("lint_report.json");
    let run = |p: &std::path::Path| {
        tree.run(&["--report", p.to_str().expect("utf8 path")]);
        std::fs::read_to_string(p).expect("report written")
    };
    let first = run(&report_path);
    let report = json::parse(&first).expect("report parses");
    assert_eq!(
        report.get("schema").and_then(json::Value::as_str),
        Some("ftgm-lint-v1")
    );
    assert_eq!(report.get("new_count").and_then(json::Value::as_u64), Some(1));
    // Integer-only: no `"key": 1.5`-style float values anywhere (the
    // same contract ci.sh greps for on the bench artifacts).
    for line in first.lines() {
        let after_colon = line.rsplit(':').next().unwrap_or("");
        assert!(
            !after_colon.trim_start().starts_with(|c: char| c.is_ascii_digit())
                || !after_colon.contains('.'),
            "float value leaked into the report: {line}"
        );
    }
    // Byte-identical across runs.
    let second = run(&tree.root.join("lint_report_2.json"));
    assert_eq!(first, second, "report must be deterministic");
}
