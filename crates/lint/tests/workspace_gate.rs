//! The tier-1 lint gate plus a CLI self-test.
//!
//! `workspace_has_no_new_findings` is the actual gate: it scans the real
//! checkout and fails the build if anyone introduces a rule violation.
//! `baseline_has_no_stale_entries` keeps the checked-in ledger honest in
//! the other direction. The `cli_*` tests drive the compiled binary
//! against a throwaway fake workspace to prove the end-to-end behavior
//! the acceptance criteria call for: non-zero exit on a violation, zero
//! after `--write-baseline`, and a JSON report that round-trips through
//! the baseline mechanism.

use std::path::PathBuf;
use std::process::Command;

use ftgm_lint::baseline::Baseline;
use ftgm_lint::{baseline_path, default_root, json, scan_workspace};

#[test]
fn workspace_has_no_new_findings() {
    let root = default_root();
    let findings = scan_workspace(&root).expect("workspace scan");
    let baseline = Baseline::load(&baseline_path(&root)).expect("baseline");
    let diff = baseline.diff(&findings);
    assert!(
        diff.new.is_empty(),
        "new lint findings (fix them or, for pre-existing debt, run \
         `cargo run -p ftgm-lint -- --write-baseline`):\n{}",
        diff.new
            .iter()
            .map(ftgm_lint::Finding::render)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn baseline_has_no_stale_entries() {
    let root = default_root();
    let findings = scan_workspace(&root).expect("workspace scan");
    let baseline = Baseline::load(&baseline_path(&root)).expect("baseline");
    let diff = baseline.diff(&findings);
    assert!(
        diff.stale.is_empty(),
        "stale baseline entries — the violations were fixed, so shrink the \
         ledger with `cargo run -p ftgm-lint -- --write-baseline`:\n{:#?}",
        diff.stale
    );
}

#[test]
fn baseline_file_is_canonically_formatted() {
    // `--write-baseline` must be idempotent: re-rendering the parsed
    // baseline reproduces the checked-in bytes exactly.
    let path = baseline_path(&default_root());
    let text = std::fs::read_to_string(&path).expect("baseline exists");
    let parsed = Baseline::parse(&text).expect("baseline parses");
    assert_eq!(
        parsed.render(),
        text,
        "baseline.json was hand-edited into a non-canonical form; \
         regenerate it with `cargo run -p ftgm-lint -- --write-baseline`"
    );
}

/// A throwaway fake workspace with one rule-governed file, torn down on
/// drop. Unique per test via the test name.
struct FakeTree {
    root: PathBuf,
}

impl FakeTree {
    fn new(tag: &str) -> FakeTree {
        let root = std::env::temp_dir().join(format!(
            "ftgm-lint-selftest-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("crates/core/src")).expect("mkdir");
        FakeTree { root }
    }

    fn write_recovery(&self, body: &str) {
        std::fs::write(self.root.join("crates/core/src/recovery.rs"), body)
            .expect("write fixture file");
    }

    fn baseline(&self) -> PathBuf {
        self.root.join("baseline.json")
    }

    fn run(&self, extra: &[&str]) -> std::process::Output {
        let baseline = self.baseline();
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_ftgm-lint"));
        cmd.arg("--root")
            .arg(&self.root)
            .arg("--baseline")
            .arg(&baseline)
            .args(extra);
        cmd.output().expect("run ftgm-lint binary")
    }
}

impl Drop for FakeTree {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

const VIOLATION: &str = "fn recover(x: Option<u8>) -> u8 { x.unwrap() }\n";
const CLEAN: &str = "fn recover(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n";

#[test]
fn cli_fails_on_fresh_violation_and_passes_when_fixed() {
    let tree = FakeTree::new("fresh");
    tree.write_recovery(VIOLATION);
    let out = tree.run(&[]);
    assert_eq!(out.status.code(), Some(1), "violation must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("crates/core/src/recovery.rs:1:") && stdout.contains("recovery-no-panic"),
        "report names file:line and rule:\n{stdout}"
    );

    tree.write_recovery(CLEAN);
    let out = tree.run(&[]);
    assert_eq!(out.status.code(), Some(0), "clean tree must exit 0");
}

#[test]
fn cli_baseline_round_trip() {
    let tree = FakeTree::new("roundtrip");
    tree.write_recovery(VIOLATION);

    // 1. Ungated: the violation fails the run.
    assert_eq!(tree.run(&["--deny-new"]).status.code(), Some(1));

    // 2. Accept it into the baseline...
    assert_eq!(tree.run(&["--write-baseline"]).status.code(), Some(0));
    assert!(tree.baseline().exists(), "--write-baseline creates the file");

    // 3. ...after which the same tree gates clean, and the JSON report
    //    shows the finding as baselined rather than new.
    let out = tree.run(&["--deny-new", "--json"]);
    assert_eq!(out.status.code(), Some(0), "baselined violation passes the gate");
    let report = json::parse(&String::from_utf8_lossy(&out.stdout)).expect("JSON report parses");
    assert_eq!(report.get("new_count").and_then(json::Value::as_u64), Some(0));
    assert_eq!(
        report.get("baselined_count").and_then(json::Value::as_u64),
        Some(1)
    );

    // 4. Fixing the violation strands the baseline entry; --deny-new
    //    notices the stale ledger, a plain run does not.
    tree.write_recovery(CLEAN);
    assert_eq!(tree.run(&[]).status.code(), Some(0));
    assert_eq!(tree.run(&["--deny-new"]).status.code(), Some(1));

    // 5. Regenerating empties the ledger and the gate closes again.
    assert_eq!(tree.run(&["--write-baseline"]).status.code(), Some(0));
    assert_eq!(tree.run(&["--deny-new"]).status.code(), Some(0));
    let rewritten = std::fs::read_to_string(tree.baseline()).expect("baseline");
    let parsed = Baseline::parse(&rewritten).expect("rewritten baseline parses");
    assert!(parsed.entries.is_empty(), "clean tree yields an empty ledger");
}

#[test]
fn cli_inline_allow_suppresses() {
    let tree = FakeTree::new("allow");
    tree.write_recovery(
        "fn recover(x: Option<u8>) -> u8 {\n\
         \x20   x.unwrap() // lint:allow(recovery-no-panic): startup only\n\
         }\n",
    );
    assert_eq!(tree.run(&["--deny-new"]).status.code(), Some(0));
}

#[test]
fn cli_rejects_unknown_flags_with_usage_error() {
    let tree = FakeTree::new("usage");
    tree.write_recovery(CLEAN);
    assert_eq!(tree.run(&["--frobnicate"]).status.code(), Some(2));
}

/// The self-test the acceptance criteria ask for, run against the *real*
/// tree: take the current checkout's findings, append one synthetic
/// violation, and check the baseline diff flags exactly that one as new.
/// (The CLI variant above uses a fake tree so it can mutate files; this
/// one proves the shipped baseline covers the shipped tree and nothing
/// more.)
#[test]
fn injected_violation_is_detected_against_real_baseline() {
    let root = default_root();
    let mut findings = scan_workspace(&root).expect("workspace scan");
    let baseline = Baseline::load(&baseline_path(&root)).expect("baseline");
    assert!(baseline.diff(&findings).new.is_empty(), "precondition: tree clean");

    findings.extend(ftgm_lint::scan_file_content(
        "crates/core/src/recovery.rs",
        VIOLATION,
    ));
    let diff = baseline.diff(&findings);
    assert_eq!(diff.new.len(), 1, "exactly the injected violation is new");
    assert_eq!(diff.new[0].rule, "recovery-no-panic");
}
