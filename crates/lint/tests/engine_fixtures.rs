//! Fixture-driven tests for the lint engine: each file under
//! `tests/fixtures/` is scanned *as if* it lived at a rule-governed path,
//! and the expected finding count is asserted. The `*_bad.rs` fixtures
//! exercise every construct a rule knows about; the `*_good.rs` fixtures
//! are the sanctioned alternatives plus the known near-miss lookalikes.

use ftgm_lint::{rules, scan_file_content, Finding};

fn scan_fixture(name: &str, pretend_path: &str) -> Vec<Finding> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let content = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    scan_file_content(pretend_path, &content)
}

fn assert_all_rule(findings: &[Finding], rule: &str) {
    assert!(
        findings.iter().all(|f| f.rule == rule),
        "expected only {rule} findings, got {findings:#?}"
    );
}

#[test]
fn r1_bad_flags_every_panicking_construct() {
    let f = scan_fixture("r1_bad.rs", "crates/core/src/recovery.rs");
    assert_eq!(f.len(), 7, "{f:#?}");
    assert_all_rule(&f, rules::RECOVERY_NO_PANIC);
    // Both literal-index forms are among them.
    assert!(f.iter().any(|x| x.snippet.contains("v[0]")));
    assert!(f.iter().any(|x| x.snippet.contains("v[1_0]")));
}

#[test]
fn r1_good_is_clean_including_test_module() {
    let f = scan_fixture("r1_good.rs", "crates/core/src/recovery.rs");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn r2_bad_flags_every_nondeterminism_source() {
    let f = scan_fixture("r2_bad.rs", "crates/sim/src/sched_helper.rs");
    assert_eq!(f.len(), 6, "{f:#?}");
    assert_all_rule(&f, rules::DETERMINISM);
}

#[test]
fn r2_good_accepts_btree_and_type_mentions() {
    let f = scan_fixture("r2_good.rs", "crates/sim/src/sched_helper.rs");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn r3_bad_flags_direct_seqnum_writes() {
    let f = scan_fixture("r3_bad.rs", "crates/mcp/src/machine.rs");
    assert_eq!(f.len(), 4, "{f:#?}");
    assert_all_rule(&f, rules::SEQNUM_DISCIPLINE);
}

#[test]
fn r3_good_accepts_reads_locals_and_accessor_calls() {
    let f = scan_fixture("r3_good.rs", "crates/mcp/src/machine.rs");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn r3_bad_is_legal_inside_accessor_modules() {
    // The same writes are the accessor modules' whole job.
    let f = scan_fixture("r3_bad.rs", "crates/mcp/src/gobackn.rs");
    assert!(f.is_empty(), "{f:#?}");
    let f = scan_fixture("r3_bad.rs", "crates/gm/src/backup.rs");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn r4_bad_flags_plain_and_guarded_wildcards() {
    let f = scan_fixture("r4_bad.rs", "crates/faults/src/classify.rs");
    assert_eq!(f.len(), 2, "{f:#?}");
    assert_all_rule(&f, rules::NO_WILDCARD_MATCH);
}

#[test]
fn r4_good_accepts_exhaustive_matches_and_underscore_bindings() {
    let f = scan_fixture("r4_good.rs", "crates/faults/src/classify.rs");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn r5_bad_flags_bare_truncating_casts() {
    let f = scan_fixture("r5_bad.rs", "crates/mcp/src/packet.rs");
    assert_eq!(f.len(), 3, "{f:#?}");
    assert_all_rule(&f, rules::NO_TRUNCATING_CAST);
}

#[test]
fn r5_good_accepts_widening_and_try_from() {
    let f = scan_fixture("r5_good.rs", "crates/mcp/src/packet.rs");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn r6_bad_flags_stringly_trace_calls() {
    let f = scan_fixture("r6_bad.rs", "crates/gm/src/world.rs");
    assert_eq!(f.len(), 4, "{f:#?}");
    assert_all_rule(&f, rules::TYPED_TRACE);
}

#[test]
fn r6_good_accepts_typed_api_and_other_receivers() {
    let f = scan_fixture("r6_good.rs", "crates/gm/src/world.rs");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn r6_governs_all_crate_sources_but_not_tests() {
    // Unlike R1–R5, R6 has no file allowlist: any crates/*/src/ file is in
    // scope, while test trees stay exempt.
    let f = scan_fixture("r6_bad.rs", "crates/bench/src/bin/chaos.rs");
    assert_eq!(f.len(), 4, "{f:#?}");
    let f = scan_fixture("r6_bad.rs", "tests/trace_oracle.rs");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn r2_workload_bad_flags_entropy_outside_sim_rng() {
    // The workload crate's generators must draw all randomness through
    // sim::rng; OS entropy, hash ordering and wall clocks all fire.
    let f = scan_fixture("r2_workload_bad.rs", "crates/workload/src/gen.rs");
    assert_eq!(f.len(), 5, "{f:#?}");
    assert_all_rule(&f, rules::DETERMINISM);
    assert!(f.iter().any(|x| x.snippet.contains("thread_rng")));
    assert!(f.iter().any(|x| x.snippet.contains("Instant::now")));
}

#[test]
fn r2_workload_good_seeded_simrng_is_clean() {
    let f = scan_fixture("r2_workload_good.rs", "crates/workload/src/gen.rs");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn r1_governs_the_whole_workload_crate() {
    // R1 is directory-scoped for crates/workload: generators run through
    // recoveries, so panicking constructs fire in any of its modules.
    let f = scan_fixture("r1_bad.rs", "crates/workload/src/driver.rs");
    assert_eq!(f.len(), 7, "{f:#?}");
    assert_all_rule(&f, rules::RECOVERY_NO_PANIC);
}

#[test]
fn suppression_fixture_honors_rule_specific_allows() {
    let f = scan_fixture("suppression.rs", "crates/core/src/recovery.rs");
    assert_eq!(f.len(), 1, "{f:#?}");
    assert_eq!(f[0].rule, rules::RECOVERY_NO_PANIC);
    assert_eq!(f[0].line, 9, "only the wrong-rule allow leaks through");
}

#[test]
fn fixtures_are_invisible_to_a_workspace_scan() {
    // The fixtures deliberately violate every rule; the scanner must not
    // trip over them when walking the real tree (they live under
    // tests/fixtures/, which is out of scope).
    let f = scan_fixture("r1_bad.rs", "crates/lint/tests/fixtures/r1_bad.rs");
    assert!(f.is_empty(), "{f:#?}");
}
